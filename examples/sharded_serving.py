"""Sharded serving: split an index by vertex range, serve it in parallel.

Run with::

    python examples/sharded_serving.py

The single-process serving story (see ``batch_serving.py``) tops out
at one core.  This example takes the next step the way a deployment
would: persist the index, split it into range shards with a manifest
(`repro shard` does the same on the command line), then serve batched
queries through a ParallelOracle whose workers each mmap the shard
files.  Prints single-store vs sharded throughput on the same
workload and shows the shard directory layout.
"""

import os
import random
import tempfile
import time
from pathlib import Path

from repro import DistanceOracle, HopDoublingIndex
from repro.graphs import glp_graph
from repro.oracle import ParallelOracle, ShardedLabelStore, load_manifest

NUM_SHARDS = 4


def main() -> None:
    graph = glp_graph(5_000, seed=13)
    index = HopDoublingIndex.build(graph)
    print(f"built {index.labels!r}")

    with tempfile.TemporaryDirectory() as tmp:
        # 1. Persist once, shard by contiguous vertex range.
        path = Path(tmp) / "serving.index2"
        index.save(path, format="v2")
        shard_dir = Path(tmp) / "serving.shards"
        from repro.core.flatstore import load_store

        ShardedLabelStore.split(load_store(path), NUM_SHARDS).save(shard_dir)
        manifest = load_manifest(shard_dir)
        print(f"shard directory {shard_dir.name}/:")
        for entry in manifest["shards"]:
            size = (shard_dir / entry["file"]).stat().st_size
            print(
                f"  {entry['file']}  vertices [{entry['lo']:>5}, "
                f"{entry['hi']:>5})  {size / 1024:6.0f} KB  "
                f"sha256 {entry['sha256'][:12]}..."
            )

        rng = random.Random(7)
        n = manifest["n"]
        stream = [
            (rng.randrange(n), rng.randrange(n)) for _ in range(50_000)
        ]

        # 2. Baseline: one process, the grouped-merge-join batch path.
        single = DistanceOracle.open(path, use_mmap=True, cache_size=0)
        t0 = time.perf_counter()
        expected = single.query_batch(stream)
        dt = time.perf_counter() - t0
        print(f"single store       : {len(stream) / dt:>9,.0f} pairs/s")

        # 3. Sharded: fan the same batch over a process pool.  Workers
        #    mmap the shard files in their initializer, so startup is
        #    cheap and the page cache is shared; warmup() keeps the
        #    fork cost out of the timed region.
        workers = min(NUM_SHARDS, os.cpu_count() or 1)
        served = ParallelOracle(
            shard_dir, workers=workers, executor="process", cache_size=0
        )
        served.warmup()
        t0 = time.perf_counter()
        distances = served.query_batch(stream)
        dt = time.perf_counter() - t0
        print(
            f"sharded, {workers} workers: {len(stream) / dt:>9,.0f} pairs/s"
        )

        # 4. Same answers, bit for bit, in input order.
        assert distances == expected
        print("sharded answers identical to the single store")

        served.close()
        single.close()


if __name__ == "__main__":
    main()
