"""External-memory construction and disk-resident querying (Section 4).

The paper's setting: the graph and the index do not fit in RAM, so
construction runs as blocked nested-loop joins over sorted entry files
and queries read two labels from disk.  This example runs the
I/O-charged builder under a deliberately tiny memory budget, prints
the per-iteration I/O profile (the measured form of the paper's
``O(log D_H * |old|/M * scan(|old|+|cand|))`` bound) and compares the
simulated disk query cost with the in-memory query time.
"""

import time

from repro.bench.workloads import random_pairs
from repro.graphs import glp_graph
from repro.io_sim import DiskModel, DiskResidentIndex, ExternalLabelingBuilder


def main() -> None:
    graph = glp_graph(2_000, m=2.0, seed=19)
    print(f"graph: {graph}")

    # A memory budget of 2048 entries vs an index of tens of thousands:
    # everything must stream through block files.
    disk = DiskModel(memory_entries=2048, block_entries=64)
    builder = ExternalLabelingBuilder(graph, disk, strategy="hybrid")
    result = builder.build()

    print(
        f"\nexternal build: {result.num_iterations} iterations, "
        f"{result.index.total_entries()} entries, "
        f"{result.total_io.total} block I/Os "
        f"({result.total_io.reads} reads / {result.total_io.writes} writes)"
    )
    print("\nper-iteration I/O profile:")
    print("  iter  mode    cand  survived   reads  writes")
    for it in result.iterations:
        s = it.stats
        print(
            f"  {s.iteration:>4}  {s.mode:<6} {s.distinct_generated:>5} "
            f"{s.survived:>9} {it.io.reads:>7} {it.io.writes:>7}"
        )

    # --- disk-resident querying ------------------------------------------
    pairs = random_pairs(graph.num_vertices, 500, seed=5)
    disk_index = DiskResidentIndex(result.index, DiskModel(block_entries=64))
    for s, t in pairs:
        disk_index.query(s, t)
    t0 = time.perf_counter()
    for s, t in pairs:
        result.index.query(s, t)
    mem_us = (time.perf_counter() - t0) / len(pairs) * 1e6

    print(
        f"\nquerying 500 random pairs:"
        f"\n  in-memory:      {mem_us:8.1f} us/query"
        f"\n  disk-resident:  {disk_index.avg_query_seconds() * 1e3:8.1f} "
        f"ms/query simulated "
        f"({disk_index.avg_blocks_per_query():.1f} blocks/query)"
    )
    print(
        "\nThe two numbers bracket the paper's Table 6 columns: "
        "microseconds with the index in RAM, a few milliseconds "
        "(two label reads) straight off disk."
    )


if __name__ == "__main__":
    main()
