"""Network serving: the asyncio frontend with admission batching.

Run with::

    python examples/async_serving.py

Starts a :class:`DistanceServer` over a built index and drives it two
ways over real TCP connections: the naive protocol (one pair per
request, each awaited before the next is sent) and a fleet of
concurrent clients submitting multi-pair query sets.  The admission
batcher coalesces the concurrent requests into a handful of kernel
passes — the server-side counters printed at the end show how many
batches actually hit the kernel, and every answer is checked
bit-identical against a direct oracle query.
"""

import asyncio
import random
import tempfile
import time
from pathlib import Path

from repro import DistanceOracle, HopDoublingIndex
from repro.graphs import glp_graph
from repro.serve import DistanceClient, DistanceServer

NUM_CLIENTS = 32
PAIRS_PER_REQUEST = 16
REQUESTS_PER_CLIENT = 8
SEQUENTIAL_PAIRS = 400


def workload(n: int, count: int, seed: int = 11):
    rng = random.Random(seed)
    return [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]


async def sequential_round_trips(host, port, pairs):
    """One pair per request, awaited one at a time — the naive client."""
    client = await DistanceClient.connect(host, port)
    try:
        t0 = time.perf_counter()
        answers = []
        for pair in pairs:
            answers.extend(await client.query([pair]))
        return answers, time.perf_counter() - t0
    finally:
        await client.aclose()


async def concurrent_clients(host, port, requests):
    """Many connections in flight at once; the batcher coalesces them."""

    async def drive(my_requests):
        client = await DistanceClient.connect(host, port)
        try:
            out = []
            for req in my_requests:
                out.append(await client.query(req))
            return out
        finally:
            await client.aclose()

    t0 = time.perf_counter()
    per_client = await asyncio.gather(
        *(drive(requests[i::NUM_CLIENTS]) for i in range(NUM_CLIENTS))
    )
    elapsed = time.perf_counter() - t0
    answers = []
    for i in range(NUM_CLIENTS):
        for chunk in per_client[i]:
            answers.append(chunk)
    return per_client, elapsed


async def serve_demo(oracle):
    server = DistanceServer(oracle, max_wait=0.002)
    host, port = await server.start()
    print(f"serving on {host}:{port}")
    try:
        pairs = workload(oracle.n, SEQUENTIAL_PAIRS)
        answers, seq_dt = await sequential_round_trips(host, port, pairs)
        print(
            f"sequential 1-pair round trips: "
            f"{len(pairs) / seq_dt:>8,.0f} pairs/s"
        )
        for (s, t), d in zip(pairs, answers):
            assert d == oracle.query(s, t)

        total = NUM_CLIENTS * REQUESTS_PER_CLIENT * PAIRS_PER_REQUEST
        stream = workload(oracle.n, total, seed=12)
        requests = [
            stream[k : k + PAIRS_PER_REQUEST]
            for k in range(0, total, PAIRS_PER_REQUEST)
        ]
        per_client, conc_dt = await concurrent_clients(host, port, requests)
        print(
            f"{NUM_CLIENTS} concurrent clients, "
            f"{PAIRS_PER_REQUEST}-pair requests: "
            f"{total / conc_dt:>8,.0f} pairs/s"
        )
        for i in range(NUM_CLIENTS):
            for req, got in zip(requests[i::NUM_CLIENTS], per_client[i]):
                assert got == [oracle.query(s, t) for s, t in req]
        print("all served answers bit-identical to direct oracle queries")

        client = await DistanceClient.connect(host, port)
        stats = (await client.stats())["batcher"]
        await client.aclose()
        served = stats["pairs_served"]
        batches = stats["batches_dispatched"]
        print(
            f"server counters: {served:,} pairs in {batches} kernel "
            f"batches (largest {stats['max_batch_seen']} pairs) — "
            f"{served / batches:,.0f} pairs per kernel pass"
        )
    finally:
        await server.aclose()


def main() -> None:
    graph = glp_graph(3_000, seed=17)
    index = HopDoublingIndex.build(graph)
    print(f"built {index.labels!r}")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "serving.idx2"
        index.save(path, format="v2")
        oracle = DistanceOracle.open(path, use_mmap=True)
        asyncio.run(serve_demo(oracle))
        # Release the mapping before the tempdir is deleted (required
        # on Windows, where a mapped file cannot be removed).
        oracle.close()


if __name__ == "__main__":
    main()
