"""Quickstart: build a hop-doubling index and answer distance queries.

Run with::

    python examples/quickstart.py

Covers the 60-second tour of the library: generate a scale-free graph,
build the index with the paper's default hybrid strategy, query
distances, reconstruct a shortest path, and round-trip the index
through its binary format.
"""

import tempfile
from pathlib import Path

from repro import HopDoublingIndex, INF
from repro.graphs import glp_graph
from repro.graphs.traversal import bfs_distances


def main() -> None:
    # 1. A synthetic scale-free graph (the paper's GLP model).
    graph = glp_graph(2_000, seed=42)
    print(f"graph: {graph}")

    # 2. Build the index.  Default = hybrid strategy (Hop-Stepping for
    #    10 iterations, Hop-Doubling afterwards), degree ranking,
    #    minimized rule set, pruning on — the paper's configuration.
    index = HopDoublingIndex.build(graph)
    stats = index.stats()
    print(
        f"index: {index.num_iterations} iterations, "
        f"{stats.total_entries} entries "
        f"(avg {stats.avg_label_size:.1f}/vertex, "
        f"{index.size_in_bytes() / 1024:.0f} KB)"
    )

    # 3. Point-to-point queries: exact distances from two label lookups.
    for s, t in [(0, 1999), (17, 1234), (3, 3)]:
        d = index.query(s, t)
        shown = "unreachable" if d == INF else f"{d:g} hops"
        print(f"  dist({s:>4}, {t:>4}) = {shown}")

    # 4. Sanity: agree with plain BFS.
    bfs = bfs_distances(graph, 0)
    assert all(index.query(0, t) == bfs[t] for t in range(graph.num_vertices))
    print("verified against BFS from vertex 0")

    # 5. The index stores distances; paths are reconstructed on demand.
    path = index.query_path(17, 1234)
    print(f"one shortest path 17 -> 1234: {path}")

    # 6. Save and reload.
    with tempfile.TemporaryDirectory() as tmp:
        path_file = Path(tmp) / "quickstart.index"
        index.save(path_file)
        reloaded = HopDoublingIndex.load(path_file)
        assert reloaded.query(17, 1234) == index.query(17, 1234)
        print(f"round-tripped through {path_file.name} "
              f"({path_file.stat().st_size / 1024:.0f} KB on disk)")


if __name__ == "__main__":
    main()
