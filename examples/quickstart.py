"""Quickstart: build a hop-doubling index and answer distance queries.

Run with::

    python examples/quickstart.py

Covers the 60-second tour of the library: generate a scale-free graph,
build the index with the paper's default hybrid strategy, query
distances through the DistanceOracle serving facade, reconstruct a
shortest path, and round-trip the index through its binary formats.
"""

import tempfile
from pathlib import Path

from repro import DistanceOracle, HopDoublingIndex, INF
from repro.graphs import glp_graph
from repro.graphs.traversal import bfs_distances


def main() -> None:
    # 1. A synthetic scale-free graph (the paper's GLP model).
    graph = glp_graph(2_000, seed=42)
    print(f"graph: {graph}")

    # 2. Build the index.  Default = hybrid strategy (Hop-Stepping for
    #    10 iterations, Hop-Doubling afterwards), degree ranking,
    #    minimized rule set, pruning on — the paper's configuration.
    index = HopDoublingIndex.build(graph)
    stats = index.stats()
    print(
        f"index: {index.num_iterations} iterations, "
        f"{stats.total_entries} entries "
        f"(avg {stats.avg_label_size:.1f}/vertex, "
        f"{index.size_in_bytes() / 1024:.0f} KB)"
    )

    # 3. Serve queries through the oracle facade.  `oracle()` packs the
    #    labels into the CSR flat store (the fast backend) and layers
    #    an LRU result cache plus batched evaluation on top.
    oracle = index.oracle()
    for s, t in [(0, 1999), (17, 1234), (3, 3)]:
        d = oracle.query(s, t)
        shown = "unreachable" if d == INF else f"{d:g} hops"
        print(f"  dist({s:>4}, {t:>4}) = {shown}")

    # 4. Sanity: agree with plain BFS — evaluated as one batch.
    bfs = bfs_distances(graph, 0)
    batch = oracle.query_batch([(0, t) for t in range(graph.num_vertices)])
    assert batch == bfs
    print("verified against BFS from vertex 0 (one query_batch call)")

    # 5. The index stores distances; paths are reconstructed on demand.
    path = index.query_path(17, 1234)
    print(f"one shortest path 17 -> 1234: {path}")

    # 6. Save, convert to the flat-array format v2, and reload.
    with tempfile.TemporaryDirectory() as tmp:
        v1 = Path(tmp) / "quickstart.index"
        v2 = Path(tmp) / "quickstart.index2"
        index.save(v1)                    # format v1 (per-entry structs)
        index.save(v2, format="v2")       # format v2 (flat-array blobs)
        from_v1 = DistanceOracle.open(v1)
        reloaded = DistanceOracle.open(v2, use_mmap=True)
        assert from_v1.query(17, 1234) == oracle.query(17, 1234)
        assert reloaded.query(17, 1234) == oracle.query(17, 1234)
        print(f"round-tripped through {v2.name} "
              f"({v2.stat().st_size / 1024:.0f} KB on disk, mmap-loaded)")
        # Release the mapping before the tempdir is deleted (required
        # on Windows, where a mapped file cannot be removed).
        reloaded.close()


if __name__ == "__main__":
    main()
