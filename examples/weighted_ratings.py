"""Weighted graphs: rating networks (Section 7 + Table 6's last block).

The paper's weighted datasets (amaRating, movRating, ...) are
customer-product rating networks with positive edge weights.  All the
machinery carries over: the same rules and pruning run on weighted
trough paths; only the complexity guarantees are stated for unweighted
graphs.  This example:

* builds a bipartite-flavoured weighted network (users x items, weight
  = rating "distance": dissimilarity 1..10);
* answers weighted distance queries and compares with Dijkstra;
* shows that hitting sets stay small on weighted scale-free graphs —
  the "promising evidence" the paper reports.
"""

import random

from repro import HopDoublingIndex, INF
from repro.graphs import Graph, glp_graph
from repro.graphs.traversal import dijkstra_distances


def build_rating_network(
    num_users: int, num_items: int, seed: int = 0
) -> Graph:
    """Users connect to items with rating-dissimilarity weights 1..10.

    The item popularity follows the degree skew of a GLP graph, so the
    result is scale-free like the paper's rating datasets.
    """
    rng = random.Random(seed)
    skeleton = glp_graph(num_users, m=2.0, seed=seed)
    n = num_users + num_items
    edges = []
    for u, v, _ in skeleton.edges():
        # Map each skeleton edge endpoint pair to user-item ratings.
        item = num_users + (v * 7 + u) % num_items
        edges.append((u, item, float(rng.randint(1, 10))))
        edges.append((v, item, float(rng.randint(1, 10))))
    return Graph.from_edges(n, edges, directed=False, weighted=True)


def main() -> None:
    graph = build_rating_network(1_500, 300, seed=23)
    print(f"rating network: {graph}")

    index = HopDoublingIndex.build(graph)
    stats = index.stats()
    print(
        f"index: {stats.total_entries} entries "
        f"(avg {stats.avg_label_size:.1f}/vertex, "
        f"{index.num_iterations} iterations)"
    )

    # --- weighted queries vs Dijkstra ground truth ---------------------
    rng = random.Random(4)
    sources = rng.sample(range(graph.num_vertices), 5)
    checked = 0
    for s in sources:
        truth = dijkstra_distances(graph, s)
        for t in rng.sample(range(graph.num_vertices), 200):
            assert index.query(s, t) == truth[t]
            checked += 1
    print(f"verified {checked} weighted queries against Dijkstra")

    # --- 'taste distance' between users ----------------------------------
    print("\nsample user-to-user taste distances:")
    for s, t in [(0, 1), (0, 700), (3, 1499)]:
        d = index.query(s, t)
        shown = "not comparable" if d == INF else f"{d:g}"
        print(f"  users {s:>4} and {t:>4}: {shown}")

    # --- small hitting sets persist under weights -------------------------
    top = index.labels.top_fraction_for_coverage(0.9)
    print(
        f"\ntop {top * 100:.1f}% of ranked vertices cover 90% of all label "
        f"entries — the small-hitting-set behaviour extends to weighted "
        f"graphs, as Section 8 observes."
    )


if __name__ == "__main__":
    main()
