"""Fast index construction: the array engine and multiprocess builds.

``repro`` ships two construction backends behind one knob:

* ``engine="dict"`` — the reference per-entry implementation;
* ``engine="array"`` — vectorized struct-of-arrays joins (numpy),
  several times faster, with ``jobs=N`` fanning candidate generation
  over worker processes.

They are guaranteed to produce bit-identical indexes and iteration
counters, so picking an engine is purely a speed decision.  This
script builds the same scale-free graph three ways, checks the
guarantee end to end, and prints the timings.

Run:  PYTHONPATH=src python examples/parallel_build.py
"""

import time

from repro import HopDoublingIndex
from repro.graphs.generators import ba_graph

N = 3_000


def build(engine: str, jobs: int = 1):
    t0 = time.perf_counter()
    index = HopDoublingIndex.build(graph, engine=engine, jobs=jobs)
    return index, time.perf_counter() - t0


graph = ba_graph(N, m=2, seed=42)
print(f"graph: {graph}")

reference, dict_seconds = build("dict")
vectorized, array_seconds = build("array")
parallel, parallel_seconds = build("array", jobs=2)

for name, index, seconds in (
    ("dict engine      ", reference, dict_seconds),
    ("array engine     ", vectorized, array_seconds),
    ("array + 2 jobs   ", parallel, parallel_seconds),
):
    stats = index.stats()
    print(
        f"{name} {seconds:6.2f}s  "
        f"entries={stats.total_entries}  avg|label|={stats.avg_label_size:.1f}"
    )
print(f"array-engine speedup: {dict_seconds / array_seconds:.1f}x")

# The guarantee: same entries, same counters, whatever the engine.
assert vectorized.labels.out_labels == reference.labels.out_labels
assert parallel.labels.out_labels == reference.labels.out_labels
ref_counters = [
    (it.raw_generated, it.admitted, it.pruned)
    for it in reference.iteration_stats
]
for other in (vectorized, parallel):
    assert [
        (it.raw_generated, it.admitted, it.pruned)
        for it in other.iteration_stats
    ] == ref_counters

# And same answers, spot-checked against each other.
for s, t in [(0, 1), (5, 2_500), (17, 1_234), (2_999, 3)]:
    assert vectorized.query(s, t) == reference.query(s, t)
print("bit-identical labels, counters, and answers across all engines")
