"""Section 7: what happens on graphs that are *not* scale-free?

The paper's guarantees assume a power-law degree distribution; for
road-like networks it suggests the algorithms still work with any
total ranking, but degree ranking loses its punch and a
shortest-path-hitting heuristic should be used instead.

This example quantifies that story by building indexes over

* a GLP scale-free graph, and
* a grid "road network" of comparable size,

under degree ranking, the sampled-betweenness heuristic ranking
(Section 7's suggestion), and a random-ranking control.
"""

from repro import HopDoublingIndex
from repro.graphs import glp_graph, grid_graph
from repro.graphs.stats import rank_exponent


def profile(name: str, graph) -> None:
    gamma = rank_exponent(graph)
    print(f"\n{name}: {graph}")
    print(f"  rank exponent {gamma:.2f} "
          f"({'scale-free-ish' if gamma < -0.5 else 'NOT scale-free'})")
    for strategy in ("degree", "betweenness", "random"):
        index = HopDoublingIndex.build(graph, ranking=strategy)
        stats = index.stats()
        print(
            f"  {strategy:>12} ranking: {stats.total_entries:>7} entries "
            f"(avg {stats.avg_label_size:.1f}/vertex, "
            f"{index.num_iterations} iterations)"
        )


def main() -> None:
    scale_free = glp_graph(900, m=1.6, seed=3)
    road = grid_graph(30, 30)

    profile("scale-free (GLP)", scale_free)
    profile("road-like (30x30 grid)", road)

    print(
        "\nTakeaways (matching Section 7):\n"
        "  * on the scale-free graph, degree ranking is already near\n"
        "    optimal — hubs hit most shortest paths;\n"
        "  * on the grid there are no hubs: degree ranking degenerates,\n"
        "    while the shortest-path-hitting heuristic recovers much of\n"
        "    the gap;\n"
        "  * correctness never depends on the ranking — only size/speed."
    )


if __name__ == "__main__":
    main()
