"""Batched distance serving: the DistanceOracle as a query frontend.

Run with::

    python examples/batch_serving.py

Simulates the serving-side life of an index: build once, persist in
the flat-array format v2, then answer a skewed stream of distance
queries the way a service would — memory-mapped storage, batched
merge-join evaluation, and an LRU cache absorbing the hot pairs.
Prints the throughput of each serving strategy on the same workload.
"""

import random
import tempfile
import time
from pathlib import Path

from repro import DistanceOracle, HopDoublingIndex
from repro.graphs import glp_graph
from repro.oracle import DEFAULT_CACHE_SIZE


def skewed_workload(n: int, count: int, seed: int = 9):
    """A query stream with a hot set — 80% of traffic hits 5% of pairs."""
    rng = random.Random(seed)
    hot = [(rng.randrange(n), rng.randrange(n)) for _ in range(count // 20)]
    stream = []
    for _ in range(count):
        if rng.random() < 0.8:
            stream.append(hot[rng.randrange(len(hot))])
        else:
            stream.append((rng.randrange(n), rng.randrange(n)))
    return stream


def main() -> None:
    graph = glp_graph(5_000, seed=13)
    index = HopDoublingIndex.build(graph)
    print(f"built {index.labels!r}")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "serving.index2"
        index.save(path, format="v2")
        print(f"persisted format v2: {path.stat().st_size / 1024:.0f} KB")

        # A serving process opens the file — zero-copy via mmap.
        t0 = time.perf_counter()
        oracle = DistanceOracle.open(path, use_mmap=True)
        print(f"opened (mmap) in {(time.perf_counter() - t0) * 1e3:.2f} ms")

        stream = skewed_workload(oracle.n, 50_000)

        # Strategy 1: one query at a time, cache off.
        cold = DistanceOracle.open(path, use_mmap=True, cache_size=0)
        t0 = time.perf_counter()
        for s, t in stream:
            cold.query(s, t)
        dt = time.perf_counter() - t0
        print(f"per-pair, no cache : {len(stream) / dt:>9,.0f} pairs/s")

        # Strategy 2: per-pair with the LRU absorbing the hot set.
        t0 = time.perf_counter()
        for s, t in stream:
            oracle.query(s, t)
        dt = time.perf_counter() - t0
        info = oracle.cache_info()
        print(
            f"per-pair, LRU      : {len(stream) / dt:>9,.0f} pairs/s "
            f"(hit rate {info.hit_rate:.0%}, "
            f"{info.size}/{DEFAULT_CACHE_SIZE} cached)"
        )

        # Strategy 3: the batch path — dedupe + grouped merge joins.
        batch_oracle = DistanceOracle.open(path, use_mmap=True)
        t0 = time.perf_counter()
        distances = batch_oracle.query_batch(stream)
        dt = time.perf_counter() - t0
        print(f"query_batch        : {len(stream) / dt:>9,.0f} pairs/s")

        # All strategies agree pairwise, bit for bit.
        sample = random.Random(1).sample(range(len(stream)), 500)
        for k in sample:
            s, t = stream[k]
            assert distances[k] == cold.query(s, t)
        print("strategies agree on a 500-query sample")

        # Release the mappings before the tempdir is deleted (required
        # on Windows, where a mapped file cannot be removed).
        for served in (oracle, cold, batch_oracle):
            served.close()


if __name__ == "__main__":
    main()
