"""Social-network analytics on top of the distance index.

The paper's introduction motivates P2P distance querying with social
network analysis (degrees of separation, centrality, influence).  This
example builds an index over a synthetic social graph and runs the
kind of workload that would be prohibitive with per-query BFS:

* a degrees-of-separation histogram over sampled pairs;
* closeness centrality for candidate "influencers";
* the bit-parallel enhancement (Section 6) that accelerates exactly
  this kind of undirected unweighted workload.
"""

import random
import time

from repro import HopDoublingIndex
from repro.core.bitparallel import add_bitparallel
from repro.core.query import closeness_centrality, distance_histogram
from repro.graphs import glp_graph


def main() -> None:
    # A "social network": scale-free, undirected, ~150k relationships.
    graph = glp_graph(5_000, m=3.0, seed=7)
    print(f"social graph: {graph}")

    t0 = time.perf_counter()
    index = HopDoublingIndex.build(graph)
    print(
        f"index built in {time.perf_counter() - t0:.2f}s "
        f"({index.stats().total_entries} entries)"
    )

    # --- degrees of separation -------------------------------------
    rng = random.Random(1)
    pairs = [
        (rng.randrange(graph.num_vertices), rng.randrange(graph.num_vertices))
        for _ in range(5_000)
    ]
    hist = distance_histogram(index.labels, pairs)
    print("\ndegrees of separation (5000 sampled pairs):")
    for d in sorted(k for k in hist if k != float("inf")):
        bar = "#" * max(1, hist[d] * 60 // len(pairs))
        print(f"  {int(d):>2} hops  {hist[d]:>5}  {bar}")

    # --- who is closest to everyone? ---------------------------------
    targets = rng.sample(range(graph.num_vertices), 500)
    by_degree = sorted(
        graph.vertices(), key=lambda v: -graph.degree(v)
    )[:8]
    print("\ncloseness of the 8 highest-degree members (500 targets):")
    scored = [
        (closeness_centrality(index.labels, v, targets), v) for v in by_degree
    ]
    for score, v in sorted(scored, reverse=True):
        print(f"  member {v:>5} (degree {graph.degree(v):>4}): {score:.4f}")

    # --- bit-parallel acceleration (Section 6) ------------------------
    bp = add_bitparallel(graph, index.labels, num_roots=50)
    t0 = time.perf_counter()
    for s, t in pairs[:2000]:
        index.labels.query(s, t)
    plain = time.perf_counter() - t0
    t0 = time.perf_counter()
    for s, t in pairs[:2000]:
        bp.query(s, t)
    accel = time.perf_counter() - t0
    kept = bp.normal.total_entries()
    print(
        f"\nbit-parallel: normal entries {index.stats().total_entries} -> "
        f"{kept}; 2000 queries plain {plain * 1e3:.0f}ms vs "
        f"bit-parallel {accel * 1e3:.0f}ms"
    )
    print(
        "(at this scale the win is index size — 95% of entries fold into "
        "50 root labels; the paper's speedups need labels hundreds of "
        "entries long)"
    )
    sample_checks = pairs[:200]
    assert all(
        bp.query(s, t) == index.labels.query(s, t) for s, t in sample_checks
    )
    print("bit-parallel answers verified against the plain index")


if __name__ == "__main__":
    main()
