"""Directed web-graph querying: asymmetric distances and reachability.

Web graphs (the paper's wiki*/Baidu datasets) are directed: the
distance from a page to another differs from the reverse.  The index
keeps two labels per page (Lin/Lout) and the paper ranks pages by the
product of in- and out-degree (Section 8).  This example shows:

* asymmetric distance queries;
* reachability testing (finite distance);
* how the ranking strategy affects the index size on directed graphs.
"""

from repro import HopDoublingIndex, INF
from repro.graphs import glp_graph


def main() -> None:
    web = glp_graph(1_500, m=2.0, seed=11, directed=True)
    print(f"web graph: {web}")

    # The paper's preferred directed ranking: in-degree x out-degree.
    index = HopDoublingIndex.build(web, ranking="inout")
    print(
        f"index: {index.stats().total_entries} entries, "
        f"{index.num_iterations} iterations"
    )

    # --- asymmetric distances ------------------------------------------
    print("\nasymmetric page distances:")
    shown = 0
    for s in range(web.num_vertices):
        for t in range(s + 1, web.num_vertices):
            d_st = index.query(s, t)
            d_ts = index.query(t, s)
            if d_st != d_ts and d_st != INF and d_ts != INF:
                print(f"  dist({s}->{t}) = {d_st:g}   dist({t}->{s}) = {d_ts:g}")
                shown += 1
                if shown >= 5:
                    break
        if shown >= 5:
            break

    # --- reachability --------------------------------------------------
    sample = [(1, 1200), (1200, 1), (42, 77), (1499, 0)]
    print("\nreachability:")
    for s, t in sample:
        ok = index.is_reachable(s, t)
        print(f"  {s} -> {t}: {'reachable' if ok else 'NOT reachable'}")

    # --- ranking strategies on directed graphs ----------------------------
    print("\nindex size by ranking strategy (directed graphs):")
    for strategy in ("inout", "degree", "random"):
        idx = HopDoublingIndex.build(web, ranking=strategy)
        stats = idx.stats()
        print(
            f"  {strategy:>8}: {stats.total_entries:>8} entries "
            f"(avg {stats.avg_label_size:.1f}/vertex)"
        )
    print(
        "\nThe degree-aware rankings beat the random control by a wide "
        "margin — the Section 2 story: high-degree hubs hit most "
        "shortest paths, so ranking them first shrinks the 2-hop cover."
    )


if __name__ == "__main__":
    main()
