"""Beyond the paper: incremental updates and k-nearest-neighbour queries.

Two extensions built on the paper's machinery:

* **incremental edge insertion** (`repro.core.dynamic`) — the paper
  targets static graphs; the hop-doubling rules double as a repair
  procedure, keeping queries exact as edges arrive (batched here,
  through the vectorized array repair engine when numpy is present),
  with the changed labels handed to a serving store as a delta;
* **inverted label index** (`repro.core.knn`) — one-to-all distances
  and k-NN straight from the labels, serving the centrality-style
  workloads the paper's introduction motivates.
"""

import random
import time

from repro.core.dynamic import DynamicHopDoublingIndex
from repro.core.flatstore import FlatLabelStore
from repro.core.knn import InvertedLabelIndex
from repro.core.verify import verify_index
from repro.graphs import glp_graph
from repro.graphs.traversal import bfs_distances


def main() -> None:
    rng = random.Random(99)
    graph = glp_graph(1_200, m=1.8, seed=31)
    print(f"base graph: {graph}")

    # --- incremental insertion --------------------------------------
    dyn = DynamicHopDoublingIndex(graph)
    s, t = 3, 1_100
    print(f"dist({s}, {t}) before updates: {dyn.query(s, t):g}")

    # A serving store built from the same labels follows the updates
    # through label deltas — no rebuild, no full rewrite.
    store = FlatLabelStore.from_index(dyn.snapshot())

    t0 = time.perf_counter()
    batch = [
        (rng.randrange(1_200), rng.randrange(1_200)) for _ in range(30)
    ]
    inserted = dyn.insert_edges(batch)
    per_insert = (time.perf_counter() - t0) / max(inserted, 1)
    print(
        f"inserted {inserted} random edges in one batch "
        f"({per_insert * 1e3:.1f} ms/insert incl. repair, "
        f"{dyn.engine} engine); dist({s}, {t}) now: {dyn.query(s, t):g}"
    )

    delta = dyn.pop_label_delta()
    store.apply_updates(delta)
    assert store.query(s, t) == dyn.query(s, t)
    print(
        f"label delta: {len(delta.vertices())} vertex labels replaced; "
        "serving store answers match after apply_updates"
    )

    # Spot-verify against BFS on the grown graph.
    truth = bfs_distances(dyn.graph, s)
    assert all(
        dyn.query(s, x) == truth[x] for x in range(0, 1_200, 7)
    )
    print("verified sampled queries against BFS on the grown graph")

    # Periodic compaction restores the canonical index size.
    before = dyn.snapshot().total_entries()
    removed = dyn.compact()
    print(f"compaction removed {removed} dominated entries "
          f"({before} -> {before - removed})")

    # --- k-NN / one-to-all from the labels ------------------------------
    snapshot = dyn.snapshot()
    report = verify_index(dyn.graph, snapshot, samples=500)
    print(f"verifier: {report}")

    inv = InvertedLabelIndex(snapshot)
    hub = max(range(1_200), key=lambda v: dyn.graph.degree(v))
    nn = inv.nearest(hub, 5)
    print(f"\n5 nearest to hub {hub}: {[(v, int(d)) for d, v in nn]}")

    t0 = time.perf_counter()
    dist = inv.distances_from(hub)
    label_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    bfs = bfs_distances(dyn.graph, hub)
    bfs_time = time.perf_counter() - t0
    assert dist == bfs
    print(
        f"one-to-all from labels: {label_time * 1e3:.1f} ms "
        f"(BFS: {bfs_time * 1e3:.1f} ms) — identical results"
    )


if __name__ == "__main__":
    main()
