"""Tests for the synthetic graph generators."""

import pytest

from repro.graphs.generators import (
    ba_graph,
    complete_graph,
    configuration_model_graph,
    cycle_graph,
    er_graph,
    glp_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graphs.stats import rank_exponent
from repro.graphs.transform import weakly_connected_components


class TestGLP:
    def test_deterministic(self):
        a = glp_graph(200, seed=5)
        b = glp_graph(200, seed=5)
        assert a == b

    def test_seed_changes_graph(self):
        assert glp_graph(200, seed=1) != glp_graph(200, seed=2)

    def test_vertex_count(self):
        assert glp_graph(337, seed=0).num_vertices == 337

    def test_connected(self):
        g = glp_graph(300, seed=3)
        assert len(weakly_connected_components(g)) == 1

    def test_power_law_exponent_in_range(self):
        # Faloutsos rank exponent for scale-free graphs: about -1 .. -0.6.
        g = glp_graph(1500, m=1.5, seed=7)
        gamma = rank_exponent(g)
        assert -1.3 < gamma < -0.4

    def test_density_scales_with_m(self):
        sparse = glp_graph(500, m=1.0, seed=1)
        dense = glp_graph(500, m=4.0, seed=1)
        assert dense.num_edges > 2 * sparse.num_edges

    def test_directed_variant(self):
        g = glp_graph(200, seed=4, directed=True)
        assert g.directed
        assert g.num_edges > 0

    def test_tiny_graph(self):
        g = glp_graph(3, seed=0)
        assert g.num_vertices == 3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            glp_graph(0)
        with pytest.raises(ValueError):
            glp_graph(10, m=-1)
        with pytest.raises(ValueError):
            glp_graph(10, m0=1)
        with pytest.raises(ValueError):
            glp_graph(10, p=1.5)


class TestBA:
    def test_deterministic(self):
        assert ba_graph(150, seed=2) == ba_graph(150, seed=2)

    def test_min_degree_m(self):
        g = ba_graph(200, m=3, seed=1)
        # Every non-seed vertex attaches with m edges.
        assert all(g.degree(v) >= 3 for v in range(4, 200))

    def test_hub_emerges(self):
        g = ba_graph(500, m=2, seed=0)
        degrees = sorted((g.degree(v) for v in g.vertices()), reverse=True)
        assert degrees[0] > 5 * degrees[len(degrees) // 2]


class TestConfigurationModel:
    def test_deterministic(self):
        a = configuration_model_graph(300, seed=1)
        b = configuration_model_graph(300, seed=1)
        assert a == b

    def test_exponent_validation(self):
        with pytest.raises(ValueError):
            configuration_model_graph(10, exponent=0.5)

    def test_simple_graph(self):
        g = configuration_model_graph(200, seed=3)
        # No self loops (dropped), no parallel edges (set semantics).
        for u, v, _ in g.edges():
            assert u != v


class TestER:
    def test_edge_count(self):
        g = er_graph(100, 250, seed=0)
        assert g.num_edges == 250

    def test_saturation_capped(self):
        g = er_graph(4, 100, seed=0)
        assert g.num_edges == 6  # complete K4

    def test_directed(self):
        g = er_graph(10, 30, seed=1, directed=True)
        assert g.directed
        assert g.num_edges == 30


class TestDeterministicFamilies:
    def test_star_shape(self):
        g = star_graph(5)
        assert g.num_vertices == 6
        assert g.degree(0) == 5
        assert all(g.degree(v) == 1 for v in range(1, 6))

    def test_path_diameter(self):
        g = path_graph(10)
        assert g.num_edges == 9

    def test_cycle(self):
        g = cycle_graph(6)
        assert g.num_edges == 6
        assert all(g.degree(v) == 2 for v in g.vertices())

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_complete(self):
        g = complete_graph(5)
        assert g.num_edges == 10

    def test_complete_directed(self):
        g = complete_graph(4, directed=True)
        assert g.num_edges == 12
