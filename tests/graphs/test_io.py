"""Round-trip tests for graph I/O."""

import pytest

from repro.graphs.digraph import Graph
from repro.graphs.io import (
    read_binary,
    read_edge_list,
    write_binary,
    write_edge_list,
)
from tests.conftest import random_graph


class TestEdgeList:
    def test_round_trip_directed(self, tmp_path):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (3, 0)], directed=True)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        loaded = read_edge_list(path, directed=True)
        assert loaded == g

    def test_round_trip_weighted(self, tmp_path):
        g = Graph.from_edges(
            3, [(0, 1, 2.5), (1, 2, 0.5)], directed=False, weighted=True
        )
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        loaded = read_edge_list(path, directed=False, weighted=True)
        assert loaded == g

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n% konect style\n0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_string_labels_renumbered(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("alice bob\nbob carol\n")
        g = read_edge_list(path, directed=False)
        assert g.num_vertices == 3

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\njustone\n")
        with pytest.raises(ValueError, match=":2"):
            read_edge_list(path)

    def test_weighted_needs_weight_column(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        with pytest.raises(ValueError, match="weight"):
            read_edge_list(path, weighted=True)

    def test_gzip_round_trip(self, tmp_path):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        path = tmp_path / "g.txt.gz"
        write_edge_list(g, path)
        assert read_edge_list(path) == g


class TestBinary:
    @pytest.mark.parametrize("seed", range(6))
    def test_round_trip_random(self, tmp_path, seed):
        g = random_graph(seed)
        path = tmp_path / "g.bin"
        write_binary(g, path)
        assert read_binary(path) == g

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"NOPE" + b"\x00" * 20)
        with pytest.raises(ValueError, match="magic"):
            read_binary(path)

    def test_empty_graph(self, tmp_path):
        g = Graph.from_edges(0, [])
        path = tmp_path / "empty.bin"
        write_binary(g, path)
        loaded = read_binary(path)
        assert loaded.num_vertices == 0
