"""Tests for graph transformations."""

import pytest

from repro.graphs.digraph import Graph
from repro.graphs.transform import (
    induced_subgraph,
    largest_connected_component,
    permute_vertices,
    random_permutation,
    reverse_graph,
    to_undirected,
    weakly_connected_components,
)
from tests.conftest import random_graph


class TestToUndirected:
    def test_forgets_direction(self):
        g = Graph.from_edges(3, [(0, 1), (1, 0), (1, 2)], directed=True)
        u = to_undirected(g)
        assert not u.directed
        assert u.num_edges == 2  # antiparallel pair collapses

    def test_identity_on_undirected(self):
        g = Graph.from_edges(3, [(0, 1)], directed=False)
        assert to_undirected(g) is g

    def test_weighted_keeps_min(self):
        g = Graph.from_edges(
            2, [(0, 1, 5.0), (1, 0, 2.0)], directed=True, weighted=True
        )
        u = to_undirected(g)
        assert u.edge_weight(0, 1) == 2.0


class TestReverse:
    def test_arcs_flip(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)], directed=True)
        r = reverse_graph(g)
        assert r.has_edge(1, 0)
        assert r.has_edge(2, 1)
        assert not r.has_edge(0, 1)

    def test_double_reverse_identity(self):
        g = random_graph(3, directed=True, weighted=False)
        assert reverse_graph(reverse_graph(g)) == g

    def test_undirected_unchanged(self):
        g = Graph.from_edges(2, [(0, 1)], directed=False)
        assert reverse_graph(g) is g


class TestPermutation:
    def test_permute_relabels(self):
        g = Graph.from_edges(3, [(0, 1)], directed=True)
        p = permute_vertices(g, [2, 0, 1])
        assert p.has_edge(2, 0)

    def test_invalid_permutation(self):
        g = Graph.from_edges(2, [(0, 1)])
        with pytest.raises(ValueError):
            permute_vertices(g, [0, 0])

    def test_random_permutation_is_bijection(self):
        perm = random_permutation(20, seed=3)
        assert sorted(perm) == list(range(20))

    def test_degree_multiset_invariant(self):
        g = random_graph(5, weighted=False)
        perm = random_permutation(g.num_vertices, seed=9)
        p = permute_vertices(g, perm)
        assert sorted(g.degree(v) for v in g.vertices()) == sorted(
            p.degree(v) for v in p.vertices()
        )


class TestComponents:
    def test_components_found(self):
        g = Graph.from_edges(5, [(0, 1), (2, 3)], directed=False)
        comps = weakly_connected_components(g)
        assert sorted(len(c) for c in comps) == [1, 2, 2]

    def test_directed_weak_connectivity(self):
        g = Graph.from_edges(3, [(0, 1), (2, 1)], directed=True)
        comps = weakly_connected_components(g)
        assert len(comps) == 1

    def test_lcc_extraction(self):
        g = Graph.from_edges(6, [(0, 1), (1, 2), (4, 5)], directed=False)
        lcc = largest_connected_component(g)
        assert lcc.num_vertices == 3
        assert lcc.num_edges == 2

    def test_lcc_preserves_weights(self):
        g = Graph.from_edges(
            4, [(0, 1, 3.0), (2, 3, 1.0), (1, 0, 9.0)], directed=True,
            weighted=True,
        )
        lcc = largest_connected_component(g)
        assert lcc.num_vertices == 2
        assert lcc.weighted


class TestInducedSubgraph:
    def test_induced(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)], directed=False)
        sub = induced_subgraph(g, [1, 2])
        assert sub.num_vertices == 2
        assert sub.num_edges == 1

    def test_duplicate_vertices_rejected(self):
        g = Graph.from_edges(2, [(0, 1)])
        with pytest.raises(ValueError):
            induced_subgraph(g, [0, 0])
