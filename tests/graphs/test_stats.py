"""Tests for scale-free statistics (Section 2's measurable quantities)."""

import math

from repro.graphs.digraph import Graph
from repro.graphs.generators import glp_graph, grid_graph, path_graph, star_graph
from repro.graphs.stats import (
    degree_histogram,
    degree_sequence,
    expansion_factor,
    hop_diameter,
    predicted_diameter,
    predicted_expansion,
    rank_exponent,
    summarize,
)


class TestDegreeStats:
    def test_histogram_star(self):
        g = star_graph(4)
        hist = degree_histogram(g)
        assert hist == {4: 1, 1: 4}

    def test_sequence_sorted_descending(self):
        g = star_graph(3)
        assert degree_sequence(g) == [3, 1, 1, 1]

    def test_rank_exponent_scale_free(self):
        g = glp_graph(1000, seed=1)
        assert rank_exponent(g) < -0.5

    def test_rank_exponent_regular_graph_flat(self):
        g = grid_graph(15, 15)
        # Grid degrees are nearly constant: exponent close to zero.
        assert rank_exponent(g) > -0.2

    def test_rank_exponent_trivial(self):
        assert rank_exponent(Graph.from_edges(1, [])) == 0.0


class TestExpansion:
    def test_star_expansion_zero(self):
        # From the center everything is 1 hop; from leaves z2 covers the
        # other leaves -> nonzero; just check it computes and is finite.
        g = star_graph(5)
        r = expansion_factor(g)
        assert 0 <= r < 10

    def test_scale_free_expansion_near_log_n(self):
        g = glp_graph(2000, m=2.0, seed=3)
        r = expansion_factor(g, num_samples=128)
        predicted = predicted_expansion(2000)  # ~7.6
        assert 0.3 * predicted < r < 6 * predicted

    def test_empty_graph(self):
        assert expansion_factor(Graph.from_edges(0, [])) == 0.0


class TestHopDiameter:
    def test_path_graph_exact(self):
        assert hop_diameter(path_graph(17)) == 16

    def test_disconnected_ignores_inf(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)], directed=False)
        assert hop_diameter(g) == 1

    def test_sampled_mode_lower_bounds(self):
        g = path_graph(100)
        est = hop_diameter(g, exact_threshold=10, num_samples=8, seed=1)
        assert 50 <= est <= 99  # double sweep gets close on a path

    def test_scale_free_diameter_small(self):
        g = glp_graph(1000, seed=2)
        d = hop_diameter(g)
        # Equation 1 predicts log n / log log n ~ 3.6; allow slack.
        assert d <= 4 * predicted_diameter(1000)


class TestPredictions:
    def test_predicted_diameter_growth(self):
        assert predicted_diameter(10**6) > predicted_diameter(10**3)

    def test_predicted_diameter_tiny(self):
        assert predicted_diameter(2) == 1.0

    def test_predicted_expansion_is_log(self):
        assert abs(predicted_expansion(1000) - math.log(1000)) < 1e-9


class TestSummary:
    def test_summary_fields(self):
        g = glp_graph(300, seed=0)
        s = summarize(g)
        assert s.num_vertices == 300
        assert s.num_edges == g.num_edges
        assert s.max_degree == max(g.degree(v) for v in g.vertices())
        assert not s.directed
        assert not s.weighted
        assert s.size_bytes == g.size_in_bytes()

    def test_summary_row_renders(self):
        s = summarize(glp_graph(100, seed=0))
        row = s.as_row()
        assert len(row) == 5
        assert all(isinstance(cell, str) for cell in row)
