"""Unit tests for GraphBuilder."""

import pytest

from repro.graphs.builder import GraphBuilder


class TestMappingMode:
    def test_string_labels_interned_in_order(self):
        b = GraphBuilder(directed=False)
        b.add_edge("alice", "bob")
        b.add_edge("bob", "carol")
        g = b.build()
        assert g.num_vertices == 3
        assert b.labels == ["alice", "bob", "carol"]
        assert b.vertex_ids == {"alice": 0, "bob": 1, "carol": 2}

    def test_isolated_vertex_via_add_vertex(self):
        b = GraphBuilder()
        b.add_vertex("lonely")
        b.add_edge("a", "b")
        g = b.build()
        assert g.num_vertices == 3
        assert g.degree(0) == 0

    def test_mixed_hashable_labels(self):
        b = GraphBuilder()
        b.add_edge((1, 2), "x")
        g = b.build()
        assert g.num_vertices == 2


class TestDenseMode:
    def test_dense_ids(self):
        b = GraphBuilder(num_vertices=4, directed=True)
        b.add_edge(0, 3)
        g = b.build()
        assert g.num_vertices == 4
        assert g.has_edge(0, 3)

    def test_dense_rejects_out_of_range(self):
        b = GraphBuilder(num_vertices=2)
        with pytest.raises(ValueError):
            b.add_edge(0, 5)

    def test_dense_rejects_non_int(self):
        b = GraphBuilder(num_vertices=2)
        with pytest.raises(TypeError):
            b.add_edge("a", 0)


class TestWeighted:
    def test_weights_carried(self):
        b = GraphBuilder(weighted=True)
        b.add_edge("a", "b", 2.5)
        g = b.build()
        assert g.edge_weight(0, 1) == 2.5

    def test_nonpositive_weight_rejected(self):
        b = GraphBuilder(weighted=True)
        with pytest.raises(ValueError):
            b.add_edge("a", "b", 0.0)


class TestLifecycle:
    def test_add_edges_bulk(self):
        b = GraphBuilder(num_vertices=4)
        b.add_edges([(0, 1), (1, 2), (2, 3)])
        assert len(b) == 3
        assert b.build().num_edges == 3

    def test_add_edges_with_weights(self):
        b = GraphBuilder(num_vertices=3, weighted=True)
        b.add_edges([(0, 1, 2.0), (1, 2, 3.0)])
        g = b.build()
        assert g.edge_weight(1, 2) == 3.0

    def test_build_twice_fails(self):
        b = GraphBuilder(num_vertices=1)
        b.build()
        with pytest.raises(RuntimeError):
            b.build()

    def test_add_after_build_fails(self):
        b = GraphBuilder(num_vertices=2)
        b.build()
        with pytest.raises(RuntimeError):
            b.add_edge(0, 1)
