"""Unit tests for the Graph container."""

import pytest

from repro.graphs.digraph import Graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph.from_edges(0, [])
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_single_directed_edge(self):
        g = Graph.from_edges(2, [(0, 1)], directed=True)
        assert g.num_edges == 1
        assert list(g.out_neighbors(0)) == [1]
        assert list(g.out_neighbors(1)) == []
        assert list(g.in_neighbors(1)) == [0]
        assert list(g.in_neighbors(0)) == []

    def test_single_undirected_edge(self):
        g = Graph.from_edges(2, [(0, 1)], directed=False)
        assert g.num_edges == 1
        assert list(g.out_neighbors(0)) == [1]
        assert list(g.out_neighbors(1)) == [0]
        assert list(g.in_neighbors(0)) == [1]

    def test_duplicate_edges_collapsed(self):
        g = Graph.from_edges(3, [(0, 1), (0, 1), (1, 0)], directed=True)
        assert g.num_edges == 2  # (0,1) deduped; (1,0) is distinct

    def test_duplicate_undirected_edges_collapse_both_orders(self):
        g = Graph.from_edges(3, [(0, 1), (1, 0), (0, 1)], directed=False)
        assert g.num_edges == 1

    def test_self_loops_dropped_by_default(self):
        g = Graph.from_edges(2, [(0, 0), (0, 1)])
        assert g.num_edges == 1

    def test_self_loops_kept_on_request(self):
        g = Graph.from_edges(2, [(0, 0), (0, 1)], allow_self_loops=True)
        assert g.num_edges == 2

    def test_weighted_parallel_edges_keep_min(self):
        g = Graph.from_edges(
            2, [(0, 1, 5.0), (0, 1, 2.0), (0, 1, 9.0)], weighted=True
        )
        assert g.edge_weight(0, 1) == 2.0

    def test_out_of_range_vertex_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph.from_edges(2, [(0, 2)])

    def test_negative_vertex_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph.from_edges(2, [(-1, 0)])

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            Graph.from_edges(2, [(0, 1, 0.0)], weighted=True)

    def test_weighted_requires_weight_component(self):
        with pytest.raises(ValueError, match="requires"):
            Graph.from_edges(2, [(0, 1)], weighted=True)

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges(-1, [])


class TestAccessors:
    def test_degrees_directed(self):
        g = Graph.from_edges(3, [(0, 1), (0, 2), (1, 2)], directed=True)
        assert g.out_degree(0) == 2
        assert g.in_degree(0) == 0
        assert g.degree(0) == 2
        assert g.degree(2) == 2  # in-degree 2
        assert g.degree(1) == 2  # 1 in + 1 out

    def test_degrees_undirected(self):
        g = Graph.from_edges(3, [(0, 1), (0, 2)], directed=False)
        assert g.degree(0) == 2
        assert g.degree(1) == 1

    def test_density(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert g.density == 1.0

    def test_density_empty(self):
        assert Graph.from_edges(0, []).density == 0.0

    def test_edges_iteration_directed(self):
        edges = [(0, 1), (1, 2), (2, 0)]
        g = Graph.from_edges(3, edges, directed=True)
        assert sorted((u, v) for u, v, _ in g.edges()) == sorted(edges)

    def test_edges_iteration_undirected_reports_once(self):
        g = Graph.from_edges(3, [(1, 0), (2, 1)], directed=False)
        listed = sorted((u, v) for u, v, _ in g.edges())
        assert listed == [(0, 1), (1, 2)]

    def test_out_edges_weights(self):
        g = Graph.from_edges(2, [(0, 1, 3.5)], weighted=True)
        assert list(g.out_edges(0)) == [(1, 3.5)]
        assert list(g.in_edges(1)) == [(0, 3.5)]

    def test_unweighted_edges_have_unit_weight(self):
        g = Graph.from_edges(2, [(0, 1)])
        assert list(g.out_edges(0)) == [(1, 1.0)]

    def test_has_edge(self):
        g = Graph.from_edges(3, [(0, 1)], directed=True)
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_edge_weight_missing_raises(self):
        g = Graph.from_edges(2, [(0, 1)])
        with pytest.raises(KeyError):
            g.edge_weight(1, 0)

    def test_len_is_vertex_count(self):
        assert len(Graph.from_edges(7, [])) == 7


class TestSizeAccounting:
    def test_num_arcs_directed(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)], directed=True)
        assert g.num_arcs() == 2

    def test_num_arcs_undirected_doubles(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)], directed=False)
        assert g.num_arcs() == 4

    def test_size_in_bytes_paper_convention(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)], directed=True)
        assert g.size_in_bytes() == 2 * 8 + 3 * 4

    def test_weighted_adds_byte_per_arc(self):
        g = Graph.from_edges(3, [(0, 1, 1.0), (1, 2, 2.0)], weighted=True)
        assert g.size_in_bytes() == 2 * 9 + 3 * 4


class TestEquality:
    def test_equal_graphs(self):
        a = Graph.from_edges(3, [(0, 1), (1, 2)])
        b = Graph.from_edges(3, [(1, 2), (0, 1)])
        assert a == b

    def test_different_edges(self):
        a = Graph.from_edges(3, [(0, 1)])
        b = Graph.from_edges(3, [(0, 2)])
        assert a != b

    def test_directedness_matters(self):
        a = Graph.from_edges(2, [(0, 1)], directed=True)
        b = Graph.from_edges(2, [(0, 1)], directed=False)
        assert a != b

    def test_repr_mentions_shape(self):
        g = Graph.from_edges(2, [(0, 1)])
        assert "|V|=2" in repr(g)
        assert "|E|=1" in repr(g)
