"""Tests for the Section 2.2 hitting-set machinery."""

from repro.graphs.digraph import Graph
from repro.graphs.generators import glp_graph, grid_graph, path_graph, star_graph
from repro.graphs.hitting import (
    h_excluded_neighborhood,
    hub_dimension_estimate,
    max_excluded_neighborhood,
    verify_long_path_hitting,
)


class TestLongPathHitting:
    def test_scale_free_hit_by_few_hubs(self):
        g = glp_graph(600, m=1.5, seed=3)
        report = verify_long_path_hitting(g, d0=4, num_pairs=60)
        assert report.assumption_holds
        if report.long_pairs:
            # Assumption 1: a small top-degree prefix suffices.
            assert report.h_needed <= 64

    def test_star_paths_hit_by_center(self):
        g = star_graph(30)
        # All 2-hop paths go through the hub; d0=2 makes them "long".
        report = verify_long_path_hitting(g, d0=2, num_pairs=40)
        assert report.long_pairs > 0
        assert report.h_needed == 1

    def test_path_graph_fails_assumption(self):
        # A long path has no hubs: paths of length >= 4 cannot all be
        # hit by any fixed small prefix of the (flat) degree order.
        g = path_graph(300)
        report = verify_long_path_hitting(
            g, d0=4, num_pairs=60, max_h=8, seed=1
        )
        assert report.long_pairs > 0
        assert report.h_needed is None

    def test_no_long_pairs(self):
        g = star_graph(5)  # diameter 2 < d0=4
        report = verify_long_path_hitting(g, d0=4, num_pairs=20)
        assert report.long_pairs == 0
        assert report.assumption_holds

    def test_tiny_graph(self):
        report = verify_long_path_hitting(Graph.from_edges(1, []))
        assert report.sampled_pairs == 0


class TestExcludedNeighborhood:
    def test_star_leaf_neighborhood_collapses_to_hub(self):
        g = star_graph(40)
        ne = h_excluded_neighborhood(g, 1, hub_set={0}, d0=3)
        # Every other leaf is reached through the hub, so Ne(leaf) is
        # just {hub}: the leaf's label only needs the hub.
        assert ne == {0}

    def test_without_hubs_neighborhood_is_ball(self):
        g = path_graph(9)
        ne = h_excluded_neighborhood(g, 4, hub_set=set(), d0=2)
        assert ne == {3, 5}  # radius-1 ball, nothing excluded

    def test_hub_exclusion_shrinks_neighborhood(self):
        g = glp_graph(300, m=2.0, seed=5)
        order = sorted(g.vertices(), key=lambda v: -g.degree(v))
        v = order[150]
        without = h_excluded_neighborhood(g, v, set(), d0=3)
        with_hubs = h_excluded_neighborhood(g, v, set(order[:16]), d0=3)
        assert len(with_hubs) <= len(without)

    def test_aggregate_probe(self):
        g = glp_graph(200, seed=2)
        avg, peak = max_excluded_neighborhood(g, num_hubs=8, num_samples=8)
        assert 0 <= avg <= peak <= g.num_vertices


class TestHubDimension:
    def test_star_hub_dimension_one(self):
        g = star_graph(25)
        assert hub_dimension_estimate(g, num_vertices_sampled=6) <= 2

    def test_scale_free_small(self):
        g = glp_graph(300, m=1.5, seed=7)
        assert hub_dimension_estimate(g) <= 10

    def test_grid_larger_than_star(self):
        grid = grid_graph(12, 12)
        star = star_graph(143)
        assert hub_dimension_estimate(grid, seed=3) >= hub_dimension_estimate(
            star, seed=3
        )

    def test_tiny_graph(self):
        assert hub_dimension_estimate(Graph.from_edges(2, [(0, 1)])) == 2


class TestAssumptionsDriver:
    def test_row_structure(self):
        from repro.bench.assumptions import AssumptionsTable, run_one

        g = glp_graph(200, seed=4)
        row = run_one("mini", g)
        assert row.diameter >= 1
        assert row.avg_label > 0
        table = AssumptionsTable([row])
        assert "Assumptions" in table.render()
