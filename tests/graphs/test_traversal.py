"""Traversal correctness: BFS, Dijkstra, bidirectional variants."""

import pytest
from hypothesis import given, settings

from repro.graphs.digraph import Graph
from repro.graphs.generators import glp_graph, path_graph
from repro.graphs.traversal import (
    INF,
    bfs_distances,
    bidirectional_bfs,
    bidirectional_dijkstra,
    dijkstra_distances,
    eccentricity,
    single_pair_distance,
)
from tests.conftest import graph_strategy, random_graph


class TestBFS:
    def test_path_graph_distances(self):
        g = path_graph(5)
        assert bfs_distances(g, 0) == [0, 1, 2, 3, 4]

    def test_unreachable_is_inf(self):
        g = Graph.from_edges(3, [(0, 1)], directed=True)
        dist = bfs_distances(g, 0)
        assert dist[2] == INF

    def test_reverse_direction(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)], directed=True)
        assert bfs_distances(g, 2, reverse=True) == [2, 1, 0]

    def test_max_dist_truncates(self):
        g = path_graph(6)
        dist = bfs_distances(g, 0, max_dist=2)
        assert dist[2] == 2
        assert dist[3] == INF

    def test_invalid_source(self):
        g = path_graph(3)
        with pytest.raises(IndexError):
            bfs_distances(g, 5)


class TestDijkstra:
    def test_weighted_shortcut(self):
        # 0 -> 1 -> 2 costs 2; direct edge costs 5.
        g = Graph.from_edges(
            3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)], weighted=True,
            directed=True,
        )
        assert dijkstra_distances(g, 0) == [0.0, 1.0, 2.0]

    def test_matches_bfs_on_unweighted(self):
        g = random_graph(7, weighted=False)
        for s in range(min(5, g.num_vertices)):
            assert dijkstra_distances(g, s) == bfs_distances(g, s)

    def test_reverse(self):
        g = Graph.from_edges(
            3, [(0, 1, 2.0), (1, 2, 3.0)], weighted=True, directed=True
        )
        assert dijkstra_distances(g, 2, reverse=True) == [5.0, 3.0, 0.0]


class TestBidirectional:
    @settings(max_examples=40, deadline=None)
    @given(graph_strategy(weighted=False))
    def test_bibfs_matches_bfs(self, g):
        dist = bfs_distances(g, 0)
        for t in range(g.num_vertices):
            assert bidirectional_bfs(g, 0, t) == dist[t]

    @settings(max_examples=40, deadline=None)
    @given(graph_strategy(weighted=True))
    def test_bidijkstra_matches_dijkstra(self, g):
        dist = dijkstra_distances(g, 0)
        for t in range(g.num_vertices):
            assert bidirectional_dijkstra(g, 0, t) == dist[t]

    def test_same_vertex(self):
        g = path_graph(4)
        assert bidirectional_bfs(g, 2, 2) == 0.0
        assert bidirectional_dijkstra(g, 2, 2) == 0.0

    def test_disconnected(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)], directed=False)
        assert bidirectional_bfs(g, 0, 3) == INF

    def test_directed_asymmetry(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)], directed=True)
        assert bidirectional_bfs(g, 0, 2) == 2.0
        assert bidirectional_bfs(g, 2, 0) == INF

    def test_single_pair_dispatches_on_weightedness(self):
        gu = path_graph(4)
        gw = Graph.from_edges(4, [(0, 1, 2.0), (1, 2, 2.0)], weighted=True)
        assert single_pair_distance(gu, 0, 3) == 3.0
        assert single_pair_distance(gw, 0, 2) == 4.0


class TestEccentricity:
    def test_path_end(self):
        assert eccentricity(path_graph(5), 0) == 4.0

    def test_scale_free_small(self):
        g = glp_graph(300, seed=2)
        assert 2 <= eccentricity(g, 0) <= 12
