"""Admission-batching edge cases: the satellite contract of ISSUE 7.

Every test drives a real event loop via ``asyncio.run`` — the batcher
is pure asyncio, so no plugin is needed.  The evaluator is a plain
function (occasionally a stalling async one) so the tests control
timing exactly.
"""

import asyncio

import pytest

from repro.serve.batcher import (
    AdmissionBatcher,
    ServeClosedError,
    ServeOverloadedError,
)


def _echo_evaluate(calls):
    """An evaluator that records each batch and answers pair sums."""

    def evaluate(pairs):
        calls.append(list(pairs))
        return [float(s + t) for s, t in pairs]

    return evaluate


def test_single_request_no_artificial_wait():
    # A lone request must dispatch after one cooperative yield, not
    # after max_wait — set an absurd window and require promptness.
    calls = []

    async def main():
        batcher = AdmissionBatcher(
            _echo_evaluate(calls), max_wait=30.0, max_batch_pairs=1024
        )
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        result = await batcher.submit([(1, 2), (3, 4)])
        elapsed = loop.time() - t0
        await batcher.aclose()
        return result, elapsed

    result, elapsed = asyncio.run(main())
    assert result == [3.0, 7.0]
    assert elapsed < 1.0, f"lone request waited {elapsed:.3f}s"
    assert calls == [[(1, 2), (3, 4)]]


def test_concurrent_requests_coalesce_into_one_batch():
    calls = []

    async def main():
        batcher = AdmissionBatcher(_echo_evaluate(calls), max_wait=0.05)
        results = await asyncio.gather(
            *[batcher.submit([(i, i + 1)]) for i in range(32)]
        )
        await batcher.aclose()
        return results

    results = asyncio.run(main())
    assert results == [[float(2 * i + 1)] for i in range(32)]
    # All 32 requests ran while the collector coalesced: one batch.
    assert len(calls) == 1
    assert len(calls[0]) == 32


def test_burst_larger_than_max_batch_splits():
    calls = []

    async def main():
        batcher = AdmissionBatcher(
            _echo_evaluate(calls), max_batch_pairs=8, max_wait=0.05
        )
        results = await asyncio.gather(
            *[batcher.submit([(i, i)]) for i in range(30)]
        )
        await batcher.aclose()
        return results, batcher.stats()

    results, stats = asyncio.run(main())
    assert results == [[float(2 * i)] for i in range(30)]
    # 30 single-pair requests against a dispatch threshold of 8 pairs
    # cannot ride one batch; every batch stays near the threshold
    # (never more than threshold-1 pairs + one whole request).
    assert len(calls) >= 3
    assert all(len(batch) <= 8 for batch in calls)
    assert stats["batches_dispatched"] == len(calls)
    assert stats["pairs_served"] == 30


def test_oversized_single_request_is_never_split():
    calls = []

    async def main():
        batcher = AdmissionBatcher(
            _echo_evaluate(calls), max_batch_pairs=4, max_wait=0.01
        )
        result = await batcher.submit([(i, i) for i in range(10)])
        await batcher.aclose()
        return result

    result = asyncio.run(main())
    assert result == [float(2 * i) for i in range(10)]
    assert len(calls) == 1 and len(calls[0]) == 10


def test_queue_full_rejection():
    async def main():
        blocker = asyncio.Event()

        async def evaluate(pairs):
            await blocker.wait()
            return [0.0] * len(pairs)

        batcher = AdmissionBatcher(
            evaluate, max_batch_pairs=4, max_pending_pairs=8, max_wait=0.001
        )
        # Fill the admission queue to the high-water mark...
        first = [
            asyncio.create_task(batcher.submit([(0, 1)] * 4))
            for _ in range(2)
        ]
        await asyncio.sleep(0.01)
        # ...then the next request must be rejected, not queued.
        with pytest.raises(ServeOverloadedError):
            await batcher.submit([(2, 3)])
        rejected = batcher.stats()["requests_rejected"]
        blocker.set()
        results = await asyncio.gather(*first)
        # Capacity freed: submissions are admitted again.
        ok = await batcher.submit([(4, 5)])
        await batcher.aclose()
        return rejected, results, ok

    rejected, results, ok = asyncio.run(main())
    assert rejected == 1
    assert results == [[0.0] * 4] * 2
    assert ok == [0.0]


def test_shutdown_with_pending_futures():
    async def main():
        started = asyncio.Event()

        async def evaluate(pairs):
            started.set()
            await asyncio.sleep(60)
            return [0.0] * len(pairs)

        batcher = AdmissionBatcher(evaluate, max_wait=0.001)
        inflight = asyncio.create_task(batcher.submit([(0, 1)]))
        await started.wait()
        # This one is still queued behind the stalled batch.
        queued = asyncio.create_task(batcher.submit([(2, 3)]))
        await asyncio.sleep(0.01)
        await batcher.aclose()
        with pytest.raises(ServeClosedError):
            await inflight
        with pytest.raises(ServeClosedError):
            await queued
        # And new submissions fail immediately once closed.
        with pytest.raises(ServeClosedError):
            await batcher.submit([(4, 5)])

    asyncio.run(main())


def test_aclose_is_idempotent():
    async def main():
        batcher = AdmissionBatcher(lambda pairs: [0.0] * len(pairs))
        assert await batcher.submit([(1, 1)]) == [0.0]
        await batcher.aclose()
        await batcher.aclose()

    asyncio.run(main())


def test_empty_request_answers_without_dispatch():
    calls = []

    async def main():
        batcher = AdmissionBatcher(_echo_evaluate(calls))
        result = await batcher.submit([])
        await batcher.aclose()
        return result

    assert asyncio.run(main()) == []
    assert calls == []


def test_evaluator_failure_propagates_to_every_rider():
    async def main():
        def evaluate(pairs):
            raise RuntimeError("kernel exploded")

        batcher = AdmissionBatcher(evaluate, max_wait=0.05)
        results = await asyncio.gather(
            batcher.submit([(0, 1)]),
            batcher.submit([(2, 3)]),
            return_exceptions=True,
        )
        # The batcher survives a failed batch and keeps serving.
        ok = await asyncio.gather(
            batcher.submit([(4, 5)]), return_exceptions=True
        )
        await batcher.aclose()
        return results, ok

    results, ok = asyncio.run(main())
    assert all(isinstance(r, RuntimeError) for r in results)
    assert all(isinstance(r, RuntimeError) for r in ok)


def test_large_batches_go_through_the_thread_executor():
    seen = []

    def evaluate(pairs):
        import threading

        seen.append(threading.current_thread() is threading.main_thread())
        return [0.0] * len(pairs)

    async def main():
        batcher = AdmissionBatcher(
            evaluate, inline_below=4, max_wait=0.001
        )
        await batcher.submit([(0, 0)] * 2)   # inline: on the loop thread
        await batcher.submit([(0, 0)] * 64)  # offloaded to a worker thread
        await batcher.aclose()

    asyncio.run(main())
    assert seen == [True, False]


def test_invalid_configuration_rejected():
    evaluate = lambda pairs: []  # noqa: E731
    with pytest.raises(ValueError, match="max_batch_pairs"):
        AdmissionBatcher(evaluate, max_batch_pairs=0)
    with pytest.raises(ValueError, match="max_wait"):
        AdmissionBatcher(evaluate, max_wait=-1.0)
    with pytest.raises(ValueError, match="max_pending_pairs"):
        AdmissionBatcher(evaluate, max_batch_pairs=64, max_pending_pairs=32)
