"""DistanceServer protocol tests: queries, errors, backpressure, stats."""

import asyncio
import json
import math

import pytest

from repro.baselines.pll import build_pll
from repro.bench.workloads import random_pairs
from repro.core.flatstore import FlatLabelStore
from repro.graphs.generators import ba_graph
from repro.oracle import DistanceOracle
from repro.serve import DistanceClient, DistanceServer, ServerError


@pytest.fixture(scope="module")
def flat():
    graph = ba_graph(300, m=2, seed=37)
    index, _ = build_pll(graph)
    return FlatLabelStore.from_index(index)


def _serve(flat, coro, **server_kwargs):
    """Run ``coro(server, host, port)`` against a live server."""

    async def main():
        oracle = DistanceOracle(flat, cache_size=0)
        server = DistanceServer(oracle, **server_kwargs)
        host, port = await server.start()
        try:
            return await coro(server, host, port)
        finally:
            await server.aclose()
            oracle.close()

    return asyncio.run(main())


def test_concurrent_clients_bit_identical(flat):
    pairs = random_pairs(flat.n, 320, seed=41)
    want = [flat.query(s, t) for s, t in pairs]

    async def scenario(server, host, port):
        clients = [
            await DistanceClient.connect(host, port) for _ in range(16)
        ]
        try:
            return await asyncio.gather(
                *[
                    client.query(pairs[i * 20 : (i + 1) * 20])
                    for i, client in enumerate(clients)
                ]
            )
        finally:
            for client in clients:
                await client.aclose()

    results = _serve(flat, scenario, max_wait=0.005)
    merged = [d for chunk in results for d in chunk]
    assert merged == want


def test_unreachable_encodes_null_decodes_inf(flat):
    async def scenario(server, host, port):
        client = await DistanceClient.connect(host, port)
        try:
            raw = await client.request({"pairs": [[0, 0]]})
            via_helper = await client.query([(0, 0)])
            return raw, via_helper
        finally:
            await client.aclose()

    raw, via_helper = _serve(flat, scenario)
    assert raw["distances"] == [0.0]
    assert via_helper == [0.0]
    # Manufacture an unreachable reading through the JSON layer: the
    # decoder maps null back to inf.
    assert math.isinf(
        [math.inf if d is None else d for d in [None]][0]
    )


def test_malformed_requests_get_400_not_disconnect(flat):
    async def scenario(server, host, port):
        reader, writer = await asyncio.open_connection(host, port)
        replies = []
        for raw in [
            b"this is not json\n",
            b"[1, 2, 3]\n",
            json.dumps({"op": "teleport"}).encode() + b"\n",
            json.dumps({"pairs": "nope"}).encode() + b"\n",
            json.dumps({"pairs": [[0, 1, 2]]}).encode() + b"\n",
            json.dumps({"pairs": [[0, True]]}).encode() + b"\n",
            json.dumps({"pairs": [[0, 99999]]}).encode() + b"\n",
        ]:
            writer.write(raw)
            await writer.drain()
            replies.append(json.loads(await reader.readline()))
        # The connection survived every bad request:
        writer.write(json.dumps({"pairs": [[0, 1]]}).encode() + b"\n")
        await writer.drain()
        replies.append(json.loads(await reader.readline()))
        writer.close()
        await writer.wait_closed()
        return replies

    replies = _serve(flat, scenario)
    bad, good = replies[:-1], replies[-1]
    assert all(r["ok"] is False and r["code"] == 400 for r in bad)
    assert good["ok"] is True


def test_request_id_echoed(flat):
    async def scenario(server, host, port):
        client = await DistanceClient.connect(host, port)
        try:
            ok = await client.request({"pairs": [[0, 1]], "id": "abc"})
            err = await client.request({"pairs": "bad", "id": 7})
            pong = await client.request({"op": "ping", "id": 1})
            return ok, err, pong
        finally:
            await client.aclose()

    ok, err, pong = _serve(flat, scenario)
    assert ok["id"] == "abc"
    assert err["id"] == 7 and err["code"] == 400
    assert pong == {"ok": True, "id": 1}


def test_backpressure_maps_to_429(flat):
    async def scenario(server, host, port):
        # Stall the evaluator so admitted pairs stay pending.
        blocker = asyncio.Event()

        async def stalling(pairs):
            await blocker.wait()
            return [0.0] * len(pairs)

        server.batcher._evaluate = stalling
        server.batcher._is_async = True
        filler = await DistanceClient.connect(host, port)
        probe = await DistanceClient.connect(host, port)
        try:
            fill = asyncio.create_task(
                filler.request({"pairs": [[0, 1]] * 8})
            )
            await asyncio.sleep(0.05)
            with pytest.raises(ServerError) as info:
                await probe.query([(0, 1)])
            blocker.set()
            filled = await fill
            return info.value.code, filled
        finally:
            await filler.aclose()
            await probe.aclose()

    code, filled = _serve(
        flat, scenario, max_batch_pairs=8, max_pending_pairs=8,
        max_wait=0.001,
    )
    assert code == 429
    assert filled["ok"] is True


def test_stats_op_reports_batcher_counters(flat):
    async def scenario(server, host, port):
        client = await DistanceClient.connect(host, port)
        try:
            await client.query([(0, 1), (1, 2)])
            return await client.stats()
        finally:
            await client.aclose()

    stats = _serve(flat, scenario)
    assert stats["n"] == flat.n
    assert stats["batcher"]["pairs_served"] == 2
    assert stats["batcher"]["batches_dispatched"] >= 1


def test_server_requires_start_before_serve(flat):
    async def main():
        oracle = DistanceOracle(flat, cache_size=0)
        server = DistanceServer(oracle)
        with pytest.raises(RuntimeError, match="not started"):
            await server.serve_forever()
        await server.aclose()
        oracle.close()

    asyncio.run(main())


def test_aclose_rejects_new_connections(flat):
    async def scenario(server, host, port):
        await server.aclose()
        with pytest.raises((ConnectionError, OSError)):
            await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout=2
            )

    _serve(flat, scenario)
