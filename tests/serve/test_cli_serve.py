"""`repro serve` CLI: parser surface, error paths, and a live round trip."""

import asyncio
import json
import os
import subprocess
import sys

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def index_file(tmp_path):
    graph = tmp_path / "g.txt"
    index = tmp_path / "g.idx"
    assert main(["generate", "ba", "-n", "300", "--density", "2",
                 "-o", str(graph)]) == 0
    assert main(["build", str(graph), "-o", str(index),
                 "--format", "v2"]) == 0
    return index


def test_parser_defaults():
    args = build_parser().parse_args(["serve", "g.idx"])
    assert args.host == "127.0.0.1"
    assert args.port == 0
    assert args.workers is None
    assert args.max_batch == 8192
    assert args.max_wait_ms == 2.0
    assert args.max_pending == 262144
    assert args.kernel == "auto"


def test_serve_missing_index(tmp_path, capsys):
    rc = main(["serve", str(tmp_path / "nope.idx")])
    assert rc == 2
    assert "error:" in capsys.readouterr().err


def test_serve_rejects_bad_workers(index_file, capsys):
    rc = main(["serve", str(index_file), "--workers", "0"])
    assert rc == 2
    assert "--workers" in capsys.readouterr().err


def test_serve_round_trip(index_file):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(index_file),
         "--workers", "1", "--max-wait-ms", "1"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        ready = proc.stdout.readline().strip()
        assert "serving" in ready, ready
        port = int(ready.split(" on ", 1)[1].split(" ", 1)[0].split(":")[1])

        async def round_trip():
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(
                json.dumps({"pairs": [[3, 3], [0, 1]], "id": 9}).encode()
                + b"\n"
            )
            await writer.drain()
            reply = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            return reply

        reply = asyncio.run(asyncio.wait_for(round_trip(), timeout=10))
        assert reply["ok"] is True
        assert reply["id"] == 9
        assert reply["distances"][0] == 0.0
    finally:
        proc.terminate()
        proc.wait(timeout=10)
