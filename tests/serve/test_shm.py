"""Shared-memory fan-out: bit-identity, routing, and the rebalance hook."""

import pytest

np = pytest.importorskip("numpy")

from repro.baselines.pll import build_pll  # noqa: E402
from repro.bench.workloads import random_pairs  # noqa: E402
from repro.core.flatstore import FlatLabelStore  # noqa: E402
from repro.core.quantized import QuantizedLabelStore  # noqa: E402
from repro.graphs.generators import ba_graph  # noqa: E402
from repro.oracle import ShardedLabelStore  # noqa: E402
from repro.oracle.sharding import load_balanced_ranges  # noqa: E402
from repro.serve import shm  # noqa: E402
from repro.serve.shm import (  # noqa: E402
    FanoutUnavailableError,
    SharedMemoryFanout,
)

pytestmark = pytest.mark.skipif(
    not shm.available(), reason="needs numpy and the fork start method"
)


@pytest.fixture(scope="module")
def flat():
    graph = ba_graph(500, m=2, seed=29)
    index, _ = build_pll(graph)
    return FlatLabelStore.from_index(index)


@pytest.fixture(scope="module")
def expected(flat):
    pairs = random_pairs(flat.n, 800, seed=31)
    return pairs, [flat.query(s, t) for s, t in pairs]


@pytest.mark.parametrize("num_shards", [1, 3])
def test_sharded_bit_identity(flat, expected, num_shards):
    pairs, want = expected
    store = ShardedLabelStore.split(flat, num_shards)
    with SharedMemoryFanout(store, workers=2) as fanout:
        assert fanout.query_batch(pairs) == want


def test_flat_store_bit_identity(flat, expected):
    pairs, want = expected
    with SharedMemoryFanout(flat, workers=2) as fanout:
        assert fanout.query_batch(pairs) == want


def test_quantized_store_bit_identity(flat, expected):
    pairs, want = expected
    store = QuantizedLabelStore.from_flat(flat)
    with SharedMemoryFanout(store, workers=2) as fanout:
        assert fanout.query_batch(pairs) == want


def test_duplicates_self_pairs_and_order(flat):
    pairs = [(5, 300), (300, 5), (5, 300), (7, 7), (499, 0), (5, 300)]
    want = [flat.query(s, t) for s, t in pairs]
    store = ShardedLabelStore.split(flat, 3)
    with SharedMemoryFanout(store, workers=3) as fanout:
        assert fanout.query_batch(pairs) == want


def test_buffer_growth_preserves_answers(flat, expected):
    pairs, want = expected
    with SharedMemoryFanout(flat, workers=2, capacity=16) as fanout:
        assert fanout.query_batch(pairs) == want
        assert fanout.stats()["capacity"] >= len(pairs)
        # And the regrown buffers still serve.
        assert fanout.query_batch(pairs[:50]) == want[:50]


def test_hit_counts_accumulate_per_source_shard(flat):
    store = ShardedLabelStore.split(flat, 2)
    mid = store.ranges[0][1]
    with SharedMemoryFanout(store, workers=2) as fanout:
        fanout.query_batch([(0, 5)] * 7)        # sources in shard 0
        fanout.query_batch([(mid, 5)] * 3)      # sources in shard 1
        assert fanout.shard_hits.tolist() == [7, 3]
        stats = fanout.stats()
        assert stats["pairs_served"] == 10
        assert stats["batches_served"] == 2


def test_rebalance_shrinks_hot_range(flat, expected):
    pairs, want = expected
    store = ShardedLabelStore.split(flat, 3)
    with SharedMemoryFanout(store, workers=2) as fanout:
        # Hammer shard 0 so its range carries most of the load.
        fanout.query_batch([(1, 400)] * 900)
        fanout.query_batch(pairs)
        old_width = store.ranges[0][1] - store.ranges[0][0]
        new_store = fanout.rebalance()
        assert new_store.ranges[0][1] - new_store.ranges[0][0] < old_width
        assert fanout.shard_hits.tolist() == [0, 0, 0]
        # Answers are unchanged across the re-split.
        assert fanout.query_batch(pairs) == want
        new_store.close()


def test_rebalance_requires_sharded_store(flat):
    with SharedMemoryFanout(flat, workers=1) as fanout:
        with pytest.raises(FanoutUnavailableError, match="Sharded"):
            fanout.rebalance_ranges()


def test_out_of_range_raises_before_dispatch(flat):
    with SharedMemoryFanout(flat, workers=2) as fanout:
        with pytest.raises(IndexError):
            fanout.query_batch([(0, 1), (0, 10_000)])
        assert fanout.stats()["pairs_served"] == 0


def test_pending_updates_refused(flat):
    from repro.core.labels import LabelDelta

    store = ShardedLabelStore.split(flat, 2)
    delta = LabelDelta.empty(store.n, store.directed)
    delta.out[3] = list(store.out_label(3))
    store.apply_updates(delta)
    with pytest.raises(FanoutUnavailableError, match="staged updates"):
        SharedMemoryFanout(store, workers=1)


def test_close_is_idempotent(flat):
    fanout = SharedMemoryFanout(flat, workers=1)
    fanout.query_batch([(0, 1)])
    fanout.close()
    fanout.close()


def test_empty_batch(flat):
    with SharedMemoryFanout(flat, workers=1) as fanout:
        assert fanout.query_batch([]) == []


def test_invalid_configuration_rejected(flat):
    with pytest.raises(ValueError, match="workers"):
        SharedMemoryFanout(flat, workers=0)
    with pytest.raises(ValueError, match="capacity"):
        SharedMemoryFanout(flat, capacity=0)


def test_warmup_then_serve(flat, expected):
    pairs, want = expected
    with SharedMemoryFanout(flat, workers=2) as fanout:
        fanout.warmup()
        assert fanout.query_batch(pairs) == want


def test_load_balanced_ranges_properties():
    ranges = [(0, 100), (100, 200), (200, 300)]
    # All load on the first range: it shrinks, cold ranges coalesce.
    out = load_balanced_ranges(ranges, [300, 0, 0], 3)
    assert out[0] == (0, 34) or out[0][1] < 100
    assert out[-1][1] == 300
    assert all(hi > lo for lo, hi in out)
    # Zero load degrades to the equal split.
    assert load_balanced_ranges(ranges, [0, 0, 0], 3) == ranges
    # Uniform load keeps the equal split.
    assert load_balanced_ranges(ranges, [10, 10, 10], 3) == ranges
    # Shard-count changes are allowed.
    assert len(load_balanced_ranges(ranges, [5, 1, 1], 2)) == 2
