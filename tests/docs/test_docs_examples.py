"""The documentation is executable: run its snippets, check its links.

Every fenced ```python block in README.md and docs/*.md is executed,
in file order, in one shared namespace per file (so a later snippet
may build on an earlier one, exactly as a reader works through the
page) with the working directory pointed at a temp dir (snippets may
write index files).  ```console blocks are shell transcripts and are
not executed.

Relative markdown links must point at files that exist, and
same-file ``#anchor`` links must match a heading.  External URLs are
not fetched (CI must not depend on the network).
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda p: p.name,
)

_FENCE = re.compile(r"```python\n(.*?)```", re.S)
# [text](target) — excluding images and in-line code spans.
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.+?)\s*$", re.M)


def _doc_id(path: Path) -> str:
    return str(path.relative_to(REPO_ROOT))


def _python_blocks(path: Path) -> list[tuple[int, str]]:
    """(starting line, source) of every ```python fence in the file."""
    text = path.read_text(encoding="utf-8")
    blocks = []
    for match in _FENCE.finditer(text):
        line = text.count("\n", 0, match.start(1)) + 1
        blocks.append((line, match.group(1)))
    return blocks


def _github_anchor(heading: str) -> str:
    """GitHub's heading -> anchor slug (enough for ASCII docs)."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_id)
def test_python_snippets_execute(doc, tmp_path, monkeypatch):
    blocks = _python_blocks(doc)
    if not blocks:
        pytest.skip(f"{doc.name}: no python snippets")
    monkeypatch.chdir(tmp_path)
    namespace: dict = {}
    for line, source in blocks:
        code = compile(source, f"{_doc_id(doc)}:{line}", "exec")
        exec(code, namespace)  # noqa: S102 - executing our own docs


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_id)
def test_relative_links_resolve(doc):
    text = doc.read_text(encoding="utf-8")
    anchors = {_github_anchor(h) for h in _HEADING.findall(text)}
    problems = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if target[1:] not in anchors:
                problems.append(f"missing anchor {target!r}")
            continue
        path_part, _, fragment = target.partition("#")
        resolved = (doc.parent / path_part).resolve()
        if not resolved.exists():
            problems.append(f"broken link {target!r}")
            continue
        if fragment and resolved.suffix == ".md":
            other = resolved.read_text(encoding="utf-8")
            other_anchors = {
                _github_anchor(h) for h in _HEADING.findall(other)
            }
            if fragment not in other_anchors:
                problems.append(f"missing anchor {target!r}")
    assert not problems, f"{_doc_id(doc)}: " + "; ".join(problems)


def test_every_doc_is_linked_from_readme():
    """docs/*.md files must be discoverable from the README."""
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for doc in (REPO_ROOT / "docs").glob("*.md"):
        assert f"docs/{doc.name}" in readme, (
            f"{doc.name} exists but README.md never links it"
        )
