"""Smoke-run the serving examples so they can't silently rot.

Each example is executed as a real subprocess (the way a reader would
run it), with ``src/`` on ``PYTHONPATH``.  The examples assert their
own invariants internally (BFS cross-checks, bit-identical strategies)
so a zero exit status is a meaningful check, not just an import test.
CI invokes this file separately (``pytest -q -p no:cacheprovider``)
in addition to the tier-1 run.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

_REPO = Path(__file__).resolve().parents[2]

EXAMPLES = [
    "quickstart.py",
    "batch_serving.py",
    "sharded_serving.py",
    "parallel_build.py",
    "async_serving.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, str(_REPO / "examples" / script)],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
        cwd=_REPO,
    )
    assert result.returncode == 0, (
        f"{script} exited {result.returncode}\n"
        f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script} printed nothing"
