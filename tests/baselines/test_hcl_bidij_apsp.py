"""Tests for the HCL-lite, BIDIJ and APSP baselines."""

import pytest
from hypothesis import given, settings

from repro.baselines.apsp import APSPOracle
from repro.baselines.bidij import BidirectionalSearchOracle
from repro.baselines.hcl import build_hcl
from repro.graphs.digraph import Graph
from repro.graphs.generators import glp_graph, path_graph, star_graph
from tests.conftest import graph_strategy


class TestHCLLite:
    @settings(max_examples=30, deadline=None)
    @given(graph_strategy())
    def test_all_pairs_exact(self, g):
        truth = APSPOracle(g)
        hcl = build_hcl(g, num_landmarks=4)
        for s in range(g.num_vertices):
            for t in range(g.num_vertices):
                assert hcl.query(s, t) == truth.query(s, t)

    def test_landmark_endpoints(self):
        g = star_graph(6)
        hcl = build_hcl(g, num_landmarks=1)  # the hub is the landmark
        assert hcl.landmarks == [0]
        assert hcl.query(0, 3) == 1.0
        assert hcl.query(2, 5) == 2.0

    def test_landmark_count_capped_by_n(self):
        g = path_graph(3)
        hcl = build_hcl(g, num_landmarks=50)
        assert len(hcl.landmarks) == 3

    def test_invalid_landmarks(self):
        with pytest.raises(ValueError):
            build_hcl(star_graph(2), num_landmarks=0)

    def test_size_scales_with_landmarks(self):
        g = glp_graph(100, seed=1)
        small = build_hcl(g, num_landmarks=2)
        big = build_hcl(g, num_landmarks=8)
        assert big.size_in_bytes() == 4 * small.size_in_bytes()

    def test_landmark_free_search_needed(self):
        # Two parallel paths, landmarks cover only one of them: the
        # local search must find the landmark-free shortcut.
        # 0-1-2 (via high-degree 1) and 0-3-2 with 3 low degree.
        g = Graph.from_edges(
            5, [(0, 1), (1, 2), (0, 3), (3, 2), (1, 4)], directed=False
        )
        hcl = build_hcl(g, num_landmarks=1)  # landmark = vertex 1
        assert hcl.landmarks == [1]
        assert hcl.query(0, 2) == 2.0  # found via either route
        assert hcl.query(3, 3) == 0.0


class TestBIDIJ:
    @settings(max_examples=25, deadline=None)
    @given(graph_strategy())
    def test_all_pairs_exact(self, g):
        truth = APSPOracle(g)
        oracle = BidirectionalSearchOracle(g)
        for s in range(g.num_vertices):
            for t in range(g.num_vertices):
                assert oracle.query(s, t) == truth.query(s, t)

    def test_no_index_footprint(self):
        oracle = BidirectionalSearchOracle(star_graph(4))
        assert oracle.size_in_bytes() == 0
        assert oracle.build_seconds == 0.0


class TestAPSP:
    def test_star_distances(self):
        oracle = APSPOracle(star_graph(4))
        assert oracle.query(1, 2) == 2.0
        assert oracle.query(0, 3) == 1.0

    def test_hop_diameter(self):
        assert APSPOracle(path_graph(9)).hop_diameter() == 8

    def test_all_pairs_iterator(self):
        oracle = APSPOracle(path_graph(3))
        triples = list(oracle.all_pairs())
        assert len(triples) == 9
        assert (0, 2, 2.0) in triples

    def test_table_size(self):
        oracle = APSPOracle(path_graph(4))
        assert oracle.size_in_bytes() == 4 * 4 * 8

    def test_distances_from_row(self):
        oracle = APSPOracle(path_graph(4))
        assert oracle.distances_from(0) == [0.0, 1.0, 2.0, 3.0]
