"""Tests for the PLL baseline."""

from hypothesis import given, settings

from repro.baselines.apsp import APSPOracle
from repro.baselines.pll import build_pll
from repro.core.ranking import random_ranking
from repro.graphs.generators import glp_graph, path_graph, star_graph
from tests.conftest import graph_strategy


class TestPLLExactness:
    @settings(max_examples=40, deadline=None)
    @given(graph_strategy())
    def test_all_pairs_exact(self, g):
        truth = APSPOracle(g)
        index, _ = build_pll(g)
        for s in range(g.num_vertices):
            for t in range(g.num_vertices):
                assert index.query(s, t) == truth.query(s, t)

    @settings(max_examples=15, deadline=None)
    @given(graph_strategy())
    def test_exact_with_random_ranking(self, g):
        truth = APSPOracle(g)
        index, _ = build_pll(g, ranking=random_ranking(g, seed=3))
        for s in range(g.num_vertices):
            for t in range(g.num_vertices):
                assert index.query(s, t) == truth.query(s, t)


class TestPLLLabels:
    def test_star_labels_canonical(self):
        index, _ = build_pll(star_graph(5))
        # Center first in degree order: leaves get exactly {self, center}.
        for leaf in range(1, 6):
            assert dict(index.label_of(leaf)) == {leaf: 0.0, 0: 1.0}

    def test_pivots_outrank_owners(self):
        g = glp_graph(100, seed=7)
        index, _ = build_pll(g)
        rank = index.rank
        for v in range(g.num_vertices):
            for pivot, _ in index.out_labels[v]:
                assert pivot == v or rank[pivot] < rank[v]

    def test_path_graph_degree_ranking_degenerates(self):
        # Section 7's motivation, seen through PLL: a path has no hubs,
        # so degree ranking (ties by id) produces a near-quadratic
        # canonical cover — the pivot for a pair is just its smaller-id
        # endpoint.
        n = 64
        index, _ = build_pll(path_graph(n))
        assert index.total_entries() > n * n / 4

    def test_scale_free_labels_stay_small(self):
        # ...whereas on a scale-free graph of the same size the cover
        # is tiny (the Section 2 hitting-set story).
        g = glp_graph(64, m=1.5, seed=5)
        index, _ = build_pll(g)
        assert index.total_entries() < 64 * 12

    def test_build_seconds_reported(self):
        _, seconds = build_pll(glp_graph(50, seed=0))
        assert seconds >= 0.0
