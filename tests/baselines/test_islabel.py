"""Tests for the IS-Label baseline."""

import pytest
from hypothesis import given, settings

from repro.baselines.apsp import APSPOracle
from repro.baselines.islabel import build_islabel
from repro.graphs.generators import glp_graph, path_graph
from tests.conftest import graph_strategy, random_graph


class TestFullIndexMode:
    @settings(max_examples=30, deadline=None)
    @given(graph_strategy())
    def test_all_pairs_exact(self, g):
        truth = APSPOracle(g)
        isl = build_islabel(g)
        assert isl.is_full_index
        for s in range(g.num_vertices):
            for t in range(g.num_vertices):
                assert isl.query(s, t) == truth.query(s, t)

    def test_no_residual_in_full_mode(self):
        isl = build_islabel(glp_graph(60, seed=1))
        assert isl.residual_vertices == set()
        assert isl.residual_out is None

    @settings(max_examples=15, deadline=None)
    @given(graph_strategy(max_n=16))
    def test_unpruned_also_exact(self, g):
        truth = APSPOracle(g)
        isl = build_islabel(g, prune=False)
        for s in range(g.num_vertices):
            for t in range(g.num_vertices):
                assert isl.query(s, t) == truth.query(s, t)

    def test_pruning_shrinks_labels(self):
        g = glp_graph(120, seed=5)
        pruned = build_islabel(g, prune=True)
        unpruned = build_islabel(g, prune=False)
        assert (
            pruned.labels.total_entries() <= unpruned.labels.total_entries()
        )


class TestPartialMode:
    @pytest.mark.parametrize("levels", [1, 2, 3])
    @pytest.mark.parametrize("seed", range(5))
    def test_residual_mode_exact(self, levels, seed):
        g = random_graph(seed, max_n=25)
        truth = APSPOracle(g)
        isl = build_islabel(g, max_levels=levels)
        for s in range(g.num_vertices):
            for t in range(g.num_vertices):
                assert isl.query(s, t) == truth.query(s, t)

    def test_residual_exists_with_level_cap(self):
        g = glp_graph(80, seed=2)
        isl = build_islabel(g, max_levels=1)
        assert not isl.is_full_index
        assert len(isl.residual_vertices) > 0

    def test_residual_counts_in_size(self):
        """The paper's criticism: G_k must be loaded for querying, so it
        belongs in the index footprint."""
        g = glp_graph(80, seed=2)
        partial = build_islabel(g, max_levels=1)
        assert partial.size_in_bytes() > partial.labels.size_in_bytes()


class TestHierarchy:
    def test_levels_assigned(self):
        g = path_graph(10)
        isl = build_islabel(g)
        assert all(lvl >= 1 for lvl in isl.levels)
        assert max(isl.levels) >= 2  # a path needs several peels

    def test_independent_set_is_independent(self):
        # Level-1 vertices must form an independent set of the original
        # graph (no two adjacent).
        g = glp_graph(100, seed=3)
        isl = build_islabel(g)
        level1 = {v for v in g.vertices() if isl.levels[v] == 1}
        for u, v, _ in g.edges():
            assert not (u in level1 and v in level1)

    def test_labels_bigger_than_hopdb(self):
        """The paper's headline comparison: IS-Label's weaker pruning
        yields larger labels than HopDb on scale-free graphs."""
        from repro.core.hybrid import make_builder

        g = glp_graph(200, seed=11)
        isl = build_islabel(g)
        hop = make_builder(g, "hybrid").build().index
        assert isl.labels.total_entries() >= hop.total_entries()
