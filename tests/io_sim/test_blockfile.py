"""Tests for EntryFile (both backends) and external sort."""

import pytest

from repro.io_sim.blockfile import EntryFile
from repro.io_sim.diskmodel import DiskModel
from repro.io_sim.external_sort import external_sort


def _entries(n, stride=1):
    return [(i * stride, i + 100, float(i), 1) for i in range(n)]


@pytest.fixture(params=["memory", "disk"])
def backend(request):
    return request.param


class TestEntryFile:
    def test_replace_and_scan(self, backend):
        disk = DiskModel(128, 16)
        f = EntryFile("t", disk, backend)
        f.replace_contents(_entries(40))
        assert len(f) == 40
        assert f.scan() == _entries(40)
        f.close()

    def test_scan_charges_blocks(self, backend):
        disk = DiskModel(128, 16)
        f = EntryFile("t", disk, backend)
        f.replace_contents(_entries(40))
        before = disk.snapshot()
        f.scan()
        assert (disk.snapshot() - before).reads == disk.blocks(40)
        f.close()

    def test_contents_sorted_by_key(self, backend):
        disk = DiskModel(128, 16)
        f = EntryFile("t", disk, backend)
        data = [(5, 0, 1.0, 1), (1, 0, 1.0, 1), (3, 0, 1.0, 1)]
        f.replace_contents(data)
        assert [e[0] for e in f.scan()] == [1, 3, 5]
        f.close()

    def test_range_scan_returns_key_range(self, backend):
        disk = DiskModel(256, 16)
        f = EntryFile("t", disk, backend)
        f.replace_contents(_entries(50, stride=2))  # keys 0,2,...,98
        hits = f.range_scan(10, 20)
        assert [e[0] for e in hits] == [10, 12, 14, 16, 18, 20]
        f.close()

    def test_range_scan_charges_only_touched_blocks(self, backend):
        disk = DiskModel(256, 16)
        f = EntryFile("t", disk, backend)
        f.replace_contents(_entries(160))
        before = disk.snapshot()
        f.range_scan(0, 15)  # exactly one block
        assert (disk.snapshot() - before).reads == 1
        f.close()

    def test_empty_range(self, backend):
        disk = DiskModel(128, 16)
        f = EntryFile("t", disk, backend)
        f.replace_contents(_entries(10))
        assert f.range_scan(500, 600) == []
        f.close()

    def test_chunks_cover_everything(self, backend):
        disk = DiskModel(128, 16)
        f = EntryFile("t", disk, backend)
        f.replace_contents(_entries(45))
        got = []
        for chunk in f.chunks(10):
            assert len(chunk) <= 10
            got.extend(chunk)
        assert got == _entries(45)
        f.close()

    def test_chunks_validate_size(self, backend):
        disk = DiskModel(128, 16)
        f = EntryFile("t", disk, backend)
        with pytest.raises(ValueError):
            list(f.chunks(0))
        f.close()

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            EntryFile("t", DiskModel(), backend="tape")

    def test_disk_backend_cleans_up(self):
        disk = DiskModel(128, 16)
        f = EntryFile("t", disk, "disk")
        f.replace_contents(_entries(5))
        path = f._backend.path
        assert path.exists()
        f.close()
        assert not path.exists()

    def test_large_replace_charges_sort(self):
        disk = DiskModel(128, 16)
        f = EntryFile("t", disk, "memory")
        before = disk.snapshot()
        f.replace_contents(_entries(1000))
        delta = disk.snapshot() - before
        assert delta.writes > disk.blocks(1000)  # multi-pass sort
        f.close()


class TestExternalSort:
    def test_sorts_correctly(self):
        disk = DiskModel(64, 8)
        data = [(i * 37 % 101, 0, 0.0, 1) for i in range(300)]
        out = external_sort(data, disk)
        assert [e[0] for e in out] == sorted(e[0] for e in data)

    def test_cost_grows_with_merge_passes(self):
        small_disk = DiskModel(64, 8)
        external_sort([(i, 0, 0.0, 1) for i in range(60)], small_disk)
        small_cost = small_disk.stats.total

        big_disk = DiskModel(64, 8)
        external_sort(
            [(i * 13 % 5000, 0, 0.0, 1) for i in range(5000)], big_disk
        )
        big_cost = big_disk.stats.total
        # 5000 entries in 64-entry memory: multiple merge passes.
        assert big_cost > 10 * small_cost

    def test_empty_input(self):
        disk = DiskModel(64, 8)
        assert external_sort([], disk) == []
        assert disk.stats.total == 0

    def test_custom_key(self):
        disk = DiskModel(64, 8)
        data = [(0, i, 0.0, 1) for i in range(20, 0, -1)]
        out = external_sort(data, disk, key=lambda e: e[1])
        assert [e[1] for e in out] == list(range(1, 21))
