"""The external builder must match the in-memory builders bit for bit,
and its I/O counters must behave like Section 4/5.3 predict."""

import pytest
from hypothesis import given, settings

from repro.baselines.apsp import APSPOracle
from repro.core.hybrid import make_builder
from repro.graphs.generators import glp_graph
from repro.io_sim.diskmodel import DiskModel
from repro.io_sim.external_labeling import ExternalLabelingBuilder
from tests.conftest import graph_strategy, random_graph

STRATEGIES = ("stepping", "doubling", "hybrid")


class TestBitIdentity:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @settings(max_examples=20, deadline=None)
    @given(graph_strategy())
    def test_labels_identical_to_inmemory(self, strategy, g):
        mem = make_builder(g, strategy, switch_iteration=3).build() \
            if strategy == "hybrid" else make_builder(g, strategy).build()
        ext = ExternalLabelingBuilder(
            g, DiskModel(256, 16), strategy=strategy, switch_iteration=3
        ).build()
        assert ext.index.out_labels == mem.index.out_labels
        assert ext.index.in_labels == mem.index.in_labels

    @pytest.mark.parametrize("seed", range(4))
    def test_queries_exact(self, seed):
        g = random_graph(seed, max_n=30)
        truth = APSPOracle(g)
        ext = ExternalLabelingBuilder(g, DiskModel(256, 16)).build()
        for s in range(g.num_vertices):
            for t in range(g.num_vertices):
                assert ext.index.query(s, t) == truth.query(s, t)

    def test_disk_backend_identical(self):
        g = glp_graph(120, seed=8)
        mem = make_builder(g, "hybrid").build()
        ext = ExternalLabelingBuilder(
            g, DiskModel(256, 16), backend="disk"
        ).build()
        assert ext.index.out_labels == mem.index.out_labels

    def test_iteration_counters_match_inmemory(self):
        g = glp_graph(150, seed=9)
        mem = make_builder(g, "hybrid").build()
        ext = ExternalLabelingBuilder(g, DiskModel(512, 16)).build()
        assert len(ext.iterations) == len(mem.iterations)
        for a, b in zip(ext.iterations, mem.iterations):
            assert a.stats.distinct_generated == b.distinct_generated
            assert a.stats.admitted == b.admitted
            assert a.stats.pruned == b.pruned
            assert a.stats.survived == b.survived


class TestIOAccounting:
    def test_every_iteration_charges_io(self):
        g = glp_graph(150, seed=2)
        ext = ExternalLabelingBuilder(g, DiskModel(256, 16)).build()
        for it in ext.iterations:
            assert it.io.total > 0

    def test_total_io_is_sum_plus_setup(self):
        g = glp_graph(100, seed=3)
        ext = ExternalLabelingBuilder(g, DiskModel(256, 16)).build()
        per_iter = sum(it.io.total for it in ext.iterations)
        assert ext.total_io.total >= per_iter

    def test_smaller_memory_means_more_io(self):
        """The M factor in O(|old|/M x scan(...)): shrinking memory
        must increase block traffic."""
        g = glp_graph(300, m=2.0, seed=5)
        small = ExternalLabelingBuilder(g, DiskModel(128, 16)).build()
        large = ExternalLabelingBuilder(g, DiskModel(8192, 16)).build()
        assert small.total_io.total > large.total_io.total
        # Identical output regardless of the budget.
        assert small.index.out_labels == large.index.out_labels

    def test_stepping_cheaper_per_iteration_than_doubling(self):
        """Doubling's inner loop scans the whole label file per outer
        batch; stepping joins the co-sorted edge file instead (the
        Section 5 motivation)."""
        g = glp_graph(300, m=2.0, seed=6)
        step = ExternalLabelingBuilder(
            g, DiskModel(256, 16), strategy="stepping"
        ).build()
        double = ExternalLabelingBuilder(
            g, DiskModel(256, 16), strategy="doubling"
        ).build()
        step_gen = max(it.io.reads for it in step.iterations)
        double_gen = max(it.io.reads for it in double.iterations)
        assert double_gen > step_gen

    def test_unknown_strategy_rejected(self):
        g = glp_graph(20, seed=0)
        with pytest.raises(ValueError):
            ExternalLabelingBuilder(g, strategy="warp")

    def test_num_iterations_counting(self):
        g = glp_graph(100, seed=4)
        mem = make_builder(g, "hybrid").build()
        ext = ExternalLabelingBuilder(g).build()
        assert ext.num_iterations == mem.num_iterations
