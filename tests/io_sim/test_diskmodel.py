"""Tests for the Aggarwal-Vitter disk model."""

import pytest

from repro.io_sim.diskmodel import DiskModel, IOStats


class TestParameters:
    def test_defaults_valid(self):
        d = DiskModel()
        assert d.memory_entries >= 2 * d.block_entries

    def test_memory_must_hold_two_blocks(self):
        with pytest.raises(ValueError):
            DiskModel(memory_entries=10, block_entries=8)

    def test_block_must_be_positive(self):
        with pytest.raises(ValueError):
            DiskModel(memory_entries=10, block_entries=0)


class TestCharges:
    def test_blocks_ceiling(self):
        d = DiskModel(128, 16)
        assert d.blocks(0) == 0
        assert d.blocks(1) == 1
        assert d.blocks(16) == 1
        assert d.blocks(17) == 2

    def test_read_write_counters(self):
        d = DiskModel(128, 16)
        d.charge_read(32)
        d.charge_write(16)
        assert d.stats.reads == 2
        assert d.stats.writes == 1
        assert d.stats.total == 3

    def test_block_reads_direct(self):
        d = DiskModel(128, 16)
        d.charge_block_reads(5)
        assert d.stats.reads == 5

    def test_snapshot_delta(self):
        d = DiskModel(128, 16)
        d.charge_read(16)
        before = d.snapshot()
        d.charge_read(32)
        delta = d.snapshot() - before
        assert delta.reads == 2
        assert delta.writes == 0

    def test_reset(self):
        d = DiskModel(128, 16)
        d.charge_read(160)
        d.reset()
        assert d.stats.total == 0


class TestSortCosts:
    def test_in_memory_sort_single_pass(self):
        d = DiskModel(128, 16)
        blocks = d.charge_sort(100)  # fits in memory: read+write once
        assert blocks == 2 * d.blocks(100)
        assert d.sort_passes(100) == 0

    def test_external_sort_passes(self):
        d = DiskModel(128, 16)
        # 128-entry memory, fan-in 8: 10_000 entries -> ceil(N/M)=79 runs
        # -> ceil(log_8 79) = 3... at least 2 passes.
        assert d.sort_passes(10_000) >= 2

    def test_sort_cost_monotone(self):
        d1 = DiskModel(128, 16)
        d2 = DiskModel(128, 16)
        small = d1.charge_sort(500)
        large = d2.charge_sort(50_000)
        assert large > small

    def test_zero_sort_free(self):
        d = DiskModel(128, 16)
        assert d.charge_sort(0) == 0
        assert d.stats.total == 0


class TestIOStats:
    def test_str(self):
        s = IOStats(reads=3, writes=2)
        assert "reads=3" in str(s)
        assert s.total == 5
