"""Tests for disk-resident query accounting."""

import pytest

from repro.core.hybrid import make_builder
from repro.graphs.generators import glp_graph, star_graph
from repro.io_sim.disk_index import DiskResidentIndex
from repro.io_sim.diskmodel import DiskModel


@pytest.fixture(scope="module")
def built():
    g = glp_graph(150, seed=30)
    idx = make_builder(g, "hybrid").build().index
    return g, idx


class TestDiskQueries:
    def test_answers_match_in_memory(self, built):
        g, idx = built
        dq = DiskResidentIndex(idx, DiskModel(256, 16))
        for s in range(0, g.num_vertices, 7):
            for t in range(0, g.num_vertices, 11):
                assert dq.query(s, t) == idx.query(s, t)

    def test_two_seeks_per_query(self, built):
        _, idx = built
        dq = DiskResidentIndex(idx, DiskModel(256, 16))
        dq.query(0, 1)
        assert dq.seeks == 2
        dq.query(2, 3)
        assert dq.seeks == 4

    def test_identity_query_free(self, built):
        _, idx = built
        dq = DiskResidentIndex(idx, DiskModel(256, 16))
        assert dq.query(5, 5) == 0.0
        assert dq.blocks_read == 0

    def test_blocks_scale_with_label_size(self):
        # A star's leaf labels are 2 entries: one block per side.
        g = star_graph(30)
        idx = make_builder(g, "hybrid").build().index
        dq = DiskResidentIndex(idx, DiskModel(256, 4))
        dq.query(1, 2)
        assert dq.blocks_read == 2

    def test_simulated_latency(self, built):
        _, idx = built
        dq = DiskResidentIndex(
            idx, DiskModel(256, 16), seek_seconds=1e-2, block_seconds=1e-3
        )
        dq.query(0, 1)
        expected = 2 * 1e-2 + (dq.blocks_read - 2) * 1e-3
        assert dq.simulated_seconds() == pytest.approx(expected)
        assert dq.avg_query_seconds() == pytest.approx(expected)

    def test_avg_blocks_per_query(self, built):
        _, idx = built
        dq = DiskResidentIndex(idx, DiskModel(256, 16))
        for i in range(10):
            dq.query(i, i + 20)
        assert dq.avg_blocks_per_query() >= 2.0

    def test_reset_counters(self, built):
        _, idx = built
        dq = DiskResidentIndex(idx, DiskModel(256, 16))
        dq.query(0, 1)
        dq.reset_counters()
        assert dq.queries == 0
        assert dq.blocks_read == 0
        assert dq.avg_query_seconds() == 0.0
