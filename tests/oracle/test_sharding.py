"""Tests for the range-sharded label store and its manifest."""

import json

import pytest

from repro.baselines.pll import build_pll
from repro.bench.workloads import random_pairs
from repro.core.flatstore import FlatLabelStore
from repro.core.labels import LabelStore
from repro.core.verify import verify_index
from repro.graphs.generators import ba_graph, glp_graph
from repro.oracle import (
    DistanceOracle,
    ShardedLabelStore,
    ShardError,
    load_manifest,
    split_ranges,
)
from repro.oracle.sharding import MANIFEST_NAME


@pytest.fixture(scope="module")
def undirected():
    graph = ba_graph(300, m=2, seed=7)
    index, _ = build_pll(graph)
    return graph, FlatLabelStore.from_index(index)


@pytest.fixture(scope="module")
def directed_flat():
    graph = glp_graph(250, seed=11, directed=True)
    index, _ = build_pll(graph)
    return FlatLabelStore.from_index(index)


@pytest.fixture
def shard_dir(undirected, tmp_path):
    _, flat = undirected
    path = tmp_path / "shards"
    ShardedLabelStore.split(flat, 3).save(path)
    return path


class TestSplitRanges:
    def test_even_split(self):
        assert split_ranges(9, 3) == [(0, 3), (3, 6), (6, 9)]

    def test_remainder_goes_to_leading_shards(self):
        assert split_ranges(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_single_shard(self):
        assert split_ranges(5, 1) == [(0, 5)]

    def test_shard_per_vertex(self):
        assert split_ranges(3, 3) == [(0, 1), (1, 2), (2, 3)]

    def test_zero_shards_rejected(self):
        with pytest.raises(ShardError, match=">= 1"):
            split_ranges(5, 0)

    def test_more_shards_than_vertices_rejected(self):
        with pytest.raises(ShardError, match="non-empty"):
            split_ranges(2, 3)


class TestShardedStore:
    def test_implements_label_store_protocol(self, undirected):
        _, flat = undirected
        sharded = ShardedLabelStore.split(flat, 3)
        assert isinstance(sharded, LabelStore)

    @pytest.mark.parametrize("num_shards", [1, 2, 3, 7])
    def test_queries_bit_identical_to_flat(self, undirected, num_shards):
        _, flat = undirected
        sharded = ShardedLabelStore.split(flat, num_shards)
        pairs = random_pairs(flat.n, 300, seed=3)
        assert [sharded.query(s, t) for s, t in pairs] == [
            flat.query(s, t) for s, t in pairs
        ]

    def test_query_via_matches_flat(self, undirected):
        _, flat = undirected
        sharded = ShardedLabelStore.split(flat, 3)
        pairs = random_pairs(flat.n, 200, seed=5)
        assert [sharded.query_via(s, t) for s, t in pairs] == [
            flat.query_via(s, t) for s, t in pairs
        ]

    def test_labels_and_stats_match_flat(self, undirected):
        _, flat = undirected
        sharded = ShardedLabelStore.split(flat, 4)
        for v in (0, 1, flat.n // 2, flat.n - 1):
            assert sharded.out_label(v) == flat.out_label(v)
            assert sharded.in_label(v) == flat.in_label(v)
        assert sharded.total_entries() == flat.total_entries()
        assert sharded.size_in_bytes() == flat.size_in_bytes()
        assert sharded.stats() == flat.stats()
        assert sharded.rank == list(flat.rank)

    def test_directed_store(self, directed_flat):
        sharded = ShardedLabelStore.split(directed_flat, 3)
        assert sharded.directed
        pairs = random_pairs(directed_flat.n, 200, seed=9)
        assert [sharded.query(s, t) for s, t in pairs] == [
            directed_flat.query(s, t) for s, t in pairs
        ]
        v = directed_flat.n // 2
        assert sharded.in_label(v) == directed_flat.in_label(v)

    def test_query_group_matches_flat(self, undirected):
        _, flat = undirected
        sharded = ShardedLabelStore.split(flat, 3)
        targets = list(range(0, flat.n, 7))
        assert sharded.query_group(5, targets) == flat.query_group(5, targets)

    def test_shard_of_routing(self, undirected):
        _, flat = undirected
        sharded = ShardedLabelStore.split(flat, 3)
        for i, (lo, hi) in enumerate(sharded.ranges):
            assert sharded.shard_of(lo) == i
            assert sharded.shard_of(hi - 1) == i
        with pytest.raises(IndexError):
            sharded.shard_of(flat.n)
        with pytest.raises(IndexError):
            sharded.query(0, flat.n)

    def test_works_under_oracle_and_verifier(self, undirected):
        graph, flat = undirected
        sharded = ShardedLabelStore.split(flat, 3)
        oracle = DistanceOracle(sharded)
        pairs = random_pairs(flat.n, 150, seed=21)
        assert oracle.query_batch(pairs) == [
            flat.query(s, t) for s, t in pairs
        ]
        assert oracle.nearest(17, k=5) == DistanceOracle(flat).nearest(17, k=5)
        assert verify_index(graph, sharded, samples=60).ok

    def test_split_from_tuple_list_index(self, undirected):
        graph, flat = undirected
        index, _ = build_pll(graph)
        sharded = ShardedLabelStore.split(index, 2)
        pairs = random_pairs(flat.n, 100, seed=2)
        assert [sharded.query(s, t) for s, t in pairs] == [
            flat.query(s, t) for s, t in pairs
        ]

    def test_resplit_to_new_shard_count(self, undirected):
        _, flat = undirected
        resharded = ShardedLabelStore.split(
            ShardedLabelStore.split(flat, 3), 5
        )
        assert resharded.num_shards == 5
        pairs = random_pairs(flat.n, 100, seed=41)
        assert [resharded.query(s, t) for s, t in pairs] == [
            flat.query(s, t) for s, t in pairs
        ]
        assert resharded.rank == list(flat.rank)


class TestSaveLoad:
    def test_round_trip(self, undirected, shard_dir):
        _, flat = undirected
        loaded = ShardedLabelStore.load(shard_dir)
        pairs = random_pairs(flat.n, 200, seed=13)
        assert [loaded.query(s, t) for s, t in pairs] == [
            flat.query(s, t) for s, t in pairs
        ]
        assert loaded.rank == list(flat.rank)

    def test_mmap_load(self, undirected, shard_dir):
        _, flat = undirected
        loaded = ShardedLabelStore.load(shard_dir, use_mmap=True)
        try:
            assert loaded.is_mmapped
            assert loaded.query(0, 100) == flat.query(0, 100)
        finally:
            loaded.close()

    def test_save_refuses_existing_directory(self, undirected, shard_dir):
        _, flat = undirected
        with pytest.raises(FileExistsError, match="--force"):
            ShardedLabelStore.split(flat, 2).save(shard_dir)

    def test_overwrite_removes_stale_shards(self, undirected, shard_dir):
        _, flat = undirected
        # 3 shards -> 2 shards: shard-0002.idx2 must not survive.
        ShardedLabelStore.split(flat, 2).save(shard_dir, overwrite=True)
        assert not (shard_dir / "shard-0002.idx2").exists()
        loaded = ShardedLabelStore.load(shard_dir)
        assert loaded.num_shards == 2
        assert loaded.query(1, 200) == flat.query(1, 200)

    def test_single_shard_degenerate(self, undirected, tmp_path):
        _, flat = undirected
        path = tmp_path / "one"
        ShardedLabelStore.split(flat, 1).save(path)
        loaded = ShardedLabelStore.load(path)
        assert loaded.num_shards == 1
        pairs = random_pairs(flat.n, 100, seed=31)
        assert [loaded.query(s, t) for s, t in pairs] == [
            flat.query(s, t) for s, t in pairs
        ]


def _edit_manifest(shard_dir, mutate):
    path = shard_dir / MANIFEST_NAME
    manifest = json.loads(path.read_text())
    mutate(manifest)
    path.write_text(json.dumps(manifest))


class TestManifestFailureModes:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(ShardError, match="not a shard directory"):
            ShardedLabelStore.load(tmp_path / "nope")

    def test_missing_manifest(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ShardError, match="no manifest.json"):
            ShardedLabelStore.load(empty)

    def test_garbled_manifest(self, shard_dir):
        (shard_dir / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(ShardError, match="unreadable manifest"):
            ShardedLabelStore.load(shard_dir)

    def test_wrong_format_marker(self, shard_dir):
        _edit_manifest(shard_dir, lambda m: m.update(format="other"))
        with pytest.raises(ShardError, match="not a repro-shards manifest"):
            ShardedLabelStore.load(shard_dir)

    def test_unsupported_version(self, shard_dir):
        _edit_manifest(shard_dir, lambda m: m.update(version=99))
        with pytest.raises(ShardError, match="unsupported manifest version"):
            ShardedLabelStore.load(shard_dir)

    def test_missing_shard_file(self, shard_dir):
        (shard_dir / "shard-0001.idx2").unlink()
        with pytest.raises(ShardError, match="shard-0001.idx2.*missing"):
            ShardedLabelStore.load(shard_dir)

    def test_checksum_mismatch(self, shard_dir):
        path = shard_dir / "shard-0001.idx2"
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(blob)
        with pytest.raises(ShardError, match="checksum mismatch"):
            ShardedLabelStore.load(shard_dir)

    def test_checksum_verification_can_be_skipped(self, shard_dir):
        # Only the recorded digest is stale; the file itself is a valid
        # shard, so trusting the caller still yields a working store.
        _edit_manifest(
            shard_dir,
            lambda m: m["shards"][0].update(sha256="0" * 64),
        )
        with pytest.raises(ShardError, match="checksum mismatch"):
            ShardedLabelStore.load(shard_dir)
        loaded = ShardedLabelStore.load(shard_dir, verify_checksums=False)
        assert loaded.num_shards == 3

    def test_overlapping_ranges(self, shard_dir):
        def overlap(m):
            m["shards"][1]["lo"] -= 5

        _edit_manifest(shard_dir, overlap)
        with pytest.raises(ShardError, match="overlapping shard ranges"):
            ShardedLabelStore.load(shard_dir)

    def test_gapped_ranges(self, shard_dir):
        def gap(m):
            m["shards"][1]["lo"] += 5

        _edit_manifest(shard_dir, gap)
        with pytest.raises(ShardError, match="gap in shard ranges"):
            ShardedLabelStore.load(shard_dir)

    def test_cover_not_starting_at_zero(self, shard_dir):
        def shift(m):
            m["shards"][0]["lo"] = 1

        _edit_manifest(shard_dir, shift)
        with pytest.raises(ShardError, match="start at vertex 0"):
            ShardedLabelStore.load(shard_dir)

    def test_total_mismatch_with_n(self, shard_dir):
        _edit_manifest(shard_dir, lambda m: m.update(n=999_999))
        with pytest.raises(ShardError, match="manifest says n="):
            ShardedLabelStore.load(shard_dir)

    def test_missing_entry_fields(self, shard_dir):
        def drop(m):
            del m["shards"][2]["sha256"]

        _edit_manifest(shard_dir, drop)
        with pytest.raises(ShardError, match="missing fields.*sha256"):
            ShardedLabelStore.load(shard_dir)

    def test_shard_vertex_count_mismatch(self, undirected, shard_dir):
        # Replace shard 1's file (100 vertices) with a 75-vertex one.
        _, flat = undirected
        wrong = ShardedLabelStore.split(flat, 4).shards[0]
        wrong.save(shard_dir / "shard-0001.idx2")

        def fix_checksum(m):
            from repro.oracle.sharding import _sha256_file

            m["shards"][1]["sha256"] = _sha256_file(
                shard_dir / "shard-0001.idx2"
            )

        _edit_manifest(shard_dir, fix_checksum)
        with pytest.raises(ShardError, match="vertices, expected"):
            ShardedLabelStore.load(shard_dir)

    def test_load_manifest_happy_path(self, shard_dir):
        manifest = load_manifest(shard_dir)
        assert manifest["num_shards"] == 3
        assert [s["id"] for s in manifest["shards"]] == [0, 1, 2]
