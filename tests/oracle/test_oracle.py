"""Tests for the DistanceOracle serving layer."""

import pytest

from repro.core.flatstore import FlatLabelStore
from repro.core.hybrid import HybridBuilder
from repro.core.knn import InvertedLabelIndex
from repro.core.labels import INF
from repro.core.query import query_many
from repro.graphs.generators import glp_graph
from repro.oracle import DistanceOracle, read_pair_file
from repro.oracle.batch import evaluate_batch
from tests.conftest import random_graph


@pytest.fixture(scope="module", params=[False, True], ids=["undir", "dir"])
def built(request):
    g = glp_graph(120, seed=11, directed=request.param)
    idx = HybridBuilder(g).build().index
    return g, idx


def all_pairs(n, step_s=4, step_t=5):
    return [(s, t) for s in range(0, n, step_s) for t in range(0, n, step_t)]


class TestQueryBatch:
    @pytest.mark.parametrize("backend", ["flat", "list"])
    def test_bit_identical_to_per_pair(self, built, backend):
        g, idx = built
        store = FlatLabelStore.from_index(idx) if backend == "flat" else idx
        oracle = DistanceOracle(store)
        pairs = all_pairs(g.num_vertices)
        assert oracle.query_batch(pairs) == [idx.query(s, t) for s, t in pairs]

    def test_duplicates_and_order(self, built):
        _, idx = built
        oracle = DistanceOracle(FlatLabelStore.from_index(idx))
        pairs = [(0, 9), (3, 3), (0, 9), (9, 0), (1, 2), (0, 9)]
        assert oracle.query_batch(pairs) == [idx.query(s, t) for s, t in pairs]

    def test_empty_batch(self, built):
        _, idx = built
        assert DistanceOracle(idx).query_batch([]) == []

    def test_out_of_range_raises(self, built):
        _, idx = built
        oracle = DistanceOracle(FlatLabelStore.from_index(idx))
        with pytest.raises(IndexError):
            oracle.query_batch([(0, idx.n)])

    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs(self, seed):
        g = random_graph(seed, max_n=25)
        idx = HybridBuilder(g).build().index
        oracle = DistanceOracle(FlatLabelStore.from_index(idx))
        pairs = [(s, t) for s in range(g.num_vertices)
                 for t in range(g.num_vertices)]
        assert oracle.query_batch(pairs) == [idx.query(s, t)
                                             for s, t in pairs]

    def test_evaluate_batch_without_cache(self, built):
        _, idx = built
        pairs = all_pairs(idx.n)
        assert evaluate_batch(idx, pairs) == [idx.query(s, t)
                                              for s, t in pairs]


class TestCache:
    def test_single_pair_cached(self, built):
        _, idx = built
        oracle = DistanceOracle(FlatLabelStore.from_index(idx))
        d1 = oracle.query(2, 50)
        d2 = oracle.query(2, 50)
        assert d1 == d2 == idx.query(2, 50)
        info = oracle.cache_info()
        assert info.hits == 1
        assert info.misses == 1
        assert 0 < info.hit_rate < 1

    def test_undirected_orientation_shares_entry(self):
        g = glp_graph(60, seed=2, directed=False)
        idx = HybridBuilder(g).build().index
        oracle = DistanceOracle(idx)
        oracle.query(5, 20)
        oracle.query(20, 5)
        assert oracle.cache_info().hits == 1

    def test_directed_orientations_distinct(self):
        g = glp_graph(60, seed=2, directed=True)
        idx = HybridBuilder(g).build().index
        oracle = DistanceOracle(idx)
        oracle.query(5, 20)
        oracle.query(20, 5)
        assert oracle.cache_info().hits == 0

    def test_batch_fills_cache_for_single_queries(self, built):
        _, idx = built
        oracle = DistanceOracle(FlatLabelStore.from_index(idx))
        oracle.query_batch([(1, 7), (2, 9)])
        oracle.query(1, 7)
        assert oracle.cache_info().hits == 1

    def test_batch_duplicates_count_one_miss(self, built):
        _, idx = built
        oracle = DistanceOracle(FlatLabelStore.from_index(idx))
        oracle.query_batch([(0, 9)] * 1000)
        info = oracle.cache_info()
        assert info.misses == 1 and info.hits == 0

    def test_clear_cache_drops_inverted_index(self, built):
        _, idx = built
        oracle = DistanceOracle(idx)
        oracle.nearest(0, 3)
        inverted = oracle._inverted
        assert inverted is not None
        oracle.clear_cache()
        assert oracle._inverted is None

    def test_eviction_respects_capacity(self, built):
        _, idx = built
        oracle = DistanceOracle(idx, cache_size=4)
        for t in range(10):
            oracle.query(0, t)
        assert oracle.cache_info().size <= 4

    def test_zero_capacity_disables(self, built):
        _, idx = built
        oracle = DistanceOracle(idx, cache_size=0)
        oracle.query(0, 5)
        oracle.query(0, 5)
        info = oracle.cache_info()
        assert info.hits == 0
        assert info.size == 0

    def test_clear_cache(self, built):
        _, idx = built
        oracle = DistanceOracle(idx)
        oracle.query(0, 5)
        oracle.clear_cache()
        info = oracle.cache_info()
        assert info.size == 0 and info.misses == 0

    def test_negative_capacity_rejected(self, built):
        _, idx = built
        with pytest.raises(ValueError):
            DistanceOracle(idx, cache_size=-1)


class TestOpen:
    @pytest.mark.parametrize("fmt", ["v1", "v2"])
    @pytest.mark.parametrize("backend", ["flat", "list"])
    def test_open_any_format_any_backend(self, tmp_path, built, fmt, backend):
        _, idx = built
        path = tmp_path / f"x.{fmt}"
        if fmt == "v1":
            idx.save(path)
        else:
            FlatLabelStore.from_index(idx).save(path)
        oracle = DistanceOracle.open(path, backend=backend)
        for s, t in [(0, 1), (5, 40), (7, 7)]:
            assert oracle.query(s, t) == idx.query(s, t)

    def test_open_mmap(self, tmp_path, built):
        _, idx = built
        path = tmp_path / "x.idx2"
        FlatLabelStore.from_index(idx).save(path)
        oracle = DistanceOracle.open(path, use_mmap=True)
        pairs = all_pairs(idx.n)
        assert oracle.query_batch(pairs) == [idx.query(s, t)
                                             for s, t in pairs]

    def test_open_list_backend_never_maps(self, tmp_path, built):
        _, idx = built
        path = tmp_path / "x.idx2"
        FlatLabelStore.from_index(idx).save(path)
        oracle = DistanceOracle.open(path, backend="list", use_mmap=True)
        assert not getattr(oracle.store, "is_mmapped", False)
        oracle.close()  # no mapping to leak; file is freely deletable
        path.unlink()

    def test_close_releases_mmap_backend(self, tmp_path, built):
        _, idx = built
        path = tmp_path / "x.idx2"
        FlatLabelStore.from_index(idx).save(path)
        oracle = DistanceOracle.open(path, use_mmap=True)
        assert oracle.store.is_mmapped
        oracle.close()
        assert not oracle.store.is_mmapped

    def test_open_unknown_backend(self, tmp_path, built):
        _, idx = built
        path = tmp_path / "x.idx"
        idx.save(path)
        with pytest.raises(ValueError, match="backend"):
            DistanceOracle.open(path, backend="gpu")


class TestDerivedWorkloads:
    def test_is_reachable_and_via(self, built):
        _, idx = built
        oracle = DistanceOracle(FlatLabelStore.from_index(idx))
        assert oracle.is_reachable(0, 1) == (idx.query(0, 1) != INF)
        assert oracle.query_via(0, 1) == idx.query_via(0, 1)

    def test_reconstruct_path_needs_graph(self, built):
        _, idx = built
        oracle = DistanceOracle(idx)
        with pytest.raises(ValueError, match="graph"):
            oracle.reconstruct_path(0, 1)

    def test_reconstruct_path(self, built):
        g, idx = built
        oracle = DistanceOracle(FlatLabelStore.from_index(idx), graph=g)
        d = oracle.query(0, 50)
        if d == INF:
            assert oracle.reconstruct_path(0, 50) is None
        else:
            path = oracle.reconstruct_path(0, 50)
            assert path[0] == 0 and path[-1] == 50
            total = sum(
                g.edge_weight(path[i], path[i + 1])
                for i in range(len(path) - 1)
            )
            assert total == d

    def test_attach_graph(self, built):
        g, idx = built
        oracle = DistanceOracle(idx)
        oracle.attach_graph(g)
        assert oracle.reconstruct_path(3, 3) == [3]

    def test_nearest_matches_inverted_index(self, built):
        _, idx = built
        oracle = DistanceOracle(FlatLabelStore.from_index(idx))
        expected = InvertedLabelIndex(idx).nearest(4, 6)
        assert oracle.nearest(4, 6) == expected
        # Lazily built once, then reused.
        assert oracle._inverted_index() is oracle._inverted_index()

    def test_distances_from_and_to(self, built):
        _, idx = built
        oracle = DistanceOracle(FlatLabelStore.from_index(idx))
        dist = oracle.distances_from(2)
        assert dist == [idx.query(2, t) for t in range(idx.n)]
        back = oracle.distances_to(2)
        assert back == [idx.query(s, 2) for s in range(idx.n)]

    def test_facts_and_repr(self, built):
        _, idx = built
        oracle = DistanceOracle(idx)
        assert oracle.n == idx.n
        assert oracle.directed == idx.directed
        assert "DistanceOracle" in repr(oracle)


class TestFacadeOracle:
    def test_loaded_index_accepts_graph_kwarg(self, tmp_path):
        from repro import HopDoublingIndex

        g = glp_graph(80, seed=4)
        built = HopDoublingIndex.build(g)
        path = tmp_path / "x.idx"
        built.save(path)
        loaded = HopDoublingIndex.load(path)  # no retained graph
        oracle = loaded.oracle(graph=g)
        path_ = oracle.reconstruct_path(0, 40)
        if oracle.query(0, 40) != INF:
            assert path_[0] == 0 and path_[-1] == 40

    def test_verify_accepts_flat_store(self):
        from repro.core.verify import verify_index

        g = glp_graph(60, seed=8)
        idx = HybridBuilder(g).build().index
        report = verify_index(g, FlatLabelStore.from_index(idx), samples=60)
        assert report.ok


class TestQueryManyDelegation:
    def test_matches_per_pair(self, built):
        _, idx = built
        pairs = all_pairs(idx.n, 3, 7) + [(0, 0), (1, 1)]
        assert query_many(idx, pairs) == [idx.query(s, t) for s, t in pairs]

    def test_flat_store_accepted(self, built):
        _, idx = built
        flat = FlatLabelStore.from_index(idx)
        pairs = all_pairs(idx.n, 6, 8)
        assert query_many(flat, pairs) == [idx.query(s, t) for s, t in pairs]


class TestPairFile:
    def test_parse_with_comments(self, tmp_path):
        path = tmp_path / "pairs.txt"
        path.write_text(
            "# workload\n% |V|=30 header\n0 10\n5 25  # inline\n\n10 0\n"
        )
        assert read_pair_file(path) == [(0, 10), (5, 25), (10, 0)]

    @pytest.mark.parametrize("line", ["0", "0 1 2", "a b"])
    def test_malformed_rejected(self, tmp_path, line):
        path = tmp_path / "bad.txt"
        path.write_text(line + "\n")
        with pytest.raises(ValueError, match="expected 's t'"):
            read_pair_file(path)
