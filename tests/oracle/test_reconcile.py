"""Tests for sharded update routing, per-shard reconcile, and the
parallel oracle's update-aware routing."""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.core.dynamic import DynamicHopDoublingIndex
from repro.core.flatstore import FlatLabelStore
from repro.core.hybrid import make_builder
from repro.core.labels import LabelDelta
from repro.graphs.generators import glp_graph
from repro.oracle import DistanceOracle, ParallelOracle, ShardedLabelStore
from repro.oracle.sharding import ShardError

NUM_SHARDS = 4


@pytest.fixture(scope="module")
def setting():
    graph = glp_graph(120, seed=8)
    index = make_builder(graph, "hybrid").build().index
    store = FlatLabelStore.from_index(index)
    dyn = DynamicHopDoublingIndex.from_store(store, graph=graph, engine="dict")
    dyn.insert_edges([(0, 119), (30, 95)])
    return graph, store, dyn, dyn.pop_label_delta()


def make_dir(setting, tmp_path, fmt="v2") -> Path:
    root = tmp_path / "shards"
    ShardedLabelStore.split(setting[1], NUM_SHARDS).save(root, format=fmt)
    return root


def file_bytes(root: Path) -> dict[str, bytes]:
    manifest = json.loads((root / "manifest.json").read_text())
    return {
        e["file"]: (root / e["file"]).read_bytes()
        for e in manifest["shards"]
    }


class TestShardedApplyUpdates:
    def test_routes_to_owning_shards_only(self, setting, tmp_path):
        graph, _, dyn, delta = setting
        sharded = ShardedLabelStore.load(make_dir(setting, tmp_path))
        affected = sharded.apply_updates(delta)
        assert affected == sorted(
            {sharded.shard_of(v) for v in delta.vertices()}
        )
        assert sharded.dirty_shards == affected
        assert sharded.has_pending_updates
        for s in range(graph.num_vertices):
            for t in range(graph.num_vertices):
                assert sharded.query(s, t) == dyn.query(s, t)

    def test_shape_mismatch_rejected(self, setting, tmp_path):
        sharded = ShardedLabelStore.load(make_dir(setting, tmp_path))
        with pytest.raises(ShardError, match="does not match store"):
            sharded.apply_updates(LabelDelta.empty(7, sharded.directed))


class TestReconcile:
    @pytest.mark.parametrize("fmt", ["v2", "v3"])
    def test_rewrites_only_dirty_shards(self, setting, tmp_path, fmt):
        graph, _, dyn, delta = setting
        root = make_dir(setting, tmp_path, fmt=fmt)
        before = file_bytes(root)
        sharded = ShardedLabelStore.load(root)
        rewritten = sharded.apply_updates(delta)
        assert sharded.reconcile(root) == rewritten
        assert not sharded.has_pending_updates
        after = file_bytes(root)
        manifest = json.loads((root / "manifest.json").read_text())
        from repro.oracle.sharding import _sha256_file

        for entry in manifest["shards"]:
            path = root / entry["file"]
            assert _sha256_file(path) == entry["sha256"]
            if entry["id"] in rewritten:
                # dirty shards land in a new revision file; the old
                # generation is gone once the manifest owns the new one
                assert "-r" in entry["file"]
                assert entry["file"] not in before
            else:
                # untouched shards stay byte-for-byte identical
                assert after[entry["file"]] == before[entry["file"]]
        live = {e["file"] for e in manifest["shards"]}
        on_disk = {p.name for p in root.iterdir()} - {"manifest.json"}
        assert on_disk == live  # replaced generations cleaned up
        # the reconciled directory revalidates and serves the updates
        reloaded = ShardedLabelStore.load(root)
        for s in range(graph.num_vertices):
            for t in range(graph.num_vertices):
                assert reloaded.query(s, t) == dyn.query(s, t)
        # the in-memory store was swapped to the merged shards
        for s in range(0, graph.num_vertices, 7):
            assert sharded.query(0, s) == dyn.query(0, s)

    def test_layout_mismatch_rejected(self, setting, tmp_path):
        root = make_dir(setting, tmp_path)
        other = tmp_path / "other"
        ShardedLabelStore.split(setting[1], 2).save(other)
        sharded = ShardedLabelStore.load(other)
        sharded.apply_updates(setting[3])
        with pytest.raises(ShardError, match="different shard layout"):
            sharded.reconcile(root)

    def test_save_folds_pending_updates(self, setting, tmp_path):
        graph, _, dyn, delta = setting
        sharded = ShardedLabelStore.load(make_dir(setting, tmp_path))
        sharded.apply_updates(delta)
        out = tmp_path / "resaved"
        sharded.save(out)
        reloaded = ShardedLabelStore.load(out)
        for s in range(0, graph.num_vertices, 5):
            assert reloaded.query(0, s) == dyn.query(0, s)


class TestOracleInvalidation:
    def test_apply_updates_invalidates_cache_and_knn(self, setting):
        graph, _, dyn, delta = setting
        oracle = DistanceOracle(FlatLabelStore.from_index(
            make_builder(graph, "hybrid").build().index
        ))
        stale = oracle.query(0, 119)
        oracle.nearest(0, 3)
        oracle.apply_updates(delta)
        assert oracle.cache_info().size == 0
        assert oracle._inverted is None
        fresh = oracle.query(0, 119)
        assert fresh == dyn.query(0, 119)
        assert fresh != stale

    def test_unsupported_backend_raises(self, setting):
        graph, _, _, delta = setting
        oracle = DistanceOracle(make_builder(graph, "hybrid").build().index)
        with pytest.raises(TypeError, match="does not support"):
            oracle.apply_updates(delta)


class TestParallelRouting:
    def _pairs(self, n, count=2000, seed=4):
        rng = random.Random(seed)
        return [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]

    def test_route_knob_validation(self, setting, tmp_path):
        root = make_dir(setting, tmp_path)
        with pytest.raises(ValueError, match="route"):
            ParallelOracle(root, route="sideways")

    def test_routes_agree_bit_identically(self, setting, tmp_path):
        graph, store, _, _ = setting
        root = make_dir(setting, tmp_path)
        pairs = self._pairs(graph.num_vertices)
        want = [store.query(s, t) for s, t in pairs]
        for route in ("auto", "inline", "fanout"):
            with ParallelOracle(
                root, workers=2, executor="thread", route=route,
                min_parallel_batch=8, cache_size=0,
            ) as oracle:
                assert oracle.query_batch(pairs) == want, route

    def test_auto_inlines_cache_resident_store(self, setting, tmp_path):
        root = make_dir(setting, tmp_path)
        with ParallelOracle(
            root, workers=2, executor="thread", min_parallel_batch=8
        ) as oracle:
            entries = oracle.store.total_entries(include_trivial=True)
            if oracle._kernel_active():
                assert oracle._serve_inline(10_000)
            oracle.inline_entries = entries - 1
            oracle._total_entries = None
            if oracle._kernel_active():
                assert not oracle._serve_inline(10_000)

    def test_updates_force_inline_until_reconcile(self, setting, tmp_path):
        graph, _, dyn, delta = setting
        root = make_dir(setting, tmp_path)
        pairs = self._pairs(graph.num_vertices)
        with ParallelOracle(
            root, workers=2, executor="thread", route="fanout",
            min_parallel_batch=8, cache_size=0,
        ) as oracle:
            assert not oracle._serve_inline(len(pairs))
            oracle.apply_updates(delta)
            assert oracle._serve_inline(len(pairs))
            want = [dyn.query(s, t) for s, t in pairs]
            assert oracle.query_batch(pairs) == want
            rewritten = oracle.reconcile()
            assert rewritten and not oracle.store.has_pending_updates
            assert not oracle._serve_inline(len(pairs))
            assert oracle.query_batch(pairs) == want
