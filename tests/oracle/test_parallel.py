"""Tests for the ParallelOracle worker-pool serving frontend."""

import pytest

from repro.baselines.pll import build_pll
from repro.bench.workloads import random_pairs
from repro.core.flatstore import FlatLabelStore
from repro.graphs.generators import ba_graph
from repro.oracle import DistanceOracle, ParallelOracle, ShardedLabelStore


@pytest.fixture(scope="module")
def flat():
    graph = ba_graph(400, m=2, seed=19)
    index, _ = build_pll(graph)
    return FlatLabelStore.from_index(index)


@pytest.fixture(scope="module")
def shard_dir(flat, tmp_path_factory):
    path = tmp_path_factory.mktemp("parallel") / "shards"
    ShardedLabelStore.split(flat, 3).save(path)
    return path


@pytest.fixture(scope="module")
def expected(flat):
    pairs = random_pairs(flat.n, 600, seed=23)
    return pairs, [flat.query(s, t) for s, t in pairs]


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_batch_matches_single_store(shard_dir, expected, executor):
    pairs, want = expected
    with ParallelOracle(
        shard_dir, workers=2, executor=executor, min_parallel_batch=1
    ) as oracle:
        assert oracle.query_batch(pairs) == want


def test_order_preserved_with_duplicates_and_self_pairs(shard_dir, flat):
    # Shard-grouped fan-out permutes evaluation order; the merge must
    # restore input order exactly, duplicates and s == t included.
    pairs = [(5, 300), (300, 5), (5, 300), (7, 7), (399, 0), (5, 300)]
    want = [flat.query(s, t) for s, t in pairs]
    with ParallelOracle(
        shard_dir, workers=3, executor="thread", min_parallel_batch=1
    ) as oracle:
        assert oracle.query_batch(pairs) == want


def test_small_batches_evaluated_inline(shard_dir, expected):
    pairs, want = expected
    with ParallelOracle(
        shard_dir, workers=2, executor="process", min_parallel_batch=10_000
    ) as oracle:
        assert oracle.query_batch(pairs) == want
        # The pool is never started for below-threshold batches.
        assert oracle._pool is None


def test_single_pair_facilities_work(shard_dir, flat):
    with ParallelOracle(shard_dir, workers=2, executor="thread") as oracle:
        assert oracle.n == flat.n
        assert oracle.query(3, 250) == flat.query(3, 250)
        assert oracle.query_via(3, 250) == flat.query_via(3, 250)
        reference = DistanceOracle(flat)
        assert oracle.nearest(9, k=4) == reference.nearest(9, k=4)


def test_warmup_then_query(shard_dir, expected):
    pairs, want = expected
    oracle = ParallelOracle(
        shard_dir, workers=2, executor="process", min_parallel_batch=1
    )
    try:
        oracle.warmup()
        assert oracle.query_batch(pairs) == want
    finally:
        oracle.close()


def test_out_of_range_pair_raises(shard_dir):
    with ParallelOracle(
        shard_dir, workers=2, executor="thread", min_parallel_batch=1
    ) as oracle:
        with pytest.raises(IndexError):
            oracle.query_batch([(0, 1), (0, 10_000)])


def test_close_is_idempotent(shard_dir):
    oracle = ParallelOracle(shard_dir, workers=2, executor="thread")
    oracle.query_batch([(0, 1)] * 2048)
    oracle.close()
    oracle.close()


def test_invalid_configuration_rejected(shard_dir):
    with pytest.raises(ValueError, match="executor"):
        ParallelOracle(shard_dir, executor="greenlet")
    with pytest.raises(ValueError, match="workers"):
        ParallelOracle(shard_dir, workers=0)
    with pytest.raises(ValueError, match="transport"):
        ParallelOracle(shard_dir, transport="carrier-pigeon")


def test_shm_transport_matches_pickle_transport(shard_dir, expected):
    pytest.importorskip("numpy")
    from repro.serve import shm

    if not shm.available():
        pytest.skip("shared-memory fan-out unavailable (no fork)")
    pairs, want = expected
    with ParallelOracle(
        shard_dir, workers=2, route="fanout", min_parallel_batch=1
    ) as oracle:
        assert oracle.query_batch(pairs) == want
        # The default transport engaged shm and recorded routing hits.
        assert oracle._shm is not None
        assert sum(oracle.shard_hits) == len(pairs)
    with ParallelOracle(
        shard_dir, workers=2, route="fanout", min_parallel_batch=1,
        transport="pickle",
    ) as oracle:
        assert oracle.query_batch(pairs) == want
        assert oracle._shm is None
        assert oracle.shard_hits is None


def test_shm_transport_survives_update_reconcile(shard_dir, flat, expected):
    pytest.importorskip("numpy")
    from repro.core.labels import LabelDelta
    from repro.serve import shm

    if not shm.available():
        pytest.skip("shared-memory fan-out unavailable (no fork)")
    pairs, want = expected
    with ParallelOracle(
        shard_dir, workers=2, route="fanout", min_parallel_batch=1
    ) as oracle:
        assert oracle.query_batch(pairs) == want
        delta = LabelDelta.empty(flat.n, flat.directed)
        delta.out[5] = list(flat.out_label(5))
        oracle.apply_updates(delta)
        # Staged updates force inline; the stale forked workers are
        # dropped at reconcile and the next fan-out re-forks fresh.
        assert oracle.query_batch(pairs) == want
        oracle.reconcile()
        assert oracle._shm is None
        assert oracle.query_batch(pairs) == want


def test_default_workers_bounded_by_shards(shard_dir):
    oracle = ParallelOracle(shard_dir, executor="thread")
    try:
        assert 1 <= oracle.workers <= 3
    finally:
        oracle.close()
