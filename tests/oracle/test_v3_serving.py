"""Every query surface returns bit-identical results on v3 vs v2.

The acceptance bar for the compact format: the oracle facade (single
pair, batch, via-pivot), k-NN and one-to-all, path reconstruction,
the verifier, and sharded + parallel serving must all be unable to
tell a v3-backed store from a v2-backed one.
"""

import random

import pytest

from repro.core.flatstore import FlatLabelStore
from repro.core.hybrid import HybridBuilder
from repro.core.quantized import QuantizedLabelStore
from repro.core.verify import verify_index
from repro.graphs.generators import glp_graph
from repro.oracle import DistanceOracle, ParallelOracle, ShardedLabelStore

N = 120


@pytest.fixture(scope="module", params=[False, True], ids=["undir", "dir"])
def setup(request, tmp_path_factory):
    g = glp_graph(N, seed=8, directed=request.param)
    index = HybridBuilder(g).build().index
    flat = FlatLabelStore.from_index(index)
    root = tmp_path_factory.mktemp("v3serving")
    p2 = root / "index.idx2"
    p3 = root / "index.idx3"
    flat.save(p2)
    QuantizedLabelStore.from_flat(flat).save(p3)
    return g, flat, p2, p3


@pytest.fixture(scope="module")
def oracles(setup):
    g, _, p2, p3 = setup
    o2 = DistanceOracle.open(p2, graph=g)
    o3 = DistanceOracle.open(p3, graph=g)
    assert isinstance(o3.store, QuantizedLabelStore)
    return o2, o3


def pairs(seed=31, count=800):
    rng = random.Random(seed)
    return [(rng.randrange(N), rng.randrange(N)) for _ in range(count)]


class TestOracleSurfaces:
    def test_single_pair(self, oracles):
        o2, o3 = oracles
        for s, t in pairs():
            assert o3.query(s, t) == o2.query(s, t)

    def test_batch(self, oracles):
        o2, o3 = oracles
        p = pairs(32)
        assert o3.query_batch(p) == o2.query_batch(p)

    def test_query_via(self, oracles):
        o2, o3 = oracles
        for s, t in pairs(33, 300):
            assert o3.query_via(s, t) == o2.query_via(s, t)

    def test_reachability(self, oracles):
        o2, o3 = oracles
        for s, t in pairs(34, 200):
            assert o3.is_reachable(s, t) == o2.is_reachable(s, t)

    def test_knn(self, oracles):
        o2, o3 = oracles
        for s in range(0, N, 7):
            assert o3.nearest(s, k=10) == o2.nearest(s, k=10)

    def test_one_to_all(self, oracles):
        o2, o3 = oracles
        for s in range(0, N, 11):
            assert o3.distances_from(s) == o2.distances_from(s)
            assert o3.distances_to(s) == o2.distances_to(s)

    def test_paths(self, oracles):
        o2, o3 = oracles
        for s, t in pairs(35, 100):
            p2 = o2.reconstruct_path(s, t)
            p3 = o3.reconstruct_path(s, t)
            assert p3 == p2

    def test_verifier(self, setup):
        g, _, _, p3 = setup
        store = QuantizedLabelStore.load(p3)
        report = verify_index(g, store, samples=300)
        assert report.ok, report.violations[:5]


class TestShardedServing:
    def test_sharded_v3_dir_bit_identical(self, setup, tmp_path):
        g, flat, _, p3 = setup
        q = QuantizedLabelStore.load(p3)
        shard_dir = tmp_path / "shards"
        ShardedLabelStore.split(q, 3).save(shard_dir, format="v3")
        sharded = ShardedLabelStore.load(shard_dir, use_mmap=True)
        try:
            p = pairs(36)
            expected = [flat.query(s, t) for s, t in p]
            assert [sharded.query(s, t) for s, t in p] == expected
            assert [sharded.query_via(s, t) for s, t in p] == [
                flat.query_via(s, t) for s, t in p
            ]
            targets = [t for _, t in p[:50]]
            assert sharded.query_group(5, targets) == flat.query_group(
                5, targets
            )
        finally:
            sharded.close()

    def test_parallel_oracle_on_v3_shards(self, setup, tmp_path):
        g, flat, _, p3 = setup
        shard_dir = tmp_path / "shards"
        q = QuantizedLabelStore.load(p3)
        ShardedLabelStore.split(q, 3).save(shard_dir, format="v3")
        p = pairs(37, 600)
        expected = [flat.query(s, t) for s, t in p]
        with ParallelOracle(
            shard_dir, workers=2, executor="thread",
            min_parallel_batch=1, cache_size=0,
        ) as oracle:
            assert oracle.query_batch(p) == expected
        # And with the kernel pinned off, through the scalar chunks.
        with ParallelOracle(
            shard_dir, workers=2, executor="thread",
            min_parallel_batch=1, cache_size=0, kernel="off",
        ) as oracle:
            assert oracle.query_batch(p) == expected

    def test_resplit_v3_shards(self, setup, tmp_path):
        _, flat, _, p3 = setup
        q = QuantizedLabelStore.load(p3)
        sharded = ShardedLabelStore.split(q, 4)
        resharded = ShardedLabelStore.split(sharded, 2)
        p = pairs(38, 300)
        assert [resharded.query(s, t) for s, t in p] == [
            flat.query(s, t) for s, t in p
        ]
