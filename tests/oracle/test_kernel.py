"""Tests for the vectorized batch query kernel.

The contract under test is simple and strict: for any store the kernel
supports, any batch, and either join strategy, the answers are
bit-identical to the scalar reference path (the shared probe helpers
in :mod:`repro.core.flatstore`).
"""

import random

import pytest

from repro.core.flatstore import FlatLabelStore
from repro.core.hybrid import HybridBuilder
from repro.core.quantized import QuantizedLabelStore
from repro.graphs.generators import glp_graph
from repro.oracle import (
    DistanceOracle,
    ParallelOracle,
    ShardedLabelStore,
    evaluate_batch,
)
from repro.oracle import kernel
from tests.conftest import random_graph

np = pytest.importorskip("numpy")


def build_flat(n=120, seed=3, directed=False):
    g = glp_graph(n, seed=seed, directed=directed)
    return FlatLabelStore.from_index(HybridBuilder(g).build().index)


def batch(n, count, seed, include_special=True):
    rng = random.Random(seed)
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]
    if include_special:
        pairs += [(0, 0), (n - 1, n - 1)]      # s == t
        pairs += pairs[:5]                      # duplicates
    return pairs


@pytest.fixture(scope="module", params=[False, True], ids=["undir", "dir"])
def flat(request):
    return build_flat(directed=request.param)


class TestSupports:
    def test_flat_and_quantized_supported(self, flat):
        assert kernel.available()
        assert kernel.supports(flat)
        assert kernel.supports(QuantizedLabelStore.from_flat(flat))
        assert kernel.supports(ShardedLabelStore.split(flat, 3))

    def test_tuple_list_not_supported(self, flat):
        assert not kernel.supports(flat.to_index())


class TestBitIdentity:
    def test_flat_matches_scalar(self, flat):
        pairs = batch(flat.n, 1500, seed=11)
        expected = [flat.query(s, t) for s, t in pairs]
        assert kernel.batch_eval(flat, pairs) == expected

    def test_quantized_matches_scalar(self, flat):
        q = QuantizedLabelStore.from_flat(flat)
        pairs = batch(flat.n, 1500, seed=12)
        assert kernel.batch_eval(q, pairs) == [
            flat.query(s, t) for s, t in pairs
        ]

    def test_sharded_matches_scalar(self, flat):
        sharded = ShardedLabelStore.split(flat, 4)
        pairs = batch(flat.n, 1500, seed=13)
        assert kernel.batch_eval(sharded, pairs) == [
            flat.query(s, t) for s, t in pairs
        ]

    def test_sharded_quantized_shards(self, flat, tmp_path):
        ShardedLabelStore.split(flat, 3).save(tmp_path / "s", format="v3")
        sharded = ShardedLabelStore.load(tmp_path / "s")
        assert all(
            isinstance(s, QuantizedLabelStore) for s in sharded.shards
        )
        pairs = batch(flat.n, 800, seed=14)
        assert kernel.batch_eval(sharded, pairs) == [
            flat.query(s, t) for s, t in pairs
        ]

    def test_sorted_join_matches(self, flat, monkeypatch):
        # Force the searchsorted join (the huge-vertex-count fallback).
        monkeypatch.setattr(kernel, "_DENSE_TABLE_ELEMS", 0)
        fresh = build_flat(directed=flat.directed)
        pairs = batch(fresh.n, 1500, seed=15)
        assert kernel.batch_eval(fresh, pairs) == [
            fresh.query(s, t) for s, t in pairs
        ]

    @pytest.mark.parametrize(
        "seed", [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]
    )
    def test_random_graphs(self, seed):
        g = random_graph(seed, max_n=60)
        flat = FlatLabelStore.from_index(HybridBuilder(g).build().index)
        q = QuantizedLabelStore.from_flat(flat)
        pairs = [(s, t) for s in range(g.num_vertices)
                 for t in range(g.num_vertices)]
        expected = [flat.query(s, t) for s, t in pairs]
        assert kernel.batch_eval(flat, pairs) == expected
        assert kernel.batch_eval(q, pairs) == expected

    def test_mixed_key_dtype_shards(self):
        # Shard key spaces straddling the int32 boundary: the small
        # shard packs its keys in int32, the big one needs int64, and
        # the shifted cross-shard join must not wrap (regression: the
        # target keys used the target shard's dtype even though they
        # land in the source shard's key space).
        from array import array

        n = 92_682  # 92_682^2 > 2^31, 1_000 * 92_682 < 2^31
        split = 1_000

        def synth_shard(lo, hi, special):
            offsets = array("q", [0])
            pivots = array("i")
            dists = array("d")
            for v in range(lo, hi):
                for p, d in special.get(v, [(v, 0.0)]):
                    pivots.append(p)
                    dists.append(d)
                offsets.append(len(pivots))
            return FlatLabelStore(
                hi - lo, False, offsets, pivots, dists,
                offsets, pivots, dists,
            )

        s, t = 5, 50_000
        special = {
            s: [(0, 1.0), (s, 0.0)],
            t: [(0, 1.0), (t, 0.0)],
        }
        sharded = ShardedLabelStore(
            [synth_shard(0, split, special),
             synth_shard(split, n, special)],
            [(0, split), (split, n)],
        )
        small = kernel._sides(sharded.shards[0], n)[0].keys.dtype
        big = kernel._sides(sharded.shards[1], n)[0].keys.dtype
        assert (small, big) == (np.int32, np.int64)
        pairs = [(s, t), (t, s), (s, 7), (t, t)]
        assert kernel.batch_eval(sharded, pairs) == [
            sharded.query(a, b) for a, b in pairs
        ]

    def test_unreachable_pairs_inf(self):
        from repro.graphs.digraph import Graph

        g = Graph.from_edges(4, [(0, 1), (2, 3)], directed=False)
        flat = FlatLabelStore.from_index(HybridBuilder(g).build().index)
        assert kernel.batch_eval(flat, [(0, 2), (1, 3), (0, 1)]) == [
            float("inf"), float("inf"), 1.0,
        ]

    def test_empty_batch(self, flat):
        assert kernel.batch_eval(flat, []) == []

    def test_out_of_range_raises(self, flat):
        with pytest.raises(IndexError, match="out of range"):
            kernel.batch_eval(flat, [(0, flat.n)])
        with pytest.raises(IndexError, match="out of range"):
            kernel.batch_eval(flat, [(-1, 0)])


class TestEvaluateBatchIntegration:
    def test_kernel_on_off_agree(self, flat):
        pairs = batch(flat.n, 1000, seed=21)
        off = evaluate_batch(flat, pairs, kernel="off")
        assert evaluate_batch(flat, pairs, kernel="on") == off
        assert evaluate_batch(flat, pairs, kernel="auto") == off

    def test_kernel_on_unsupported_raises(self, flat):
        with pytest.raises(ValueError, match="kernel='on'"):
            evaluate_batch(flat.to_index(), [(0, 1)], kernel="on")

    def test_bad_kernel_mode_rejected(self, flat):
        with pytest.raises(ValueError, match="kernel must be one of"):
            evaluate_batch(flat, [(0, 1)], kernel="fast")

    def test_auto_falls_back_for_lists(self, flat):
        index = flat.to_index()
        pairs = batch(flat.n, 200, seed=22)
        assert evaluate_batch(index, pairs, kernel="auto") == [
            flat.query(s, t) for s, t in pairs
        ]

    def test_cache_filled_by_kernel_path(self, flat):
        from repro.oracle.cache import LRUCache

        cache = LRUCache(1024)
        pairs = batch(flat.n, 100, seed=23)
        first = evaluate_batch(flat, pairs, cache=cache, kernel="on")
        assert cache.info().size > 0
        # Second pass must be served from the cache, identically.
        assert evaluate_batch(flat, pairs, cache=cache, kernel="on") == first

    def test_oracle_kernel_knob(self, flat):
        pairs = batch(flat.n, 500, seed=24)
        on = DistanceOracle(flat, cache_size=0, kernel="on")
        off = DistanceOracle(flat, cache_size=0, kernel="off")
        assert on.query_batch(pairs) == off.query_batch(pairs)

    def test_parallel_oracle_rejects_bad_kernel_mode(self, flat, tmp_path):
        shard_dir = tmp_path / "shards"
        ShardedLabelStore.split(flat, 2).save(shard_dir)
        with pytest.raises(ValueError, match="kernel must be one of"):
            ParallelOracle(shard_dir, kernel="bogus")

    def test_mmapped_v3_through_kernel(self, flat, tmp_path):
        q = QuantizedLabelStore.from_flat(flat)
        q.save(tmp_path / "i.idx3")
        oracle = DistanceOracle.open(
            tmp_path / "i.idx3", use_mmap=True, kernel="on", cache_size=0
        )
        try:
            assert oracle.store.is_mmapped
            pairs = batch(flat.n, 500, seed=25)
            assert oracle.query_batch(pairs) == [
                flat.query(s, t) for s, t in pairs
            ]
        finally:
            oracle.close()
