"""Tests for the utils package."""

import time

import pytest

from repro.utils.prettyprint import format_bytes, format_count, render_table
from repro.utils.timer import Timer, format_duration
from repro.utils.validation import (
    check_index,
    check_nonnegative,
    check_positive,
    check_probability,
)


class TestTimer:
    def test_measures_time(self):
        t = Timer().start()
        time.sleep(0.01)
        elapsed = t.stop()
        assert 0.005 < elapsed < 1.0

    def test_accumulates(self):
        t = Timer()
        t.start()
        t.stop()
        first = t.elapsed
        t.start()
        t.stop()
        assert t.elapsed >= first

    def test_context_manager(self):
        with Timer() as t:
            time.sleep(0.001)
        assert t.elapsed > 0

    def test_double_start_rejected(self):
        t = Timer().start()
        with pytest.raises(RuntimeError):
            t.start()
        t.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        t = Timer()
        t.start()
        t.stop()
        t.reset()
        assert t.elapsed == 0.0

    def test_reset_while_running_rejected(self):
        t = Timer().start()
        with pytest.raises(RuntimeError):
            t.reset()
        t.stop()

    def test_running_flag(self):
        t = Timer()
        assert not t.running
        t.start()
        assert t.running
        t.stop()
        assert not t.running


class TestFormatDuration:
    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (2.1e-6, "2.1us"),
            (0.0042, "4.2ms"),
            (3.5, "3.50s"),
            (75, "1m15s"),
        ],
    )
    def test_units(self, seconds, expected):
        assert format_duration(seconds) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_duration(-1)


class TestFormatters:
    @pytest.mark.parametrize(
        "n,expected",
        [(512, "512B"), (2048, "2.0KB"), (3 * 1024**2, "3.0MB")],
    )
    def test_bytes(self, n, expected):
        assert format_bytes(n) == expected

    @pytest.mark.parametrize(
        "n,expected",
        [(950, "950"), (62_000, "62.0K"), (5_300_000, "5.3M"),
         (2_000_000_000, "2.00B")],
    )
    def test_counts(self, n, expected):
        assert format_count(n) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bytes(-1)
        with pytest.raises(ValueError):
            format_count(-1)


class TestRenderTable:
    def test_alignment_and_none(self):
        out = render_table(
            ["name", "val"],
            [["a", 1], ["bb", None]],
            title="T",
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "—" in out
        assert "name" in lines[2]

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError):
            check_positive("x", 0)

    def test_check_nonnegative(self):
        check_nonnegative("x", 0)
        with pytest.raises(ValueError):
            check_nonnegative("x", -1)

    def test_check_probability(self):
        check_probability("p", 0.5)
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_check_index(self):
        check_index("i", 0, 3)
        with pytest.raises(IndexError):
            check_index("i", 3, 3)
        with pytest.raises(TypeError):
            check_index("i", 1.5, 3)
