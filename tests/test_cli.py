"""End-to-end CLI tests (in-process via repro.cli.main)."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.txt"
    main(["generate", "glp", "-n", "200", "--density", "4",
          "-o", str(path)])
    return path


class TestGenerate:
    def test_generate_glp(self, tmp_path, capsys):
        out = tmp_path / "g.txt"
        rc = main(["generate", "glp", "-n", "100", "-o", str(out)])
        assert rc == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    @pytest.mark.parametrize("model", ["ba", "er"])
    def test_other_models(self, tmp_path, model):
        out = tmp_path / "g.txt"
        assert main(["generate", model, "-n", "50", "-o", str(out)]) == 0

    def test_directed_flag(self, tmp_path):
        out = tmp_path / "g.txt"
        main(["generate", "glp", "-n", "50", "--directed", "-o", str(out)])
        from repro.graphs.io import read_edge_list

        assert read_edge_list(out, directed=True).num_edges > 0


class TestStats:
    def test_stats_output(self, graph_file, capsys):
        rc = main(["stats", str(graph_file)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "|V|" in out
        assert "rank exponent" in out


class TestBuildAndQuery:
    def test_build_then_query(self, graph_file, tmp_path, capsys):
        idx = tmp_path / "g.idx"
        rc = main(["build", str(graph_file), "-o", str(idx)])
        assert rc == 0
        assert idx.exists()
        rc = main(["query", str(idx), "0", "10", "3", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "dist(0, 10)" in out
        assert "dist(3, 3) = 0" in out

    def test_build_strategies(self, graph_file, tmp_path):
        for strategy in ("stepping", "doubling", "hybrid"):
            idx = tmp_path / f"{strategy}.idx"
            rc = main([
                "build", str(graph_file), "-o", str(idx),
                "--strategy", strategy,
            ])
            assert rc == 0

    def test_query_odd_args_rejected(self, graph_file, tmp_path, capsys):
        idx = tmp_path / "g.idx"
        main(["build", str(graph_file), "-o", str(idx)])
        rc = main(["query", str(idx), "0", "1", "2"])
        assert rc == 2
        assert "even number" in capsys.readouterr().err

    def test_build_refuses_overwrite_without_force(
        self, graph_file, tmp_path, capsys
    ):
        idx = tmp_path / "g.idx"
        assert main(["build", str(graph_file), "-o", str(idx)]) == 0
        capsys.readouterr()
        rc = main(["build", str(graph_file), "-o", str(idx)])
        assert rc == 2
        assert "--force" in capsys.readouterr().err

    def test_build_force_overwrites(self, graph_file, tmp_path):
        idx = tmp_path / "g.idx"
        assert main(["build", str(graph_file), "-o", str(idx)]) == 0
        rc = main(["build", str(graph_file), "-o", str(idx), "--force"])
        assert rc == 0

    def test_build_engines_agree(self, graph_file, tmp_path, capsys):
        """--engine dict/array (and --jobs) write identical index files."""
        pytest.importorskip("numpy")
        outputs = {}
        for name, flags in {
            "dict": ["--engine", "dict"],
            "array": ["--engine", "array"],
            "jobs": ["--engine", "array", "--jobs", "2"],
        }.items():
            idx = tmp_path / f"{name}.idx"
            rc = main(["build", str(graph_file), "-o", str(idx)] + flags)
            assert rc == 0
            outputs[name] = idx.read_bytes()
        assert outputs["dict"] == outputs["array"] == outputs["jobs"]
        assert "engine" in capsys.readouterr().out

    def test_build_jobs_require_array_engine(
        self, graph_file, tmp_path, capsys
    ):
        idx = tmp_path / "g.idx"
        rc = main([
            "build", str(graph_file), "-o", str(idx),
            "--engine", "dict", "--jobs", "2",
        ])
        assert rc == 2
        assert "--engine array" in capsys.readouterr().err
        assert not idx.exists()


class TestConvertAndBatch:
    @pytest.fixture
    def v1_index(self, graph_file, tmp_path):
        idx = tmp_path / "g.idx"
        main(["build", str(graph_file), "-o", str(idx)])
        return idx

    def test_convert_to_v2_and_query(self, v1_index, tmp_path, capsys):
        v2 = tmp_path / "g.idx2"
        rc = main(["convert", str(v1_index), "-o", str(v2)])
        assert rc == 0
        assert "format v2" in capsys.readouterr().out
        rc = main(["query", str(v2), "0", "10"])
        assert rc == 0
        assert "dist(0, 10)" in capsys.readouterr().out

    def test_convert_round_trip_preserves_answers(self, v1_index, tmp_path,
                                                  capsys):
        v2 = tmp_path / "g.idx2"
        back = tmp_path / "g.back.idx"
        main(["convert", str(v1_index), "-o", str(v2)])
        main(["convert", str(v2), "-o", str(back), "--format", "v1"])
        main(["query", str(v1_index), "0", "17"])
        first = capsys.readouterr().out.splitlines()[-1]
        main(["query", str(back), "0", "17"])
        second = capsys.readouterr().out.splitlines()[-1]
        assert first == second

    def test_build_v2_format_directly(self, graph_file, tmp_path, capsys):
        idx = tmp_path / "g.idx2"
        rc = main(["build", str(graph_file), "-o", str(idx), "--format",
                   "v2"])
        assert rc == 0
        assert main(["query", str(idx), "3", "3"]) == 0
        assert "dist(3, 3) = 0" in capsys.readouterr().out

    def test_convert_to_v3_and_query(self, v1_index, tmp_path, capsys):
        v3 = tmp_path / "g.idx3"
        rc = main(["convert", str(v1_index), "-o", str(v3), "--format",
                   "v3"])
        assert rc == 0
        assert "format v3" in capsys.readouterr().out
        rc = main(["query", str(v3), "0", "10", "--mmap"])
        assert rc == 0
        assert "dist(0, 10)" in capsys.readouterr().out

    def test_convert_v3_stats_report(self, v1_index, tmp_path, capsys):
        v3 = tmp_path / "g.idx3"
        rc = main(["convert", str(v1_index), "-o", str(v3), "--format",
                   "v3", "--stats"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "pivot width" in out
        assert "dist width" in out
        assert "bytes/entry" in out

    def test_convert_v3_half_the_v2_size(self, v1_index, tmp_path, capsys):
        v2 = tmp_path / "g.idx2"
        v3 = tmp_path / "g.idx3"
        main(["convert", str(v1_index), "-o", str(v2)])
        main(["convert", str(v1_index), "-o", str(v3), "--format", "v3"])
        assert v3.stat().st_size <= 0.5 * v2.stat().st_size

    def test_convert_v3_round_trip_preserves_answers(
        self, v1_index, tmp_path, capsys
    ):
        v3 = tmp_path / "g.idx3"
        back = tmp_path / "g.back.idx2"
        main(["convert", str(v1_index), "-o", str(v3), "--format", "v3"])
        main(["convert", str(v3), "-o", str(back), "--format", "v2"])
        main(["query", str(v1_index), "0", "17"])
        first = capsys.readouterr().out.splitlines()[-1]
        main(["query", str(back), "0", "17"])
        second = capsys.readouterr().out.splitlines()[-1]
        assert first == second

    def test_build_v3_format_directly(self, graph_file, tmp_path, capsys):
        idx = tmp_path / "g.idx3"
        rc = main(["build", str(graph_file), "-o", str(idx), "--format",
                   "v3"])
        assert rc == 0
        assert main(["query", str(idx), "3", "3"]) == 0
        assert "dist(3, 3) = 0" in capsys.readouterr().out

    def test_batch_kernel_on_off_agree(self, v1_index, graph_file,
                                       tmp_path, capsys):
        v3 = tmp_path / "g.idx3"
        main(["convert", str(v1_index), "-o", str(v3), "--format", "v3"])
        batch = tmp_path / "pairs.txt"
        batch.write_text("0 10\n3 7\n5 5\n1 40\n")
        capsys.readouterr()
        assert main(["query", str(v3), "--batch", str(batch),
                     "--kernel", "on"]) == 0
        on_out = capsys.readouterr().out
        assert main(["query", str(v1_index), "--batch", str(batch),
                     "--kernel", "off"]) == 0
        off_out = capsys.readouterr().out
        assert on_out == off_out

    def test_query_kernel_on_without_vector_path(self, v1_index, tmp_path,
                                                 capsys):
        batch = tmp_path / "pairs.txt"
        batch.write_text("0 1\n")
        rc = main(["query", str(v1_index), "--batch", str(batch),
                   "--backend", "list", "--kernel", "on"])
        assert rc == 2
        assert "kernel" in capsys.readouterr().err

    def test_query_missing_index(self, tmp_path, capsys):
        rc = main(["query", str(tmp_path / "nope.idx"), "0", "1"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_query_corrupt_index(self, tmp_path, capsys):
        bad = tmp_path / "bad.idx"
        bad.write_bytes(b"garbage!")
        rc = main(["query", str(bad), "0", "1"])
        assert rc == 2
        assert "not a label index" in capsys.readouterr().err

    def test_convert_missing_input(self, tmp_path, capsys):
        rc = main(["convert", str(tmp_path / "nope.idx"), "-o",
                   str(tmp_path / "out.idx2")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_convert_corrupt_input(self, tmp_path, capsys):
        bad = tmp_path / "bad.idx"
        bad.write_bytes(b"garbage!")
        rc = main(["convert", str(bad), "-o", str(tmp_path / "out.idx2")])
        assert rc == 2
        assert "not a label index" in capsys.readouterr().err

    def test_query_batch_file(self, v1_index, tmp_path, capsys):
        batch = tmp_path / "pairs.txt"
        batch.write_text("# workload\n0 10\n3 3\n10 0\n")
        rc = main(["query", str(v1_index), "--batch", str(batch)])
        assert rc == 0
        captured = capsys.readouterr()
        lines = captured.out.strip().splitlines()
        assert len(lines) == 3
        assert lines[1] == "3\t3\t0"
        assert "answered 3 pairs" in captured.err

    def test_query_batch_with_mmap_backend(self, v1_index, tmp_path, capsys):
        v2 = tmp_path / "g.idx2"
        main(["convert", str(v1_index), "-o", str(v2)])
        batch = tmp_path / "pairs.txt"
        batch.write_text("0 10\n")
        capsys.readouterr()
        rc = main(["query", str(v2), "--batch", str(batch), "--mmap"])
        assert rc == 0
        out_mmap = capsys.readouterr().out
        rc = main(["query", str(v2), "--batch", str(batch), "--backend",
                   "list"])
        assert rc == 0
        assert capsys.readouterr().out == out_mmap

    def test_query_missing_batch_file(self, v1_index, capsys):
        rc = main(["query", str(v1_index), "--batch", "/nonexistent.txt"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_query_malformed_batch_file(self, v1_index, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("0 5\nbogus\n")
        rc = main(["query", str(v1_index), "--batch", str(bad)])
        assert rc == 2
        assert "expected 's t'" in capsys.readouterr().err

    def test_query_out_of_range_vertex(self, v1_index, capsys):
        rc = main(["query", str(v1_index), "0", "999999"])
        assert rc == 2
        assert "out of range" in capsys.readouterr().err

    def test_query_batch_out_of_range_vertex(self, v1_index, tmp_path,
                                             capsys):
        batch = tmp_path / "oob.txt"
        batch.write_text("0 5\n0 999999\n")
        rc = main(["query", str(v1_index), "--batch", str(batch)])
        assert rc == 2
        assert "out of range" in capsys.readouterr().err

    def test_query_flags_before_pairs(self, v1_index, capsys):
        rc = main(["query", str(v1_index), "--backend", "list", "0", "10"])
        assert rc == 0
        assert "dist(0, 10)" in capsys.readouterr().out

    def test_non_query_extra_args_still_rejected(self, graph_file):
        with pytest.raises(SystemExit):
            main(["stats", str(graph_file), "17"])

    def test_query_without_pairs_or_batch(self, v1_index, capsys):
        rc = main(["query", str(v1_index)])
        assert rc == 2
        assert "provide vertex pairs" in capsys.readouterr().err

    def test_verify_reads_v2(self, graph_file, v1_index, tmp_path, capsys):
        v2 = tmp_path / "g.idx2"
        main(["convert", str(v1_index), "-o", str(v2)])
        rc = main(["verify", str(graph_file), str(v2)])
        assert rc == 0
        assert "OK" in capsys.readouterr().out


class TestShardAndParallelQuery:
    @pytest.fixture
    def v2_index(self, graph_file, tmp_path):
        idx = tmp_path / "g.idx2"
        main(["build", str(graph_file), "-o", str(idx), "--format", "v2"])
        return idx

    @pytest.fixture
    def shard_dir(self, v2_index, tmp_path):
        out = tmp_path / "g.shards"
        assert main(["shard", str(v2_index), "-o", str(out),
                     "--shards", "3"]) == 0
        return out

    def test_shard_writes_manifest_and_files(self, shard_dir, capsys):
        assert (shard_dir / "manifest.json").exists()
        for i in range(3):
            assert (shard_dir / f"shard-{i:04d}.idx2").exists()

    def test_shard_v3_format_and_query(self, v2_index, tmp_path, capsys):
        out = tmp_path / "g.shards3"
        rc = main(["shard", str(v2_index), "-o", str(out),
                   "--shards", "3", "--format", "v3"])
        assert rc == 0
        assert "format v3" in capsys.readouterr().out
        for i in range(3):
            assert (out / f"shard-{i:04d}.idx3").exists()
        main(["query", str(v2_index), "0", "10"])
        single = capsys.readouterr().out
        rc = main(["query", "--shards", str(out), "0", "10"])
        assert rc == 0
        assert capsys.readouterr().out == single

    def test_shard_v3_smaller_than_v2(self, v2_index, shard_dir, tmp_path):
        out = tmp_path / "g.shards3"
        assert main(["shard", str(v2_index), "-o", str(out),
                     "--shards", "3", "--format", "v3"]) == 0
        v2_total = sum(
            f.stat().st_size for f in shard_dir.glob("shard-*.idx2")
        )
        v3_total = sum(f.stat().st_size for f in out.glob("shard-*.idx3"))
        assert v3_total <= 0.5 * v2_total

    def test_verify_reads_v3_shards(self, graph_file, v2_index, tmp_path,
                                    capsys):
        out = tmp_path / "g.shards3"
        main(["shard", str(v2_index), "-o", str(out), "--shards", "2",
              "--format", "v3"])
        rc = main(["verify", str(graph_file), str(out)])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_shard_refuses_overwrite_without_force(self, v2_index,
                                                   shard_dir, capsys):
        rc = main(["shard", str(v2_index), "-o", str(shard_dir)])
        assert rc == 2
        assert "--force" in capsys.readouterr().err

    def test_shard_force_overwrites_and_prunes(self, v2_index, shard_dir):
        rc = main(["shard", str(v2_index), "-o", str(shard_dir),
                   "--shards", "2", "--force"])
        assert rc == 0
        assert not (shard_dir / "shard-0002.idx2").exists()

    def test_shard_missing_input(self, tmp_path, capsys):
        rc = main(["shard", str(tmp_path / "nope.idx"), "-o",
                   str(tmp_path / "out")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_shard_bad_count(self, v2_index, tmp_path, capsys):
        rc = main(["shard", str(v2_index), "-o", str(tmp_path / "out"),
                   "--shards", "0"])
        assert rc == 2
        assert ">= 1" in capsys.readouterr().err

    def test_query_shards_matches_single_index(self, v2_index, shard_dir,
                                               capsys):
        main(["query", str(v2_index), "0", "10", "3", "3"])
        single = capsys.readouterr().out
        rc = main(["query", "--shards", str(shard_dir), "--executor",
                   "thread", "0", "10", "3", "3"])
        assert rc == 0
        assert capsys.readouterr().out == single

    def test_query_shards_batch_file(self, v2_index, shard_dir, tmp_path,
                                     capsys):
        batch = tmp_path / "pairs.txt"
        batch.write_text("0 10\n3 3\n10 0\n")
        main(["query", str(v2_index), "--batch", str(batch)])
        single = capsys.readouterr().out
        rc = main(["query", "--shards", str(shard_dir), "--workers", "2",
                   "--executor", "thread", "--batch", str(batch)])
        assert rc == 0
        assert capsys.readouterr().out == single

    def test_query_index_and_shards_rejected(self, v2_index, shard_dir,
                                             capsys):
        rc = main(["query", str(v2_index), "--shards", str(shard_dir),
                   "0", "10"])
        assert rc == 2
        assert "not both" in capsys.readouterr().err

    def test_query_neither_index_nor_shards(self, capsys):
        rc = main(["query", "--batch", "whatever.txt"])
        assert rc == 2
        assert "INDEX file or --shards" in capsys.readouterr().err

    def test_query_missing_shard_dir(self, tmp_path, capsys):
        rc = main(["query", "--shards", str(tmp_path / "nope"), "0", "1"])
        assert rc == 2
        assert "not a shard directory" in capsys.readouterr().err

    def test_query_shards_out_of_range(self, shard_dir, capsys):
        rc = main(["query", "--shards", str(shard_dir), "--executor",
                   "thread", "0", "999999"])
        assert rc == 2
        assert "out of range" in capsys.readouterr().err

    def test_verify_accepts_shard_directory(self, graph_file, shard_dir,
                                            capsys):
        rc = main(["verify", str(graph_file), str(shard_dir)])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_convert_refuses_overwrite_without_force(self, v2_index,
                                                     tmp_path, capsys):
        out = tmp_path / "conv.idx"
        assert main(["convert", str(v2_index), "-o", str(out),
                     "--format", "v1"]) == 0
        capsys.readouterr()
        rc = main(["convert", str(v2_index), "-o", str(out),
                   "--format", "v1"])
        assert rc == 2
        assert "--force" in capsys.readouterr().err
        rc = main(["convert", str(v2_index), "-o", str(out),
                   "--format", "v1", "--force"])
        assert rc == 0


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bench_choices(self):
        args = build_parser().parse_args(["bench", "table7"])
        assert args.target == "table7"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "table99"])


class TestVerify:
    def test_verify_good_index(self, graph_file, tmp_path, capsys):
        idx = tmp_path / "g.idx"
        main(["build", str(graph_file), "-o", str(idx)])
        rc = main(["verify", str(graph_file), str(idx)])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_wrong_graph_fails(self, graph_file, tmp_path, capsys):
        idx = tmp_path / "g.idx"
        main(["build", str(graph_file), "-o", str(idx)])
        other = tmp_path / "other.txt"
        main(["generate", "glp", "-n", "200", "--density", "4",
              "--seed", "9", "-o", str(other)])
        rc = main(["verify", str(other), str(idx)])
        assert rc == 1
        assert "violation" in capsys.readouterr().out


class TestUpdate:
    @pytest.fixture
    def built(self, graph_file, tmp_path):
        idx = tmp_path / "g.idx"
        main(["build", str(graph_file), "-o", str(idx), "--format", "v2"])
        edges = tmp_path / "new.txt"
        edges.write_text("0 199\n5 123  # comment\n7 7\n5 123\n")
        return idx, edges

    def test_update_in_place(self, built, capsys):
        idx, edges = built
        capsys.readouterr()
        rc = main(["update", str(idx), "--edges", str(edges)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "inserted 2 of 4 edges" in out
        rc = main(["update", str(idx), "--edges", str(edges)])
        assert rc == 0
        capsys.readouterr()
        assert main(["query", str(idx), "0", "199"]) == 0
        assert "dist(0, 199) = 1" in capsys.readouterr().out

    def test_update_to_output_keeps_source(self, built, tmp_path, capsys):
        idx, edges = built
        out_idx = tmp_path / "updated.idx"
        before = idx.read_bytes()
        rc = main(["update", str(idx), "--edges", str(edges),
                   "-o", str(out_idx), "--engine", "dict"])
        assert rc == 0
        assert idx.read_bytes() == before
        capsys.readouterr()
        main(["query", str(out_idx), "0", "199"])
        assert "dist(0, 199) = 1" in capsys.readouterr().out

    def test_update_v1_index_keeps_format(self, built, tmp_path, capsys):
        idx, edges = built
        idx1 = tmp_path / "g1.idx"
        main(["convert", str(idx), "-o", str(idx1), "--format", "v1"])
        rc = main(["update", str(idx1), "--edges", str(edges)])
        assert rc == 0
        assert idx1.read_bytes()[4] == 1  # still a v1 file
        capsys.readouterr()
        main(["query", str(idx1), "0", "199"])
        assert "dist(0, 199) = 1" in capsys.readouterr().out

    def test_update_v3_index(self, built, tmp_path, capsys):
        idx, edges = built
        idx3 = tmp_path / "g.idx3"
        main(["convert", str(idx), "-o", str(idx3), "--format", "v3"])
        capsys.readouterr()
        rc = main(["update", str(idx3), "--edges", str(edges)])
        assert rc == 0
        main(["query", str(idx3), "0", "199"])
        assert "dist(0, 199) = 1" in capsys.readouterr().out

    def test_update_shard_directory_in_place(self, built, tmp_path, capsys):
        idx, edges = built
        shards = tmp_path / "shards"
        main(["shard", str(idx), "-o", str(shards), "--shards", "3"])
        capsys.readouterr()
        rc = main(["update", str(shards), "--edges", str(edges)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "reconciled" in out
        main(["query", "--shards", str(shards), "--workers", "1",
              "0", "199"])
        assert "dist(0, 199) = 1" in capsys.readouterr().out

    def test_update_index_plus_shards(self, built, tmp_path, capsys):
        idx, edges = built
        shards = tmp_path / "shards"
        main(["shard", str(idx), "-o", str(shards), "--shards", "3"])
        capsys.readouterr()
        rc = main(["update", str(idx), "--edges", str(edges),
                   "--shards", str(shards)])
        assert rc == 0
        assert "reconciled" in capsys.readouterr().out

    def test_update_errors(self, built, tmp_path, capsys):
        idx, edges = built
        rc = main(["update", str(idx), "--edges", str(tmp_path / "no.txt")])
        assert rc == 2
        capsys.readouterr()
        bad = tmp_path / "bad.txt"
        bad.write_text("1 2 3 4\n")
        rc = main(["update", str(idx), "--edges", str(bad)])
        assert rc == 2
        assert "expected 'u v [w]'" in capsys.readouterr().err
        empty = tmp_path / "empty.txt"
        empty.write_text("# nothing\n")
        rc = main(["update", str(idx), "--edges", str(empty)])
        assert rc == 2
        assert "no edges" in capsys.readouterr().err
        out_of_range = tmp_path / "oor.txt"
        out_of_range.write_text("0 100000\n")
        rc = main(["update", str(idx), "--edges", str(out_of_range)])
        assert rc == 2
        assert "out of range" in capsys.readouterr().err

    def test_update_shard_dir_refuses_output(self, built, tmp_path, capsys):
        idx, edges = built
        shards = tmp_path / "shards"
        main(["shard", str(idx), "-o", str(shards), "--shards", "2"])
        capsys.readouterr()
        rc = main(["update", str(shards), "--edges", str(edges),
                   "-o", str(tmp_path / "x.idx")])
        assert rc == 2
        assert "in place" in capsys.readouterr().err
