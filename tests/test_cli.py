"""End-to-end CLI tests (in-process via repro.cli.main)."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.txt"
    main(["generate", "glp", "-n", "200", "--density", "4",
          "-o", str(path)])
    return path


class TestGenerate:
    def test_generate_glp(self, tmp_path, capsys):
        out = tmp_path / "g.txt"
        rc = main(["generate", "glp", "-n", "100", "-o", str(out)])
        assert rc == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    @pytest.mark.parametrize("model", ["ba", "er"])
    def test_other_models(self, tmp_path, model):
        out = tmp_path / "g.txt"
        assert main(["generate", model, "-n", "50", "-o", str(out)]) == 0

    def test_directed_flag(self, tmp_path):
        out = tmp_path / "g.txt"
        main(["generate", "glp", "-n", "50", "--directed", "-o", str(out)])
        from repro.graphs.io import read_edge_list

        assert read_edge_list(out, directed=True).num_edges > 0


class TestStats:
    def test_stats_output(self, graph_file, capsys):
        rc = main(["stats", str(graph_file)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "|V|" in out
        assert "rank exponent" in out


class TestBuildAndQuery:
    def test_build_then_query(self, graph_file, tmp_path, capsys):
        idx = tmp_path / "g.idx"
        rc = main(["build", str(graph_file), "-o", str(idx)])
        assert rc == 0
        assert idx.exists()
        rc = main(["query", str(idx), "0", "10", "3", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "dist(0, 10)" in out
        assert "dist(3, 3) = 0" in out

    def test_build_strategies(self, graph_file, tmp_path):
        for strategy in ("stepping", "doubling", "hybrid"):
            idx = tmp_path / f"{strategy}.idx"
            rc = main([
                "build", str(graph_file), "-o", str(idx),
                "--strategy", strategy,
            ])
            assert rc == 0

    def test_query_odd_args_rejected(self, graph_file, tmp_path, capsys):
        idx = tmp_path / "g.idx"
        main(["build", str(graph_file), "-o", str(idx)])
        rc = main(["query", str(idx), "0", "1", "2"])
        assert rc == 2
        assert "even number" in capsys.readouterr().err


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bench_choices(self):
        args = build_parser().parse_args(["bench", "table7"])
        assert args.target == "table7"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "table99"])


class TestVerify:
    def test_verify_good_index(self, graph_file, tmp_path, capsys):
        idx = tmp_path / "g.idx"
        main(["build", str(graph_file), "-o", str(idx)])
        rc = main(["verify", str(graph_file), str(idx)])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_wrong_graph_fails(self, graph_file, tmp_path, capsys):
        idx = tmp_path / "g.idx"
        main(["build", str(graph_file), "-o", str(idx)])
        other = tmp_path / "other.txt"
        main(["generate", "glp", "-n", "200", "--density", "4",
              "--seed", "9", "-o", str(other)])
        rc = main(["verify", str(other), str(idx)])
        assert rc == 1
        assert "violation" in capsys.readouterr().out
