"""Shared fixtures and hypothesis strategies for the test suite.

Includes the paper's own example graphs:

* ``road_graph`` — Figure 1's ``GR`` (hub ``a`` on most shortest paths);
* ``star5`` — Figure 2's ``GS`` (center + 5 leaves);
* ``figure3_graph`` — the 8-vertex directed graph of Figure 3 whose
  labeling the paper works out entry by entry (Figure 5).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.graphs.digraph import Graph

# ---------------------------------------------------------------------------
# Paper graphs
# ---------------------------------------------------------------------------

# Figure 1 (GR): a = 0, b = 1, c = 2, d = 3, e = 4.
# Edges reconstructed from Table 1's distances: a-b, b-c, a-d, a-e
# (e.g. L(c) has (e, 3): c-b-a-e; L(e) has (d, 2): e-a-d).
ROAD_EDGES = [(0, 1), (1, 2), (0, 3), (0, 4)]


@pytest.fixture
def road_graph() -> Graph:
    return Graph.from_edges(5, ROAD_EDGES, directed=False)


@pytest.fixture
def star5() -> Graph:
    """Figure 2 (GS): center 0, leaves 1..5."""
    edges = [(0, leaf) for leaf in range(1, 6)]
    return Graph.from_edges(6, edges, directed=False)


# Figure 3(a): 8 vertices, ids equal rank (0 = highest degree).
# Reconstructed from Example 1 and Figure 5's label listing.
FIGURE3_EDGES = [
    (0, 1),
    (1, 0),
    (2, 0),
    (3, 1),
    (4, 0),
    (4, 1),
    (5, 3),
    (0, 6),
    (2, 6),
    (2, 3),
    (3, 7),
    (7, 2),
    (4, 5),
]


@pytest.fixture
def figure3_graph() -> Graph:
    return Graph.from_edges(8, FIGURE3_EDGES, directed=True)


# ---------------------------------------------------------------------------
# Random graph helpers (deterministic by seed)
# ---------------------------------------------------------------------------


def random_graph(
    seed: int,
    max_n: int = 40,
    directed: bool | None = None,
    weighted: bool | None = None,
) -> Graph:
    """A small random graph, fully determined by ``seed``."""
    rng = random.Random(seed)
    n = rng.randrange(2, max_n)
    m = rng.randrange(1, 3 * n)
    if directed is None:
        directed = rng.random() < 0.5
    if weighted is None:
        weighted = rng.random() < 0.5
    if weighted:
        edges = [
            (rng.randrange(n), rng.randrange(n), float(rng.randint(1, 9)))
            for _ in range(m)
        ]
    else:
        edges = [(rng.randrange(n), rng.randrange(n)) for _ in range(m)]
    return Graph.from_edges(n, edges, directed=directed, weighted=weighted)


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------


@st.composite
def graph_strategy(
    draw,
    max_n: int = 24,
    max_m: int = 60,
    directed: bool | None = None,
    weighted: bool | None = None,
):
    """Draw a small random graph (weights are small integers-as-floats,
    so distance comparisons are exact)."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    if directed is None:
        directed = draw(st.booleans())
    if weighted is None:
        weighted = draw(st.booleans())
    vertex = st.integers(min_value=0, max_value=n - 1)
    if weighted:
        edge = st.tuples(
            vertex, vertex, st.integers(min_value=1, max_value=9).map(float)
        )
    else:
        edge = st.tuples(vertex, vertex)
    edges = draw(st.lists(edge, max_size=m))
    return Graph.from_edges(n, edges, directed=directed, weighted=weighted)
