"""Tests for CSV export of the table drivers."""

import csv

from repro.bench import table7
from repro.bench.export import write_csv


class TestWriteCsv:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.csv"
        n = write_csv(path, ["a", "b"], [[1, 2], [3, None]])
        assert n == 2
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows == [["a", "b"], ["1", "2"], ["3", ""]]

    def test_empty(self, tmp_path):
        path = tmp_path / "e.csv"
        assert write_csv(path, ["x"], []) == 0


class TestDriverCsv:
    def test_table7_to_csv(self, tmp_path):
        result = table7.Table7([table7.run_one("enron")])
        path = tmp_path / "t7.csv"
        assert result.to_csv(path) == 1
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0][0] == "Graph"
        assert rows[1][0] == "enron"
