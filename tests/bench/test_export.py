"""Tests for CSV/JSON export of the table drivers and perf gates."""

import csv
import json

from repro.bench import table7
from repro.bench.export import write_bench_json, write_csv


class TestWriteCsv:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.csv"
        n = write_csv(path, ["a", "b"], [[1, 2], [3, None]])
        assert n == 2
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows == [["a", "b"], ["1", "2"], ["3", ""]]

    def test_empty(self, tmp_path):
        path = tmp_path / "e.csv"
        assert write_csv(path, ["x"], []) == 0


class TestWriteBenchJson:
    def test_writes_named_file_with_environment(self, tmp_path):
        path = write_bench_json(
            "unit", {"pairs_per_sec": 123}, directory=tmp_path
        )
        assert path == tmp_path / "BENCH_unit.json"
        document = json.loads(path.read_text())
        assert document["benchmark"] == "unit"
        assert document["pairs_per_sec"] == 123
        assert document["environment"]["implementation"]

    def test_payload_cannot_be_clobbered_silently(self, tmp_path):
        document = json.loads(
            write_bench_json(
                "named", {"benchmark": "custom"}, directory=tmp_path
            ).read_text()
        )
        # Payload keys win over the boilerplate, by design.
        assert document["benchmark"] == "custom"


class TestDriverCsv:
    def test_table7_to_csv(self, tmp_path):
        result = table7.Table7([table7.run_one("enron")])
        path = tmp_path / "t7.csv"
        assert result.to_csv(path) == 1
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0][0] == "Graph"
        assert rows[1][0] == "enron"
