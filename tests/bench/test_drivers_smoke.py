"""Smoke tests for the table/figure drivers on miniature inputs.

The full drivers run under ``pytest benchmarks/``; here we only check
that each produces structurally sane output quickly, using the tiniest
datasets and tight budgets.
"""

import pytest

from repro.bench import figure8, figure9, figure10, table6, table7, table8
from repro.bench.harness import run_dataset


class TestHarness:
    def test_run_dataset_single_method(self):
        result = run_dataset(
            "enron", methods=("hopdb",), num_queries=20, budget=60.0
        )
        hop = result.get("hopdb")
        assert hop is not None
        assert hop.index_bytes > 0
        assert hop.query.queries == 20
        assert hop.io_blocks > 0

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            run_dataset("enron", methods=("magic",))

    def test_budget_timeout_yields_none(self, monkeypatch):
        # Deterministic slow build: the real ISL build is fast enough on
        # the tiny datasets that relying on wall-clock races is flaky.
        import time

        import repro.bench.harness as harness

        def slow_build(graph):
            time.sleep(5.0)
            raise AssertionError("unreachable: budget should fire first")

        monkeypatch.setattr(harness, "build_islabel", slow_build)
        result = run_dataset(
            "enron", methods=("islabel",), num_queries=5, budget=0.05
        )
        assert result.get("islabel") is None


class TestTableDrivers:
    def test_table6_renders(self):
        result = table6.Table6(
            [run_dataset("enron", num_queries=20, budget=30.0)]
        )
        text = result.render()
        assert "Table 6" in text
        assert "enron" in text

    def test_table7_row(self):
        row = table7.run_one("enron")
        assert row.iterations >= 1
        assert row.avg_label > 0
        assert 0 < row.top70 <= row.top80 <= row.top90 <= 1.0
        text = table7.Table7([row]).render()
        assert "Table 7" in text

    def test_table8_row(self):
        from repro.bench.datasets import load_dataset

        row = table8.run_one("enron", load_dataset("enron"), budget=60.0)
        assert set(row.seconds) == set(table8.STRATEGIES)
        assert all(v is not None for v in row.iterations.values())
        text = table8.Table8([row]).render()
        assert "Hybrid" in text

    def test_long_diameter_graph(self):
        g = table8.long_diameter_graph(200, seed=1)
        assert g.num_vertices == 200
        from repro.graphs.stats import hop_diameter

        assert hop_diameter(g) > 20


class TestFigureDrivers:
    def test_figure8_curves(self):
        fig = figure8.run(["enron"])
        assert len(fig.curves) == 1
        points = fig.curves[0].points
        values = [c for _, c in points]
        assert values == sorted(values)  # coverage is monotone
        assert "Figure 8" in fig.render()

    def test_figure9_density_sweep(self):
        fig = figure9.run_density_sweep(num_vertices=150, densities=[2, 4])
        assert len(fig.points) == 2
        assert fig.points[1].num_edges > fig.points[0].num_edges
        assert "Figure 9" in fig.render()

    def test_figure9_size_sweep(self):
        fig = figure9.run_size_sweep(density=4.0, sizes=[100, 200])
        assert fig.points[0].num_vertices == 100
        assert fig.points[1].num_vertices == 200

    def test_figure10_series(self):
        fig = figure10.run("enron", switch_iteration=2)
        assert len(fig.points) >= 1
        for p in fig.points:
            assert 0.0 <= p.pruning_factor <= 1.0
            assert p.time_ratio >= 0.0
        total_time = sum(p.time_ratio for p in fig.points)
        assert total_time == pytest.approx(1.0)
        assert "Figure 10" in fig.render()
