"""Tests for the benchmark substrate: datasets, workloads, metrics."""

import time

import pytest

from repro.bench.datasets import (
    DATASETS,
    DENSITY_CAP,
    dataset_by_name,
    load_dataset,
    profile_names,
)
from repro.bench.metrics import run_with_budget, time_queries
from repro.bench.workloads import random_pairs, reachable_pairs, stratified_pairs
from repro.graphs.generators import glp_graph
from repro.graphs.traversal import INF, bfs_distances


class TestDatasets:
    def test_catalog_covers_all_paper_rows(self):
        # The paper's Table 6 has 27 datasets across four categories
        # (8 undirected unweighted, 9 directed, 6 synthetic, 4 weighted).
        assert len(DATASETS) == 27
        categories = {spec.paper_category for spec in DATASETS}
        assert categories == {
            "undirected unweighted",
            "directed unweighted",
            "synthetic",
            "undirected weighted",
        }

    def test_profiles(self):
        quick = profile_names("quick")
        full = profile_names("full")
        assert set(quick) <= set(full)
        assert len(full) == 27
        assert 5 <= len(quick) <= 10

    def test_unknown_profile(self):
        with pytest.raises(ValueError):
            profile_names("gigantic")

    def test_lookup(self):
        spec = dataset_by_name("enron")
        assert spec.paper_category == "undirected unweighted"
        with pytest.raises(ValueError):
            dataset_by_name("nope")

    def test_density_capped(self):
        spec = dataset_by_name("delicious")  # paper density ~113
        assert spec.paper_density > DENSITY_CAP
        assert spec.density == DENSITY_CAP

    def test_load_is_deterministic_and_matches_spec(self):
        g1 = load_dataset("enron")
        g2 = load_dataset("enron")
        assert g1 is g2  # lru-cached
        spec = dataset_by_name("enron")
        assert g1.num_vertices == spec.num_vertices()
        assert g1.directed == spec.directed
        assert g1.weighted == spec.weighted

    def test_directed_dataset(self):
        g = load_dataset("slashdot")
        assert g.directed

    def test_weighted_dataset(self):
        g = load_dataset("movrating")
        assert g.weighted
        assert all(1.0 <= w <= 10.0 for _, _, w in g.edges())

    def test_density_approximates_spec(self):
        spec = dataset_by_name("cat")
        g = load_dataset("cat")
        assert 0.4 * spec.density <= g.density <= 1.6 * spec.density


class TestWorkloads:
    def test_random_pairs_properties(self):
        pairs = random_pairs(100, 50, seed=1)
        assert len(pairs) == 50
        assert all(s != t and 0 <= s < 100 and 0 <= t < 100 for s, t in pairs)

    def test_random_pairs_deterministic(self):
        assert random_pairs(50, 20, seed=3) == random_pairs(50, 20, seed=3)

    def test_random_pairs_tiny_graph(self):
        assert random_pairs(1, 10) == []

    def test_reachable_pairs_are_reachable(self):
        g = glp_graph(120, seed=4, directed=True)
        pairs = reachable_pairs(g, 40, seed=2)
        assert len(pairs) > 0
        for s, t in pairs:
            assert bfs_distances(g, s)[t] != INF

    def test_stratified_buckets(self):
        g = glp_graph(200, seed=5)
        buckets = stratified_pairs(g, per_bucket=5, seed=1)
        for (lo, hi), pairs in buckets.items():
            for s, t in pairs:
                d = bfs_distances(g, s)[t]
                assert lo <= d <= hi


class TestMetrics:
    def test_time_queries(self):
        calls = []

        def fake_query(s, t):
            calls.append((s, t))
            return 1.0

        timing = time_queries(fake_query, [(0, 1), (1, 2)])
        assert timing.queries == 2
        assert timing.avg_micros >= 0.0
        # warm pass + timed pass
        assert len(calls) == 4

    def test_run_with_budget_completes(self):
        assert run_with_budget(lambda: 42, seconds=5.0) == 42

    def test_run_with_budget_times_out(self):
        def slow():
            time.sleep(2.0)
            return "done"

        assert run_with_budget(slow, seconds=0.05) is None

    def test_run_with_budget_disabled(self):
        assert run_with_budget(lambda: "x", seconds=None) == "x"
