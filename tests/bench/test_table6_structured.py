"""Structured assertions on Table 6's result objects.

The benchmark front-end checks shapes; these tests check the harness
plumbing itself: per-method cells, '—' rendering, CSV export, and the
profile wiring — on the single smallest dataset so they stay fast.
"""

import csv

import pytest

from repro.bench import table6
from repro.bench.harness import run_dataset


@pytest.fixture(scope="module")
def enron_result():
    return run_dataset("enron", num_queries=40, budget=60.0)


class TestMethodCells:
    def test_all_methods_present(self, enron_result):
        assert set(enron_result.methods) == {
            "bidij",
            "islabel",
            "pll",
            "hopdb",
        }
        assert all(m is not None for m in enron_result.methods.values())

    def test_hopdb_cells(self, enron_result):
        hop = enron_result.get("hopdb")
        assert hop.index_bytes > 0
        assert hop.build_seconds > 0
        assert hop.query_micros > 0
        assert hop.disk_query_ms > 0
        assert hop.io_blocks > 0
        assert hop.iterations >= 1

    def test_bidij_cells(self, enron_result):
        bid = enron_result.get("bidij")
        assert bid.index_bytes == 0
        assert bid.build_seconds == 0.0
        assert bid.query_micros > 0

    def test_size_ordering(self, enron_result):
        hop = enron_result.get("hopdb")
        isl = enron_result.get("islabel")
        pll = enron_result.get("pll")
        assert hop.index_bytes == pll.index_bytes  # canonical identity
        assert hop.index_bytes <= isl.index_bytes

    def test_summary_matches_spec(self, enron_result):
        assert enron_result.summary.num_vertices == 600
        assert not enron_result.summary.directed


class TestRendering:
    def test_render_contains_all_columns(self, enron_result):
        text = table6.Table6([enron_result]).render()
        for header in ("idx HopDb", "q BIDIJ(us)", "dq HopDb(ms)"):
            assert header in text

    def test_missing_method_renders_dash(self, enron_result):
        import copy

        crippled = copy.copy(enron_result)
        crippled.methods = dict(enron_result.methods)
        crippled.methods["islabel"] = None
        text = table6.Table6([crippled]).render()
        assert "—" in text

    def test_csv_export(self, tmp_path, enron_result):
        t = table6.Table6([enron_result])
        path = tmp_path / "t6.csv"
        assert t.to_csv(path) == 1
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == table6.HEADERS
        assert rows[1][0] == "enron"
