"""Tests for candidate admission and pruning (Section 3.3, Theorem 3)."""

from hypothesis import given, settings

from repro.baselines.apsp import APSPOracle
from repro.core.hybrid import make_builder
from repro.core.labels import DirectedLabelState
from repro.core.pruning import admit_and_prune, exhaustive_prune
from repro.core.rules import CandidateSet
from repro.graphs.digraph import Graph
from tests.conftest import graph_strategy


class TestAdmission:
    def test_worse_candidate_dropped(self):
        st = DirectedLabelState([0, 1])
        st.set_pair(1, 0, 2.0, 1)
        cands = CandidateSet()
        cands.offer(1, 0, 3.0, 2)
        survivors, outcome = admit_and_prune(st, cands)
        assert survivors == []
        assert outcome.admitted == 0
        assert st.get_pair(1, 0) == (2.0, 1)

    def test_equal_candidate_dropped(self):
        st = DirectedLabelState([0, 1])
        st.set_pair(1, 0, 2.0, 1)
        cands = CandidateSet()
        cands.offer(1, 0, 2.0, 1)
        survivors, _ = admit_and_prune(st, cands)
        assert survivors == []

    def test_better_candidate_replaces(self):
        st = DirectedLabelState([0, 1])
        st.set_pair(1, 0, 5.0, 1)
        cands = CandidateSet()
        cands.offer(1, 0, 2.0, 2)
        survivors, outcome = admit_and_prune(st, cands)
        assert survivors == [(1, 0, 2.0, 2)]
        assert st.get_pair(1, 0) == (2.0, 2)
        assert outcome.admitted == 1
        assert outcome.pruned == 0


class TestPruneStep:
    def test_dominated_candidate_pruned(self):
        # Ranks: 0 > 1 > 2.  Existing: (2 -> 0, 1), (0 -> 1, 1).
        # Candidate (2 -> 1, 3) is dominated via pivot 0 (1 + 1 <= 3).
        st = DirectedLabelState([0, 1, 2])
        st.set_pair(2, 0, 1.0, 1)
        st.set_pair(0, 1, 1.0, 1)
        cands = CandidateSet()
        cands.offer(2, 1, 3.0, 2)
        survivors, outcome = admit_and_prune(st, cands)
        assert survivors == []
        assert outcome.pruned == 1
        assert st.get_pair(2, 1) is None

    def test_equal_distance_pruned_toward_higher_pivot(self):
        st = DirectedLabelState([0, 1, 2])
        st.set_pair(2, 0, 1.0, 1)
        st.set_pair(0, 1, 1.0, 1)
        cands = CandidateSet()
        cands.offer(2, 1, 2.0, 2)  # same distance as the pivot-0 route
        survivors, _ = admit_and_prune(st, cands)
        assert survivors == []

    def test_candidates_prune_each_other(self):
        # Both candidates arrive in the same iteration; the longer pair
        # is pruned by the route through the two shorter ones.
        st = DirectedLabelState([0, 1, 2])
        cands = CandidateSet()
        cands.offer(2, 0, 1.0, 1)
        cands.offer(0, 1, 1.0, 1)
        cands.offer(2, 1, 2.0, 2)
        survivors, outcome = admit_and_prune(st, cands)
        assert (2, 1, 2.0, 2) not in survivors
        assert outcome.pruned == 1

    def test_prune_disabled_keeps_everything(self):
        st = DirectedLabelState([0, 1, 2])
        st.set_pair(2, 0, 1.0, 1)
        st.set_pair(0, 1, 1.0, 1)
        cands = CandidateSet()
        cands.offer(2, 1, 3.0, 2)
        survivors, outcome = admit_and_prune(st, cands, prune=False)
        assert len(survivors) == 1
        assert outcome.pruned == 0

    def test_own_route_does_not_self_prune(self):
        # A fresh entry must not be pruned by its own trivial route
        # (candidate + self entry gives exactly its own distance).
        st = DirectedLabelState([0, 1])
        cands = CandidateSet()
        cands.offer(1, 0, 4.0, 2)
        survivors, _ = admit_and_prune(st, cands)
        assert survivors == [(1, 0, 4.0, 2)]


class TestCanonicalSafety:
    """Theorem 3: canonical entries survive pruning, so queries stay exact.

    Verified indirectly-but-completely: with pruning on, every pair
    query equals ground truth (if a canonical entry were ever pruned
    some query would come out too large).
    """

    @settings(max_examples=50, deadline=None)
    @given(graph_strategy())
    def test_pruned_index_exact(self, g):
        truth = APSPOracle(g)
        idx = make_builder(g, "hybrid").build().index
        for s in range(g.num_vertices):
            for t in range(g.num_vertices):
                assert idx.query(s, t) == truth.query(s, t)

    @settings(max_examples=25, deadline=None)
    @given(graph_strategy(weighted=False, max_n=14))
    def test_pruning_never_larger_than_unpruned(self, g):
        pruned = make_builder(g, "stepping").build().index
        unpruned = make_builder(g, "stepping", prune=False).build().index
        assert pruned.total_entries() <= unpruned.total_entries()


class TestExhaustivePrune:
    def test_unpruned_build_plus_exhaustive_matches_pruned(self):
        """Section 5.2: exhaustive pruning equalizes the label sets."""
        g = Graph.from_edges(
            6,
            [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)],
            directed=False,
        )
        builder = make_builder(g, "stepping", prune=False)
        result = builder.build()
        # Rebuild the mutable state from the frozen index to sweep it.
        from repro.core.labels import UndirectedLabelState

        st = UndirectedLabelState(result.ranking.rank_of)
        for v in range(g.num_vertices):
            for p, d in result.index.out_labels[v]:
                if p != v:
                    st.set_pair(v, p, d, 0)
        removed = exhaustive_prune(st)
        assert removed > 0
        pruned = make_builder(g, "stepping", prune=True).build().index
        assert st.total_entries() == pruned.total_entries()

    def test_exhaustive_prune_noop_on_pruned_state(self):
        g = Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)], directed=True)
        builder = make_builder(g, "stepping")
        result = builder.build()
        st = DirectedLabelState(result.ranking.rank_of)
        for v in range(g.num_vertices):
            for p, d in result.index.out_labels[v]:
                if p != v:
                    st.set_pair(v, p, d, 0)
            for p, d in result.index.in_labels[v]:
                if p != v:
                    st.set_pair(p, v, d, 0)
        assert exhaustive_prune(st) == 0

    @staticmethod
    def _unpruned_state(g, directed):
        """A mutable state holding an unpruned stepping build's entries."""
        from repro.core.labels import UndirectedLabelState

        result = make_builder(g, "stepping", prune=False).build()
        cls = DirectedLabelState if directed else UndirectedLabelState
        st = cls(result.ranking.rank_of)
        for v in range(g.num_vertices):
            for p, d in result.index.out_labels[v]:
                if p != v:
                    st.set_pair(v, p, d, 0)
            if directed:
                for p, d in result.index.in_labels[v]:
                    if p != v:
                        st.set_pair(p, v, d, 0)
        return st

    def test_dirty_sweeps_reach_fixpoint(self):
        """A second call after the dirty-set sweeps must find nothing."""
        from repro.graphs.generators import glp_graph

        for directed in (False, True):
            g = glp_graph(80, seed=17, directed=directed)
            st = self._unpruned_state(g, directed)
            assert exhaustive_prune(st) > 0
            assert exhaustive_prune(st) == 0

    def test_dirty_sweeps_deterministic(self):
        """Same entry set in, same surviving entries out — always."""
        from repro.graphs.generators import glp_graph

        g = glp_graph(70, seed=23, directed=True)
        st1 = self._unpruned_state(g, True)
        st2 = self._unpruned_state(g, True)
        assert exhaustive_prune(st1) == exhaustive_prune(st2)
        assert sorted(st1.iter_entries()) == sorted(st2.iter_entries())

    def test_directed_exhaustive_matches_pruned_build(self):
        """The directed twin of the Section 5.2 equalization check."""
        from repro.graphs.generators import ba_graph

        g = ba_graph(60, m=2, seed=3, directed=True)
        st = self._unpruned_state(g, True)
        exhaustive_prune(st)
        pruned = make_builder(g, "stepping", prune=True).build().index
        assert st.total_entries() == pruned.total_entries()
