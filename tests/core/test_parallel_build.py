"""Build-engine determinism: dict vs array vs multiprocess builds.

The whole point of the pluggable construction engines is that
``engine=`` and ``jobs=`` are *pure* performance knobs: for any graph,
builder, and rule set, every engine must produce bit-identical label
entries (pairs, distances, hops) **and** bit-identical per-iteration
counters — the same guarantee the serving layer's sharding gives
queries.  These tests enforce it across directed/undirected x
weighted/unweighted fixtures, for all three builders, both rule sets,
and ``jobs=1`` vs ``jobs=4``.
"""

from __future__ import annotations

import random

import pytest

from repro.core.hop_doubling import HopDoubling, LabelingBuilder
from repro.core.hop_stepping import HopStepping
from repro.core.hybrid import HybridBuilder
from repro.graphs.digraph import Graph
from repro.graphs.generators import ba_graph, glp_graph

np = pytest.importorskip("numpy")

BUILDERS = [HopDoubling, HopStepping, HybridBuilder]


def _weighted_graph(n: int, m: int, seed: int, directed: bool) -> Graph:
    rng = random.Random(seed)
    edges = set()
    while len(edges) < m:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.add((u, v))
    wedges = [(u, v, rng.choice([1.0, 2.0, 2.5, 4.0])) for u, v in sorted(edges)]
    return Graph.from_edges(n, wedges, directed=directed, weighted=True)


def _fixture_graph(kind: str) -> Graph:
    if kind == "undirected-unweighted":
        return glp_graph(90, seed=3)
    if kind == "directed-unweighted":
        return ba_graph(80, m=2, seed=5, directed=True)
    if kind == "undirected-weighted":
        return _weighted_graph(60, 150, 11, directed=False)
    return _weighted_graph(60, 190, 13, directed=True)


GRAPH_KINDS = [
    "undirected-unweighted",
    "directed-unweighted",
    "undirected-weighted",
    "directed-weighted",
]


def _fingerprint(result):
    """Everything that must match: labels, provenance, counters."""
    counters = [
        (
            it.iteration,
            it.mode,
            it.raw_generated,
            it.distinct_generated,
            it.admitted,
            it.pruned,
            it.survived,
            it.total_entries,
            it.prev_size,
        )
        for it in result.iterations
    ]
    return (
        result.index.out_labels,
        result.index.in_labels,
        result.index.rank,
        counters,
    )


class TestEngineEquivalence:
    @pytest.mark.parametrize("kind", GRAPH_KINDS)
    @pytest.mark.parametrize("builder_cls", BUILDERS)
    def test_array_engine_bit_identical(self, kind, builder_cls):
        g = _fixture_graph(kind)
        ref = _fingerprint(builder_cls(g, engine="dict").build())
        arr = _fingerprint(builder_cls(g, engine="array").build())
        assert arr == ref

    @pytest.mark.parametrize("kind", GRAPH_KINDS)
    @pytest.mark.parametrize("builder_cls", BUILDERS)
    def test_parallel_jobs_bit_identical(self, kind, builder_cls):
        g = _fixture_graph(kind)
        serial = _fingerprint(builder_cls(g, engine="array", jobs=1).build())
        parallel = _fingerprint(builder_cls(g, engine="array", jobs=4).build())
        assert parallel == serial

    @pytest.mark.parametrize("rule_set", ["minimized", "full"])
    def test_full_rule_set_bit_identical(self, rule_set):
        g = ba_graph(70, m=2, seed=9, directed=True)
        ref = _fingerprint(HybridBuilder(g, rule_set=rule_set).build())
        arr = _fingerprint(
            HybridBuilder(g, rule_set=rule_set, engine="array", jobs=2).build()
        )
        assert arr == ref

    def test_prune_disabled_bit_identical(self):
        g = glp_graph(70, seed=21)
        ref = _fingerprint(HopStepping(g, prune=False).build())
        arr = _fingerprint(HopStepping(g, prune=False, engine="array").build())
        assert arr == ref

    def test_final_exhaustive_prune_bit_identical(self):
        g = glp_graph(80, seed=12)
        ref = _fingerprint(HopDoubling(g, final_exhaustive_prune=True).build())
        arr = _fingerprint(
            HopDoubling(g, final_exhaustive_prune=True, engine="array").build()
        )
        assert arr == ref

    def test_parallel_indexes_answer_queries(self):
        """End to end: the jobs=4 index answers like the reference."""
        g = glp_graph(100, seed=4)
        ref = HybridBuilder(g, engine="dict").build().index
        par = HybridBuilder(g, engine="array", jobs=4).build().index
        for s in range(0, 100, 7):
            for t in range(0, 100, 13):
                assert par.query(s, t) == ref.query(s, t)


class TestEngineOptions:
    def test_unknown_engine_rejected(self):
        g = glp_graph(20, seed=1)
        with pytest.raises(ValueError, match="unknown engine"):
            HybridBuilder(g, engine="turbo")

    def test_jobs_require_array_engine(self):
        g = glp_graph(20, seed=1)
        with pytest.raises(ValueError, match="requires engine='array'"):
            HybridBuilder(g, engine="dict", jobs=2)

    def test_invalid_jobs_rejected(self):
        g = glp_graph(20, seed=1)
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            HybridBuilder(g, engine="array", jobs=0)

    def test_empty_graph_array_engine(self):
        g = Graph.from_edges(0, [])
        result = HybridBuilder(g, engine="array").build()
        assert result.index.n == 0

    def test_no_edges_array_engine(self):
        g = Graph.from_edges(5, [])
        result = HybridBuilder(g, engine="array", jobs=2).build()
        assert result.index.query(0, 4) == float("inf")
        assert result.num_iterations == 1

    def test_base_class_still_abstract(self):
        g = glp_graph(20, seed=1)
        with pytest.raises(NotImplementedError):
            LabelingBuilder(g, engine="array").build()


class TestArrayStateInternals:
    def test_freeze_matches_dict_freeze(self):
        """ArrayLabelState.freeze == LabelIndex.from_state round trip."""
        from repro.core.engine import ArrayBuildEngine, DictBuildEngine
        from repro.core.ranking import make_ranking

        g = ba_graph(60, m=2, seed=2, directed=True)
        ranking = make_ranking(g, "auto")
        d = DictBuildEngine(g, ranking, "minimized")
        a = ArrayBuildEngine(g, ranking, "minimized")
        d.initialize()
        a.initialize()
        di = d.freeze()
        ai = a.freeze()
        assert di.out_labels == ai.out_labels
        assert di.in_labels == ai.in_labels
        assert di.rank == ai.rank

    def test_to_dict_state_round_trip(self):
        from repro.core.engine import ArrayBuildEngine
        from repro.core.ranking import make_ranking

        g = glp_graph(60, seed=8)
        ranking = make_ranking(g, "auto")
        eng = ArrayBuildEngine(g, ranking, "minimized")
        eng.initialize()
        dict_state = eng.state.to_dict_state()
        assert sorted(dict_state.iter_entries()) == sorted(eng.state.iter_entries())
