"""Builder-level behaviour: construction options, stats, results."""

import pytest

from repro.core.hop_doubling import HopDoubling, LabelingBuilder
from repro.core.hop_stepping import HopStepping
from repro.core.hybrid import HybridBuilder, make_builder
from repro.core.ranking import Ranking
from repro.graphs.digraph import Graph
from repro.graphs.generators import glp_graph, path_graph, star_graph


class TestBuilderOptions:
    def test_unknown_strategy_rejected(self):
        g = star_graph(3)
        with pytest.raises(ValueError, match="unknown strategy"):
            make_builder(g, "teleport")

    def test_ranking_size_mismatch_rejected(self):
        g = star_graph(3)
        with pytest.raises(ValueError, match="ranking covers"):
            HopStepping(g, ranking=Ranking.from_order([0, 1]))

    def test_base_class_mode_abstract(self):
        g = star_graph(2)
        with pytest.raises(NotImplementedError):
            LabelingBuilder(g).build()

    def test_invalid_switch_iteration(self):
        g = star_graph(2)
        with pytest.raises(ValueError):
            HybridBuilder(g, switch_iteration=0)

    def test_builder_names(self):
        g = star_graph(2)
        assert HopDoubling(g).name == "hop-doubling"
        assert HopStepping(g).name == "hop-stepping"
        assert HybridBuilder(g).name == "hybrid"


class TestModeSchedule:
    def test_doubling_always_doubles(self):
        g = star_graph(2)
        b = HopDoubling(g)
        assert all(b.mode_for(i) == "double" for i in range(2, 30))

    def test_stepping_always_steps(self):
        g = star_graph(2)
        b = HopStepping(g)
        assert all(b.mode_for(i) == "step" for i in range(2, 30))

    def test_hybrid_switches_after_default_10(self):
        g = star_graph(2)
        b = HybridBuilder(g)
        assert b.mode_for(10) == "step"
        assert b.mode_for(11) == "double"

    def test_hybrid_custom_switch(self):
        g = star_graph(2)
        b = HybridBuilder(g, switch_iteration=3)
        assert b.mode_for(3) == "step"
        assert b.mode_for(4) == "double"


class TestBuildResult:
    def test_iteration_stats_consistency(self):
        g = glp_graph(150, seed=6)
        result = HopStepping(g).build()
        for it in result.iterations:
            assert it.admitted == it.pruned + it.survived
            assert it.distinct_generated >= it.admitted
            assert it.raw_generated >= it.distinct_generated
            assert 0.0 <= it.pruning_factor <= 1.0

    def test_num_iterations_counts_init(self):
        # A single-edge graph: init covers everything; one empty round.
        g = Graph.from_edges(2, [(0, 1)], directed=True)
        result = HopStepping(g).build()
        assert result.num_iterations == 1

    def test_build_seconds_positive(self):
        g = glp_graph(100, seed=1)
        result = HybridBuilder(g).build()
        assert result.build_seconds > 0

    def test_result_query_passthrough(self):
        g = path_graph(5)
        result = HybridBuilder(g).build()
        assert result.query(0, 4) == 4.0

    def test_total_entries_monotone_nondecreasing(self):
        g = glp_graph(200, seed=3)
        result = HopStepping(g).build()
        sizes = [it.total_entries for it in result.iterations]
        assert sizes == sorted(sizes)


class TestFinalExhaustivePrune:
    def test_doubling_with_final_sweep_matches_stepping_size(self):
        """Section 5.2: 'by exhaustive pruning, the label size is the
        same as that of Hop-Stepping'."""
        g = glp_graph(120, seed=12)
        stepping = HopStepping(g).build().index
        doubling = HopDoubling(g, final_exhaustive_prune=True).build().index
        assert doubling.total_entries() == stepping.total_entries()


class TestEmptyAndTinyGraphs:
    def test_empty_graph(self):
        g = Graph.from_edges(0, [])
        result = HybridBuilder(g).build()
        assert result.index.n == 0

    def test_single_vertex(self):
        g = Graph.from_edges(1, [])
        result = HybridBuilder(g).build()
        assert result.index.query(0, 0) == 0.0

    def test_no_edges(self):
        g = Graph.from_edges(5, [])
        result = HybridBuilder(g).build()
        assert result.index.query(0, 4) == float("inf")
        assert result.num_iterations == 1

    def test_isolated_vertices_mixed_in(self):
        g = Graph.from_edges(5, [(0, 1)], directed=False)
        idx = HybridBuilder(g).build().index
        assert idx.query(0, 1) == 1.0
        assert idx.query(2, 3) == float("inf")
