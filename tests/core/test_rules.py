"""Tests for the rule engines (Table 5 / Figure 6, Lemmas 3-4)."""

import pytest
from hypothesis import given, settings

from repro.core.hybrid import make_builder
from repro.core.labels import DirectedLabelState, UndirectedLabelState
from repro.core.rules import (
    CandidateSet,
    DirectedRuleEngine,
    UndirectedRuleEngine,
    make_engine,
)
from repro.graphs.digraph import Graph
from tests.conftest import graph_strategy


class TestCandidateSet:
    def test_keeps_minimum_distance(self):
        c = CandidateSet()
        c.offer(0, 1, 5.0, 2)
        c.offer(0, 1, 3.0, 4)
        c.offer(0, 1, 7.0, 1)
        assert c.pairs[(0, 1)] == (3.0, 4)
        assert c.raw_generated == 3
        assert len(c) == 1

    def test_tie_prefers_fewer_hops(self):
        c = CandidateSet()
        c.offer(0, 1, 3.0, 4)
        c.offer(0, 1, 3.0, 2)
        assert c.pairs[(0, 1)] == (3.0, 2)

    def test_distinct_pairs(self):
        c = CandidateSet()
        c.offer(0, 1, 1.0, 1)
        c.offer(1, 0, 1.0, 1)
        assert len(c) == 2


class TestEngineConstruction:
    def test_unknown_rule_set_rejected(self):
        g = Graph.from_edges(2, [(0, 1)], directed=True)
        st = DirectedLabelState([0, 1])
        with pytest.raises(ValueError, match="rule_set"):
            DirectedRuleEngine(st, g, rule_set="bogus")

    def test_make_engine_dispatch(self):
        gd = Graph.from_edges(2, [(0, 1)], directed=True)
        gu = Graph.from_edges(2, [(0, 1)], directed=False)
        assert isinstance(
            make_engine(DirectedLabelState([0, 1]), gd), DirectedRuleEngine
        )
        assert isinstance(
            make_engine(UndirectedLabelState([0, 1]), gu), UndirectedRuleEngine
        )


class TestDirectedGeneration:
    """Hand-checked rule applications on a 3-vertex chain.

    Ranks: vertex 0 highest, then 1, then 2.
    """

    def _state(self):
        st = DirectedLabelState([0, 1, 2])
        return st

    def test_rule1_like_concatenation(self):
        # prev out-entry (1 -> 0); partner in Lin(1): (x -> 1).
        g = Graph.from_edges(3, [(2, 1), (1, 0)], directed=True)
        st = self._state()
        st.set_pair(1, 0, 1.0, 1)   # out-entry of 1
        st.set_pair(2, 1, 1.0, 1)   # out-entry of 2... rank[1] < rank[2]
        engine = DirectedRuleEngine(st, g, "minimized")
        cands = engine.doubling([(1, 0, 1.0, 1)])
        # (2 -> 1) is an out-entry of 2, reachable via rev_out[1]: Rule 2
        # concatenates to (2 -> 0, 2).
        assert cands.pairs.get((2, 0)) == (2.0, 2)

    def test_stepping_equals_doubling_on_first_round(self):
        # After initialization both modes see only 1-hop entries.
        g = Graph.from_edges(
            4, [(0, 1), (1, 2), (2, 3), (3, 0)], directed=True
        )
        res_step = make_builder(g, "stepping").build()
        res_double = make_builder(g, "doubling").build()
        assert res_step.index.out_labels == res_double.index.out_labels
        assert res_step.index.in_labels == res_double.index.in_labels


class TestMinimizedEqualsFull:
    """Lemmas 3-4: the four simplified rules produce the same index."""

    @settings(max_examples=60, deadline=None)
    @given(graph_strategy(weighted=False))
    def test_final_indexes_identical_unweighted(self, g):
        for strategy in ("stepping", "doubling"):
            a = make_builder(g, strategy, rule_set="minimized").build().index
            b = make_builder(g, strategy, rule_set="full").build().index
            assert a.out_labels == b.out_labels
            assert a.in_labels == b.in_labels

    @settings(max_examples=30, deadline=None)
    @given(graph_strategy(weighted=True))
    def test_queries_identical_weighted(self, g):
        """Weighted graphs may tie-break label sets differently, but
        query answers must agree everywhere."""
        a = make_builder(g, "stepping", rule_set="minimized").build().index
        b = make_builder(g, "stepping", rule_set="full").build().index
        for s in range(g.num_vertices):
            for t in range(g.num_vertices):
                assert a.query(s, t) == b.query(s, t)


class TestEntryInvariants:
    @settings(max_examples=40, deadline=None)
    @given(graph_strategy())
    def test_pivot_always_outranks_owner(self, g):
        result = make_builder(g, "hybrid").build()
        rank = result.ranking.rank_of
        idx = result.index
        for v in range(g.num_vertices):
            for pivot, _ in idx.out_labels[v]:
                assert pivot == v or rank[pivot] < rank[v]
            for pivot, _ in idx.in_labels[v]:
                assert pivot == v or rank[pivot] < rank[v]

    @settings(max_examples=40, deadline=None)
    @given(graph_strategy(weighted=False))
    def test_entry_distances_are_real_path_lengths(self, g):
        """Every label entry must be >= the true distance and correspond
        to an actual path (never an underestimate)."""
        from repro.baselines.apsp import APSPOracle

        truth = APSPOracle(g)
        result = make_builder(g, "hybrid").build()
        idx = result.index
        for v in range(g.num_vertices):
            for pivot, d in idx.out_labels[v]:
                assert d >= truth.query(v, pivot)
            for pivot, d in idx.in_labels[v]:
                assert d >= truth.query(pivot, v)
