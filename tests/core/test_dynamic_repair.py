"""Property tests for the dynamic-update repair engines.

The contract under test, across directed/undirected x weighted/
unweighted graphs and randomized insertion sequences:

* queries after any insertion sequence are **exact** (equal to APSP on
  the grown graph) — i.e. bit-identical to a from-scratch rebuild's
  answers;
* the dict and array repair engines produce **bit-identical label
  states** (not just answers) for the same sequence;
* the :class:`~repro.core.labels.LabelDelta` hand-off reproduces the
  updated answers through every serving store (flat v2, quantized v3,
  sharded) and through the vectorized batch kernel.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings

from repro.baselines.apsp import APSPOracle
from repro.core.dynamic import (
    REPAIR_ENGINES,
    DynamicHopDoublingIndex,
    resolve_repair_engine,
)
from repro.core.flatstore import FlatLabelStore
from repro.core.hybrid import make_builder
from repro.graphs.digraph import Graph
from tests.conftest import graph_strategy, random_graph

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy-free environments
    HAVE_NUMPY = False

ENGINES = ["dict"] + (["array"] if HAVE_NUMPY else [])

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy")


def _random_stream(rng: random.Random, n: int, count: int, weighted: bool):
    stream = []
    for _ in range(count):
        if weighted:
            stream.append(
                (rng.randrange(n), rng.randrange(n), float(rng.randint(1, 5)))
            )
        else:
            stream.append((rng.randrange(n), rng.randrange(n)))
    return stream


def _assert_exact(dyn: DynamicHopDoublingIndex) -> APSPOracle:
    truth = APSPOracle(dyn.graph)
    n = dyn.n
    for s in range(n):
        for t in range(n):
            assert dyn.query(s, t) == truth.query(s, t), (s, t)
    return truth


class TestRandomizedRepair:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("seed", range(10))
    def test_exact_after_insertion_sequence(self, seed, engine):
        """Mixed single/batched insertions match a full rebuild's answers."""
        rng = random.Random(seed)
        graph = random_graph(seed, max_n=22)
        n = graph.num_vertices
        dyn = DynamicHopDoublingIndex(graph, engine=engine)
        for _ in range(3):
            if rng.random() < 0.5:
                edge = _random_stream(rng, n, 1, graph.weighted)[0]
                dyn.insert_edge(*edge)
            else:
                dyn.insert_edges(
                    _random_stream(
                        rng, n, rng.randrange(1, 6), graph.weighted
                    )
                )
        _assert_exact(dyn)

    @needs_numpy
    @pytest.mark.parametrize("seed", range(10))
    def test_engines_bit_identical(self, seed):
        """Dict and array repair build the exact same label state."""
        rng = random.Random(seed + 500)
        graph = random_graph(seed, max_n=22)
        n = graph.num_vertices
        dyns = {
            engine: DynamicHopDoublingIndex(graph, engine=engine)
            for engine in ("dict", "array")
        }
        for _ in range(3):
            batch = _random_stream(
                rng, n, rng.randrange(1, 6), graph.weighted
            )
            results = {
                engine: dyn.insert_edges(batch)
                for engine, dyn in dyns.items()
            }
            assert results["dict"] == results["array"]
        snaps = {e: d.snapshot() for e, d in dyns.items()}
        assert snaps["dict"].out_labels == snaps["array"].out_labels
        assert snaps["dict"].in_labels == snaps["array"].in_labels
        deltas = {e: d.pop_label_delta() for e, d in dyns.items()}
        assert deltas["dict"].out == deltas["array"].out
        assert deltas["dict"].inn == deltas["array"].inn

    @settings(max_examples=25, deadline=None)
    @given(graph=graph_strategy(max_n=14, max_m=30))
    def test_property_exact_on_any_graph(self, graph):
        """Hypothesis: repair stays exact on arbitrary small graphs."""
        rng = random.Random(graph.num_vertices * 31 + graph.num_edges)
        n = graph.num_vertices
        engine = "array" if HAVE_NUMPY else "dict"
        dyn = DynamicHopDoublingIndex(graph, engine=engine)
        dyn.insert_edges(_random_stream(rng, n, 4, graph.weighted))
        _assert_exact(dyn)


class TestFromStoreAdoption:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("seed", range(4))
    def test_adopted_store_stays_exact(self, seed, engine):
        rng = random.Random(seed + 60)
        graph = random_graph(seed, max_n=18)
        n = graph.num_vertices
        store = FlatLabelStore.from_index(
            make_builder(graph, "hybrid").build().index
        )
        dyn = DynamicHopDoublingIndex.from_store(
            store, graph=graph, engine=engine
        )
        dyn.insert_edges(_random_stream(rng, n, 5, graph.weighted))
        _assert_exact(dyn)

    def test_from_store_without_ranking_rejected(self):
        graph = Graph.from_edges(3, [(0, 1), (1, 2)], directed=False)
        store = FlatLabelStore.from_index(
            make_builder(graph, "hybrid").build().index
        )
        store.rank = None
        with pytest.raises(ValueError, match="no ranking"):
            DynamicHopDoublingIndex.from_store(store)

    def test_from_store_without_graph_has_no_graph(self):
        graph = Graph.from_edges(3, [(0, 1), (1, 2)], directed=False)
        store = FlatLabelStore.from_index(
            make_builder(graph, "hybrid").build().index
        )
        dyn = DynamicHopDoublingIndex.from_store(store, engine="dict")
        assert dyn.insert_edge(0, 2)
        assert dyn.query(0, 2) == 1.0
        with pytest.raises(ValueError, match="no graph attached"):
            dyn.graph  # noqa: B018 - the property raises

    def test_engine_knob_validation(self):
        graph = Graph.from_edges(2, [(0, 1)], directed=False)
        with pytest.raises(ValueError, match="unknown engine"):
            DynamicHopDoublingIndex(graph, engine="gpu")
        assert resolve_repair_engine("dict") == "dict"
        assert resolve_repair_engine("auto") in REPAIR_ENGINES


class TestBatchSemantics:
    def test_batch_counts_and_dedupe(self):
        graph = Graph.from_edges(5, [(0, 1), (1, 2)], directed=False)
        dyn = DynamicHopDoublingIndex(graph, engine="dict")
        # existing, self loop, duplicate-in-batch, two new edges
        added = dyn.insert_edges([(0, 1), (3, 3), (2, 3), (2, 3), (3, 4)])
        assert added == 2
        assert dyn.insertions == 2
        assert dyn.query(0, 4) == 4.0
        assert dyn.graph.num_edges == 4

    def test_batch_validation(self):
        graph = Graph.from_edges(3, [(0, 1, 2.0)], weighted=True)
        dyn = DynamicHopDoublingIndex(graph, engine="dict")
        with pytest.raises(IndexError):
            dyn.insert_edges([(0, 9)])
        with pytest.raises(ValueError):
            dyn.insert_edges([(1, 2, -1.0)])

    @pytest.mark.parametrize("engine", ENGINES)
    def test_invalid_batch_leaves_state_untouched(self, engine):
        """A rejected batch must not record any of its edges."""
        graph = Graph.from_edges(6, [(0, 2), (2, 1)], directed=False)
        dyn = DynamicHopDoublingIndex(graph, engine=engine)
        with pytest.raises(IndexError):
            dyn.insert_edges([(0, 1), (3, 999)])
        assert dyn.insertions == 0
        assert dyn.graph.num_edges == 2
        assert not dyn.pop_label_delta()
        # the valid edge of the failed batch is still insertable
        assert dyn.insert_edge(0, 1)
        assert dyn.query(0, 1) == 1.0

    def test_batched_matches_sequential(self):
        graph = random_graph(3, max_n=16, weighted=False)
        n = graph.num_vertices
        stream = _random_stream(random.Random(9), n, 6, False)
        one = DynamicHopDoublingIndex(graph, engine="dict")
        for u, v in stream:
            one.insert_edge(u, v)
        batched = DynamicHopDoublingIndex(graph, engine="dict")
        batched.insert_edges(stream)
        # Same grown graph, same (exact) answers; the label sets may
        # differ transiently, so compare through queries.
        truth = APSPOracle(batched.graph)
        for s in range(n):
            for t in range(n):
                assert one.query(s, t) == batched.query(s, t) == truth.query(s, t)


class TestLabelDeltaHandoff:
    def _updated_pair(self, seed, engine):
        rng = random.Random(seed + 900)
        graph = random_graph(seed, max_n=20)
        store = FlatLabelStore.from_index(
            make_builder(graph, "hybrid").build().index
        )
        dyn = DynamicHopDoublingIndex.from_store(
            store, graph=graph, engine=engine
        )
        dyn.insert_edges(
            _random_stream(rng, graph.num_vertices, 6, graph.weighted)
        )
        return graph, store, dyn

    @pytest.mark.parametrize("engine", ENGINES)
    def test_delta_replays_through_flat_store(self, engine):
        graph, store, dyn = self._updated_pair(1, engine)
        n = graph.num_vertices
        delta = dyn.pop_label_delta()
        assert delta and delta.vertices()
        store.apply_updates(delta)
        for s in range(n):
            for t in range(n):
                assert store.query(s, t) == dyn.query(s, t)
        # idempotent drain
        assert not dyn.pop_label_delta()

    @pytest.mark.parametrize("engine", ENGINES)
    def test_delta_covers_compaction(self, engine):
        graph, store, dyn = self._updated_pair(2, engine)
        n = graph.num_vertices
        dyn.compact()
        store.apply_updates(dyn.pop_label_delta())
        for s in range(n):
            for t in range(n):
                assert store.query(s, t) == dyn.query(s, t)

    @needs_numpy
    def test_delta_serves_through_quantized_and_kernel(self):
        from repro.core.quantized import QuantizedLabelStore
        from repro.oracle import evaluate_batch

        graph, store, dyn = self._updated_pair(3, "array")
        n = graph.num_vertices
        quant = QuantizedLabelStore.from_flat(store)
        delta = dyn.pop_label_delta()
        store.apply_updates(delta)
        quant.apply_updates(delta)
        pairs = [(s, t) for s in range(n) for t in range(n)]
        want = [dyn.query(s, t) for s, t in pairs]
        assert evaluate_batch(store, pairs, kernel="on") == want
        assert evaluate_batch(quant, pairs, kernel="on") == want
        assert evaluate_batch(quant, pairs, kernel="off") == want

    @pytest.mark.parametrize("engine", ENGINES)
    def test_delta_routes_through_sharded_store(self, tmp_path, engine):
        from repro.oracle import ShardedLabelStore

        graph, store, dyn = self._updated_pair(4, engine)
        n = graph.num_vertices
        ShardedLabelStore.split(store, min(3, n)).save(tmp_path / "shards")
        sharded = ShardedLabelStore.load(tmp_path / "shards")
        delta = dyn.pop_label_delta()
        affected = sharded.apply_updates(delta)
        assert affected == sorted(
            {sharded.shard_of(v) for v in delta.vertices()}
        )
        for s in range(n):
            for t in range(n):
                assert sharded.query(s, t) == dyn.query(s, t)
