"""Cross-cutting exactness properties (Theorems 1, 3, 5; Lemma 8).

The central contract: for every builder strategy, rule set, graph kind
and ranking, the index answers every pair query exactly.  Also the
canonical-labeling identity: on any graph, with the same ranking,
HopDb's pruned index IS the PLL index (labels equal element-wise on
unweighted inputs).
"""

import pytest
from hypothesis import given, settings

from repro.baselines.apsp import APSPOracle
from repro.baselines.pll import build_pll
from repro.core.hybrid import make_builder
from repro.core.ranking import make_ranking, random_ranking
from repro.graphs.transform import permute_vertices, random_permutation
from tests.conftest import graph_strategy, random_graph

STRATEGIES = ("stepping", "doubling", "hybrid")


class TestExactness:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @settings(max_examples=30, deadline=None)
    @given(graph_strategy())
    def test_all_pairs_exact(self, strategy, g):
        truth = APSPOracle(g)
        idx = make_builder(g, strategy).build().index
        for s in range(g.num_vertices):
            for t in range(g.num_vertices):
                assert idx.query(s, t) == truth.query(s, t)

    @settings(max_examples=20, deadline=None)
    @given(graph_strategy())
    def test_exact_under_random_ranking(self, g):
        """Correctness never depends on the ranking (Section 7)."""
        truth = APSPOracle(g)
        ranking = random_ranking(g, seed=5)
        idx = make_builder(g, "hybrid", ranking=ranking).build().index
        for s in range(g.num_vertices):
            for t in range(g.num_vertices):
                assert idx.query(s, t) == truth.query(s, t)

    @pytest.mark.parametrize("seed", range(10))
    def test_exact_without_pruning(self, seed):
        """Pruning off: bigger index, same answers (Theorem 1)."""
        g = random_graph(seed, max_n=25)
        truth = APSPOracle(g)
        idx = make_builder(g, "stepping", prune=False).build().index
        for s in range(g.num_vertices):
            for t in range(g.num_vertices):
                assert idx.query(s, t) == truth.query(s, t)

    @pytest.mark.parametrize("seed", range(6))
    def test_exact_with_betweenness_ranking(self, seed):
        g = random_graph(seed, max_n=20)
        truth = APSPOracle(g)
        ranking = make_ranking(g, "betweenness", num_samples=8)
        idx = make_builder(g, "hybrid", ranking=ranking).build().index
        for s in range(g.num_vertices):
            for t in range(g.num_vertices):
                assert idx.query(s, t) == truth.query(s, t)


class TestCanonicalIdentity:
    """HopDb with pruning == PLL canonical labeling (same ranking)."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @settings(max_examples=50, deadline=None)
    @given(graph_strategy(weighted=False))
    def test_labels_equal_pll(self, strategy, g):
        pll, _ = build_pll(g)
        hop = make_builder(g, strategy).build().index
        assert hop.out_labels == pll.out_labels
        assert hop.in_labels == pll.in_labels

    @settings(max_examples=20, deadline=None)
    @given(graph_strategy(weighted=True))
    def test_sizes_close_to_pll_weighted(self, g):
        """On weighted graphs tie-breaking may differ slightly, but the
        two canonical-style indexes stay within a few entries."""
        pll, _ = build_pll(g)
        hop = make_builder(g, "hybrid").build().index
        a, b = hop.total_entries(), pll.total_entries()
        assert abs(a - b) <= max(4, 0.15 * max(a, b))


class TestMinimality:
    """Canonical labelings are minimal: deleting any non-trivial entry
    breaks some query (Section 2.1)."""

    @pytest.mark.parametrize("seed", range(5))
    def test_every_entry_is_needed(self, seed):
        g = random_graph(seed, max_n=12, weighted=False)
        truth = APSPOracle(g)
        result = make_builder(g, "hybrid").build()
        idx = result.index
        n = g.num_vertices

        def queries_all_exact(index) -> bool:
            return all(
                index.query(s, t) == truth.query(s, t)
                for s in range(n)
                for t in range(n)
            )

        assert queries_all_exact(idx)
        from repro.core.labels import LabelIndex

        for v in range(n):
            for i, (pivot, _) in enumerate(idx.out_labels[v]):
                if pivot == v:
                    continue
                mutated_out = [list(lab) for lab in idx.out_labels]
                del mutated_out[v][i]
                if g.directed:
                    mutated = LabelIndex(
                        n, True, mutated_out, idx.in_labels, idx.rank
                    )
                else:
                    mutated = LabelIndex(
                        n, False, mutated_out, mutated_out, idx.rank
                    )
                assert not queries_all_exact(mutated), (
                    f"entry (pivot {pivot}) in Lout({v}) is redundant"
                )


class TestPermutationInvariance:
    """Vertex ids must not matter: relabeling the graph relabels the
    answers."""

    @pytest.mark.parametrize("seed", range(5))
    def test_distances_commute_with_permutation(self, seed):
        g = random_graph(seed, max_n=20, weighted=False)
        n = g.num_vertices
        perm = random_permutation(n, seed=seed + 100)
        pg = permute_vertices(g, perm)
        idx = make_builder(g, "hybrid").build().index
        pidx = make_builder(pg, "hybrid").build().index
        for s in range(n):
            for t in range(n):
                assert idx.query(s, t) == pidx.query(perm[s], perm[t])
