"""Tests for the serving stores' staged-update overlay (apply_updates)."""

from __future__ import annotations

import pytest

from repro.core.dynamic import DynamicHopDoublingIndex
from repro.core.flatstore import FlatLabelStore, load_store
from repro.core.hybrid import make_builder
from repro.core.labels import LabelDelta
from repro.core.quantized import QuantizedLabelStore
from repro.graphs.generators import glp_graph


@pytest.fixture(scope="module")
def setting():
    """A built store plus an insertion-repaired twin and its delta."""
    graph = glp_graph(80, seed=21)
    index = make_builder(graph, "hybrid").build().index
    store = FlatLabelStore.from_index(index)
    dyn = DynamicHopDoublingIndex.from_store(store, graph=graph, engine="dict")
    dyn.insert_edges([(0, 79), (5, 60), (17, 44)])
    return graph, index, dyn, dyn.pop_label_delta()


def fresh_flat(setting) -> FlatLabelStore:
    return FlatLabelStore.from_index(setting[1])


def all_pairs(n):
    return [(s, t) for s in range(n) for t in range(n)]


class TestFlatOverlay:
    def test_overlay_serves_updated_answers(self, setting):
        graph, _, dyn, delta = setting
        store = fresh_flat(setting)
        assert not store.has_pending_updates
        staged = store.apply_updates(delta)
        assert staged == len(delta)
        assert store.has_pending_updates
        for s, t in all_pairs(graph.num_vertices):
            assert store.query(s, t) == dyn.query(s, t)

    def test_overlay_label_accessors_and_slices(self, setting):
        _, _, dyn, delta = setting
        store = fresh_flat(setting)
        store.apply_updates(delta)
        v = next(iter(delta.out))
        assert store.out_label(v) == delta.out[v]
        pivots, dists, lo, hi = store.out_slice(v)
        assert list(zip(pivots[lo:hi], dists[lo:hi])) == delta.out[v]

    def test_query_group_and_via_respect_overlay(self, setting):
        graph, _, dyn, delta = setting
        store = fresh_flat(setting)
        store.apply_updates(delta)
        targets = list(range(graph.num_vertices))
        assert store.query_group(0, targets) == [
            dyn.query(0, t) for t in targets
        ]
        dist, pivot = store.query_via(0, 79)
        assert dist == dyn.query(0, 79)
        assert pivot >= 0

    def test_total_entries_tracks_overlay(self, setting):
        _, _, _, delta = setting
        store = fresh_flat(setting)
        merged_total = None
        store.apply_updates(delta)
        merged_total = store.merged().total_entries(include_trivial=True)
        assert store.total_entries(include_trivial=True) == merged_total

    def test_merged_and_save_fold_overlay(self, setting, tmp_path):
        graph, _, dyn, delta = setting
        store = fresh_flat(setting)
        store.apply_updates(delta)
        merged = store.merged()
        assert not merged.has_pending_updates
        store.save(tmp_path / "u.idx2")
        reloaded = load_store(tmp_path / "u.idx2")
        for s, t in all_pairs(graph.num_vertices):
            assert merged.query(s, t) == dyn.query(s, t)
            assert reloaded.query(s, t) == dyn.query(s, t)

    def test_mmap_store_accepts_overlay(self, setting, tmp_path):
        graph, _, dyn, delta = setting
        base = fresh_flat(setting)
        base.save(tmp_path / "base.idx2")
        store = FlatLabelStore.load(tmp_path / "base.idx2", use_mmap=True)
        try:
            if not store.is_mmapped:
                pytest.skip("platform without zero-copy mmap")
            store.apply_updates(delta)
            for s, t in all_pairs(graph.num_vertices):
                assert store.query(s, t) == dyn.query(s, t)
        finally:
            store.close()

    def test_shape_mismatch_rejected(self, setting):
        store = fresh_flat(setting)
        with pytest.raises(ValueError, match="does not match store"):
            store.apply_updates(LabelDelta.empty(3, store.directed))
        bad = LabelDelta.empty(store.n, store.directed)
        bad.out[store.n + 5] = [(0, 1.0)]
        with pytest.raises(IndexError):
            store.apply_updates(bad)


class TestQuantizedOverlay:
    def test_overlay_and_reencode_roundtrip(self, setting, tmp_path):
        graph, index, dyn, delta = setting
        quant = QuantizedLabelStore.from_flat(fresh_flat(setting))
        quant.apply_updates(delta)
        for s, t in all_pairs(graph.num_vertices):
            assert quant.query(s, t) == dyn.query(s, t)
        quant.save(tmp_path / "u.idx3")
        reloaded = load_store(tmp_path / "u.idx3")
        assert isinstance(reloaded, QuantizedLabelStore)
        for s, t in all_pairs(graph.num_vertices):
            assert reloaded.query(s, t) == dyn.query(s, t)

    def test_to_flat_folds_overlay(self, setting):
        graph, _, dyn, delta = setting
        quant = QuantizedLabelStore.from_flat(fresh_flat(setting))
        quant.apply_updates(delta)
        flat = quant.to_flat()
        assert not flat.has_pending_updates
        for s, t in all_pairs(graph.num_vertices):
            assert flat.query(s, t) == dyn.query(s, t)

    def test_from_flat_folds_source_overlay(self, setting):
        graph, _, dyn, delta = setting
        store = fresh_flat(setting)
        store.apply_updates(delta)
        quant = QuantizedLabelStore.from_flat(store)
        assert not quant.has_pending_updates
        for s, t in all_pairs(graph.num_vertices):
            assert quant.query(s, t) == dyn.query(s, t)
