"""Tests for vertex ranking strategies."""

import pytest

from repro.core.ranking import (
    Ranking,
    betweenness_sample_ranking,
    degree_ranking,
    inout_product_ranking,
    make_ranking,
    random_ranking,
)
from repro.graphs.digraph import Graph
from repro.graphs.generators import glp_graph, grid_graph, star_graph


class TestRankingType:
    def test_from_scores(self):
        r = Ranking.from_scores([1.0, 5.0, 3.0])
        assert r.vertex_at == [1, 2, 0]
        assert r.rank_of == [2, 0, 1]

    def test_ties_broken_by_id(self):
        r = Ranking.from_scores([2.0, 2.0, 2.0])
        assert r.vertex_at == [0, 1, 2]

    def test_from_order_validates(self):
        with pytest.raises(ValueError):
            Ranking.from_order([0, 0, 1])

    def test_outranks(self):
        r = Ranking.from_order([2, 0, 1])
        assert r.outranks(2, 0)
        assert not r.outranks(1, 0)

    def test_top(self):
        r = Ranking.from_order([3, 1, 0, 2])
        assert r.top(2) == [3, 1]

    def test_len(self):
        assert len(Ranking.from_order([0, 1])) == 2


class TestDegreeRanking:
    def test_star_center_first(self):
        r = degree_ranking(star_graph(6))
        assert r.vertex_at[0] == 0

    def test_covers_all_vertices(self):
        g = glp_graph(100, seed=0)
        r = degree_ranking(g)
        assert sorted(r.vertex_at) == list(range(100))


class TestInOutRanking:
    def test_prefers_balanced_hubs(self):
        # Vertex 1: 2 in x 2 out = 4; vertex 0: 4 out x 0 in = 0.
        edges = [(0, 2), (0, 3), (0, 4), (0, 1), (2, 1), (1, 5), (1, 6)]
        g = Graph.from_edges(7, edges, directed=True)
        r = inout_product_ranking(g)
        assert r.vertex_at[0] == 1

    def test_tie_break_by_total_degree(self):
        # Both products zero; vertex 0 has larger total degree.
        g = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)], directed=True)
        r = inout_product_ranking(g)
        assert r.vertex_at[0] == 0


class TestRandomRanking:
    def test_deterministic_by_seed(self):
        g = glp_graph(50, seed=0)
        assert random_ranking(g, seed=4).vertex_at == random_ranking(
            g, seed=4
        ).vertex_at

    def test_differs_across_seeds(self):
        g = glp_graph(50, seed=0)
        assert random_ranking(g, seed=1).vertex_at != random_ranking(
            g, seed=2
        ).vertex_at


class TestBetweennessRanking:
    def test_grid_center_outranks_corner(self):
        g = grid_graph(7, 7)
        r = betweenness_sample_ranking(g, num_samples=49, seed=0)
        center = 3 * 7 + 3
        corner = 0
        assert r.rank_of[center] < r.rank_of[corner]

    def test_weighted_graph_supported(self):
        g = Graph.from_edges(
            4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0)], weighted=True
        )
        r = betweenness_sample_ranking(g, seed=0)
        assert len(r) == 4

    def test_empty_graph(self):
        g = Graph.from_edges(0, [])
        assert len(betweenness_sample_ranking(g)) == 0


class TestMakeRanking:
    def test_auto_directed_uses_inout(self):
        g = glp_graph(60, seed=1, directed=True)
        auto = make_ranking(g, "auto")
        assert auto.vertex_at == inout_product_ranking(g).vertex_at

    def test_auto_undirected_uses_degree(self):
        g = glp_graph(60, seed=1)
        auto = make_ranking(g, "auto")
        assert auto.vertex_at == degree_ranking(g).vertex_at

    def test_unknown_strategy(self):
        g = glp_graph(10, seed=0)
        with pytest.raises(ValueError, match="unknown ranking"):
            make_ranking(g, "pagerank")

    def test_effectiveness_degree_beats_random(self):
        """The Section 2 claim: degree ranking yields smaller covers."""
        from repro.core.hybrid import HybridBuilder

        g = glp_graph(250, seed=9)
        by_degree = HybridBuilder(g, ranking="degree").build().index
        by_random = HybridBuilder(g, ranking="random").build().index
        assert by_degree.total_entries() < by_random.total_entries()
