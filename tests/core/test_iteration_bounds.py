"""Iteration-count theorems (Theorems 2, 4, 6 and Lemma 5).

Counting convention (matches the paper): initialization is iteration 1,
so ``num_iterations = 1 + productive generation rounds``.
"""

import math

import pytest
from hypothesis import given, settings

from repro.baselines.apsp import APSPOracle
from repro.core.hop_doubling import HopDoubling
from repro.core.hop_stepping import HopStepping
from repro.core.hybrid import HybridBuilder
from repro.graphs.generators import cycle_graph, glp_graph, path_graph
from tests.conftest import graph_strategy


def _hop_diameter(g) -> int:
    return APSPOracle(g).hop_diameter()


class TestTheorem6SteppingBound:
    """Hop-Stepping terminates within D_H iterations."""

    @settings(max_examples=40, deadline=None)
    @given(graph_strategy(weighted=False))
    def test_bound_random(self, g):
        dh = max(1, _hop_diameter(g))
        result = HopStepping(g).build()
        assert result.num_iterations <= dh

    @pytest.mark.parametrize("n", [5, 17, 33])
    def test_path_graph_tight(self, n):
        # On a path the bound is met with equality... minus pruning that
        # cuts covered-by-higher entries; it can only be below D_H.
        result = HopStepping(path_graph(n)).build()
        assert result.num_iterations <= n - 1

    def test_cycle(self):
        g = cycle_graph(20)  # diameter 10
        result = HopStepping(g).build()
        assert result.num_iterations <= 10


class TestTheorem4DoublingBound:
    """Hop-Doubling with pruning: at most 2 * ceil(log2 D_H) productive
    generation rounds."""

    @settings(max_examples=40, deadline=None)
    @given(graph_strategy(weighted=False))
    def test_bound_random(self, g):
        dh = _hop_diameter(g)
        result = HopDoubling(g).build()
        productive = sum(1 for it in result.iterations if it.survived > 0)
        if dh <= 1:
            assert productive == 0 or dh == 1
        else:
            assert productive <= 2 * math.ceil(math.log2(dh))

    @pytest.mark.parametrize("n,limit", [(9, 6), (33, 10), (65, 12)])
    def test_path_graphs(self, n, limit):
        # D_H = n - 1; bound = 2 * ceil(log2(n-1)).
        result = HopDoubling(path_graph(n)).build()
        productive = sum(1 for it in result.iterations if it.survived > 0)
        assert productive <= limit


class TestTheorem2Coverage:
    """After the 2i-th doubling iteration every <= 2^i-hop trough
    shortest path is covered.  Verified via distances: on an unweighted
    graph, by round 2i, every pair at distance <= 2^i must already be
    answered exactly (its canonical entries cover paths of <= 2^i hops).
    """

    def test_progressive_coverage_on_path(self):
        g = path_graph(33)
        builder = HopDoubling(g, max_iterations=4)  # 4 generation rounds
        result = builder.build()
        truth = APSPOracle(g)
        # 4 rounds = paper iterations 2..5 >= 2i with i = 2 -> all pairs
        # within 2^2 = 4 hops are covered.
        idx = result.index
        for s in range(33):
            for t in range(33):
                if truth.query(s, t) <= 4:
                    assert idx.query(s, t) == truth.query(s, t)


class TestLemma5SteppingCoverage:
    """At stepping iteration i all i-hop trough shortest paths are
    covered: pairs at distance <= i answer exactly."""

    def test_progressive_coverage(self):
        g = path_graph(20)
        truth = APSPOracle(g)
        for rounds, reach in [(1, 2), (3, 4), (5, 6)]:
            idx = HopStepping(g, max_iterations=rounds).build().index
            for s in range(20):
                for t in range(20):
                    if truth.query(s, t) <= reach:
                        assert idx.query(s, t) == truth.query(s, t)


class TestHybridIterations:
    def test_hybrid_caps_iterations_on_long_diameter(self):
        # Stepping needs ~n/2 rounds on a cycle; hybrid switches to
        # doubling and finishes in O(log) more rounds.
        g = cycle_graph(64)  # diameter 32
        stepping = HopStepping(g).build()
        hybrid = HybridBuilder(g, switch_iteration=5).build()
        assert hybrid.num_iterations < stepping.num_iterations

    def test_hybrid_equals_stepping_on_small_diameter(self):
        g = glp_graph(200, seed=8)  # diameter << 10
        stepping = HopStepping(g).build()
        hybrid = HybridBuilder(g).build()
        assert hybrid.num_iterations == stepping.num_iterations
        assert hybrid.index.out_labels == stepping.index.out_labels

    def test_max_iterations_cap_respected(self):
        g = path_graph(50)
        result = HopStepping(g, max_iterations=3).build()
        assert len(result.iterations) == 3
