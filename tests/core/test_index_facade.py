"""Tests for the public HopDoublingIndex facade."""

import pytest

from repro import HopDoublingIndex, INF
from repro.graphs.digraph import Graph
from repro.graphs.generators import glp_graph
from repro.baselines.apsp import APSPOracle


@pytest.fixture(scope="module")
def graph():
    return glp_graph(200, seed=20)


@pytest.fixture(scope="module")
def index(graph):
    return HopDoublingIndex.build(graph)


class TestBuildAndQuery:
    def test_default_build_exact(self, graph, index):
        truth = APSPOracle(graph)
        for s in range(0, graph.num_vertices, 7):
            for t in range(0, graph.num_vertices, 7):
                assert index.query(s, t) == truth.query(s, t)

    @pytest.mark.parametrize("strategy", ["stepping", "doubling", "hybrid"])
    def test_strategies_accepted(self, graph, strategy):
        idx = HopDoublingIndex.build(graph, strategy=strategy)
        assert idx.query(0, 1) == HopDoublingIndex.build(graph).query(0, 1)

    def test_bitparallel_option(self, graph):
        idx = HopDoublingIndex.build(graph, use_bitparallel=True, num_roots=8)
        plain = HopDoublingIndex.build(graph)
        for s in range(0, graph.num_vertices, 11):
            for t in range(0, graph.num_vertices, 11):
                assert idx.query(s, t) == plain.query(s, t)

    def test_bitparallel_rejected_on_directed(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)], directed=True)
        with pytest.raises(ValueError):
            HopDoublingIndex.build(g, use_bitparallel=True)

    def test_reachability(self, index):
        assert index.is_reachable(0, 100)

    def test_query_path(self, graph, index):
        path = index.query_path(0, 50)
        assert path[0] == 0 and path[-1] == 50
        assert len(path) - 1 == index.query(0, 50)


class TestInspection:
    def test_num_vertices(self, graph, index):
        assert index.num_vertices == graph.num_vertices

    def test_iteration_stats_exposed(self, index):
        stats = index.iteration_stats
        assert len(stats) >= 1
        assert index.num_iterations >= 1

    def test_stats_and_size(self, index):
        s = index.stats()
        assert s.total_entries > 0
        assert index.size_in_bytes() > 0

    def test_repr(self, index):
        assert "HopDoublingIndex" in repr(index)


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path, graph, index):
        path = tmp_path / "facade.idx"
        index.save(path)
        loaded = HopDoublingIndex.load(path)
        for s in range(0, graph.num_vertices, 13):
            for t in range(0, graph.num_vertices, 13):
                assert loaded.query(s, t) == index.query(s, t)

    def test_loaded_index_has_no_history(self, tmp_path, index):
        path = tmp_path / "facade.idx"
        index.save(path)
        loaded = HopDoublingIndex.load(path)
        with pytest.raises(ValueError, match="loaded from disk"):
            _ = loaded.num_iterations
        with pytest.raises(ValueError, match="loaded from disk"):
            _ = loaded.iteration_stats

    def test_loaded_index_cannot_reconstruct_paths(self, tmp_path, index):
        path = tmp_path / "facade.idx"
        index.save(path)
        loaded = HopDoublingIndex.load(path)
        with pytest.raises(ValueError, match="graph"):
            loaded.query_path(0, 1)


class TestUnreachable:
    def test_inf_for_unreachable(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)], directed=False)
        idx = HopDoublingIndex.build(g)
        assert idx.query(0, 3) == INF
        assert not idx.is_reachable(0, 3)
