"""Tests for the inverted label index (one-to-all and k-NN)."""

import pytest
from hypothesis import given, settings

from repro.baselines.apsp import APSPOracle
from repro.core.hybrid import make_builder
from repro.core.knn import InvertedLabelIndex
from repro.graphs.digraph import Graph
from repro.graphs.generators import glp_graph, path_graph, star_graph
from tests.conftest import graph_strategy


def _build(g):
    idx = make_builder(g, "hybrid").build().index
    return InvertedLabelIndex(idx)


class TestOneToAll:
    @settings(max_examples=30, deadline=None)
    @given(graph_strategy())
    def test_distances_from_matches_truth(self, g):
        truth = APSPOracle(g)
        inv = _build(g)
        for s in range(g.num_vertices):
            dist = inv.distances_from(s)
            for t in range(g.num_vertices):
                assert dist[t] == truth.query(s, t)

    @settings(max_examples=20, deadline=None)
    @given(graph_strategy(directed=True))
    def test_distances_to_matches_truth(self, g):
        truth = APSPOracle(g)
        inv = _build(g)
        for t in range(g.num_vertices):
            dist = inv.distances_to(t)
            for s in range(g.num_vertices):
                assert dist[s] == truth.query(s, t)

    def test_unreachable_is_inf(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)], directed=False)
        inv = _build(g)
        assert inv.distances_from(0)[3] == float("inf")


class TestKNN:
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_nearest_matches_bruteforce(self, k):
        g = glp_graph(120, seed=6)
        truth = APSPOracle(g)
        inv = _build(g)
        for s in range(0, 120, 17):
            got = inv.nearest(s, k)
            want = sorted(
                (truth.query(s, t), t)
                for t in range(120)
                if t != s and truth.query(s, t) != float("inf")
            )[:k]
            assert [d for d, _ in got] == [d for d, _ in want]

    def test_star_center_neighbours(self):
        g = star_graph(6)
        inv = _build(g)
        nn = inv.nearest(0, 3)
        assert all(d == 1.0 for d, _ in nn)

    def test_k_zero(self):
        inv = _build(path_graph(4))
        assert inv.nearest(0, 0) == []

    def test_k_larger_than_reachable(self):
        g = Graph.from_edges(4, [(0, 1)], directed=False)
        inv = _build(g)
        nn = inv.nearest(0, 10)
        assert nn == [(1.0, 1)]

    def test_include_self(self):
        inv = _build(path_graph(4))
        nn = inv.nearest(0, 2, include_self=True)
        assert nn[0] == (0.0, 0)

    def test_directed_knn(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (3, 0)], directed=True)
        inv = _build(g)
        nn = inv.nearest(0, 3)
        # 3 -> 0 must not appear (wrong direction).
        assert [v for _, v in nn] == [1, 2]


class TestStructure:
    def test_size_in_entries_matches_labels(self):
        g = glp_graph(80, seed=2)
        idx = make_builder(g, "hybrid").build().index
        inv = InvertedLabelIndex(idx)
        assert inv.size_in_entries() == idx.total_entries(include_trivial=True)

    def test_undirected_aliases_inversions(self):
        inv = _build(glp_graph(40, seed=1))
        assert inv.inverted_out is inv.inverted_in
