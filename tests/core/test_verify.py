"""Tests for the index verifier (including failure injection)."""

import pytest

from repro.core.hybrid import make_builder
from repro.core.labels import LabelIndex
from repro.core.verify import verify_index
from repro.graphs.digraph import Graph
from repro.graphs.generators import glp_graph
from tests.conftest import random_graph


@pytest.fixture(scope="module")
def built():
    g = glp_graph(120, seed=40)
    idx = make_builder(g, "hybrid").build().index
    return g, idx


class TestHappyPath:
    def test_valid_index_passes(self, built):
        g, idx = built
        report = verify_index(g, idx)
        assert report.ok, report.violations
        assert report.checked_queries > 0
        assert report.checked_entries > 0
        assert "OK" in str(report)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs_pass(self, seed):
        g = random_graph(seed, max_n=25)
        idx = make_builder(g, "hybrid").build().index
        assert verify_index(g, idx).ok

    def test_empty_graph(self):
        g = Graph.from_edges(0, [])
        idx = make_builder(g, "hybrid").build().index
        assert verify_index(g, idx).ok


class TestFailureInjection:
    def _mutated(self, idx, mutate) -> LabelIndex:
        out = [list(lab) for lab in idx.out_labels]
        mutate(out)
        if idx.directed:
            return LabelIndex(idx.n, True, out, idx.in_labels, idx.rank)
        return LabelIndex(idx.n, False, out, out, idx.rank)

    def test_vertex_count_mismatch(self, built):
        g, idx = built
        small = Graph.from_edges(3, [(0, 1)])
        report = verify_index(small, idx)
        assert not report.ok
        assert "mismatch" in report.violations[0]

    def test_unsorted_label_detected(self, built):
        g, idx = built
        v = next(
            v for v in range(idx.n) if len(idx.out_labels[v]) >= 3
        )

        def mutate(out):
            out[v][0], out[v][1] = out[v][1], out[v][0]

        report = verify_index(g, self._mutated(idx, mutate))
        assert any("not sorted" in m for m in report.violations)

    def test_missing_self_entry_detected(self, built):
        g, idx = built

        def mutate(out):
            out[0] = [(p, d) for p, d in out[0] if p != 0]

        report = verify_index(g, self._mutated(idx, mutate))
        assert any("trivial" in m for m in report.violations)

    def test_underestimating_entry_detected(self, built):
        g, idx = built
        v = next(
            v for v in range(idx.n) if len(idx.out_labels[v]) >= 2
        )

        def mutate(out):
            entries = out[v]
            for i, (p, d) in enumerate(entries):
                if p != v:
                    entries[i] = (p, d - 0.5)  # impossible shortcut
                    break

        report = verify_index(g, self._mutated(idx, mutate), samples=4000)
        assert not report.ok

    def test_deleted_entry_breaks_completeness(self, built):
        g, idx = built
        # Remove a non-trivial entry from a high-degree vertex: some
        # sampled query should now come out wrong.
        v = max(range(idx.n), key=lambda v: len(idx.out_labels[v]))

        def mutate(out):
            out[v] = [e for e in out[v][:1]] + out[v][2:]

        report = verify_index(g, self._mutated(idx, mutate), samples=8000)
        assert not report.ok

    def test_rank_violation_detected(self, built):
        g, idx = built
        # Attach a ranking that contradicts the pivot order.
        flipped = list(reversed(idx.rank))
        bad = LabelIndex(
            idx.n, idx.directed, idx.out_labels, idx.in_labels, flipped
        )
        report = verify_index(g, bad)
        assert any("outrank" in m for m in report.violations)
