"""Hop-count bookkeeping and trough-path semantics.

Label entries carry ``(dist, hops)`` during construction; Figure 10's
analysis and the weighted iteration bound depend on them being
meaningful: on unweighted graphs hop counts equal distances, and every
entry corresponds to a *trough* path under the ranking.
"""

import pytest
from hypothesis import given, settings

from repro.baselines.apsp import APSPOracle
from repro.core.hop_stepping import HopStepping
from repro.graphs.digraph import Graph
from repro.graphs.traversal import INF
from tests.conftest import graph_strategy, random_graph


def _build_state(builder_cls, g, ranking=None):
    builder = builder_cls(g, ranking=ranking if ranking else "auto")
    state, prev = builder._initial_state()
    from repro.core.rules import make_engine
    from repro.core.pruning import admit_and_prune

    engine = make_engine(state, g, "minimized")
    iteration = 1
    while prev:
        iteration += 1
        mode = builder.mode_for(iteration)
        cands = engine.stepping(prev) if mode == "step" else engine.doubling(prev)
        prev, _ = admit_and_prune(state, cands)
    return state


class TestHopCounts:
    @settings(max_examples=25, deadline=None)
    @given(graph_strategy(weighted=False))
    def test_unweighted_hops_equal_distance(self, g):
        state = _build_state(HopStepping, g)
        for owner, pivot, dist, hops, is_out in state.iter_entries():
            assert hops == dist

    @pytest.mark.parametrize("seed", range(5))
    def test_weighted_hops_bound_distance(self, seed):
        g = random_graph(seed, max_n=20, weighted=True)
        state = _build_state(HopStepping, g)
        for owner, pivot, dist, hops, is_out in state.iter_entries():
            # Each hop contributes at least the minimum edge weight.
            assert hops >= 1
            assert dist >= hops * 1.0  # weights are >= 1 in the fixture


class TestTroughSemantics:
    """Every surviving entry covers a real trough path: there must be a
    shortest path between the pair whose interior stays below the
    higher-ranked endpoint."""

    @pytest.mark.parametrize("seed", range(6))
    def test_entries_cover_trough_paths(self, seed):
        g = random_graph(seed, max_n=16, weighted=False)
        state = _build_state(HopStepping, g)
        rank = state.rank
        truth = APSPOracle(g)
        for owner, pivot, dist, hops, is_out in state.iter_entries():
            if is_out:
                a, b = owner, pivot
            else:
                a, b = pivot, owner
            # Entry distance is the true distance (canonical index).
            assert dist == truth.query(a, b)
            # And a trough path of that length exists: search restricted
            # to vertices ranked below the higher endpoint.
            hi = min(rank[a], rank[b])
            allowed = {
                v
                for v in range(g.num_vertices)
                if rank[v] > hi or v in (a, b)
            }
            assert _restricted_distance(g, a, b, allowed) == dist


def _restricted_distance(g: Graph, s: int, t: int, allowed: set[int]) -> float:
    """BFS through `allowed` vertices only."""
    from collections import deque

    if s == t:
        return 0.0
    dist = {s: 0.0}
    queue = deque([s])
    while queue:
        u = queue.popleft()
        for v in g.out_neighbors(u):
            if v in allowed and v not in dist:
                dist[v] = dist[u] + 1.0
                if v == t:
                    return dist[v]
                queue.append(v)
    return INF
