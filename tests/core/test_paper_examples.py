"""The paper's worked examples, reproduced entry for entry.

* Tables 3-4: the small canonical covers for the road graph ``GR``
  (Figure 1) and the star ``GS`` (Figure 2);
* Example 1 / Figure 5: the full Hop-Doubling labeling (no pruning) of
  the 8-vertex directed graph in Figure 3;
* Example 2: pruning removes ``(2 -> 1, 2)`` via ``(2 -> 0, 1)`` and
  ``(0 -> 1, 1)``;
* Example 3: Hop-Stepping defers ``(4 -> 2, 4)`` to the iteration
  after the one where Hop-Doubling finds it.
"""

import pytest

from repro.core.hop_doubling import HopDoubling
from repro.core.hop_stepping import HopStepping
from repro.core.ranking import Ranking, degree_ranking

A, B, C, D, E = 0, 1, 2, 3, 4  # Figure 1/2 vertex names


def _labels_as_dict(index, v, out=True):
    return dict(index.label_of(v, out=out))


class TestRoadGraphTable3:
    """Degree ranking on GR reproduces Table 3's minimal cover."""

    @pytest.fixture
    def index(self, road_graph):
        ranking = degree_ranking(road_graph)
        # Paper ranks a highest (degree 3), then b (2), ties by name.
        assert ranking.vertex_at[0] == A
        assert ranking.rank_of[B] < ranking.rank_of[C]
        return HopDoubling(road_graph, ranking=ranking).build().index

    def test_exact_table3_labels(self, index):
        assert _labels_as_dict(index, A) == {A: 0.0}
        assert _labels_as_dict(index, B) == {B: 0.0, A: 1.0}
        assert _labels_as_dict(index, C) == {C: 0.0, A: 2.0, B: 1.0}
        assert _labels_as_dict(index, D) == {D: 0.0, A: 1.0}
        assert _labels_as_dict(index, E) == {E: 0.0, A: 1.0}

    def test_cover_is_half_of_table1(self, index):
        # Table 1's naive cover has 10 non-trivial entries; Table 3 cuts
        # that to 5 ("by half or more", Section 2.1).
        assert index.total_entries() == 5

    def test_all_queries_exact(self, index, road_graph):
        from repro.baselines.apsp import APSPOracle

        truth = APSPOracle(road_graph)
        for s in range(5):
            for t in range(5):
                assert index.query(s, t) == truth.query(s, t)


class TestStarGraphTable4:
    """The star's center covers everything (Table 4)."""

    def test_leaf_labels_are_center_only(self, star5):
        index = HopDoubling(star5, ranking="degree").build().index
        assert _labels_as_dict(index, 0) == {0: 0.0}
        for leaf in range(1, 6):
            assert _labels_as_dict(index, leaf) == {leaf: 0.0, 0: 1.0}

    def test_leaf_to_leaf_distance(self, star5):
        index = HopDoubling(star5, ranking="degree").build().index
        assert index.query(1, 4) == 2.0


class TestFigure3Labeling:
    """Example 1: Hop-Doubling without pruning on Figure 3's graph."""

    @pytest.fixture
    def result(self, figure3_graph):
        # Vertex ids are already the ranks in the paper's example.
        ranking = Ranking.from_order(list(range(8)))
        return HopDoubling(
            figure3_graph, ranking=ranking, prune=False
        ).build()

    def test_figure5_in_labels(self, result):
        idx = result.index
        assert _labels_as_dict(idx, 0, out=False) == {0: 0.0}
        assert _labels_as_dict(idx, 1, out=False) == {1: 0.0, 0: 1.0}
        assert _labels_as_dict(idx, 2, out=False) == {2: 0.0}
        assert _labels_as_dict(idx, 3, out=False) == {3: 0.0, 2: 1.0}
        assert _labels_as_dict(idx, 4, out=False) == {4: 0.0}
        assert _labels_as_dict(idx, 5, out=False) == {5: 0.0, 4: 1.0}
        assert _labels_as_dict(idx, 6, out=False) == {6: 0.0, 0: 1.0, 2: 1.0}
        assert _labels_as_dict(idx, 7, out=False) == {7: 0.0, 3: 1.0, 2: 2.0}

    def test_figure5_out_labels(self, result):
        idx = result.index
        assert _labels_as_dict(idx, 0) == {0: 0.0}
        assert _labels_as_dict(idx, 1) == {1: 0.0, 0: 1.0}
        assert _labels_as_dict(idx, 2) == {2: 0.0, 0: 1.0, 1: 2.0}
        assert _labels_as_dict(idx, 3) == {3: 0.0, 1: 1.0, 2: 2.0, 0: 2.0}
        assert _labels_as_dict(idx, 4) == {
            4: 0.0, 0: 1.0, 1: 1.0, 3: 2.0, 2: 4.0,
        }
        assert _labels_as_dict(idx, 5) == {
            5: 0.0, 3: 1.0, 1: 2.0, 2: 3.0, 0: 3.0,
        }
        assert _labels_as_dict(idx, 6) == {6: 0.0}

    def test_figure5_lout7_paper_discrepancy(self, result):
        """Figure 5 lists Lout(7) = {(7,0), (2,1)} — but the paper's own
        objective [O1] (via Lemma 2) additionally requires (0, 2) and
        (1, 3): 7->2->0 and 7->2->3->1 are trough *shortest* paths
        ending at higher-ranked vertices.  The figure omits them; the
        implementation follows the lemma.  (Recorded in DESIGN.md.)"""
        lout7 = _labels_as_dict(result.index, 7)
        # Figure 5's listed entries are present...
        assert lout7[7] == 0.0
        assert lout7[2] == 1.0
        # ...plus exactly the two entries O1 mandates.
        assert lout7 == {7: 0.0, 2: 1.0, 0: 2.0, 1: 3.0}

    def test_two_productive_iterations(self, result):
        # "In the third iteration, no new label entry is generated."
        productive = [it for it in result.iterations if it.survived > 0]
        assert len(productive) == 2

    def test_iteration_superscripts(self, result):
        """Figure 5 annotates each generated entry with its iteration.
        Example 1 lists 6 first-round and 3 second-round entries; our
        build adds (7->0, 2) to round one and (7->1, 3) to round two —
        the Lout(7) entries the figure omits (see the test above)."""
        by_iteration = {}
        for it in result.iterations:
            by_iteration[it.iteration] = it
        assert by_iteration[2].survived == 7  # paper lists 6 + (7->0, 2)
        assert by_iteration[3].survived == 4  # paper lists 3 + (7->1, 3)


class TestExample2Pruning:
    def test_2_to_1_pruned(self, figure3_graph):
        """(2 -> 1, 2) is pruned by (2 -> 0, 1) + (0 -> 1, 1)."""
        ranking = Ranking.from_order(list(range(8)))
        idx = HopDoubling(figure3_graph, ranking=ranking, prune=True).build().index
        assert 1 not in _labels_as_dict(idx, 2)
        # Queries remain exact despite the pruned entry.
        assert idx.query(2, 1) == 2.0


class TestExample3HopStepping:
    def test_4_to_2_found_at_hop3_iteration(self, figure3_graph):
        """Hop-Stepping covers (4 -> 2, 4) only when 4-hop paths are
        processed (via (4 -> 5, 1) + (5 -> 2, 3)), i.e. one iteration
        later than Hop-Doubling."""
        ranking = Ranking.from_order(list(range(8)))
        doubling = HopDoubling(
            figure3_graph, ranking=ranking, prune=False
        ).build()
        stepping = HopStepping(
            figure3_graph, ranking=ranking, prune=False
        ).build()
        # Same final labels either way...
        assert doubling.index.out_labels == stepping.index.out_labels
        # ...but stepping takes one more productive round (3 vs 2).
        d_rounds = sum(1 for it in doubling.iterations if it.survived)
        s_rounds = sum(1 for it in stepping.iterations if it.survived)
        assert d_rounds == 2
        assert s_rounds == 3
