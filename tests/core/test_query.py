"""Tests for the query-side helpers."""

import pytest

from repro.core.hybrid import HybridBuilder
from repro.core.query import (
    average_distance,
    closeness_centrality,
    distance_histogram,
    is_reachable,
    query_many,
    reconstruct_path,
)
from repro.graphs.digraph import Graph
from repro.graphs.generators import glp_graph, path_graph, star_graph
from tests.conftest import random_graph


@pytest.fixture(scope="module")
def built():
    g = glp_graph(150, seed=10)
    idx = HybridBuilder(g).build().index
    return g, idx


class TestQueryMany:
    def test_order_preserved(self, built):
        g, idx = built
        pairs = [(0, 1), (5, 9), (2, 2)]
        assert query_many(idx, pairs) == [idx.query(*p) for p in pairs]

    def test_empty(self, built):
        _, idx = built
        assert query_many(idx, []) == []


class TestReachability:
    def test_connected_pair(self, built):
        _, idx = built
        assert is_reachable(idx, 0, 10)

    def test_disconnected(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)], directed=False)
        idx = HybridBuilder(g).build().index
        assert not is_reachable(idx, 0, 3)

    def test_directed_one_way(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)], directed=True)
        idx = HybridBuilder(g).build().index
        assert is_reachable(idx, 0, 2)
        assert not is_reachable(idx, 2, 0)


class TestPathReconstruction:
    @pytest.mark.parametrize("seed", range(8))
    def test_paths_are_valid_and_shortest(self, seed):
        g = random_graph(seed, max_n=25)
        idx = HybridBuilder(g).build().index
        n = g.num_vertices
        for s in range(0, n, 3):
            for t in range(0, n, 3):
                d = idx.query(s, t)
                path = reconstruct_path(idx, g, s, t)
                if d == float("inf"):
                    assert path is None
                    continue
                assert path[0] == s and path[-1] == t
                total = sum(
                    g.edge_weight(path[i], path[i + 1])
                    for i in range(len(path) - 1)
                )
                assert total == d

    def test_trivial_path(self, built):
        g, idx = built
        assert reconstruct_path(idx, g, 3, 3) == [3]

    def test_edge_path(self):
        g = path_graph(4)
        idx = HybridBuilder(g).build().index
        assert reconstruct_path(idx, g, 0, 3) == [0, 1, 2, 3]


class TestAnalytics:
    def test_closeness_star_center_highest(self):
        g = star_graph(10)
        idx = HybridBuilder(g).build().index
        targets = list(range(11))
        center = closeness_centrality(idx, 0, targets)
        leaf = closeness_centrality(idx, 1, targets)
        assert center > leaf

    def test_closeness_isolated_zero(self):
        g = Graph.from_edges(3, [(0, 1)], directed=False)
        idx = HybridBuilder(g).build().index
        assert closeness_centrality(idx, 2, [0, 1]) == 0.0

    def test_average_distance(self):
        g = path_graph(3)
        idx = HybridBuilder(g).build().index
        mean, connectivity = average_distance(idx, [(0, 1), (0, 2), (1, 2)])
        assert mean == pytest.approx((1 + 2 + 1) / 3)
        assert connectivity == 1.0

    def test_average_distance_with_unreachable(self):
        g = Graph.from_edges(3, [(0, 1)], directed=True)
        idx = HybridBuilder(g).build().index
        mean, connectivity = average_distance(idx, [(0, 1), (1, 2)])
        assert mean == 1.0
        assert connectivity == 0.5

    def test_average_distance_empty(self, built):
        _, idx = built
        assert average_distance(idx, []) == (0.0, 0.0)

    def test_histogram_buckets(self):
        g = path_graph(4)
        idx = HybridBuilder(g).build().index
        hist = distance_histogram(idx, [(0, 1), (1, 2), (0, 2), (0, 3)])
        assert hist == {1.0: 2, 2.0: 1, 3.0: 1}
