"""Tests for the CSR flat-array label store and binary format v2."""

import struct

import pytest

from repro.core.flatstore import FlatLabelStore, load_store
from repro.core.hybrid import HybridBuilder
from repro.core.labels import INF, LabelIndex
from repro.graphs.generators import glp_graph
from tests.conftest import random_graph


def build_index(n=80, seed=5, directed=False):
    g = glp_graph(n, seed=seed, directed=directed)
    return HybridBuilder(g).build().index


@pytest.fixture(scope="module", params=[False, True], ids=["undir", "dir"])
def index_pair(request):
    idx = build_index(directed=request.param)
    return idx, FlatLabelStore.from_index(idx)


class TestConversion:
    def test_labels_preserved(self, index_pair):
        idx, flat = index_pair
        for v in range(idx.n):
            assert flat.out_label(v) == idx.out_labels[v]
            assert flat.in_label(v) == idx.in_labels[v]

    def test_to_index_round_trip(self, index_pair):
        idx, flat = index_pair
        back = flat.to_index()
        assert back.out_labels == idx.out_labels
        assert back.in_labels == idx.in_labels
        assert back.rank == idx.rank
        assert back.directed == idx.directed

    def test_undirected_arrays_alias(self):
        flat = FlatLabelStore.from_index(build_index(directed=False))
        assert flat.in_pivots is flat.out_pivots
        assert flat.in_offsets is flat.out_offsets
        back = flat.to_index()
        assert back.in_labels is back.out_labels

    def test_directed_arrays_distinct(self):
        flat = FlatLabelStore.from_index(build_index(directed=True))
        assert flat.in_pivots is not flat.out_pivots

    def test_counts_and_bytes_match(self, index_pair):
        idx, flat = index_pair
        assert flat.total_entries() == idx.total_entries()
        assert flat.total_entries(include_trivial=True) == idx.total_entries(
            include_trivial=True
        )
        assert flat.size_in_bytes() == idx.size_in_bytes()
        assert flat.stats() == idx.stats()
        assert flat.storage_bytes() > 0


class TestQueries:
    def test_query_matches_merge_join(self, index_pair):
        idx, flat = index_pair
        for s in range(0, idx.n, 5):
            for t in range(0, idx.n, 7):
                assert flat.query(s, t) == idx.query(s, t)

    def test_query_via_matches(self, index_pair):
        idx, flat = index_pair
        for s in range(0, idx.n, 5):
            for t in range(0, idx.n, 7):
                assert flat.query_via(s, t) == idx.query_via(s, t)

    def test_query_group_matches_per_pair(self, index_pair):
        idx, flat = index_pair
        targets = list(range(idx.n))
        assert flat.query_group(3, targets) == [
            idx.query(3, t) for t in targets
        ]

    def test_bounds_checked(self, index_pair):
        idx, flat = index_pair
        with pytest.raises(IndexError):
            flat.query(0, idx.n)
        with pytest.raises(IndexError):
            flat.query_via(-1, 0)
        with pytest.raises(IndexError):
            flat.query_group(idx.n, [0])
        with pytest.raises(IndexError):
            flat.query_group(0, [idx.n])

    def test_disconnected_is_inf(self):
        from repro.graphs.digraph import Graph

        g = Graph.from_edges(4, [(0, 1), (2, 3)], directed=False)
        idx = HybridBuilder(g).build().index
        flat = FlatLabelStore.from_index(idx)
        assert flat.query(0, 3) == INF
        assert flat.query_via(0, 3) == (INF, -1)

    @pytest.mark.parametrize("seed", range(12))
    def test_random_graphs_agree(self, seed):
        g = random_graph(seed, max_n=30)
        idx = HybridBuilder(g).build().index
        flat = FlatLabelStore.from_index(idx)
        for s in range(g.num_vertices):
            for t in range(g.num_vertices):
                assert flat.query(s, t) == idx.query(s, t)


class TestFormatV2:
    @pytest.mark.parametrize("use_mmap", [False, True], ids=["read", "mmap"])
    def test_save_load_round_trip(self, tmp_path, index_pair, use_mmap):
        idx, flat = index_pair
        path = tmp_path / "x.idx2"
        flat.save(path)
        loaded = FlatLabelStore.load(path, use_mmap=use_mmap)
        assert loaded.n == flat.n
        assert loaded.directed == flat.directed
        assert list(loaded.rank) == list(idx.rank)
        for v in range(0, idx.n, 3):
            assert loaded.out_label(v) == idx.out_labels[v]
            assert loaded.in_label(v) == idx.in_labels[v]
        for s, t in [(0, 1), (5, 40), (7, 7), (12, 61)]:
            assert loaded.query(s, t) == idx.query(s, t)

    def test_undirected_load_aliases(self, tmp_path):
        flat = FlatLabelStore.from_index(build_index(directed=False))
        path = tmp_path / "u.idx2"
        flat.save(path)
        loaded = FlatLabelStore.load(path)
        assert loaded.in_pivots is loaded.out_pivots

    def test_v1_v2_equivalence_on_disk(self, tmp_path, index_pair):
        """Same labels through either format answer identically."""
        idx, flat = index_pair
        p1 = tmp_path / "a.idx"
        p2 = tmp_path / "a.idx2"
        idx.save(p1)
        flat.save(p2)
        from_v1 = load_store(p1)
        from_v2 = load_store(p2)
        for s in range(0, idx.n, 9):
            for t in range(0, idx.n, 4):
                expected = idx.query(s, t)
                assert from_v1.query(s, t) == expected
                assert from_v2.query(s, t) == expected

    def test_label_index_load_reads_v2(self, tmp_path, index_pair):
        idx, flat = index_pair
        path = tmp_path / "x.idx2"
        flat.save(path)
        loaded = LabelIndex.load(path)
        assert loaded.out_labels == idx.out_labels
        assert loaded.in_labels == idx.in_labels

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.idx2"
        path.write_bytes(b"NOPE" + b"\x00" * 40)
        with pytest.raises(ValueError, match="not a label index"):
            FlatLabelStore.load(path)
        with pytest.raises(ValueError, match="not a label index"):
            load_store(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "v9.idx2"
        path.write_bytes(b"RPLI" + struct.pack("<BBBIQQ", 9, 0, 0, 1, 0, 0))
        with pytest.raises(ValueError, match="version"):
            FlatLabelStore.load(path)
        with pytest.raises(ValueError, match="version"):
            load_store(path)

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "hdr.idx2"
        path.write_bytes(b"RPLI\x02\x00")
        with pytest.raises(ValueError, match="truncated"):
            FlatLabelStore.load(path)

    @pytest.mark.parametrize("keep", [0.25, 0.5, 0.9])
    def test_truncated_body_rejected(self, tmp_path, index_pair, keep):
        _, flat = index_pair
        full = tmp_path / "full.idx2"
        flat.save(full)
        data = full.read_bytes()
        cut = tmp_path / "cut.idx2"
        cut.write_bytes(data[: 27 + int((len(data) - 27) * keep)])
        with pytest.raises(ValueError, match="truncated"):
            FlatLabelStore.load(cut)

    @pytest.mark.parametrize("keep", [0.25, 0.9])
    def test_truncated_mmap_load_releases_mapping(self, tmp_path,
                                                  index_pair, keep):
        _, flat = index_pair
        full = tmp_path / "full.idx2"
        flat.save(full)
        data = full.read_bytes()
        cut = tmp_path / "cut.idx2"
        cut.write_bytes(data[: 27 + int((len(data) - 27) * keep)])
        with pytest.raises(ValueError, match="truncated"):
            FlatLabelStore.load(cut, use_mmap=True)
        # The failed load must not keep the file mapped (BufferError
        # here, or the file staying in /proc/self/maps, means a leak).
        import pathlib

        maps = pathlib.Path("/proc/self/maps")
        if maps.exists():
            assert str(cut) not in maps.read_text()

    def test_close_releases_mapping(self, tmp_path, index_pair):
        _, flat = index_pair
        path = tmp_path / "x.idx2"
        flat.save(path)
        loaded = FlatLabelStore.load(path, use_mmap=True)
        assert loaded.is_mmapped
        loaded.query(0, 1)
        loaded.close()
        assert not loaded.is_mmapped
        loaded.close()  # idempotent
        path.unlink()  # file is deletable once unmapped

    def test_close_noop_for_owned_arrays(self, index_pair):
        _, flat = index_pair
        flat.close()
        assert flat.query(0, 0) == 0.0

    def test_load_store_prefers_backend(self, tmp_path, index_pair):
        idx, _ = index_pair
        p1 = tmp_path / "a.idx"
        idx.save(p1)
        assert isinstance(load_store(p1), FlatLabelStore)
        assert isinstance(load_store(p1, prefer_flat=False), LabelIndex)


class TestEndianness:
    def test_big_endian_host_round_trips_and_writes_le(self, tmp_path,
                                                       monkeypatch):
        """Simulate a big-endian host: blobs must byteswap on save and
        load so the on-disk format stays little-endian."""
        import repro.core.flatstore as fs

        flat = FlatLabelStore.from_index(build_index(n=40, seed=9))
        native = tmp_path / "native.idx2"
        flat.save(native)

        monkeypatch.setattr(fs, "_BIG_ENDIAN", True)
        swapped = tmp_path / "be.idx2"
        flat.save(swapped)
        # Byteswapped blobs differ from the native-LE file...
        assert swapped.read_bytes() != native.read_bytes()
        # ...but headers match and the BE loader swaps them back.
        assert swapped.read_bytes()[:27] == native.read_bytes()[:27]
        loaded = FlatLabelStore.load(swapped)
        for v in range(flat.n):
            assert loaded.out_label(v) == flat.out_label(v)
        assert list(loaded.rank) == list(flat.rank)

    def test_big_endian_mmap_falls_back_to_copy(self, tmp_path, monkeypatch):
        """use_mmap on a big-endian host must copy (views can't swap)
        and report is_mmapped=False so close() stays a no-op."""
        import repro.core.flatstore as fs

        flat = FlatLabelStore.from_index(build_index(n=40, seed=9))
        monkeypatch.setattr(fs, "_BIG_ENDIAN", True)
        path = tmp_path / "be.idx2"
        flat.save(path)
        loaded = FlatLabelStore.load(path, use_mmap=True)
        assert not loaded.is_mmapped
        loaded.close()  # no-op: arrays are owned, store stays usable
        assert loaded.query(0, 1) == flat.query(0, 1)


class TestV1Compatibility:
    def test_frozen_v1_byte_layout_still_loads(self, tmp_path):
        """A v1 file written with the original byte layout (frozen here,
        independent of the current writer) must keep loading."""
        out_labels = [[(0, 0.0)], [(0, 1.0), (1, 0.0)], [(0, 2.0), (2, 0.0)]]
        rank = [0, 1, 2]
        blob = b"RPLI" + struct.pack("<BBBI", 1, 0, 1, 3)
        blob += struct.pack("<3I", *rank)
        for lab in out_labels:
            blob += struct.pack("<I", len(lab))
            for p, d in lab:
                blob += struct.pack("<Id", p, d)
        path = tmp_path / "legacy.idx"
        path.write_bytes(blob)

        idx = LabelIndex.load(path)
        assert idx.n == 3
        assert not idx.directed
        assert idx.out_labels == out_labels
        assert idx.query(1, 2) == 3.0  # via pivot 0

        flat = load_store(path)
        assert isinstance(flat, FlatLabelStore)
        assert flat.query(1, 2) == 3.0
        assert flat.rank == rank


class TestAtomicWrites:
    def test_no_temp_residue_after_save(self, tmp_path, index_pair):
        idx, flat = index_pair
        idx.save(tmp_path / "a.idx")
        flat.save(tmp_path / "a.idx2")
        names = {p.name for p in tmp_path.iterdir()}
        assert names == {"a.idx", "a.idx2"}

    def test_failed_save_keeps_previous_file(self, tmp_path, index_pair,
                                             monkeypatch):
        idx, flat = index_pair
        path = tmp_path / "a.idx2"
        flat.save(path)
        good = path.read_bytes()

        # Make the next write blow up mid-stream: the destination must
        # keep its previous contents and no temp file may remain.
        import os

        real_fdopen = os.fdopen

        class ExplodingFile:
            def __init__(self, fh):
                self.fh = fh
                self.writes = 0

            def write(self, data):
                self.writes += 1
                if self.writes > 2:
                    raise OSError("disk full")
                return self.fh.write(data)

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                self.fh.close()
                return False

        def exploding_fdopen(fd, *a, **kw):
            return ExplodingFile(real_fdopen(fd, *a, **kw))

        monkeypatch.setattr(os, "fdopen", exploding_fdopen)
        with pytest.raises(OSError, match="disk full"):
            flat.save(path)
        monkeypatch.undo()

        assert path.read_bytes() == good
        assert {p.name for p in tmp_path.iterdir()} == {"a.idx2"}
        assert FlatLabelStore.load(path).query(0, 1) == idx.query(0, 1)
