"""Tests for the compact quantized binary format v3."""

import struct
from array import array

import pytest

from repro.core.flatstore import FlatLabelStore, load_store
from repro.core.hybrid import HybridBuilder
from repro.core.labels import LabelIndex
from repro.core.quantized import QuantizedLabelStore
from repro.graphs.generators import glp_graph
from tests.conftest import random_graph


def build_index(n=80, seed=5, directed=False, weighted=False):
    if weighted:
        g = random_graph(seed, max_n=n, directed=False, weighted=True)
    else:
        g = glp_graph(n, seed=seed, directed=directed)
    return HybridBuilder(g).build().index


@pytest.fixture(scope="module", params=[False, True], ids=["undir", "dir"])
def stores(request):
    idx = build_index(directed=request.param)
    flat = FlatLabelStore.from_index(idx)
    return idx, flat, QuantizedLabelStore.from_flat(flat)


def make_flat(labels, n=None):
    """A tiny undirected flat store straight from per-vertex labels."""
    n = n if n is not None else len(labels)
    offsets = array("q", [0])
    pivots = array("i")
    dists = array("d")
    for lab in labels:
        for p, d in lab:
            pivots.append(p)
            dists.append(d)
        offsets.append(len(pivots))
    return FlatLabelStore(
        n, False, offsets, pivots, dists, offsets, pivots, dists
    )


class TestRoundTrip:
    def test_labels_preserved(self, stores):
        idx, flat, q = stores
        for v in range(idx.n):
            assert q.out_label(v) == idx.out_labels[v]
            assert q.in_label(v) == idx.in_labels[v]

    def test_v2_v3_v2_round_trip(self, stores):
        _, flat, q = stores
        back = q.to_flat()
        assert list(back.out_offsets) == list(flat.out_offsets)
        assert list(back.out_pivots) == list(flat.out_pivots)
        assert list(back.out_dists) == list(flat.out_dists)
        if flat.directed:
            assert list(back.in_pivots) == list(flat.in_pivots)
            assert list(back.in_dists) == list(flat.in_dists)

    def test_to_index_round_trip(self, stores):
        idx, _, q = stores
        back = q.to_index()
        assert back.out_labels == idx.out_labels
        assert back.in_labels == idx.in_labels
        assert back.rank == idx.rank

    def test_queries_bit_identical(self, stores):
        idx, flat, q = stores
        pairs = [(s, t) for s in range(0, idx.n, 7) for t in range(idx.n)]
        assert [q.query(s, t) for s, t in pairs] == [
            flat.query(s, t) for s, t in pairs
        ]
        assert [q.query_via(s, t) for s, t in pairs] == [
            flat.query_via(s, t) for s, t in pairs
        ]
        targets = list(range(idx.n))
        assert q.query_group(3, targets) == flat.query_group(3, targets)

    def test_undirected_arrays_alias(self, stores):
        idx, _, q = stores
        if not idx.directed:
            assert q.in_pivots is q.out_pivots

    def test_counts_match(self, stores):
        idx, flat, q = stores
        assert q.total_entries() == flat.total_entries()
        assert q.size_in_bytes() == flat.size_in_bytes()
        assert q.stats() == flat.stats()
        assert q.storage_bytes() < flat.storage_bytes()

    def test_from_index_classmethod(self, stores):
        idx, _, q = stores
        q2 = QuantizedLabelStore.from_index(idx)
        assert q2.to_index().out_labels == idx.out_labels

    def test_from_flat_idempotent(self, stores):
        _, _, q = stores
        assert QuantizedLabelStore.from_flat(q) is q

    def test_weighted_falls_back_to_raw_dists(self):
        from repro.graphs.digraph import Graph

        edges = [(0, 1, 0.5), (1, 2, 1.25), (2, 3, 2.0), (3, 0, 0.75)]
        g = Graph.from_edges(4, edges, directed=False, weighted=True)
        idx = HybridBuilder(g).build().index
        flat = FlatLabelStore.from_index(idx)
        q = QuantizedLabelStore.from_flat(flat)
        assert q.dist_width == 8
        assert not q.is_quantized
        for v in range(idx.n):
            assert q.out_label(v) == idx.out_labels[v]
        pairs = [(s, t) for s in range(4) for t in range(4)]
        assert [q.query(s, t) for s, t in pairs] == [
            flat.query(s, t) for s, t in pairs
        ]


class TestWidthSelection:
    def test_dist_boundary_255(self):
        q = QuantizedLabelStore.from_flat(
            make_flat([[(0, 0.0), (1, 255.0)], [(1, 0.0)]])
        )
        assert q.dist_width == 1

    def test_dist_boundary_256(self):
        q = QuantizedLabelStore.from_flat(
            make_flat([[(0, 0.0), (1, 256.0)], [(1, 0.0)]])
        )
        assert q.dist_width == 2

    def test_dist_boundary_65535(self):
        q = QuantizedLabelStore.from_flat(
            make_flat([[(0, 0.0), (1, 65535.0)], [(1, 0.0)]])
        )
        assert q.dist_width == 2

    def test_dist_boundary_65536(self):
        q = QuantizedLabelStore.from_flat(
            make_flat([[(0, 0.0), (1, 65536.0)], [(1, 0.0)]])
        )
        assert q.dist_width == 8

    def test_fractional_dist_raw(self):
        q = QuantizedLabelStore.from_flat(
            make_flat([[(0, 0.0), (1, 2.5)], [(1, 0.0)]])
        )
        assert q.dist_width == 8

    def test_pivot_delta_boundary_255(self):
        q = QuantizedLabelStore.from_flat(
            make_flat([[(0, 0.0), (255, 1.0)], [(1, 0.0)]], n=2)
        )
        assert q.pivot_width == 1

    def test_pivot_delta_boundary_256(self):
        q = QuantizedLabelStore.from_flat(
            make_flat([[(0, 0.0), (256, 1.0)], [(1, 0.0)]], n=2)
        )
        assert q.pivot_width == 2

    def test_pivot_delta_boundary_65536(self):
        q = QuantizedLabelStore.from_flat(
            make_flat([[(0, 0.0), (65536, 1.0)], [(1, 0.0)]], n=2)
        )
        assert q.pivot_width == 4

    def test_widths_round_trip(self):
        flat = make_flat(
            [[(0, 0.0), (300, 7.0), (400, 300.0)], [(1, 0.0)]], n=2
        )
        q = QuantizedLabelStore.from_flat(flat)
        assert (q.pivot_width, q.dist_width) == (2, 2)
        back = q.to_flat()
        assert back.out_label(0) == flat.out_label(0)


class TestSerialization:
    def test_save_load_eager_and_mmap(self, stores, tmp_path):
        idx, flat, q = stores
        path = tmp_path / "index.idx3"
        q.save(path)
        pairs = [(s, t) for s in range(0, idx.n, 9) for t in range(idx.n)]
        expected = [flat.query(s, t) for s, t in pairs]
        eager = QuantizedLabelStore.load(path)
        mapped = QuantizedLabelStore.load(path, use_mmap=True)
        try:
            assert not eager.is_mmapped
            assert mapped.is_mmapped
            for loaded in (eager, mapped):
                assert loaded.pivot_width == q.pivot_width
                assert loaded.dist_width == q.dist_width
                assert loaded.rank == q.rank
                assert [loaded.query(s, t) for s, t in pairs] == expected
                for v in range(idx.n):
                    assert loaded.out_label(v) == q.out_label(v)
        finally:
            mapped.close()

    def test_mmap_close_releases(self, stores, tmp_path):
        _, _, q = stores
        path = tmp_path / "index.idx3"
        q.save(path)
        mapped = QuantizedLabelStore.load(path, use_mmap=True)
        mapped.query(0, 1)
        mapped.close()
        assert not mapped.is_mmapped

    def test_load_store_dispatches_v3(self, stores, tmp_path):
        _, _, q = stores
        path = tmp_path / "index.idx3"
        q.save(path)
        loaded = load_store(path)
        assert isinstance(loaded, QuantizedLabelStore)

    def test_label_index_load_reads_v3(self, stores, tmp_path):
        idx, _, q = stores
        path = tmp_path / "index.idx3"
        q.save(path)
        back = LabelIndex.load(path)
        assert back.out_labels == idx.out_labels

    def test_file_much_smaller_than_v2(self, stores, tmp_path):
        _, flat, q = stores
        p2 = tmp_path / "index.idx2"
        p3 = tmp_path / "index.idx3"
        flat.save(p2)
        q.save(p3)
        assert p3.stat().st_size <= 0.5 * p2.stat().st_size


class TestCorruption:
    def _saved(self, tmp_path):
        idx = build_index()
        q = QuantizedLabelStore.from_flat(FlatLabelStore.from_index(idx))
        path = tmp_path / "index.idx3"
        q.save(path)
        return path

    def test_wrong_magic(self, tmp_path):
        path = self._saved(tmp_path)
        data = bytearray(path.read_bytes())
        data[:4] = b"NOPE"
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="not a label index"):
            QuantizedLabelStore.load(path)

    def test_wrong_version(self, tmp_path):
        path = self._saved(tmp_path)
        data = bytearray(path.read_bytes())
        data[4] = 7
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="version"):
            QuantizedLabelStore.load(path)

    @pytest.mark.parametrize(
        "offset, name",
        # Header layout: magic(4) version flags has_rank n(4) out(8)
        # in(8) then off/pivot/dist width bytes at 27, 28, 29.
        [(27, "offset"), (28, "pivot"), (29, "distance")],
    )
    def test_invalid_width_bytes_rejected(self, tmp_path, offset, name):
        path = self._saved(tmp_path)
        data = bytearray(path.read_bytes())
        data[offset] = 99
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError, match=f"corrupt header.*{name}"):
            QuantizedLabelStore.load(path)

    @pytest.mark.parametrize("use_mmap", [False, True])
    def test_truncated_body(self, tmp_path, use_mmap):
        path = self._saved(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError, match="truncated or corrupt"):
            QuantizedLabelStore.load(path, use_mmap=use_mmap)

    def test_truncated_header(self, tmp_path):
        path = self._saved(tmp_path)
        path.write_bytes(path.read_bytes()[:10])
        with pytest.raises(ValueError, match="truncated or corrupt"):
            QuantizedLabelStore.load(path)

    def test_header_width_shape(self):
        # Guard against silent header layout drift: the width bytes
        # live right after the counts, as documented.
        header = struct.Struct("<BBBIQQBBBB")
        assert 4 + header.size == 31
