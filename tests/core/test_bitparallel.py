"""Bit-parallel label tests (Section 6)."""

import pytest
from hypothesis import given, settings

from repro.baselines.apsp import APSPOracle
from repro.core.bitparallel import (
    BYTES_PER_BP_TUPLE,
    add_bitparallel,
    _bit_parallel_bfs,
)
from repro.core.hybrid import HybridBuilder
from repro.graphs.digraph import Graph
from repro.graphs.generators import glp_graph, grid_graph, path_graph, star_graph
from repro.graphs.traversal import bfs_distances
from tests.conftest import graph_strategy


def _build_bp(g, num_roots=8):
    index = HybridBuilder(g).build().index
    return index, add_bitparallel(g, index, num_roots=num_roots)


class TestBPBFSMasks:
    """The bit-parallel BFS computes exact S^-1 / S^0 sets."""

    @pytest.mark.parametrize("seed", range(8))
    def test_masks_match_definitions(self, seed):
        g = glp_graph(60, m=1.5, seed=seed)
        order = sorted(g.vertices(), key=lambda v: -g.degree(v))
        root = order[0]
        members = list(g.out_neighbors(root))[:8]
        dist, m_minus, m_zero = _bit_parallel_bfs(g, root, members)
        d_root = bfs_distances(g, root)
        member_dists = [bfs_distances(g, u) for u in members]
        for v in g.vertices():
            assert dist[v] == d_root[v]
            if d_root[v] == float("inf"):
                continue
            for i, u in enumerate(members):
                in_minus = bool((m_minus[v] >> i) & 1)
                # S^-1 must be exact.
                assert in_minus == (member_dists[i][v] == d_root[v] - 1)
                # S^0 must contain every exact-0 member (it may also
                # over-approximate with -1 members, which is harmless).
                if member_dists[i][v] == d_root[v]:
                    assert (m_zero[v] >> i) & 1


class TestBPQueries:
    @settings(max_examples=25, deadline=None)
    @given(graph_strategy(directed=False, weighted=False))
    def test_exact_on_random_graphs(self, g):
        truth = APSPOracle(g)
        _, bp = _build_bp(g, num_roots=4)
        for s in range(g.num_vertices):
            for t in range(g.num_vertices):
                assert bp.query(s, t) == truth.query(s, t)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: glp_graph(150, seed=3),
            lambda: grid_graph(7, 7),
            lambda: path_graph(30),
            lambda: star_graph(20),
        ],
    )
    def test_exact_on_structured_graphs(self, factory):
        g = factory()
        truth = APSPOracle(g)
        _, bp = _build_bp(g)
        for s in range(g.num_vertices):
            for t in range(g.num_vertices):
                assert bp.query(s, t) == truth.query(s, t)

    def test_query_bounds_checked(self):
        g = star_graph(3)
        _, bp = _build_bp(g, num_roots=1)
        with pytest.raises(IndexError):
            bp.query(0, 99)


class TestBPStructure:
    def test_roots_and_members_disjoint(self):
        g = glp_graph(300, seed=9)
        _, bp = _build_bp(g, num_roots=10)
        seen = set()
        for r, members in zip(bp.roots, bp.root_members):
            assert r not in seen
            seen.add(r)
            for u in members:
                assert u not in seen
                seen.add(u)

    def test_member_cap_respected(self):
        g = star_graph(100)  # center has 100 neighbours
        index = HybridBuilder(g).build().index
        bp = add_bitparallel(g, index, num_roots=1, max_set_size=64)
        assert len(bp.root_members[0]) == 64

    def test_normal_labels_shrink_on_scale_free(self):
        g = glp_graph(400, seed=4)
        index, bp = _build_bp(g, num_roots=16)
        assert bp.normal.total_entries() < index.total_entries() * 0.5

    def test_size_accounting(self):
        g = glp_graph(100, seed=2)
        _, bp = _build_bp(g, num_roots=4)
        expected = (
            bp.normal.size_in_bytes()
            + bp.num_bp_tuples() * BYTES_PER_BP_TUPLE
        )
        assert bp.size_in_bytes() == expected

    def test_markers_match_labels(self):
        g = glp_graph(120, seed=5)
        _, bp = _build_bp(g, num_roots=6)
        for v in range(g.num_vertices):
            present = {t.root_idx for t in bp.bp_labels[v]}
            from_marker = {
                i for i in range(len(bp.roots)) if (bp.markers[v] >> i) & 1
            }
            assert present == from_marker


class TestBPValidation:
    def test_directed_rejected(self):
        g = Graph.from_edges(2, [(0, 1)], directed=True)
        index = HybridBuilder(g).build().index
        with pytest.raises(ValueError, match="undirected"):
            add_bitparallel(g, index)

    def test_weighted_rejected(self):
        g = Graph.from_edges(2, [(0, 1, 2.0)], weighted=True)
        index = HybridBuilder(g).build().index
        with pytest.raises(ValueError, match="unweighted"):
            add_bitparallel(g, index)

    def test_bad_num_roots(self):
        g = star_graph(3)
        index = HybridBuilder(g).build().index
        with pytest.raises(ValueError):
            add_bitparallel(g, index, num_roots=0)

    def test_bad_set_size(self):
        g = star_graph(3)
        index = HybridBuilder(g).build().index
        with pytest.raises(ValueError):
            add_bitparallel(g, index, max_set_size=65)
