"""Section 7 adaptations: undirected and weighted graphs."""

from hypothesis import given, settings

from repro.baselines.apsp import APSPOracle
from repro.core.hybrid import make_builder
from repro.graphs.digraph import Graph
from repro.graphs.generators import glp_graph, grid_graph
from tests.conftest import graph_strategy


class TestUndirectedSingleLabel:
    """Undirected graphs use one label per vertex; the frozen index
    aliases in/out sides."""

    def test_label_sides_alias(self):
        g = glp_graph(80, seed=1)
        idx = make_builder(g, "hybrid").build().index
        assert idx.out_labels is idx.in_labels

    def test_symmetry_of_queries(self):
        g = glp_graph(120, seed=2)
        idx = make_builder(g, "hybrid").build().index
        for s in range(0, 120, 7):
            for t in range(0, 120, 11):
                assert idx.query(s, t) == idx.query(t, s)

    @settings(max_examples=40, deadline=None)
    @given(graph_strategy(directed=False))
    def test_exact_all_strategies(self, g):
        truth = APSPOracle(g)
        for strategy in ("stepping", "doubling", "hybrid"):
            idx = make_builder(g, strategy).build().index
            for s in range(g.num_vertices):
                for t in range(g.num_vertices):
                    assert idx.query(s, t) == truth.query(s, t)

    def test_undirected_smaller_than_directed_encoding(self):
        """Treating an undirected graph as bidirected must not beat the
        native single-label mode by much; the single-label mode stores
        roughly half the entries."""
        g = glp_graph(150, seed=3)
        und = make_builder(g, "hybrid").build().index
        bidirected = Graph.from_edges(
            g.num_vertices,
            [(u, v) for u, v, _ in g.edges()]
            + [(v, u) for u, v, _ in g.edges()],
            directed=True,
        )
        dire = make_builder(bidirected, "hybrid").build().index
        assert und.total_entries() < dire.total_entries()
        # And they agree on answers.
        for s in range(0, 150, 13):
            for t in range(0, 150, 17):
                assert und.query(s, t) == dire.query(s, t)


class TestWeighted:
    def test_weighted_shortcut_beats_hopcount(self):
        # 0-1-2 with weights 1+1 beats the direct heavy edge 0-2.
        g = Graph.from_edges(
            3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)], weighted=True,
            directed=False,
        )
        idx = make_builder(g, "hybrid").build().index
        assert idx.query(0, 2) == 2.0

    def test_heavier_but_shorter_hop_path(self):
        # Direct edge wins when lighter.
        g = Graph.from_edges(
            3, [(0, 1, 5.0), (1, 2, 5.0), (0, 2, 3.0)], weighted=True,
            directed=False,
        )
        idx = make_builder(g, "hybrid").build().index
        assert idx.query(0, 2) == 3.0

    @settings(max_examples=40, deadline=None)
    @given(graph_strategy(weighted=True))
    def test_exact_weighted(self, g):
        truth = APSPOracle(g)
        idx = make_builder(g, "hybrid").build().index
        for s in range(g.num_vertices):
            for t in range(g.num_vertices):
                assert idx.query(s, t) == truth.query(s, t)

    def test_iterations_bounded_by_hop_diameter_weighted(self):
        """Stepping on weighted graphs converges within the maximum hop
        count over all shortest paths (which may exceed the unweighted
        diameter)."""
        # Chain of cheap edges parallel to one expensive edge: the
        # cheap chain is the shortest path with many hops.
        edges = [(i, i + 1, 1.0) for i in range(8)] + [(0, 8, 100.0)]
        g = Graph.from_edges(9, edges, weighted=True, directed=False)
        result = make_builder(g, "stepping").build()
        assert result.index.query(0, 8) == 8.0
        assert result.num_iterations <= 8

    def test_fractional_weights(self):
        g = Graph.from_edges(
            4,
            [(0, 1, 0.5), (1, 2, 0.25), (2, 3, 0.125)],
            weighted=True,
            directed=False,
        )
        idx = make_builder(g, "hybrid").build().index
        assert idx.query(0, 3) == 0.875


class TestNonScaleFreeGraphs:
    """Section 7: the algorithms stay exact on road-like graphs."""

    def test_grid_exact(self):
        g = grid_graph(8, 8)
        truth = APSPOracle(g)
        idx = make_builder(g, "hybrid").build().index
        for s in range(0, 64, 5):
            for t in range(64):
                assert idx.query(s, t) == truth.query(s, t)

    def test_grid_betweenness_ranking_no_worse_than_random(self):
        from repro.core.ranking import make_ranking

        g = grid_graph(9, 9)
        by_bet = make_builder(
            g, "hybrid", ranking=make_ranking(g, "betweenness", num_samples=30)
        ).build().index
        by_rand = make_builder(g, "hybrid", ranking="random").build().index
        assert by_bet.total_entries() <= by_rand.total_entries()
