"""Unit tests for label stores and the frozen LabelIndex."""

import pytest

from repro.core.labels import (
    BYTES_PER_ENTRY,
    INF,
    DirectedLabelState,
    LabelIndex,
    UndirectedLabelState,
    merge_join_distance,
)
from repro.core.hybrid import HybridBuilder
from repro.graphs.generators import glp_graph


class TestDirectedState:
    def test_self_entries_present(self):
        st = DirectedLabelState([0, 1, 2])
        assert st.out[1][1] == (0.0, 0)
        assert st.inn[1][1] == (0.0, 0)

    def test_out_pair_placement(self):
        # rank: v0 highest.  Pair 2 -> 0 goes to Lout(2).
        st = DirectedLabelState([0, 1, 2])
        st.set_pair(2, 0, 1.0, 1)
        assert st.out[2][0] == (1.0, 1)
        assert st.rev_out[0][2] == (1.0, 1)
        assert st.get_pair(2, 0) == (1.0, 1)

    def test_in_pair_placement(self):
        # Pair 0 -> 2 (source outranks target) goes to Lin(2).
        st = DirectedLabelState([0, 1, 2])
        st.set_pair(0, 2, 3.0, 2)
        assert st.inn[2][0] == (3.0, 2)
        assert st.rev_in[0][2] == (3.0, 2)
        assert st.get_pair(0, 2) == (3.0, 2)

    def test_remove_pair_cleans_reverse_index(self):
        st = DirectedLabelState([0, 1])
        st.set_pair(1, 0, 1.0, 1)
        st.remove_pair(1, 0)
        assert st.get_pair(1, 0) is None
        assert st.rev_out[0] == {}

    def test_two_hop_bound_via_common_pivot(self):
        st = DirectedLabelState([0, 1, 2])
        st.set_pair(1, 0, 2.0, 1)  # Lout(1): 0 at 2
        st.set_pair(0, 2, 3.0, 1)  # Lin(2): 0 at 3
        assert st.two_hop_bound(1, 2) == 5.0

    def test_two_hop_bound_exclude_pivot(self):
        st = DirectedLabelState([0, 1, 2])
        st.set_pair(1, 0, 2.0, 1)
        st.set_pair(0, 2, 3.0, 1)
        assert st.two_hop_bound(1, 2, exclude_pivot=0) == INF

    def test_two_hop_bound_self_pivot_route(self):
        st = DirectedLabelState([0, 1])
        st.set_pair(0, 1, 4.0, 1)  # Lin(1) gets pivot 0
        # Route 0 -> 1 via pivot 0: Lout(0)[0]=0 + Lin(1)[0]=4.
        assert st.two_hop_bound(0, 1) == 4.0

    def test_total_entries_excludes_self(self):
        st = DirectedLabelState([0, 1])
        assert st.total_entries() == 0
        st.set_pair(1, 0, 1.0, 1)
        assert st.total_entries() == 1

    def test_iter_entries(self):
        st = DirectedLabelState([0, 1, 2])
        st.set_pair(2, 0, 1.0, 1)
        st.set_pair(0, 1, 2.0, 1)
        entries = sorted(st.iter_entries())
        assert (1, 0, 2.0, 1, False) in entries
        assert (2, 0, 1.0, 1, True) in entries


class TestUndirectedState:
    def test_owner_pivot_normalization(self):
        st = UndirectedLabelState([1, 0])  # vertex 1 outranks vertex 0
        assert st.owner_pivot(0, 1) == (0, 1)
        assert st.owner_pivot(1, 0) == (0, 1)

    def test_set_get_either_order(self):
        st = UndirectedLabelState([0, 1])
        st.set_pair(1, 0, 2.0, 1)
        assert st.get_pair(0, 1) == (2.0, 1)
        assert st.get_pair(1, 0) == (2.0, 1)
        assert st.rev[0][1] == (2.0, 1)

    def test_two_hop_bound(self):
        st = UndirectedLabelState([0, 1, 2])
        st.set_pair(1, 0, 1.0, 1)
        st.set_pair(2, 0, 2.0, 1)
        assert st.two_hop_bound(1, 2) == 3.0


class TestLabelIndexQuery:
    def test_merge_join_basic(self):
        a = [(0, 1.0), (3, 2.0), (7, 1.0)]
        b = [(1, 5.0), (3, 1.0), (7, 3.0)]
        assert merge_join_distance(a, b) == 3.0

    def test_merge_join_no_common(self):
        assert merge_join_distance([(0, 1.0)], [(1, 1.0)]) == INF

    def test_query_identity(self):
        g = glp_graph(50, seed=1)
        idx = HybridBuilder(g).build().index
        assert idx.query(7, 7) == 0.0

    def test_query_out_of_range(self):
        g = glp_graph(20, seed=1)
        idx = HybridBuilder(g).build().index
        with pytest.raises(IndexError):
            idx.query(0, 99)

    def test_query_via_returns_highest_pivot(self):
        g = glp_graph(60, seed=2)
        built = HybridBuilder(g).build()
        idx = built.index
        d, pivot = idx.query_via(5, 40)
        assert d == idx.query(5, 40)
        if d not in (0.0, INF):
            assert pivot >= 0
            # The pivot must actually lie on a shortest path.
            assert idx.query(5, pivot) + idx.query(pivot, 40) == d


class TestLabelIndexStats:
    def test_stats_and_bytes(self):
        g = glp_graph(80, seed=3)
        idx = HybridBuilder(g).build().index
        stats = idx.stats()
        assert stats.total_entries == idx.total_entries()
        assert stats.avg_label_size == pytest.approx(
            stats.total_entries / g.num_vertices
        )
        assert idx.size_in_bytes() == (
            idx.total_entries(include_trivial=True) * BYTES_PER_ENTRY
        )
        assert "avg" in str(stats)

    def test_coverage_curve_monotone(self):
        g = glp_graph(200, seed=4)
        idx = HybridBuilder(g).build().index
        curve = idx.coverage_curve([0.01, 0.1, 0.5, 1.0])
        values = [c for _, c in curve]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0)

    def test_top_fraction_for_coverage(self):
        g = glp_graph(200, seed=4)
        idx = HybridBuilder(g).build().index
        f70 = idx.top_fraction_for_coverage(0.7)
        f90 = idx.top_fraction_for_coverage(0.9)
        assert 0 < f70 <= f90 <= 1.0

    def test_coverage_requires_ranking(self):
        idx = LabelIndex(2, False, [[(0, 0.0)], [(1, 0.0)]],
                         [[(0, 0.0)], [(1, 0.0)]], rank=None)
        with pytest.raises(ValueError):
            idx.coverage_curve([0.5])


class TestSerialization:
    @pytest.mark.parametrize("directed", [True, False])
    def test_save_load_round_trip(self, tmp_path, directed):
        g = glp_graph(60, seed=5, directed=directed)
        idx = HybridBuilder(g).build().index
        path = tmp_path / "x.idx"
        idx.save(path)
        loaded = LabelIndex.load(path)
        assert loaded.n == idx.n
        assert loaded.directed == idx.directed
        assert loaded.out_labels == idx.out_labels
        assert loaded.in_labels == idx.in_labels
        assert loaded.rank == idx.rank

    def test_undirected_load_aliases_labels(self, tmp_path):
        g = glp_graph(30, seed=6)
        idx = HybridBuilder(g).build().index
        path = tmp_path / "x.idx"
        idx.save(path)
        loaded = LabelIndex.load(path)
        assert loaded.out_labels is loaded.in_labels

    def test_bad_file_rejected(self, tmp_path):
        path = tmp_path / "bad.idx"
        path.write_bytes(b"garbage!")
        with pytest.raises(ValueError):
            LabelIndex.load(path)

    def test_truncated_file_rejected(self, tmp_path):
        g = glp_graph(40, seed=7)
        idx = HybridBuilder(g).build().index
        path = tmp_path / "full.idx"
        idx.save(path)
        data = path.read_bytes()
        truncated = tmp_path / "trunc.idx"
        truncated.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError, match="truncated"):
            LabelIndex.load(truncated)

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "hdr.idx"
        path.write_bytes(b"RPLI\x01")  # magic + partial header
        with pytest.raises(ValueError, match="truncated"):
            LabelIndex.load(path)
