"""Tests for the incremental-insertion extension."""

import pytest

from repro.baselines.apsp import APSPOracle
from repro.core.dynamic import DynamicHopDoublingIndex
from repro.core.hybrid import make_builder
from repro.graphs.digraph import Graph
from repro.graphs.generators import glp_graph, path_graph
from tests.conftest import random_graph


class TestBasicInsertion:
    def test_insert_shortcut_updates_distance(self):
        g = path_graph(6)
        dyn = DynamicHopDoublingIndex(g)
        assert dyn.query(0, 5) == 5.0
        assert dyn.insert_edge(0, 5)
        assert dyn.query(0, 5) == 1.0
        assert dyn.query(1, 5) == 2.0

    def test_insert_connects_components(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)], directed=False)
        dyn = DynamicHopDoublingIndex(g)
        assert dyn.query(0, 3) == float("inf")
        dyn.insert_edge(1, 2)
        assert dyn.query(0, 3) == 3.0

    def test_duplicate_insert_is_noop(self):
        g = path_graph(4)
        dyn = DynamicHopDoublingIndex(g)
        assert not dyn.insert_edge(0, 1)
        assert dyn.insertions == 0

    def test_self_loop_rejected_quietly(self):
        dyn = DynamicHopDoublingIndex(path_graph(3))
        assert not dyn.insert_edge(1, 1)

    def test_out_of_range_raises(self):
        dyn = DynamicHopDoublingIndex(path_graph(3))
        with pytest.raises(IndexError):
            dyn.insert_edge(0, 9)

    def test_directed_insert_is_one_way(self):
        g = Graph.from_edges(3, [(0, 1)], directed=True)
        dyn = DynamicHopDoublingIndex(g)
        dyn.insert_edge(1, 2)
        assert dyn.query(0, 2) == 2.0
        assert dyn.query(2, 0) == float("inf")


class TestExactnessAfterInsertions:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_full_rebuild(self, seed):
        import random

        rng = random.Random(seed)
        g = random_graph(seed, max_n=20, weighted=False)
        n = g.num_vertices
        dyn = DynamicHopDoublingIndex(g)
        for _ in range(6):
            dyn.insert_edge(rng.randrange(n), rng.randrange(n))
        truth = APSPOracle(dyn.graph)
        for s in range(n):
            for t in range(n):
                assert dyn.query(s, t) == truth.query(s, t)

    @pytest.mark.parametrize("seed", range(4))
    def test_weighted_insertions(self, seed):
        import random

        rng = random.Random(seed)
        g = random_graph(seed, max_n=15, weighted=True)
        n = g.num_vertices
        dyn = DynamicHopDoublingIndex(g)
        for _ in range(4):
            dyn.insert_edge(
                rng.randrange(n), rng.randrange(n), float(rng.randint(1, 5))
            )
        truth = APSPOracle(dyn.graph)
        for s in range(n):
            for t in range(n):
                assert dyn.query(s, t) == truth.query(s, t)

    def test_weight_validation(self):
        g = Graph.from_edges(2, [(0, 1, 1.0)], weighted=True)
        dyn = DynamicHopDoublingIndex(g)
        with pytest.raises(ValueError):
            dyn.insert_edge(1, 0, weight=0.0)


class TestCompaction:
    def test_compact_restores_canonical_size(self):
        # Build incrementally in random order, then compact: the label
        # count must match a from-scratch build of the final graph.
        g = glp_graph(60, seed=13)
        edges = [(u, v) for u, v, _ in g.edges()]
        base = Graph.from_edges(
            g.num_vertices, edges[: len(edges) // 2], directed=False
        )
        dyn = DynamicHopDoublingIndex(base, ranking="degree")
        for u, v in edges[len(edges) // 2:]:
            dyn.insert_edge(u, v)
        dyn.compact()
        rebuilt = make_builder(
            dyn.graph, "hybrid", ranking=dyn.ranking
        ).build().index
        assert dyn.snapshot().total_entries() == rebuilt.total_entries()

    def test_snapshot_queryable(self):
        g = path_graph(5)
        dyn = DynamicHopDoublingIndex(g)
        dyn.insert_edge(0, 4)
        snap = dyn.snapshot()
        assert snap.query(1, 4) == 2.0

    def test_repr(self):
        dyn = DynamicHopDoublingIndex(path_graph(3))
        assert "insertions=0" in repr(dyn)
