"""Ablations of the paper's design choices.

Not a paper artifact per se, but each ablation isolates one design
decision Section 2/3/5 argues for and measures what it buys:

* pruning on/off — the Section 3.3 step is what keeps the index near
  the canonical size;
* ranking strategy — degree-aware orders vs a random control
  (Section 2's hitting-set argument);
* minimized vs full rule set — same output, less generation work
  (Lemmas 3-4's practical payoff);
* hybrid switch point — early vs late switching (Section 5.4);
* bit-parallel post-processing — entry-count reduction (Section 6).
"""

from __future__ import annotations

import pytest

from repro.bench.datasets import load_dataset
from repro.core.bitparallel import add_bitparallel
from repro.core.hybrid import HybridBuilder, make_builder


def test_pruning_ablation(benchmark):
    """Without pruning the index inflates several-fold."""
    graph = load_dataset("syn5")

    def measure():
        pruned = make_builder(graph, "stepping").build()
        unpruned = make_builder(graph, "stepping", prune=False).build()
        return pruned, unpruned

    pruned, unpruned = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = unpruned.index.total_entries() / pruned.index.total_entries()
    assert ratio > 2.0
    # Queries agree either way (Theorem 1).
    n = graph.num_vertices
    for s in range(0, n, 83):
        for t in range(0, n, 97):
            assert pruned.index.query(s, t) == unpruned.index.query(s, t)


def test_ranking_ablation(benchmark):
    """Degree-aware rankings beat the random control by a wide margin."""
    graph = load_dataset("enron")

    def measure():
        return {
            name: make_builder(graph, "hybrid", ranking=name).build()
            for name in ("degree", "betweenness", "random")
        }

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    degree = results["degree"].index.total_entries()
    random_ = results["random"].index.total_entries()
    betweenness = results["betweenness"].index.total_entries()
    assert degree < 0.5 * random_
    # The sampled-hitting heuristic lands between degree and random.
    assert degree <= betweenness <= random_


def test_rule_set_ablation(benchmark):
    """Minimized rules: identical index, strictly less generation."""
    graph = load_dataset("slashdot")

    def measure():
        return (
            make_builder(graph, "doubling", rule_set="minimized").build(),
            make_builder(graph, "doubling", rule_set="full").build(),
        )

    minimized, full = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert minimized.index.out_labels == full.index.out_labels
    raw_min = sum(it.raw_generated for it in minimized.iterations)
    raw_full = sum(it.raw_generated for it in full.iterations)
    assert raw_min < raw_full


@pytest.mark.parametrize("switch", [2, 5, 10])
def test_hybrid_switch_point(benchmark, switch):
    """Any switch point yields the same answers; earlier switches trade
    candidate volume for fewer iterations on long-diameter graphs."""
    from repro.bench.table8 import long_diameter_graph

    graph = long_diameter_graph(300, seed=7)
    result = benchmark.pedantic(
        lambda: HybridBuilder(graph, switch_iteration=switch).build(),
        rounds=1,
        iterations=1,
    )
    reference = HybridBuilder(graph, switch_iteration=5).build()
    for s in range(0, 300, 37):
        for t in range(0, 300, 41):
            assert result.index.query(s, t) == reference.index.query(s, t)
    # Earlier switch -> fewer total iterations.
    if switch == 2:
        assert result.num_iterations <= reference.num_iterations


def test_bitparallel_ablation(benchmark):
    """Section 6: 50 roots absorb the vast majority of normal entries."""
    graph = load_dataset("cat")
    index = make_builder(graph, "hybrid").build().index

    bp = benchmark.pedantic(
        lambda: add_bitparallel(graph, index, num_roots=50),
        rounds=1,
        iterations=1,
    )
    absorbed = 1.0 - bp.normal.total_entries() / index.total_entries()
    assert absorbed > 0.7
    # Exactness spot-check.
    n = graph.num_vertices
    for s in range(0, n, 71):
        for t in range(0, n, 89):
            assert bp.query(s, t) == index.query(s, t)


def test_external_memory_budget_sweep(benchmark):
    """Section 5.3's I/O shape: block traffic grows as memory shrinks,
    output stays identical."""
    from repro.io_sim.diskmodel import DiskModel
    from repro.io_sim.external_labeling import ExternalLabelingBuilder

    graph = load_dataset("enron")

    def sweep():
        out = {}
        for m in (128, 512, 4096):
            result = ExternalLabelingBuilder(graph, DiskModel(m, 16)).build()
            out[m] = result
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    ios = [results[m].total_io.total for m in (128, 512, 4096)]
    assert ios[0] > ios[1] > ios[2]
    labels = [results[m].index.out_labels for m in (128, 512, 4096)]
    assert labels[0] == labels[1] == labels[2]
