"""Table 6 — performance comparison of BIDIJ / IS-Label / PLL / HopDb.

Regenerates the paper's main table on the quick-profile scaled
datasets and asserts its *shape* claims:

* HopDb's index is never larger than IS-Label's and matches PLL's on
  unweighted graphs (canonical labeling identity);
* label queries beat online bidirectional search by a wide margin;
* the disk-resident query touches only the two label lists.

Run ``python -m repro bench table6 --profile full`` for the whole
27-row table.
"""

from __future__ import annotations

import pytest

from repro.baselines.bidij import BidirectionalSearchOracle
from repro.baselines.islabel import build_islabel
from repro.baselines.pll import build_pll
from repro.bench.datasets import load_dataset, profile_names
from repro.io_sim.disk_index import DiskResidentIndex
from repro.io_sim.diskmodel import DiskModel

QUICK = profile_names("quick")


@pytest.mark.parametrize("name", QUICK)
def test_hopdb_query_throughput(benchmark, built_indexes, query_workload, name):
    """The 'Memory query time' column for HopDb."""
    graph, result = built_indexes(name)
    index = result.index
    pairs = query_workload(graph.num_vertices)

    def run():
        q = index.query
        for s, t in pairs:
            q(s, t)

    benchmark(run)
    # Shape assertion: thousands of queries per second even in Python.
    micros = benchmark.stats.stats.mean * 1e6 / len(pairs)
    assert micros < 1000.0


@pytest.mark.parametrize("name", ["enron", "slashdot"])
def test_bidij_query_cost(benchmark, built_indexes, query_workload, name):
    """The BIDIJ column: online search is orders of magnitude slower."""
    graph, result = built_indexes(name)
    oracle = BidirectionalSearchOracle(graph)
    pairs = query_workload(graph.num_vertices, count=30)

    def run():
        for s, t in pairs:
            oracle.query(s, t)

    benchmark(run)
    per_query_bidij = benchmark.stats.stats.mean / len(pairs)
    # Compare with the label index on identical pairs.
    import time

    index = result.index
    t0 = time.perf_counter()
    for _ in range(10):
        for s, t in pairs:
            index.query(s, t)
    per_query_label = (time.perf_counter() - t0) / (10 * len(pairs))
    assert per_query_bidij > 2.0 * per_query_label


@pytest.mark.parametrize("name", ["enron", "cat", "syn5"])
def test_index_size_ordering(benchmark, built_indexes, name):
    """Index-size columns: HopDb == PLL (unweighted), <= IS-Label."""
    graph, result = built_indexes(name)

    def measure():
        pll, _ = build_pll(graph)
        isl = build_islabel(graph)
        return pll, isl

    pll, isl = benchmark.pedantic(measure, rounds=1, iterations=1)
    hop_entries = result.index.total_entries()
    assert hop_entries == pll.total_entries()
    assert hop_entries <= isl.labels.total_entries()
    assert result.index.size_in_bytes() <= isl.size_in_bytes()


@pytest.mark.parametrize("name", ["enron", "wikieng"])
def test_disk_query_blocks(benchmark, built_indexes, query_workload, name):
    """The 'Disk query time' column: two label reads per query."""
    graph, result = built_indexes(name)
    disk_index = DiskResidentIndex(result.index, DiskModel(block_entries=64))
    pairs = query_workload(graph.num_vertices, count=200)

    def run():
        disk_index.reset_counters()
        for s, t in pairs:
            disk_index.query(s, t)
        return disk_index.avg_blocks_per_query()

    blocks = benchmark(run)
    assert 2.0 <= blocks < 64.0
    # Simulated latency lands in the paper's disk-query territory
    # (milliseconds, dominated by the two seeks).
    assert 0.001 < disk_index.avg_query_seconds() < 0.1


@pytest.mark.parametrize("name", ["enron"])
def test_hopdb_external_build(benchmark, name):
    """The 'Indexing time' column for the external HopDb build."""
    from repro.io_sim.external_labeling import ExternalLabelingBuilder

    graph = load_dataset(name)

    def build():
        return ExternalLabelingBuilder(graph, DiskModel()).build()

    result = benchmark.pedantic(build, rounds=1, iterations=1)
    assert result.total_io.total > 0
    assert result.index.total_entries() > 0
