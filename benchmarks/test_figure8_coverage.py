"""Figure 8 — label coverage by top-ranked vertices.

The paper's curves jump to ~100% within the top 1% of vertices on
million-node graphs.  On thousand-node stand-ins the same skew is
visible at proportionally larger fractions (the top 1% is only ~10
vertices here); the benchmark asserts the scale-adjusted form:
coverage is strongly super-uniform and monotone, and the highest-ranked
single percent of vertices covers many times its uniform share.
"""

from __future__ import annotations

import pytest

from repro.bench.figure8 import DEFAULT_GRAPHS, FRACTIONS, run


def test_figure8_curves(benchmark):
    fig = benchmark.pedantic(run, rounds=1, iterations=1)
    assert [c.name for c in fig.curves] == DEFAULT_GRAPHS
    for curve in fig.curves:
        values = [cov for _, cov in curve.points]
        # Monotone non-decreasing in the top-fraction.
        assert values == sorted(values)
        # Super-uniform: each point covers well above its uniform share.
        for (frac, cov) in curve.points:
            assert cov > 2.0 * frac
        # The top 1% already covers a disproportionate slice.
        one_percent = dict(curve.points)[0.01]
        assert one_percent > 0.1


@pytest.mark.parametrize("name", DEFAULT_GRAPHS)
def test_coverage_concentration_per_graph(benchmark, built_indexes, name):
    _, result = built_indexes(name)
    index = result.index

    curve = benchmark(lambda: index.coverage_curve(FRACTIONS))
    top10pct = index.coverage_curve([0.10])[0][1]
    assert top10pct > 0.5  # uniform would give 0.10
    assert len(curve) == len(FRACTIONS)
