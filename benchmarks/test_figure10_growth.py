"""Figure 10 — growth and pruning dynamics across iterations.

Asserts the paper's instrumented-build observations on the
long-diameter control graph (the scaled stand-in for wiki-English,
which converges too quickly to show the dynamics — see
`repro.bench.figure10`):

* the growing factor is moderate during the stepping phase and jumps
  at the switch to doubling;
* the pruning factor climbs toward 100% in the late iterations;
* the candidate volume never dwarfs the final index (paper: |cand|
  stayed below 1.5x the final index).
"""

from __future__ import annotations

from repro.bench.figure10 import run


def test_figure10_dynamics(benchmark):
    fig = benchmark.pedantic(
        lambda: run("long-diam", switch_iteration=5), rounds=1, iterations=1
    )
    points = fig.points
    step_points = [p for p in points if p.mode == "step"]
    double_points = [p for p in points if p.mode == "double"]
    assert step_points and double_points

    # Stepping keeps the growing factor at the expansion-factor scale.
    step_growth = max(p.growing_factor for p in step_points)
    assert step_growth < 10.0

    # The first doubling round jumps above the stepping ceiling.
    first_double = double_points[0]
    last_step = step_points[-1]
    assert first_double.growing_factor > 1.5 * last_step.growing_factor

    # Pruning becomes decisive by the end (the final round kills all
    # remaining candidates).
    assert points[-1].pruning_factor == 1.0

    # Candidate volume bounded relative to the final index.
    assert max(p.cand_ratio for p in points) < 3.0

    # Time ratios sum to one.
    assert abs(sum(p.time_ratio for p in points) - 1.0) < 1e-6


def test_pruning_factor_high_on_scale_free(benchmark):
    """On the scale-free stand-ins pruning removes most of what the
    early iterations admit (the paper: 'The pruning strategy was
    powerful throughout the whole process')."""
    fig = benchmark.pedantic(
        lambda: run("skitter", switch_iteration=2), rounds=1, iterations=1
    )
    # At least one iteration prunes more than half of its admissions.
    assert any(p.pruning_factor > 0.5 for p in fig.points)
