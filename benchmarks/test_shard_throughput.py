"""Sharded-serving benchmark: ParallelOracle vs single-store batches.

The claim behind the sharded store + worker-pool frontend is that
batch throughput scales with cores once the index is partitioned:
every worker owns an mmap of the shard files and evaluates its chunk
with the same grouped merge joins the single-store path uses.  This
file builds one index over a 10k-vertex Barabasi-Albert graph, serves
it three ways — per-pair, single-store ``query_batch``, and
``ParallelOracle`` over a shard directory — and enforces:

* **bit-identical answers** across all three paths (always);
* the **>= 1.5x batch-throughput floor** for the parallel frontend
  over the single-store batch path (on machines with >= 2 cores; a
  process pool cannot beat the GIL-free single process on one core,
  so the floor is skipped there — CI runners have >= 2).

Every run also records its measurements in
``BENCH_shard_throughput.json`` (uploaded as a CI artifact), so the
throughput trajectory is visible per commit even where the floor is
skipped.
"""

from __future__ import annotations

import gc
import os
import time

import pytest

from repro.baselines.pll import build_pll
from repro.bench.export import write_bench_json
from repro.bench.workloads import random_pairs
from repro.core.flatstore import FlatLabelStore
from repro.graphs.generators import ba_graph
from repro.oracle import DistanceOracle, ParallelOracle, ShardedLabelStore

NUM_VERTICES = 10_000
#: Big enough that pool dispatch (pickling pairs, waking workers) is
#: amortised; the per-worker chunks still fit well inside L2-resident
#: label slices.
NUM_PAIRS = 20_000
NUM_SHARDS = 4
#: Acceptance floor for ParallelOracle vs single-store batch
#: throughput.  With 4 process workers the fan-out measures ~2-3x on
#: 2-4 core CI runners; 1.5 is the criterion with headroom for noise.
MIN_PARALLEL_SPEEDUP = 1.5

_CORES = os.cpu_count() or 1


@pytest.fixture(scope="module")
def assets(tmp_path_factory):
    """One PLL index served two ways: flat store and shard directory."""
    graph = ba_graph(NUM_VERTICES, m=2, seed=1)
    index, _ = build_pll(graph)
    flat = FlatLabelStore.from_index(index)
    root = tmp_path_factory.mktemp("shard-bench")
    shard_dir = root / "shards"
    ShardedLabelStore.split(flat, NUM_SHARDS).save(shard_dir)
    return flat, shard_dir


@pytest.fixture(scope="module")
def pairs():
    return random_pairs(NUM_VERTICES, NUM_PAIRS, seed=77)


@pytest.fixture(scope="module")
def parallel_oracle(assets):
    _, shard_dir = assets
    oracle = ParallelOracle(
        shard_dir,
        workers=min(NUM_SHARDS, _CORES),
        executor="process",
        cache_size=0,
    )
    oracle.warmup()
    yield oracle
    oracle.close()


def _interleaved_rates(runs, pairs, repeats: int = 5) -> list[float]:
    """Best-of-N pairs/sec per callable, rounds interleaved.

    Alternating within each round spreads machine noise over both
    measurements symmetrically; the per-callable minimum discards the
    noisy rounds (same protocol as ``test_store_throughput``).
    """
    best = [float("inf")] * len(runs)
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            for k, run in enumerate(runs):
                t0 = time.perf_counter()
                run(pairs)
                best[k] = min(best[k], time.perf_counter() - t0)
    finally:
        if gc_was_enabled:
            gc.enable()
    return [len(pairs) / b for b in best]


def test_sharded_answers_bit_identical(assets, pairs, parallel_oracle):
    """Per-pair, batched, and sharded paths agree on every distance."""
    flat, shard_dir = assets
    expected = [flat.query(s, t) for s, t in pairs]

    single = DistanceOracle(flat, cache_size=0)
    assert single.query_batch(pairs) == expected

    sharded = ShardedLabelStore.load(shard_dir, use_mmap=True)
    try:
        assert [sharded.query(s, t) for s, t in pairs] == expected
    finally:
        sharded.close()

    assert parallel_oracle.query_batch(pairs) == expected


def test_single_store_batch_throughput(benchmark, assets, pairs):
    """Baseline: the single-process grouped merge-join batch path."""
    flat, _ = assets
    oracle = DistanceOracle(flat, cache_size=0)
    benchmark(lambda: oracle.query_batch(pairs))


def test_parallel_batch_throughput(benchmark, assets, pairs, parallel_oracle):
    """The sharded fan-out path through the warm process pool."""
    result = benchmark(lambda: parallel_oracle.query_batch(pairs))
    flat, _ = assets
    assert result == [flat.query(s, t) for s, t in pairs]


def test_parallel_throughput_floor_and_export(assets, pairs, parallel_oracle):
    """The acceptance criterion: sharded batches >= 1.5x single-store.

    The measured rates are exported to ``BENCH_shard_throughput.json``
    on every run; the floor itself needs a second core (a process pool
    on one core only adds dispatch overhead) and is asserted when the
    machine has one.
    """
    flat, _ = assets
    single = DistanceOracle(flat, cache_size=0)
    single_rate, parallel_rate = _interleaved_rates(
        [single.query_batch, parallel_oracle.query_batch], pairs
    )
    speedup = parallel_rate / single_rate
    write_bench_json(
        "shard_throughput",
        {
            "num_vertices": NUM_VERTICES,
            "num_pairs": NUM_PAIRS,
            "num_shards": NUM_SHARDS,
            "workers": parallel_oracle.workers,
            "cores": _CORES,
            "single_store_pairs_per_sec": round(single_rate),
            "parallel_pairs_per_sec": round(parallel_rate),
            "speedup": round(speedup, 3),
            "floor": MIN_PARALLEL_SPEEDUP,
            "floor_enforced": _CORES >= 2,
        },
    )
    if _CORES < 2:
        pytest.skip(
            f"only {_CORES} core(s): the >= {MIN_PARALLEL_SPEEDUP}x floor "
            "needs real parallelism (rates still exported)"
        )
    assert speedup >= MIN_PARALLEL_SPEEDUP, (
        f"ParallelOracle {parallel_rate:,.0f} pairs/s vs single store "
        f"{single_rate:,.0f} pairs/s — {speedup:.2f}x is below the "
        f"{MIN_PARALLEL_SPEEDUP}x floor"
    )
