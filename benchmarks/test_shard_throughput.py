"""Sharded-serving benchmark: ParallelOracle vs single-store batches.

The claim behind the sharded store + worker-pool frontend is that
batch throughput scales with cores once the index is partitioned:
every worker owns an mmap of the shard files and evaluates its chunk
with the same evaluation paths the single-store process uses.  This
file builds one index over a 10k-vertex Barabasi-Albert graph, serves
it four ways — per-pair, single-store ``query_batch``, and
``ParallelOracle`` over a shard directory with the vectorized kernel
pinned off and on — and enforces:

* **bit-identical answers** across all paths (always);
* the **>= 1.5x batch-throughput floor** for the parallel frontend
  over the single-store batch path, measured like-for-like on the
  scalar evaluation path so it isolates the fan-out machinery (on
  machines with >= 2 cores; a process pool cannot beat the GIL-free
  single process on one core, so the floor is skipped there — CI
  runners have >= 2).

With the kernel on, both configurations speed up by several times and
the measured rates are recorded without a floor: chunk dispatch is
amortised by shipping numpy array chunks, but a cache-resident index
answered by one kernel call per batch is hard to beat until indexes
outgrow one machine's memory — that trade-off belongs in the data,
not hidden by the gate (``benchmarks/test_query_throughput.py`` gates
the kernel itself).

Every run also records its measurements — including p50/p99 single-
pair latency and which evaluation kernel served the batch paths — in
``BENCH_shard_throughput.json`` (uploaded as a CI artifact), so the
throughput trajectory is visible per commit even where the floor is
skipped.
"""

from __future__ import annotations

import gc
import os
import sys
import time

import pytest

from repro.baselines.pll import build_pll
from repro.bench.export import write_bench_json
from repro.bench.metrics import interleaved_rates
from repro.bench.workloads import random_pairs
from repro.core.flatstore import FlatLabelStore
from repro.graphs.generators import ba_graph
from repro.oracle import DistanceOracle, ParallelOracle, ShardedLabelStore
from repro.oracle import kernel as query_kernel

NUM_VERTICES = 10_000
#: Big enough that pool dispatch (pickling pairs, waking workers) is
#: amortised; the per-worker chunks still fit well inside L2-resident
#: label slices.
NUM_PAIRS = 20_000
NUM_SHARDS = 4
#: Acceptance floor for ParallelOracle vs single-store batch
#: throughput on the scalar path.  With 4 process workers the fan-out
#: measures ~2-3x on 2-4 core CI runners; 1.5 is the criterion with
#: headroom for noise.
MIN_PARALLEL_SPEEDUP = 1.5
#: Single-pair queries timed for the latency percentiles.
LATENCY_SAMPLES = 2_000

_CORES = os.cpu_count() or 1


@pytest.fixture(scope="module")
def assets(tmp_path_factory):
    """One PLL index served two ways: flat store and shard directory."""
    graph = ba_graph(NUM_VERTICES, m=2, seed=1)
    index, _ = build_pll(graph)
    flat = FlatLabelStore.from_index(index)
    root = tmp_path_factory.mktemp("shard-bench")
    shard_dir = root / "shards"
    ShardedLabelStore.split(flat, NUM_SHARDS).save(shard_dir)
    return flat, shard_dir


@pytest.fixture(scope="module")
def pairs():
    return random_pairs(NUM_VERTICES, NUM_PAIRS, seed=77)


def _make_parallel(shard_dir, kernel: str) -> ParallelOracle:
    oracle = ParallelOracle(
        shard_dir,
        workers=min(NUM_SHARDS, _CORES),
        executor="process",
        cache_size=0,
        kernel=kernel,
    )
    oracle.warmup()
    return oracle


@pytest.fixture(scope="module")
def parallel_oracle(assets):
    """The default serving configuration (kernel resolved to auto)."""
    _, shard_dir = assets
    oracle = _make_parallel(shard_dir, kernel="auto")
    yield oracle
    oracle.close()


@pytest.fixture(scope="module")
def parallel_oracle_scalar(assets):
    """Kernel pinned off — the floor's like-for-like configuration."""
    _, shard_dir = assets
    oracle = _make_parallel(shard_dir, kernel="off")
    yield oracle
    oracle.close()


def _latency_percentiles_us(oracle, pairs) -> tuple[float, float]:
    """(p50, p99) single-pair query latency in microseconds."""
    sample = pairs[:LATENCY_SAMPLES]
    timings = []
    query = oracle.query
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for s, t in sample:
            t0 = time.perf_counter()
            query(s, t)
            timings.append(time.perf_counter() - t0)
    finally:
        if gc_was_enabled:
            gc.enable()
    timings.sort()
    p50 = timings[len(timings) // 2]
    p99 = timings[min(len(timings) - 1, (len(timings) * 99) // 100)]
    return p50 * 1e6, p99 * 1e6


def test_sharded_answers_bit_identical(assets, pairs, parallel_oracle,
                                       parallel_oracle_scalar):
    """Per-pair, batched, sharded, and kernel paths agree everywhere."""
    flat, shard_dir = assets
    expected = [flat.query(s, t) for s, t in pairs]

    single = DistanceOracle(flat, cache_size=0)
    assert single.query_batch(pairs) == expected

    sharded = ShardedLabelStore.load(shard_dir, use_mmap=True)
    try:
        assert [sharded.query(s, t) for s, t in pairs] == expected
    finally:
        sharded.close()

    assert parallel_oracle.query_batch(pairs) == expected
    assert parallel_oracle_scalar.query_batch(pairs) == expected


def test_single_store_batch_throughput(benchmark, assets, pairs):
    """Baseline: the single-process batch path (kernel resolved to auto)."""
    flat, _ = assets
    oracle = DistanceOracle(flat, cache_size=0)
    benchmark(lambda: oracle.query_batch(pairs))


def test_parallel_batch_throughput(benchmark, assets, pairs, parallel_oracle):
    """The sharded fan-out path through the warm process pool."""
    result = benchmark(lambda: parallel_oracle.query_batch(pairs))
    flat, _ = assets
    assert result == [flat.query(s, t) for s, t in pairs]


def test_parallel_throughput_floor_and_export(assets, pairs, parallel_oracle,
                                              parallel_oracle_scalar):
    """The acceptance criterion: sharded batches >= 1.5x single-store.

    The floor compares the scalar evaluation path on both sides (the
    fan-out machinery itself); the kernel-on rates for both
    configurations, p50/p99 single-pair latency, and the resolved
    kernel are exported to ``BENCH_shard_throughput.json`` on every
    run.  The floor itself needs a second core (a process pool on one
    core only adds dispatch overhead) and is asserted when the machine
    has one.
    """
    flat, _ = assets
    single_scalar = DistanceOracle(flat, cache_size=0, kernel="off")
    single_auto = DistanceOracle(flat, cache_size=0)
    single_rate, parallel_rate = interleaved_rates(
        [single_scalar.query_batch, parallel_oracle_scalar.query_batch],
        pairs,
    )
    single_kernel_rate, parallel_kernel_rate = interleaved_rates(
        [single_auto.query_batch, parallel_oracle.query_batch], pairs
    )
    p50_us, p99_us = _latency_percentiles_us(parallel_oracle, pairs)
    speedup = parallel_rate / single_rate
    kernel_name = (
        "numpy" if query_kernel.supports(parallel_oracle.store) else "scalar"
    )
    floor_enforced = _CORES >= 2
    write_bench_json(
        "shard_throughput",
        {
            "num_vertices": NUM_VERTICES,
            "num_pairs": NUM_PAIRS,
            "num_shards": NUM_SHARDS,
            "workers": parallel_oracle.workers,
            "cores": _CORES,
            "kernel": kernel_name,
            "single_store_pairs_per_sec": round(single_rate),
            "parallel_pairs_per_sec": round(parallel_rate),
            "single_store_kernel_pairs_per_sec": round(single_kernel_rate),
            "parallel_kernel_pairs_per_sec": round(parallel_kernel_rate),
            "query_p50_us": round(p50_us, 2),
            "query_p99_us": round(p99_us, 2),
            "speedup": round(speedup, 3),
            "kernel_speedup": round(
                parallel_kernel_rate / single_kernel_rate, 3
            ),
            "floor": MIN_PARALLEL_SPEEDUP,
            "floor_enforced": floor_enforced,
        },
    )
    if not floor_enforced:
        reason = (
            f"SKIP: only {_CORES} core(s) — the >= "
            f"{MIN_PARALLEL_SPEEDUP}x parallel floor needs real "
            "parallelism (a process pool on one core only adds dispatch "
            "overhead); rates were still measured and exported to "
            "BENCH_shard_throughput.json"
        )
        print(reason, file=sys.stderr)
        pytest.skip(reason)
    assert speedup >= MIN_PARALLEL_SPEEDUP, (
        f"ParallelOracle {parallel_rate:,.0f} pairs/s vs single store "
        f"{single_rate:,.0f} pairs/s — {speedup:.2f}x is below the "
        f"{MIN_PARALLEL_SPEEDUP}x floor"
    )
