"""Table 8 — Hop-Doubling vs Hop-Stepping vs Hybrid.

Asserts the paper's strategy-comparison findings on scaled inputs:

* on small-diameter scale-free graphs the hybrid behaves exactly like
  stepping (the switch never fires) and doubling is the slowest;
* on a long-diameter graph the hybrid needs far fewer iterations than
  stepping (the paper: BTC 38 -> 14, wikiItaly 59 -> 15);
* all three strategies produce indexes answering identically.
"""

from __future__ import annotations

import pytest

from repro.bench.datasets import load_dataset
from repro.bench.table8 import long_diameter_graph
from repro.core.hybrid import make_builder

STRATEGIES = ("doubling", "stepping", "hybrid")


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_strategy_build_time(benchmark, strategy):
    graph = load_dataset("cat")
    result = benchmark.pedantic(
        lambda: make_builder(graph, strategy).build(), rounds=1, iterations=1
    )
    assert result.index.total_entries() > 0


def test_doubling_generates_more_candidates(benchmark):
    """The early candidate blow-up that motivates stepping."""
    graph = load_dataset("skitter")

    def measure():
        doubling = make_builder(graph, "doubling").build()
        stepping = make_builder(graph, "stepping").build()
        return doubling, stepping

    doubling, stepping = benchmark.pedantic(measure, rounds=1, iterations=1)
    d_cands = sum(it.distinct_generated for it in doubling.iterations)
    s_cands = sum(it.distinct_generated for it in stepping.iterations)
    assert d_cands > s_cands
    # Identical final index regardless of strategy.
    assert doubling.index.out_labels == stepping.index.out_labels


def test_hybrid_limits_iterations_on_long_diameter(benchmark):
    """The Table 8 BTC/wikiItaly effect, on the diameter-control graph."""
    graph = long_diameter_graph(500, seed=3)

    def measure():
        hybrid = make_builder(graph, "hybrid").build()
        stepping = make_builder(graph, "stepping").build()
        return hybrid, stepping

    hybrid, stepping = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert hybrid.num_iterations < stepping.num_iterations / 3
    # Answers agree on a sample.
    for s in range(0, 500, 41):
        for t in range(0, 500, 37):
            assert hybrid.index.query(s, t) == stepping.index.query(s, t)


def test_hybrid_matches_stepping_on_small_diameter(benchmark):
    graph = load_dataset("syn5")

    def measure():
        return (
            make_builder(graph, "hybrid").build(),
            make_builder(graph, "stepping").build(),
        )

    hybrid, stepping = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert hybrid.num_iterations == stepping.num_iterations
    assert hybrid.index.out_labels == stepping.index.out_labels
