"""Dynamic-update benchmark: array vs dict repair, per-shard reconcile.

PR 3 gated index *construction* (array engine >= 2x dict) and PR 4
*query serving* (kernel >= 3x scalar); this file gates the dynamic
update path the same way.  One 10k-vertex Barabasi-Albert graph grows
by a 1000-edge insertion stream (the stream is the BA model's own
final edges, so the workload is genuine preferential-attachment
growth), replayed through both repair engines from the same built
base index:

* **bit-identical post-update label states** (and therefore answers)
  between the dict and array repair engines, spot-verified against
  bidirectional Dijkstra on the grown graph;
* the **>= 3x wall-clock floor** for the vectorized array repair over
  the reference dict repair.  Both paths are single-process and
  CPU-bound, so the comparison uses ``time.process_time`` (min over
  ``REPS`` replays) to stay robust on noisy shared runners;
* **per-shard reconcile** rewrites exactly the shards whose vertex
  ranges contain updated vertices: the graph carries disconnected pad
  components in the top vertex range whose shards provably cannot be
  touched by BA-side insertions — their files must stay byte-for-byte
  identical while every manifest checksum revalidates.

Every run records its measurements in ``BENCH_update_throughput.json``
(uploaded as a CI artifact), so the update-throughput trajectory is
visible per commit.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

import pytest

from repro.baselines.bidij import BidirectionalSearchOracle
from repro.bench.export import write_bench_json
from repro.core.dynamic import DynamicHopDoublingIndex
from repro.core.flatstore import FlatLabelStore
from repro.core.hybrid import make_builder
from repro.graphs.digraph import Graph
from repro.graphs.generators import ba_graph

np = pytest.importorskip("numpy", reason="the array repair engine requires numpy")

#: Barabasi-Albert component (the part that grows).
NUM_BA_VERTICES = 10_000
#: Disconnected pad vertices occupying the top vertex range (paired
#: into 2-vertex components so their labels are non-empty) — their
#: shards can never be dirtied by BA-side insertions.
NUM_PAD_VERTICES = 2_000
NUM_VERTICES = NUM_BA_VERTICES + NUM_PAD_VERTICES
#: Edges held out of the base build and replayed as the stream.
STREAM_EDGES = 1_000
#: insert_edges batch size for both engines.
BATCH = 500
#: Replays per engine; the minimum is scored.
REPS = 2
#: Acceptance floor: array repair vs dict repair.  Measured ~3.5-4x;
#: 3.0 is the criterion from the issue.
MIN_SPEEDUP = 3.0
#: Shard count — 12000/12 = 1000 vertices per shard, so shards 10-11
#: hold only pad vertices.
NUM_SHARDS = 12


@pytest.fixture(scope="module")
def setting():
    """Base store + insertion stream, built once per session."""
    ba = ba_graph(NUM_BA_VERTICES, m=2, seed=7)
    ba_edges = [(u, v) for u, v, _ in ba.edges()]
    base_edges = ba_edges[:-STREAM_EDGES]
    stream = ba_edges[-STREAM_EDGES:]
    base_edges += [
        (NUM_BA_VERTICES + i, NUM_BA_VERTICES + i + 1)
        for i in range(0, NUM_PAD_VERTICES - 1, 2)
    ]
    base = Graph.from_edges(NUM_VERTICES, base_edges, directed=False)
    index = make_builder(base, "hybrid", engine="array").build().index
    return base, FlatLabelStore.from_index(index), stream


def _replay(setting, engine: str):
    base, store, stream = setting
    best = None
    for _ in range(REPS):
        dyn = DynamicHopDoublingIndex.from_store(
            store, graph=base, engine=engine
        )
        t0 = time.process_time()
        for i in range(0, len(stream), BATCH):
            dyn.insert_edges(stream[i : i + BATCH])
        elapsed = time.process_time() - t0
        if best is None or elapsed < best[0]:
            best = (elapsed, dyn)
    return best


@pytest.fixture(scope="module")
def replays(setting):
    array_seconds, array_dyn = _replay(setting, "array")
    dict_seconds, dict_dyn = _replay(setting, "dict")
    return array_seconds, array_dyn, dict_seconds, dict_dyn


def test_engines_bit_identical_and_exact(replays):
    """Both engines repair to the same labels; answers match Dijkstra."""
    _, array_dyn, _, dict_dyn = replays
    array_snap = array_dyn.snapshot()
    dict_snap = dict_dyn.snapshot()
    assert array_snap.out_labels == dict_snap.out_labels
    assert array_snap.in_labels == dict_snap.in_labels
    truth = BidirectionalSearchOracle(array_dyn.graph)
    rng = random.Random(11)
    for _ in range(40):
        s = rng.randrange(NUM_VERTICES)
        t = rng.randrange(NUM_VERTICES)
        want = truth.query(s, t)
        assert array_dyn.query(s, t) == want
        assert dict_dyn.query(s, t) == want


def test_update_speedup_floor_and_export(setting, replays):
    """The acceptance criterion: array repair >= 3x dict repair."""
    base, store, stream = setting
    array_seconds, array_dyn, dict_seconds, _ = replays
    speedup = dict_seconds / array_seconds
    write_bench_json(
        "update_throughput",
        {
            "num_vertices": NUM_VERTICES,
            "num_base_edges": base.num_edges,
            "stream_edges": len(stream),
            "batch": BATCH,
            "reps": REPS,
            "inserted": array_dyn.insertions,
            "total_entries": array_dyn._impl.total_entries(),
            "dict_repair_seconds": round(dict_seconds, 3),
            "array_repair_seconds": round(array_seconds, 3),
            "edges_per_second": round(len(stream) / array_seconds, 1),
            "speedup": round(speedup, 3),
            "floor": MIN_SPEEDUP,
        },
    )
    assert speedup >= MIN_SPEEDUP, (
        f"array repair {array_seconds:.2f}s vs dict repair "
        f"{dict_seconds:.2f}s — {speedup:.2f}x is below the "
        f"{MIN_SPEEDUP}x floor"
    )


def test_per_shard_reconcile(setting, replays, tmp_path):
    """Reconcile rewrites exactly the dirty shards, verified by checksums."""
    from repro.oracle import ShardedLabelStore
    from repro.oracle.sharding import _sha256_file

    base, store, stream = setting
    _, array_dyn, _, _ = replays
    root = tmp_path / "shards"
    ShardedLabelStore.split(store, NUM_SHARDS).save(root)
    before = {
        p.name: p.read_bytes() for p in root.iterdir() if p.name != "manifest.json"
    }
    sharded = ShardedLabelStore.load(root)

    delta = array_dyn.pop_label_delta()
    assert delta.vertices(), "the replay must have changed labels"
    # BA-side insertions cannot touch the disconnected pad components.
    assert max(delta.vertices()) < NUM_BA_VERTICES
    affected = sharded.apply_updates(delta)
    assert affected == sorted({sharded.shard_of(v) for v in delta.vertices()})
    pad_shards = [i for i, (lo, _) in enumerate(sharded.ranges)
                  if lo >= NUM_BA_VERTICES]
    assert pad_shards and not set(affected) & set(pad_shards)

    rewritten = sharded.reconcile(root)
    assert rewritten == affected
    manifest = json.loads((root / "manifest.json").read_text())
    for entry in manifest["shards"]:
        file_path = root / entry["file"]
        assert _sha256_file(file_path) == entry["sha256"]
        if entry["id"] not in rewritten:
            assert file_path.read_bytes() == before[entry["file"]]

    # The reconciled directory serves the post-update answers.
    reloaded = ShardedLabelStore.load(Path(root))
    rng = random.Random(13)
    for _ in range(200):
        s = rng.randrange(NUM_VERTICES)
        t = rng.randrange(NUM_VERTICES)
        assert reloaded.query(s, t) == array_dyn.query(s, t)
    reloaded.close()
    sharded.close()
