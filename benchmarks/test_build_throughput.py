"""Construction-engine benchmark: dict vs array build wall-clock.

PRs 1-2 gated the *serving* side (CSR store >= 2x tuple lists, sharded
batches >= 1.5x single store); this file gates the *construction* side
the same way.  One 10k-vertex Barabasi-Albert graph is indexed with
the paper's hybrid strategy by both build engines and the file
enforces:

* **bit-identical indexes and iteration counters** between the dict
  and array engines, and between ``jobs=1`` and multiprocess builds
  (always);
* the **>= 2x wall-clock floor** for the vectorized array engine over
  the reference dict engine.  The speedup is single-process
  vectorization (measured ~4-5x on CPython 3.11), so the floor holds
  on single-core runners too.

Every run records its measurements in ``BENCH_build_throughput.json``
(uploaded as a CI artifact), so the construction-speed trajectory is
visible per commit.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.bench.export import write_bench_json
from repro.core.hybrid import make_builder
from repro.graphs.generators import ba_graph

np = pytest.importorskip("numpy", reason="the array build engine requires numpy")

NUM_VERTICES = 10_000
#: Acceptance floor for the array engine vs the dict engine.  The
#: vectorized joins measure ~4-5x on CPython 3.10-3.12; 2.0 is the
#: criterion with headroom for machine noise.
MIN_SPEEDUP = 2.0
#: Worker processes for the determinism-at-scale build.
PARALLEL_JOBS = 2

_CORES = os.cpu_count() or 1


@pytest.fixture(scope="module")
def graph():
    return ba_graph(NUM_VERTICES, m=2, seed=1)


def _timed_build(graph, **kwargs):
    t0 = time.perf_counter()
    result = make_builder(graph, "hybrid", **kwargs).build()
    return result, time.perf_counter() - t0


@pytest.fixture(scope="module")
def builds(graph):
    """Both engine builds of the same graph, timed once per session."""
    dict_result, dict_seconds = _timed_build(graph, engine="dict")
    array_result, array_seconds = _timed_build(graph, engine="array")
    return dict_result, dict_seconds, array_result, array_seconds


def _counters(result):
    return [
        (
            it.iteration,
            it.mode,
            it.raw_generated,
            it.distinct_generated,
            it.admitted,
            it.pruned,
            it.survived,
            it.total_entries,
            it.prev_size,
        )
        for it in result.iterations
    ]


def test_engines_bit_identical(builds):
    """The array engine rebuilds the exact index, counter for counter."""
    dict_result, _, array_result, _ = builds
    assert array_result.index.out_labels == dict_result.index.out_labels
    assert array_result.index.in_labels == dict_result.index.in_labels
    assert array_result.index.rank == dict_result.index.rank
    assert _counters(array_result) == _counters(dict_result)


def test_parallel_build_bit_identical(graph, builds):
    """jobs=N at benchmark scale matches the single-process build."""
    _, _, array_result, _ = builds
    jobs = min(PARALLEL_JOBS, max(_CORES, 2))
    parallel_result, _ = _timed_build(graph, engine="array", jobs=jobs)
    assert parallel_result.index.out_labels == array_result.index.out_labels
    assert _counters(parallel_result) == _counters(array_result)


def test_build_speedup_floor_and_export(graph, builds):
    """The acceptance criterion: array engine >= 2x dict wall-clock."""
    dict_result, dict_seconds, array_result, array_seconds = builds
    speedup = dict_seconds / array_seconds
    write_bench_json(
        "build_throughput",
        {
            "num_vertices": NUM_VERTICES,
            "num_edges": graph.num_edges,
            "strategy": "hybrid",
            "iterations": len(array_result.iterations),
            "total_entries": array_result.index.total_entries(),
            "dict_build_seconds": round(dict_seconds, 3),
            "array_build_seconds": round(array_seconds, 3),
            "speedup": round(speedup, 3),
            "floor": MIN_SPEEDUP,
            "cores": _CORES,
        },
    )
    assert speedup >= MIN_SPEEDUP, (
        f"array engine {array_seconds:.2f}s vs dict engine "
        f"{dict_seconds:.2f}s — {speedup:.2f}x is below the "
        f"{MIN_SPEEDUP}x floor"
    )
