"""Table 7 — small hub dimension and hitting-set coverage.

Asserts the paper's Assumption-backing observations on every
quick-profile dataset:

* the average label size is a small constant relative to |V| (the
  O(h|V|) index bound with small h);
* label entries concentrate on top-ranked vertices far more than a
  uniform spread would (the hitting-set skew of Figure 8/Table 7).
"""

from __future__ import annotations

import pytest

from repro.bench.datasets import load_dataset, profile_names
from repro.bench.table7 import run_one

QUICK = profile_names("quick")


@pytest.mark.parametrize("name", QUICK)
def test_table7_row(benchmark, name):
    row = benchmark.pedantic(run_one, args=(name,), rounds=1, iterations=1)
    graph = load_dataset(name)
    n = graph.num_vertices

    # Small hub dimension: average label a tiny fraction of |V|.
    assert row.avg_label < 0.15 * n

    # Coverage skew: 90% of entries covered by far fewer than 90% of
    # vertices; the three thresholds are ordered.
    assert row.top70 <= row.top80 <= row.top90
    assert row.top90 < 0.5

    # Termination: a handful of iterations (Theorems 4/6 at tiny
    # diameters).
    assert 1 <= row.iterations <= 20


def test_coverage_far_above_uniform(benchmark):
    """Top 10% of ranked vertices cover >> 10% of entries."""
    from repro.core.hybrid import HybridBuilder

    graph = load_dataset("skitter")

    def build_and_measure():
        index = HybridBuilder(graph).build().index
        return index.coverage_curve([0.1])[0][1]

    coverage = benchmark.pedantic(build_and_measure, rounds=1, iterations=1)
    assert coverage > 0.4  # uniform would give 0.1
