"""Shared fixtures for the paper-artifact benchmarks.

Index builds are expensive relative to queries, so built artifacts are
cached per session; the `benchmark` fixture then measures the cheap,
repeatable operation (query batches) or a single-shot build via
``benchmark.pedantic``.

Dataset scale is controlled by ``REPRO_SCALE`` (default 1) and method
build budgets by ``REPRO_BUDGET`` (seconds, default 45).
"""

from __future__ import annotations

import pytest

from repro.bench.datasets import load_dataset
from repro.bench.workloads import random_pairs
from repro.core.hybrid import make_builder


@pytest.fixture(scope="session")
def built_indexes():
    """Hybrid HopDb indexes for the quick-profile datasets, built once."""
    cache = {}

    def get(name: str):
        if name not in cache:
            graph = load_dataset(name)
            cache[name] = (graph, make_builder(graph, "hybrid").build())
        return cache[name]

    return get


@pytest.fixture(scope="session")
def query_workload():
    """Deterministic query pairs for a given graph size."""

    def make(num_vertices: int, count: int = 500, seed: int = 77):
        return random_pairs(num_vertices, count, seed=seed)

    return make
