"""Batch-query benchmark: the vectorized kernel vs the scalar probe path.

The tentpole claim of the kernel (:mod:`repro.oracle.kernel`) is that
an entire batch answered with numpy array passes beats the per-pair
Python probe loop by a wide margin while returning bit-identical
distances; the companion claim of binary format v3 is that the same
labels fit in half (in practice about a quarter) of the v2 bytes and
query at full kernel speed straight from the compact arrays.  This
file builds one index over the standard 10k-vertex Barabasi-Albert
graph and enforces:

* **bit-identical answers** between the scalar path, the kernel over
  the v2 store, and the kernel over the mmap-loaded v3 store;
* the **>= 3x kernel throughput floor** over the scalar batch path
  (measured ~3.5-4.5x on CPython 3.10-3.12);
* the **<= 50% v3 file-size ceiling** relative to the v2 file
  (measured ~25% on this index: 2-byte delta pivots + 1-byte
  quantized distances vs 4-byte pivots + 8-byte floats).

Every run records its measurements in ``BENCH_query_throughput.json``
(uploaded as a CI artifact), so the throughput trajectory is visible
per commit.
"""

from __future__ import annotations

import pytest

from repro.baselines.pll import build_pll
from repro.bench.export import write_bench_json
from repro.bench.metrics import interleaved_rates
from repro.bench.workloads import random_pairs
from repro.core.flatstore import FlatLabelStore
from repro.core.quantized import QuantizedLabelStore
from repro.graphs.generators import ba_graph
from repro.oracle import DistanceOracle

np = pytest.importorskip(
    "numpy", reason="the vectorized query kernel requires numpy"
)

NUM_VERTICES = 10_000
NUM_PAIRS = 20_000
#: Acceptance floor for the kernel vs the scalar batch path.  The
#: dense-join kernel measures ~3.5-4.5x; 3.0 is the criterion with
#: headroom for machine noise.
MIN_KERNEL_SPEEDUP = 3.0
#: Acceptance ceiling for the v3 file size relative to v2.
MAX_V3_SIZE_RATIO = 0.5


@pytest.fixture(scope="module")
def assets(tmp_path_factory):
    """One PLL index saved as v2 and v3, plus the serving stores."""
    graph = ba_graph(NUM_VERTICES, m=2, seed=1)
    index, _ = build_pll(graph)
    flat = FlatLabelStore.from_index(index)
    root = tmp_path_factory.mktemp("query-bench")
    v2_path = root / "index.idx2"
    v3_path = root / "index.idx3"
    flat.save(v2_path)
    QuantizedLabelStore.from_flat(flat).save(v3_path)
    quantized = QuantizedLabelStore.load(v3_path, use_mmap=True)
    yield flat, quantized, v2_path, v3_path
    quantized.close()


@pytest.fixture(scope="module")
def pairs():
    return random_pairs(NUM_VERTICES, NUM_PAIRS, seed=77)


def test_kernel_answers_bit_identical(assets, pairs):
    """Scalar path, v2 kernel, and mmapped-v3 kernel agree everywhere."""
    flat, quantized, _, _ = assets
    expected = DistanceOracle(flat, cache_size=0,
                              kernel="off").query_batch(pairs)
    assert DistanceOracle(flat, cache_size=0,
                          kernel="on").query_batch(pairs) == expected
    assert DistanceOracle(quantized, cache_size=0,
                          kernel="on").query_batch(pairs) == expected


def test_scalar_batch_throughput(benchmark, assets, pairs):
    """Baseline: the per-pair dict-probe loop (kernel pinned off)."""
    flat, _, _, _ = assets
    oracle = DistanceOracle(flat, cache_size=0, kernel="off")
    benchmark(lambda: oracle.query_batch(pairs))


def test_kernel_batch_throughput(benchmark, assets, pairs):
    """The vectorized kernel over the v2 CSR arrays."""
    flat, _, _, _ = assets
    oracle = DistanceOracle(flat, cache_size=0, kernel="on")
    result = benchmark(lambda: oracle.query_batch(pairs))
    assert result == [flat.query(s, t) for s, t in pairs]


def test_kernel_v3_batch_throughput(benchmark, assets, pairs):
    """The vectorized kernel straight over the mmapped v3 arrays."""
    _, quantized, _, _ = assets
    oracle = DistanceOracle(quantized, cache_size=0, kernel="on")
    benchmark(lambda: oracle.query_batch(pairs))


def test_v3_size_ceiling(assets):
    """The acceptance criterion: v3 files <= 50% of the v2 bytes."""
    _, quantized, v2_path, v3_path = assets
    ratio = v3_path.stat().st_size / v2_path.stat().st_size
    assert ratio <= MAX_V3_SIZE_RATIO, (
        f"v3 file is {ratio:.1%} of v2 ({v3_path.stat().st_size:,} vs "
        f"{v2_path.stat().st_size:,} bytes) — above the "
        f"{MAX_V3_SIZE_RATIO:.0%} ceiling"
    )
    assert quantized.is_quantized


def test_kernel_throughput_floor_and_export(assets, pairs):
    """The acceptance criterion: kernel >= 3x the scalar batch path.

    Measures all three serving configurations interleaved, asserts the
    floor on the v2 kernel, and exports every rate (plus the on-disk
    size comparison) to ``BENCH_query_throughput.json``.
    """
    flat, quantized, v2_path, v3_path = assets
    scalar = DistanceOracle(flat, cache_size=0, kernel="off")
    kernel_v2 = DistanceOracle(flat, cache_size=0, kernel="on")
    kernel_v3 = DistanceOracle(quantized, cache_size=0, kernel="on")
    scalar_rate, v2_rate, v3_rate = interleaved_rates(
        [scalar.query_batch, kernel_v2.query_batch, kernel_v3.query_batch],
        pairs,
        repeats=7,
    )
    speedup = v2_rate / scalar_rate
    v2_size = v2_path.stat().st_size
    v3_size = v3_path.stat().st_size
    write_bench_json(
        "query_throughput",
        {
            "num_vertices": NUM_VERTICES,
            "num_pairs": NUM_PAIRS,
            "kernel": "numpy",
            "scalar_pairs_per_sec": round(scalar_rate),
            "kernel_v2_pairs_per_sec": round(v2_rate),
            "kernel_v3_pairs_per_sec": round(v3_rate),
            "kernel_speedup": round(speedup, 3),
            "kernel_v3_speedup": round(v3_rate / scalar_rate, 3),
            "floor": MIN_KERNEL_SPEEDUP,
            "v2_file_bytes": v2_size,
            "v3_file_bytes": v3_size,
            "v3_size_ratio": round(v3_size / v2_size, 4),
            "v3_pivot_width": quantized.pivot_width,
            "v3_dist_width": quantized.dist_width,
        },
    )
    assert speedup >= MIN_KERNEL_SPEEDUP, (
        f"kernel {v2_rate:,.0f} pairs/s vs scalar {scalar_rate:,.0f} "
        f"pairs/s — {speedup:.2f}x is below the {MIN_KERNEL_SPEEDUP}x floor"
    )
