"""Figure 9 — scalability on synthetic GLP graphs.

Asserts the paper's headline shape: as the graph grows (in density or
in vertex count) the **average label size stays nearly flat** — the
empirical O(h|V|) index bound — and iteration counts stay tiny.
"""

from __future__ import annotations

from repro.bench.figure9 import run_density_sweep, run_size_sweep


def test_density_sweep_label_flatness(benchmark):
    fig = benchmark.pedantic(
        lambda: run_density_sweep(num_vertices=800, densities=[2, 5, 10, 20]),
        rounds=1,
        iterations=1,
    )
    labels = [p.avg_label for p in fig.points]
    edges = [p.num_edges for p in fig.points]
    # Graph grew ~10x in edges...
    assert edges[-1] > 7 * edges[0]
    # ...but the average label grew far sublinearly (paper: flat).
    assert labels[-1] < 4 * labels[0]
    # And remains a small constant against |V|.
    assert labels[-1] < 0.1 * 800
    # Iterations stay in single digits.
    assert all(p.iterations <= 9 for p in fig.points)


def test_size_sweep_label_flatness(benchmark):
    fig = benchmark.pedantic(
        lambda: run_size_sweep(density=8.0, sizes=[200, 400, 800, 1600]),
        rounds=1,
        iterations=1,
    )
    labels = [p.avg_label for p in fig.points]
    # |V| grew 8x; avg label must grow far slower (paper: flat < 200).
    assert labels[-1] < 3 * labels[0]
    # Index stays linear-ish in |V|: total entries / |V| bounded.
    for p in fig.points:
        assert p.avg_label < 60


def test_graph_size_grows_linearly(benchmark):
    fig = benchmark.pedantic(
        lambda: run_size_sweep(density=8.0, sizes=[250, 500, 1000]),
        rounds=1,
        iterations=1,
    )
    sizes = [p.graph_bytes for p in fig.points]
    assert 1.5 * sizes[0] < sizes[1] < 3 * sizes[0]
    assert 1.5 * sizes[1] < sizes[2] < 3 * sizes[1]
