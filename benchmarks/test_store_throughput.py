"""Storage-backend microbenchmark: tuple lists vs CSR flat arrays.

The tentpole claim of the flat store is that the same 2-hop labels
answer queries faster when laid out as contiguous arrays and evaluated
by dict-probe instead of a pure-Python merge join.  This file measures
both backends on the same index over a 10k-vertex Barabasi-Albert
graph and asserts the headline ratio: the CSR backend sustains at
least 2x the pairs/sec of the tuple-list store, and the oracle's
batched path at least matches it — all while returning bit-identical
distances.

The index is built with the PLL baseline (canonical 2-hop labeling —
identical entries to the HopDb builders on unweighted graphs, see
``test_index_size_ordering`` — and ~8x faster to construct, which
keeps this file quick).
"""

from __future__ import annotations

import pytest

from repro.baselines.pll import build_pll
from repro.bench.metrics import interleaved_rates
from repro.bench.workloads import random_pairs
from repro.core.flatstore import FlatLabelStore
from repro.graphs.generators import ba_graph
from repro.oracle import DistanceOracle

NUM_VERTICES = 10_000
NUM_PAIRS = 2_000
#: Acceptance floor for CSR vs tuple-list single-pair throughput.  The
#: dict-probe evaluation measures ~2.5x on CPython 3.10-3.12; 2.0 is
#: the criterion with headroom for machine noise.
MIN_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def stores():
    graph = ba_graph(NUM_VERTICES, m=2, seed=1)
    index, _ = build_pll(graph)
    return index, FlatLabelStore.from_index(index)


@pytest.fixture(scope="module")
def pairs():
    return random_pairs(NUM_VERTICES, NUM_PAIRS, seed=77)


def _pair_loop(query):
    """Wrap a per-pair callable as a whole-workload run for the timer."""

    def run(pairs):
        for s, t in pairs:
            query(s, t)

    return run


def test_list_store_throughput(benchmark, stores, pairs):
    """Baseline: merge join over per-vertex tuple lists."""
    index, _ = stores
    query = index.query

    def run():
        for s, t in pairs:
            query(s, t)

    benchmark(run)
    micros = benchmark.stats.stats.mean * 1e6 / len(pairs)
    assert micros < 1000.0


def test_flat_store_throughput(benchmark, stores, pairs):
    """CSR flat arrays with dict-probe evaluation."""
    _, flat = stores
    query = flat.query

    def run():
        for s, t in pairs:
            query(s, t)

    benchmark(run)
    micros = benchmark.stats.stats.mean * 1e6 / len(pairs)
    assert micros < 1000.0


def test_oracle_batch_throughput(benchmark, stores, pairs):
    """The serving path: grouped merge joins through the oracle."""
    _, flat = stores
    oracle = DistanceOracle(flat, cache_size=0)

    result = benchmark(lambda: oracle.query_batch(pairs))
    index, _ = stores
    assert result == [index.query(s, t) for s, t in pairs]


def test_flat_store_speedup_floor(stores, pairs):
    """The acceptance criterion: CSR >= 2x tuple-list pairs/sec."""
    index, flat = stores
    list_rate, flat_rate = interleaved_rates(
        [_pair_loop(index.query), _pair_loop(flat.query)], pairs, repeats=9
    )
    assert flat_rate >= MIN_SPEEDUP * list_rate, (
        f"flat store {flat_rate:,.0f} pairs/s vs list store "
        f"{list_rate:,.0f} pairs/s — below the {MIN_SPEEDUP}x floor"
    )


def test_backends_bit_identical(stores, pairs):
    """Both backends and the batch path answer every pair identically."""
    index, flat = stores
    expected = [index.query(s, t) for s, t in pairs]
    assert [flat.query(s, t) for s, t in pairs] == expected
    oracle = DistanceOracle(flat)
    assert oracle.query_batch(pairs) == expected
