"""Serving-tier benchmark: shm fan-out and admission batching floors.

ISSUE 7's serving tier makes two performance claims, and this file
gates both:

* **Shared-memory fan-out >= 1.5x the inline kernel.**  The
  :class:`~repro.serve.shm.SharedMemoryFanout` forks workers that
  inherit the label arrays copy-on-write and exchange only span
  indices through shared mmaps — no pickling of pairs or distances.
  On a machine with >= 4 cores that must beat one process running the
  same vectorized kernel inline by at least 1.5x, with bit-identical
  answers.  Below 4 cores the floor is skipped with a printed reason
  (forked workers on too few cores just add dispatch overhead — the
  bit-identity assertions still run), but the measured rates are
  exported regardless.

* **Batched async serving >= 5x sequential per-request round trips.**
  The serving tier exists so clients can submit whole query sets and
  the :class:`~repro.serve.AdmissionBatcher` can coalesce concurrent
  sets into kernel-sized batches.  The baseline is the protocol it
  replaces: one pair per request, each awaited before the next is
  sent — what a naive client does against a classic RPC endpoint.
  With 64 concurrent clients submitting query sets, the served
  pairs/sec must beat that baseline by at least 5x.  This floor is
  about batching, not cores, so it is enforced everywhere.

Every run records its measurements in ``BENCH_serve_throughput.json``
(uploaded as a CI artifact), so the throughput trajectory stays
visible per commit even where a floor is skipped.
"""

from __future__ import annotations

import asyncio
import gc
import os
import sys
import time

import pytest

from repro.baselines.pll import build_pll
from repro.bench.export import write_bench_json
from repro.bench.metrics import interleaved_rates
from repro.bench.workloads import random_pairs
from repro.core.flatstore import FlatLabelStore
from repro.graphs.generators import ba_graph
from repro.oracle import DistanceOracle, ShardedLabelStore
from repro.serve import DistanceClient, DistanceServer, shm
from repro.serve.shm import SharedMemoryFanout

NUM_VERTICES = 10_000
#: Pairs per fan-out batch: large enough that span dispatch to the
#: forked workers is amortised against real kernel work.
NUM_PAIRS = 20_000
NUM_SHARDS = 4
#: Acceptance floor for the shm fan-out vs the inline kernel, gated
#: on machines with >= 4 cores.
MIN_FANOUT_SPEEDUP = 1.5
FANOUT_CORES_REQUIRED = 4
#: The async-serving workload: 64 concurrent clients submitting
#: query sets, vs single-pair round trips awaited one at a time.
NUM_CLIENTS = 64
PAIRS_PER_REQUEST = 16
REQUESTS_PER_CLIENT = 4
#: Single-pair round trips timed for the sequential baseline; rates
#: are per pair, so the baseline sample can be smaller than the
#: concurrent workload without biasing the ratio.
SEQUENTIAL_SAMPLE = 512
#: Acceptance floor for batched async serving (pairs/sec) over the
#: sequential per-request baseline.
MIN_BATCHING_SPEEDUP = 5.0

_CORES = os.cpu_count() or 1


@pytest.fixture(scope="module")
def flat():
    graph = ba_graph(NUM_VERTICES, m=2, seed=1)
    index, _ = build_pll(graph)
    return FlatLabelStore.from_index(index)


@pytest.fixture(scope="module")
def pairs():
    return random_pairs(NUM_VERTICES, NUM_PAIRS, seed=83)


@pytest.fixture(scope="module")
def expected(flat, pairs):
    return [flat.query(s, t) for s, t in pairs]


def _measure_fanout(flat, pairs):
    """(inline_rate, fanout_rate, workers) or None when shm is out."""
    if not shm.available():
        return None
    store = ShardedLabelStore.split(flat, NUM_SHARDS)
    inline = DistanceOracle(flat, cache_size=0)
    fanout = SharedMemoryFanout(
        store, workers=max(1, min(NUM_SHARDS, _CORES))
    )
    try:
        fanout.warmup()
        inline_rate, fanout_rate = interleaved_rates(
            [inline.query_batch, fanout.query_batch], pairs
        )
        return inline_rate, fanout_rate, fanout.workers
    finally:
        fanout.close()
        inline.close()
        store.close()


def _requests(pairs):
    """Slice the workload into the per-client query-set schedule."""
    total = NUM_CLIENTS * REQUESTS_PER_CLIENT * PAIRS_PER_REQUEST
    flat_pairs = (pairs * (total // len(pairs) + 1))[:total]
    return [
        flat_pairs[k : k + PAIRS_PER_REQUEST]
        for k in range(0, total, PAIRS_PER_REQUEST)
    ]


async def _sequential_seconds(host, port, pairs):
    """The baseline: one pair per request, each awaited in turn."""
    client = await DistanceClient.connect(host, port)
    try:
        t0 = time.perf_counter()
        for pair in pairs:
            await client.query([pair])
        return time.perf_counter() - t0
    finally:
        await client.aclose()


async def _concurrent_seconds(host, port, requests):
    """64 clients in flight at once; each awaits its own replies."""
    clients = [
        await DistanceClient.connect(host, port) for _ in range(NUM_CLIENTS)
    ]

    async def drive(client, schedule):
        out = []
        for request in schedule:
            out.extend(await client.query(request))
        return out

    try:
        t0 = time.perf_counter()
        await asyncio.gather(
            *[
                drive(client, requests[i::NUM_CLIENTS])
                for i, client in enumerate(clients)
            ]
        )
        return time.perf_counter() - t0
    finally:
        for client in clients:
            await client.aclose()


def _measure_serving(flat, pairs):
    """Best-of-3 pairs/sec for each mode, rounds interleaved."""
    requests = _requests(pairs)
    sample = pairs[:SEQUENTIAL_SAMPLE]

    async def run():
        oracle = DistanceOracle(flat, cache_size=0)
        server = DistanceServer(oracle)
        host, port = await server.start()
        best_seq = best_conc = float("inf")
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            # One warm pass of each shape, then interleaved timed rounds.
            await _sequential_seconds(host, port, sample[:64])
            await _concurrent_seconds(host, port, requests)
            for _ in range(3):
                best_seq = min(
                    best_seq,
                    await _sequential_seconds(host, port, sample),
                )
                best_conc = min(
                    best_conc,
                    await _concurrent_seconds(host, port, requests),
                )
            return (
                len(sample) / best_seq,
                len(requests) * PAIRS_PER_REQUEST / best_conc,
                len(requests) / best_conc,
            )
        finally:
            if gc_was_enabled:
                gc.enable()
            await server.aclose()
            oracle.close()

    return asyncio.run(run())


@pytest.fixture(scope="module")
def measurements(flat, pairs):
    """Run every measurement once, export the JSON, share the numbers."""
    fanout = _measure_fanout(flat, pairs)
    seq_rate, conc_rate, conc_req_rate = _measure_serving(flat, pairs)
    record = {
        "num_vertices": NUM_VERTICES,
        "num_pairs": NUM_PAIRS,
        "num_shards": NUM_SHARDS,
        "cores": _CORES,
        "num_clients": NUM_CLIENTS,
        "pairs_per_request": PAIRS_PER_REQUEST,
        "requests": NUM_CLIENTS * REQUESTS_PER_CLIENT,
        "sequential_pairs_per_sec": round(seq_rate),
        "batched_pairs_per_sec": round(conc_rate),
        "batched_requests_per_sec": round(conc_req_rate),
        "batching_speedup": round(conc_rate / seq_rate, 3),
        "batching_floor": MIN_BATCHING_SPEEDUP,
        "fanout_floor": MIN_FANOUT_SPEEDUP,
        "fanout_floor_enforced": (
            fanout is not None and _CORES >= FANOUT_CORES_REQUIRED
        ),
    }
    if fanout is not None:
        inline_rate, fanout_rate, workers = fanout
        record.update(
            {
                "fanout_workers": workers,
                "inline_kernel_pairs_per_sec": round(inline_rate),
                "shm_fanout_pairs_per_sec": round(fanout_rate),
                "fanout_speedup": round(fanout_rate / inline_rate, 3),
            }
        )
    write_bench_json("serve_throughput", record)
    return record


def test_fanout_answers_bit_identical(flat, pairs, expected):
    """The shm fan-out path agrees with the scalar store everywhere."""
    if not shm.available():
        pytest.skip("shared-memory fan-out unavailable (no numpy/fork)")
    store = ShardedLabelStore.split(flat, NUM_SHARDS)
    with SharedMemoryFanout(store, workers=2) as fanout:
        assert fanout.query_batch(pairs) == expected
    store.close()


def test_shm_fanout_floor(measurements):
    """The acceptance criterion: fan-out >= 1.5x inline on >= 4 cores."""
    if "fanout_speedup" not in measurements:
        reason = (
            "SKIP: shared-memory fan-out unavailable (no numpy or no "
            "fork start method); rates not measured"
        )
        print(reason, file=sys.stderr)
        pytest.skip(reason)
    if not measurements["fanout_floor_enforced"]:
        reason = (
            f"SKIP: only {_CORES} core(s) — the >= "
            f"{MIN_FANOUT_SPEEDUP}x shm fan-out floor needs >= "
            f"{FANOUT_CORES_REQUIRED} cores (forked workers without "
            "real parallelism only add dispatch overhead); rates were "
            "still measured and exported to BENCH_serve_throughput.json"
        )
        print(reason, file=sys.stderr)
        pytest.skip(reason)
    assert measurements["fanout_speedup"] >= MIN_FANOUT_SPEEDUP, (
        f"shm fan-out {measurements['shm_fanout_pairs_per_sec']:,} "
        f"pairs/s vs inline kernel "
        f"{measurements['inline_kernel_pairs_per_sec']:,} pairs/s — "
        f"{measurements['fanout_speedup']:.2f}x is below the "
        f"{MIN_FANOUT_SPEEDUP}x floor"
    )


def test_async_batching_floor(measurements):
    """The acceptance criterion: batched serving >= 5x per-request.

    Both sides pay the same JSON-lines protocol and the same kernel;
    the batched side wins exactly as much as query sets, admission
    coalescing, and pipelined IO amortise — so this floor holds on
    one core.
    """
    assert measurements["batching_speedup"] >= MIN_BATCHING_SPEEDUP, (
        f"batched serving {measurements['batched_pairs_per_sec']:,} "
        f"pairs/s vs sequential per-request "
        f"{measurements['sequential_pairs_per_sec']:,} pairs/s — "
        f"{measurements['batching_speedup']:.2f}x is below the "
        f"{MIN_BATCHING_SPEEDUP}x floor"
    )
