"""HCL-lite: a highway-cover stand-in for Highway-Centric Labeling.

Table 6 compares against HCL (Jin, Ruan, Xiang, Lee — SIGMOD 2012).
The original builds labels around a spanning-tree "highway" with
bipartite set-cover optimizations; the authors' binary was used in the
paper, and the only dataset it finished within 24 hours was Enron.

**Substitution (recorded in DESIGN.md):** we implement the same
*architectural idea* — a small highway of high-degree landmarks whose
distances are fully indexed, combined with a landmark-avoiding local
search for exactness:

* ``d(h, v)`` and ``d(v, h)`` are precomputed for every landmark ``h``
  (one BFS/Dijkstra per landmark and direction);
* a query takes ``min`` of the best via-landmark distance and a
  bidirectional search that *never expands landmark vertices* — any
  path through a landmark is already covered by the labels, so pruning
  them keeps the search exact while letting the highway do the heavy
  lifting.

This keeps HCL's defining trade-off (tiny index, query cost dominated
by residual search) and reproduces its Table 6 behaviour: far slower
queries than any label-only method, and indexing/query costs that blow
up on larger graphs.
"""

from __future__ import annotations


from repro.graphs.digraph import Graph
from repro.graphs.traversal import INF, bfs_distances, dijkstra_distances
from repro.utils.timer import Timer

DEFAULT_NUM_LANDMARKS = 16


class HCLLiteOracle:
    """Landmark highway labels plus landmark-avoiding exact search."""

    name = "hcl-lite"

    def __init__(
        self,
        graph: Graph,
        landmarks: list[int],
        dist_from: list[list[float]],
        dist_to: list[list[float]],
        build_seconds: float,
    ) -> None:
        self.graph = graph
        self.landmarks = landmarks
        self.landmark_set = set(landmarks)
        self.dist_from = dist_from  # dist_from[i][v] = d(landmark_i, v)
        self.dist_to = dist_to      # dist_to[i][v]   = d(v, landmark_i)
        self.build_seconds = build_seconds

    def query(self, s: int, t: int) -> float:
        """Exact ``dist(s, t)``: highway estimate min local search."""
        if s == t:
            return 0.0
        best = INF
        for i in range(len(self.landmarks)):
            d = self.dist_to[i][s] + self.dist_from[i][t]
            if d < best:
                best = d
        local = self._landmark_free_search(s, t, best)
        return local if local < best else best

    def _landmark_free_search(self, s: int, t: int, bound: float) -> float:
        """Bidirectional search that never expands landmarks.

        Any ``s -> t`` path through a landmark has length at least the
        highway estimate, so restricting the search to landmark-free
        paths (and cutting it off at ``bound``) preserves exactness.
        """
        if s in self.landmark_set or t in self.landmark_set:
            # The highway labels already cover every path from/to a
            # landmark endpoint exactly.
            return INF
        if self.graph.weighted:
            return self._landmark_free_dijkstra(s, t, bound)
        return self._landmark_free_bfs(s, t, bound)

    def _landmark_free_bfs(self, s: int, t: int, bound: float) -> float:
        graph = self.graph
        landmark_set = self.landmark_set
        dist_f = {s: 0.0}
        dist_b = {t: 0.0}
        frontier_f = [s]
        frontier_b = [t]
        depth_f = depth_b = 0.0
        best = INF
        while frontier_f and frontier_b:
            if min(best, bound) <= depth_f + depth_b:
                break
            if len(frontier_f) <= len(frontier_b):
                nxt = []
                for u in frontier_f:
                    for v in graph.out_neighbors(u):
                        if v in landmark_set or v in dist_f:
                            continue
                        dist_f[v] = dist_f[u] + 1.0
                        nxt.append(v)
                        if v in dist_b:
                            best = min(best, dist_f[v] + dist_b[v])
                frontier_f = nxt
                depth_f += 1.0
            else:
                nxt = []
                for u in frontier_b:
                    for v in graph.in_neighbors(u):
                        if v in landmark_set or v in dist_b:
                            continue
                        dist_b[v] = dist_b[u] + 1.0
                        nxt.append(v)
                        if v in dist_f:
                            best = min(best, dist_f[v] + dist_b[v])
                frontier_b = nxt
                depth_b += 1.0
        return best

    def _landmark_free_dijkstra(self, s: int, t: int, bound: float) -> float:
        import heapq

        graph = self.graph
        landmark_set = self.landmark_set
        dist_f: dict[int, float] = {s: 0.0}
        dist_b: dict[int, float] = {t: 0.0}
        heap_f = [(0.0, s)]
        heap_b = [(0.0, t)]
        settled_f: set[int] = set()
        settled_b: set[int] = set()
        best = INF

        def expand(heap, dist_here, dist_there, settled, edges) -> None:
            nonlocal best
            d, u = heapq.heappop(heap)
            if u in settled:
                return
            settled.add(u)
            if u in dist_there:
                best = min(best, d + dist_there[u])
            for v, w in edges(u):
                if v in landmark_set:
                    continue
                nd = d + w
                if nd < dist_here.get(v, INF):
                    dist_here[v] = nd
                    heapq.heappush(heap, (nd, v))
                if v in dist_there:
                    best = min(best, nd + dist_there[v])

        while heap_f and heap_b:
            if min(best, bound) <= heap_f[0][0] + heap_b[0][0]:
                break
            if heap_f[0][0] <= heap_b[0][0]:
                expand(heap_f, dist_f, dist_b, settled_f, graph.out_edges)
            else:
                expand(heap_b, dist_b, dist_f, settled_b, graph.in_edges)
        return best

    def size_in_bytes(self) -> int:
        """Two distance columns per landmark, 5 bytes per cell (paper
        convention: 32-bit vertex implicit by position + 8-bit distance
        would be 1; we count 5 to match label-entry accounting)."""
        return 2 * len(self.landmarks) * self.graph.num_vertices * 5


def build_hcl(
    graph: Graph, num_landmarks: int = DEFAULT_NUM_LANDMARKS
) -> HCLLiteOracle:
    """Build the HCL-lite oracle with the top-degree landmarks."""
    if num_landmarks < 1:
        raise ValueError(f"num_landmarks must be >= 1, got {num_landmarks}")
    timer = Timer().start()
    n = graph.num_vertices
    order = sorted(range(n), key=lambda v: (-graph.degree(v), v))
    landmarks = order[: min(num_landmarks, n)]
    sssp = dijkstra_distances if graph.weighted else bfs_distances
    dist_from = [sssp(graph, h) for h in landmarks]
    if graph.directed:
        dist_to = [sssp(graph, h, reverse=True) for h in landmarks]
    else:
        dist_to = dist_from
    return HCLLiteOracle(graph, landmarks, dist_from, dist_to, timer.stop())
