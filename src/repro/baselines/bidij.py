"""BIDIJ — the index-free online baseline of Table 6.

Bidirectional BFS for unweighted graphs, bidirectional Dijkstra for
weighted ones.  No preprocessing, zero index bytes; each query pays the
full search cost, which is what the paper's "Memory query time" column
contrasts against label lookups (e.g. 24127 us vs 0.98 us on CatDog).
"""

from __future__ import annotations

from repro.graphs.digraph import Graph
from repro.graphs.traversal import bidirectional_bfs, bidirectional_dijkstra


class BidirectionalSearchOracle:
    """Answers queries by bidirectional search over the raw graph."""

    name = "bidij"

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.build_seconds = 0.0  # no preprocessing at all

    def query(self, s: int, t: int) -> float:
        """Exact ``dist(s, t)`` by online search."""
        if self.graph.weighted:
            return bidirectional_dijkstra(self.graph, s, t)
        return bidirectional_bfs(self.graph, s, t)

    def size_in_bytes(self) -> int:
        """No index is stored; only the graph itself is needed."""
        return 0
