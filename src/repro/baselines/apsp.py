"""Ground-truth all-pairs shortest paths for the test suite.

Brute-force BFS/Dijkstra from every vertex.  Quadratic memory — meant
for the small graphs that correctness and property tests use, never for
benchmarks.
"""

from __future__ import annotations

from repro.graphs.digraph import Graph
from repro.graphs.traversal import INF, bfs_distances, dijkstra_distances


class APSPOracle:
    """Exact distance oracle via one full SSSP per vertex."""

    name = "apsp"

    def __init__(self, graph: Graph) -> None:
        sssp = dijkstra_distances if graph.weighted else bfs_distances
        self._dist = [sssp(graph, s) for s in graph.vertices()]
        self.n = graph.num_vertices

    def query(self, s: int, t: int) -> float:
        """Exact ``dist(s, t)``."""
        return self._dist[s][t]

    def distances_from(self, s: int) -> list[float]:
        """The full distance row of ``s``."""
        return list(self._dist[s])

    def size_in_bytes(self) -> int:
        """The pairwise table the paper calls impractical: 8B per cell."""
        return self.n * self.n * 8

    def hop_diameter(self) -> int:
        """Exact hop diameter (for unweighted graphs: the diameter)."""
        best = 0.0
        for row in self._dist:
            for d in row:
                if d != INF and d > best:
                    best = d
        return int(best)

    def all_pairs(self):
        """Yield ``(s, t, dist)`` over every ordered pair."""
        for s in range(self.n):
            row = self._dist[s]
            for t in range(self.n):
                yield s, t, row[t]
