"""Pruned Landmark Labeling (Akiba, Iwata, Yoshida — SIGMOD 2013).

The strongest in-memory competitor in the paper's Table 6.  PLL builds
a canonical 2-hop labeling by running one pruned BFS (Dijkstra when
weighted) per vertex in rank order: when the search from root ``v``
reaches ``u`` at distance ``d`` but the labels built so far already
certify ``dist(v, u) <= d``, the search is pruned at ``u``.

The resulting labels form the *canonical labeling* for the given order
(Section 2.1 of the hop-doubling paper), which is also the paper's
baseline for label size: a useful cross-check is that Hop-Doubling /
Stepping with pruning produce exactly this index (our test suite
asserts it on unweighted graphs).

The output reuses :class:`repro.core.labels.LabelIndex`, so querying,
statistics and serialization are shared with the main algorithm.

Why the paper still wins: PLL requires the whole index *and* graph in
RAM during construction and runs |V| BFS traversals, neither of which
scales to disk-resident graphs — the motivation of Section 1.  Those
constraints do not show in this in-memory reproduction, but the
I/O-simulation benches (Table 6's indexing-time columns) expose them.
"""

from __future__ import annotations

import heapq
from collections import deque

from repro.core.labels import INF, LabelIndex
from repro.core.ranking import Ranking, make_ranking
from repro.graphs.digraph import Graph
from repro.utils.timer import Timer


def _query_partial(
    la: dict[int, float], lb: dict[int, float]
) -> float:
    """Distance bound from two partial label dictionaries."""
    if len(la) > len(lb):
        la, lb = lb, la
    best = INF
    for w, d1 in la.items():
        d2 = lb.get(w)
        if d2 is not None:
            d = d1 + d2
            if d < best:
                best = d
    return best


def _pruned_bfs(
    graph: Graph,
    root: int,
    root_label: dict[int, float],
    target_labels: list[dict[int, float]],
    reverse: bool,
) -> None:
    """One pruned BFS from ``root``; labels reached vertices with ``root``.

    ``root_label`` is the root's own (already complete for higher
    ranks) label on the search side; ``target_labels`` are the labels
    on the opposite side, which both serve the pruning test and receive
    the new entries.
    """
    neighbors = graph.in_neighbors if reverse else graph.out_neighbors
    dist: dict[int, float] = {root: 0.0}
    queue = deque([root])
    while queue:
        u = queue.popleft()
        d = dist[u]
        if u != root:
            if _query_partial(root_label, target_labels[u]) <= d:
                continue  # pruned: already covered by higher-ranked pivots
            target_labels[u][root] = d
        for v in neighbors(u):
            if v not in dist:
                dist[v] = d + 1.0
                queue.append(v)


def _pruned_dijkstra(
    graph: Graph,
    root: int,
    root_label: dict[int, float],
    target_labels: list[dict[int, float]],
    reverse: bool,
) -> None:
    """Weighted variant of :func:`_pruned_bfs`."""
    edges = graph.in_edges if reverse else graph.out_edges
    dist: dict[int, float] = {root: 0.0}
    heap: list[tuple[float, int]] = [(0.0, root)]
    done: set[int] = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u in done:
            continue
        done.add(u)
        if u != root:
            if _query_partial(root_label, target_labels[u]) <= d:
                continue
            target_labels[u][root] = d
        for v, w in edges(u):
            nd = d + w
            if nd < dist.get(v, INF):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))


def build_pll(
    graph: Graph, ranking: Ranking | str = "auto"
) -> tuple[LabelIndex, float]:
    """Build the PLL index; returns ``(index, build_seconds)``.

    Roots are processed in rank order (highest priority first), which
    makes the result the canonical labeling of that order.
    """
    if isinstance(ranking, str):
        ranking = make_ranking(graph, ranking)
    n = graph.num_vertices
    timer = Timer().start()

    out_lab: list[dict[int, float]] = [{v: 0.0} for v in range(n)]
    if graph.directed:
        in_lab: list[dict[int, float]] = [{v: 0.0} for v in range(n)]
    else:
        in_lab = out_lab

    search = _pruned_dijkstra if graph.weighted else _pruned_bfs
    for root in ranking.vertex_at:
        # Forward search labels Lin of reached vertices: entries
        # (root -> u) answer queries through pivot `root`.
        search(graph, root, out_lab[root], in_lab, reverse=False)
        if graph.directed:
            # Backward search labels Lout of vertices that reach root.
            search(graph, root, in_lab[root], out_lab, reverse=True)

    elapsed = timer.stop()
    out_sorted = [sorted(lab.items()) for lab in out_lab]
    if graph.directed:
        in_sorted = [sorted(lab.items()) for lab in in_lab]
    else:
        in_sorted = out_sorted
    index = LabelIndex(
        n, graph.directed, out_sorted, in_sorted, list(ranking.rank_of)
    )
    return index, elapsed
