"""Baselines the paper compares against in Table 6.

Every baseline exposes the small ``DistanceOracle`` duck-type used by
the benchmark harness:

* ``name`` — row label for the tables;
* ``query(s, t) -> float`` — exact distance, ``inf`` if unreachable;
* ``size_in_bytes() -> int`` — index footprint (0 for online search).

Implemented from scratch:

* :mod:`repro.baselines.pll` — Pruned Landmark Labeling (Akiba et al.,
  SIGMOD 2013);
* :mod:`repro.baselines.islabel` — IS-Label (Fu et al., PVLDB 2013),
  full-index and residual-graph modes;
* :mod:`repro.baselines.hcl` — HCL-lite, a highway-cover stand-in for
  Highway-Centric Labeling (see DESIGN.md substitutions);
* :mod:`repro.baselines.bidij` — index-free bidirectional BFS/Dijkstra;
* :mod:`repro.baselines.apsp` — ground-truth all-pairs oracle for tests.
"""

from repro.baselines.apsp import APSPOracle
from repro.baselines.bidij import BidirectionalSearchOracle
from repro.baselines.hcl import HCLLiteOracle, build_hcl
from repro.baselines.islabel import ISLabelIndex, build_islabel
from repro.baselines.pll import build_pll

__all__ = [
    "APSPOracle",
    "BidirectionalSearchOracle",
    "HCLLiteOracle",
    "build_hcl",
    "ISLabelIndex",
    "build_islabel",
    "build_pll",
]
