"""IS-Label (Fu, Wu, Cheng, Wong — PVLDB 2013), reimplemented.

The only prior external-memory-capable competitor in the paper.  The
scheme:

1. **Hierarchy construction** — repeatedly extract an *independent
   set* ``I_i`` of low-degree vertices from the current graph ``G_i``;
   the remaining graph ``G_{i+1}`` receives *augmenting edges* between
   the neighbours of each removed vertex so that pairwise distances
   among surviving vertices are preserved.
2. **Top-down labels** — a vertex removed at level ``i`` aggregates the
   labels of its (strictly higher-level) neighbours in ``G_i``; the
   topmost residual vertices seed the recursion.
3. **Query** — common-pivot lookup over ``Lout(s)``/``Lin(t)``; in
   *partial* mode (``max_levels`` set) a residual graph ``G_k`` is kept
   and the lookup is complemented by a bidirectional Dijkstra over
   ``G_k`` seeded from the labels, exactly as in the original paper
   (the paper under reproduction criticizes this mode for not being a
   pure index).

The known weakness Table 6 exhibits — augmented graphs and labels that
grow quickly because the pruning is much weaker than hop-doubling's —
is faithfully reproduced: we only deduplicate per-pivot minima plus an
optional dominance prune.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.core.labels import INF, LabelIndex, merge_join_distance
from repro.graphs.digraph import Graph
from repro.utils.timer import Timer


@dataclass
class _WorkGraph:
    """Mutable adjacency used while peeling the hierarchy."""

    out: list[dict[int, float]]
    inn: list[dict[int, float]]

    @classmethod
    def from_graph(cls, graph: Graph) -> "_WorkGraph":
        n = graph.num_vertices
        out: list[dict[int, float]] = [{} for _ in range(n)]
        inn: list[dict[int, float]] = [{} for _ in range(n)]
        for u, v, w in graph.edges():
            if u == v:
                continue
            if w < out[u].get(v, INF):
                out[u][v] = w
                inn[v][u] = w
            if not graph.directed and w < out[v].get(u, INF):
                out[v][u] = w
                inn[u][v] = w
        return cls(out, inn)

    def degree(self, v: int) -> int:
        return len(self.out[v]) + len(self.inn[v])

    def remove_vertex(self, v: int, augment: bool = True) -> None:
        """Delete ``v``, adding distance-preserving shortcut edges."""
        in_edges = list(self.inn[v].items())
        out_edges = list(self.out[v].items())
        if augment:
            for a, w1 in in_edges:
                for b, w2 in out_edges:
                    if a == b:
                        continue
                    w = w1 + w2
                    if w < self.out[a].get(b, INF):
                        self.out[a][b] = w
                        self.inn[b][a] = w
        for a, _ in in_edges:
            del self.out[a][v]
        for b, _ in out_edges:
            del self.inn[b][v]
        self.out[v] = {}
        self.inn[v] = {}


class ISLabelIndex:
    """The queryable product of :func:`build_islabel`."""

    name = "is-label"

    def __init__(
        self,
        labels: LabelIndex,
        residual_out: list[dict[int, float]] | None,
        residual_in: list[dict[int, float]] | None,
        residual_vertices: set[int],
        levels: list[int],
        build_seconds: float,
    ) -> None:
        self.labels = labels
        self.residual_out = residual_out
        self.residual_in = residual_in
        self.residual_vertices = residual_vertices
        self.levels = levels
        self.build_seconds = build_seconds

    @property
    def is_full_index(self) -> bool:
        """Whether the hierarchy was peeled to the end (no residual)."""
        return not self.residual_vertices

    def query(self, s: int, t: int) -> float:
        """Exact ``dist(s, t)`` via labels (+ residual search if partial)."""
        if s == t:
            return 0.0
        best = merge_join_distance(
            self.labels.out_labels[s], self.labels.in_labels[t]
        )
        if not self.residual_vertices:
            return best
        return min(best, self._residual_search(s, t, best))

    def _residual_search(self, s: int, t: int, best: float) -> float:
        """Bidirectional Dijkstra over the residual graph, label-seeded.

        Forward distances start from ``Lout(s)`` entries whose pivot
        survives in ``G_k``; backward from ``Lin(t)``.  Any meeting
        vertex yields a candidate distance.
        """
        fwd: dict[int, float] = {}
        for p, d in self.labels.out_labels[s]:
            if p in self.residual_vertices or p == s:
                if p in self.residual_vertices:
                    fwd[p] = min(fwd.get(p, INF), d)
        if s in self.residual_vertices:
            fwd[s] = 0.0
        bwd: dict[int, float] = {}
        for p, d in self.labels.in_labels[t]:
            if p in self.residual_vertices:
                bwd[p] = min(bwd.get(p, INF), d)
        if t in self.residual_vertices:
            bwd[t] = 0.0
        if not fwd or not bwd:
            return INF

        def dijkstra(
            seeds: dict[int, float], adj: list[dict[int, float]]
        ) -> dict[int, float]:
            dist = dict(seeds)
            heap = [(d, v) for v, d in seeds.items()]
            heapq.heapify(heap)
            while heap:
                d, u = heapq.heappop(heap)
                if d > dist.get(u, INF):
                    continue
                for v, w in adj[u].items():
                    nd = d + w
                    if nd < dist.get(v, INF):
                        dist[v] = nd
                        heapq.heappush(heap, (nd, v))
            return dist

        dist_f = dijkstra(fwd, self.residual_out)
        dist_b = dijkstra(bwd, self.residual_in)
        for v, df in dist_f.items():
            db = dist_b.get(v)
            if db is not None and df + db < best:
                best = df + db
        return best

    def size_in_bytes(self) -> int:
        """Label bytes plus residual-graph bytes (the paper's criticism:
        the residual must be loaded before querying, so it counts)."""
        total = self.labels.size_in_bytes()
        if self.residual_out is not None:
            arcs = sum(len(d) for d in self.residual_out)
            total += arcs * 8
        return total


def _greedy_independent_set(
    work: _WorkGraph, alive: list[int]
) -> list[int]:
    """Lowest-degree-first greedy independent set of the current graph."""
    chosen: list[int] = []
    blocked: set[int] = set()
    for v in sorted(alive, key=lambda v: (work.degree(v), v)):
        if v in blocked:
            continue
        chosen.append(v)
        blocked.add(v)
        blocked.update(work.out[v])
        blocked.update(work.inn[v])
    return chosen


def build_islabel(
    graph: Graph,
    max_levels: int | None = None,
    prune: bool = True,
) -> ISLabelIndex:
    """Build an IS-Label index.

    ``max_levels=None`` peels the hierarchy completely (the "complete
    2-hop indexing" configuration of Table 6); an integer keeps a
    residual graph after that many levels (the original paper's
    memory-bounding trick).  ``prune`` applies the dominance check when
    merging neighbour labels (the original applies a comparable one).
    """
    timer = Timer().start()
    n = graph.num_vertices
    work = _WorkGraph.from_graph(graph)

    # --- Phase 1: peel independent sets -------------------------------
    level_of = [0] * n  # 0 = residual / topmost
    levels_done = 0
    alive = list(range(n))
    removal_neighbors_out: list[list[tuple[int, float]]] = [[] for _ in range(n)]
    removal_neighbors_in: list[list[tuple[int, float]]] = [[] for _ in range(n)]
    while alive:
        if max_levels is not None and levels_done >= max_levels:
            break
        level = levels_done + 1
        ind_set = _greedy_independent_set(work, alive)
        if not ind_set:  # pragma: no cover - greedy always returns >= 1
            break
        for v in ind_set:
            level_of[v] = level
            # Snapshot v's neighbours *before* removal: labels are built
            # from exactly these arcs of G_i.
            removal_neighbors_out[v] = list(work.out[v].items())
            removal_neighbors_in[v] = list(work.inn[v].items())
        for v in ind_set:
            work.remove_vertex(v)
        alive = [v for v in alive if level_of[v] == 0]
        levels_done += 1

    residual = set(alive)
    max_level = levels_done + 1
    for v in residual:
        level_of[v] = max_level
        removal_neighbors_out[v] = list(work.out[v].items())
        removal_neighbors_in[v] = list(work.inn[v].items())

    # A total priority order: higher level first, then degree, then id.
    def priority(v: int) -> tuple[int, int, int]:
        return (-level_of[v], -graph.degree(v), v)

    order = sorted(range(n), key=priority)
    rank_of = [0] * n
    for r, v in enumerate(order):
        rank_of[v] = r

    # --- Phase 2: top-down label construction --------------------------
    out_lab: list[dict[int, float]] = [{v: 0.0} for v in range(n)]
    in_lab: list[dict[int, float]] = (
        [{v: 0.0} for v in range(n)] if graph.directed else out_lab
    )

    def merge_out(v: int) -> None:
        lab = out_lab[v]
        for b, w in removal_neighbors_out[v]:
            if w < lab.get(b, INF):
                lab[b] = w
            for x, d in out_lab[b].items():
                if x == v:
                    continue
                nd = w + d
                if nd < lab.get(x, INF):
                    lab[x] = nd

    def merge_in(v: int) -> None:
        lab = in_lab[v]
        for a, w in removal_neighbors_in[v]:
            if w < lab.get(a, INF):
                lab[a] = w
            for x, d in in_lab[a].items():
                if x == v:
                    continue
                nd = d + w
                if nd < lab.get(x, INF):
                    lab[x] = nd

    def dominance_prune(v: int) -> None:
        """Drop entries coverable through a higher-priority pivot."""
        for lab, other in ((out_lab[v], in_lab), (in_lab[v], out_lab)):
            doomed = []
            for x, d in lab.items():
                if x == v:
                    continue
                for w, d1 in lab.items():
                    if w == x or w == v or rank_of[w] >= rank_of[x]:
                        continue
                    d2 = other[x].get(w)
                    if d2 is not None and d1 + d2 <= d:
                        doomed.append(x)
                        break
            for x in doomed:
                del lab[x]
            if not graph.directed:
                break

    # Residual vertices in partial mode keep label = self only (queries
    # go through the residual graph); in full mode the residual is empty
    # except the single top level, which we label against each other via
    # the same merge (their snapshot arcs are within the top group).
    for v in order:
        if max_levels is not None and v in residual:
            continue
        if v in residual:
            # Full mode: top-level vertices label each other through the
            # final augmented graph, peeled one by one in priority order.
            pass
        merge_out(v)
        if graph.directed:
            merge_in(v)
        if prune:
            dominance_prune(v)

    elapsed = timer.stop()

    out_sorted = [sorted(lab.items()) for lab in out_lab]
    in_sorted = (
        [sorted(lab.items()) for lab in in_lab] if graph.directed else out_sorted
    )
    labels = LabelIndex(n, graph.directed, out_sorted, in_sorted, rank_of)
    if max_levels is None:
        return ISLabelIndex(labels, None, None, set(), level_of, elapsed)
    return ISLabelIndex(
        labels,
        work.out,
        work.inn,
        residual,
        level_of,
        elapsed,
    )
