"""External-memory substrate (Section 4 of the paper), simulated.

The paper's machine had 4 GB RAM and a SATA disk; its contribution is
an index construction whose memory footprint is bounded by ``M`` and
whose disk traffic follows the Aggarwal-Vitter model
(``scan(N) = Θ(N/B)`` with block size ``B``).  This package rebuilds
that setting on top of counted block I/O:

* :class:`DiskModel` — the (M, B) cost model with read/write counters;
* :class:`EntryFile` — a sorted file of label entries, readable only
  through block-granular, counted operations (optionally backed by a
  real on-disk file);
* :func:`external_sort` — merge-sort cost accounting;
* :class:`ExternalLabelingBuilder` — Algorithm 2's blocked nested-loop
  candidate generation and the Section 4.2 pruning loops, producing an
  index *bit-identical* to the in-memory builders while reporting the
  I/O each iteration incurred;
* :class:`DiskResidentIndex` — disk-resident querying: each query
  charges the blocks of the two labels it touches, regenerating the
  "Disk query time" column of Table 6.
"""

from repro.io_sim.diskmodel import DiskModel, IOStats
from repro.io_sim.blockfile import EntryFile
from repro.io_sim.external_sort import external_sort
from repro.io_sim.external_labeling import (
    ExternalBuildResult,
    ExternalLabelingBuilder,
)
from repro.io_sim.disk_index import DiskResidentIndex

__all__ = [
    "DiskModel",
    "IOStats",
    "EntryFile",
    "external_sort",
    "ExternalBuildResult",
    "ExternalLabelingBuilder",
    "DiskResidentIndex",
]
