"""Disk-resident query evaluation (the "Disk query time" of Table 6).

The paper's index is disk-based: answering ``dist(s, t)`` reads two
label lists — ``Lout(s)`` and ``Lin(t)`` — each stored contiguously, so
the cost is one seek plus ``ceil(|label| / B)`` sequential blocks per
side.  :class:`DiskResidentIndex` lays any frozen
:class:`~repro.core.labels.LabelStore` backend out that way, charges
exactly those blocks per query, and converts block counts into simulated
latency with a configurable per-block cost (defaults approximating the
paper's 7200 RPM SATA disk: ~5 ms for the seek-dominated first block,
~0.1 ms per additional sequential block).
"""

from __future__ import annotations

from repro.core.labels import LabelStore, merge_join_distance
from repro.io_sim.diskmodel import DiskModel

# Latency defaults (seconds): seek + rotational delay for the first
# block of a label, then sequential streaming for the rest.
DEFAULT_SEEK_SECONDS = 5e-3
DEFAULT_BLOCK_SECONDS = 1e-4


class DiskResidentIndex:
    """Charges block reads for every query against a disk layout."""

    def __init__(
        self,
        index: LabelStore,
        disk: DiskModel | None = None,
        seek_seconds: float = DEFAULT_SEEK_SECONDS,
        block_seconds: float = DEFAULT_BLOCK_SECONDS,
    ) -> None:
        self.index = index
        self.disk = disk if disk is not None else DiskModel()
        self.seek_seconds = seek_seconds
        self.block_seconds = block_seconds
        self.queries = 0
        self.blocks_read = 0
        self.seeks = 0

    def query(self, s: int, t: int) -> float:
        """Exact distance, charging the two label reads."""
        self.queries += 1
        if s == t:
            return 0.0
        out_lab = self.index.out_label(s)
        in_lab = self.index.in_label(t)
        for lab in (out_lab, in_lab):
            blocks = max(1, self.disk.blocks(len(lab)))
            self.disk.charge_block_reads(blocks)
            self.blocks_read += blocks
            self.seeks += 1
        return merge_join_distance(out_lab, in_lab)

    # -- simulated latency -------------------------------------------------
    def simulated_seconds(self) -> float:
        """Total simulated disk time across all queries so far."""
        sequential = self.blocks_read - self.seeks
        return self.seeks * self.seek_seconds + sequential * self.block_seconds

    def avg_query_seconds(self) -> float:
        """Mean simulated disk time per query (the Table 6 column)."""
        if self.queries == 0:
            return 0.0
        return self.simulated_seconds() / self.queries

    def avg_blocks_per_query(self) -> float:
        """Mean blocks touched per query."""
        if self.queries == 0:
            return 0.0
        return self.blocks_read / self.queries

    def reset_counters(self) -> None:
        """Zero the per-query accounting (keeps the index)."""
        self.queries = 0
        self.blocks_read = 0
        self.seeks = 0
