"""External merge sort with Aggarwal-Vitter cost accounting.

Used by :class:`~repro.io_sim.external_labeling.ExternalLabelingBuilder`
between iterations ("prev (u→v) are sorted by u in file...").  The
implementation genuinely forms memory-sized runs and k-way merges them
— on the memory backend this is slower than calling ``list.sort`` but
it exercises and charges exactly the access pattern the paper costs:
run formation reads+writes everything once, then each merge pass does
so again with fan-in ``M/B``.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.io_sim.blockfile import Entry
from repro.io_sim.diskmodel import DiskModel


def external_sort(
    entries: list[Entry],
    disk: DiskModel,
    key: Callable[[Entry], object] = lambda e: e[0],
) -> list[Entry]:
    """Sort ``entries`` with run-formation + k-way merge, charging I/O.

    Returns a new sorted list.  Inputs that fit in memory cost one
    read/write pair (run formation only, immediately final).
    """
    n = len(entries)
    if n == 0:
        return []
    memory = disk.memory_entries

    # Run formation: read everything, emit sorted runs of <= M entries.
    disk.charge_read(n)
    runs: list[list[Entry]] = []
    for lo in range(0, n, memory):
        runs.append(sorted(entries[lo : lo + memory], key=key))
    disk.charge_write(n)

    fan_in = max(2, memory // disk.block_entries)
    while len(runs) > 1:
        disk.charge_read(n)
        merged_runs: list[list[Entry]] = []
        for lo in range(0, len(runs), fan_in):
            group = runs[lo : lo + fan_in]
            merged_runs.append(list(heapq.merge(*group, key=key)))
        runs = merged_runs
        disk.charge_write(n)
    return runs[0]
