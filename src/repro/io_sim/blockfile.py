"""Block-granular label-entry files.

:class:`EntryFile` models one of the sorted entry files the paper's
Algorithm 2 juggles ("prev (u→v) are sorted by u in file", "old
(u2→u) sorted by u2", ...).  An entry is a 4-tuple
``(key, other, dist, hops)`` where ``key`` is the vertex the file is
sorted/grouped by.

All access paths charge the shared :class:`DiskModel`:

* :meth:`scan` — sequential read of the whole file;
* :meth:`range_scan` — read only the blocks overlapping a key range
  (binary-searched; this is the outer-loop "load the u-related label
  entries" of Algorithm 2);
* :meth:`chunks` — sequential read in buffer-sized pieces (the inner
  nested-loop of Algorithm 2 / Section 4.2);
* :meth:`replace_contents` — rewrite + re-sort (charged as an external
  sort when the data exceeds memory).

With ``backend="disk"`` the entries are actually kept in a binary file
on disk (struct-packed, re-read on every scan), proving the algorithms
only ever touch data through these counted operations; the default
``"memory"`` backend keeps the entries in a list, which is
behaviourally identical and much faster for benchmarks.
"""

from __future__ import annotations

import bisect
import struct
import tempfile
from pathlib import Path
from typing import Iterable, Iterator

from repro.io_sim.diskmodel import DiskModel

Entry = tuple[int, int, float, int]

_RECORD = struct.Struct("<iidi")


class _MemoryBackend:
    """Entries held in a Python list (default)."""

    def __init__(self) -> None:
        self._data: list[Entry] = []

    def write_all(self, entries: list[Entry]) -> None:
        self._data = list(entries)

    def read_all(self) -> list[Entry]:
        return self._data

    def read_slice(self, lo: int, hi: int) -> list[Entry]:
        return self._data[lo:hi]

    def __len__(self) -> int:
        return len(self._data)

    def close(self) -> None:
        self._data = []


class _DiskBackend:
    """Entries struct-packed into a real temporary file."""

    def __init__(self, directory: str | None = None) -> None:
        self._file = tempfile.NamedTemporaryFile(
            prefix="repro-entries-", suffix=".bin", dir=directory, delete=False
        )
        self._count = 0

    @property
    def path(self) -> Path:
        return Path(self._file.name)

    def write_all(self, entries: list[Entry]) -> None:
        self._file.seek(0)
        self._file.truncate()
        for e in entries:
            self._file.write(_RECORD.pack(*e))
        self._file.flush()
        self._count = len(entries)

    def read_all(self) -> list[Entry]:
        return self.read_slice(0, self._count)

    def read_slice(self, lo: int, hi: int) -> list[Entry]:
        lo = max(0, lo)
        hi = min(self._count, hi)
        if hi <= lo:
            return []
        self._file.seek(lo * _RECORD.size)
        raw = self._file.read((hi - lo) * _RECORD.size)
        out = []
        for off in range(0, len(raw), _RECORD.size):
            k, o, d, h = _RECORD.unpack_from(raw, off)
            out.append((k, o, d, h))
        return out

    def __len__(self) -> int:
        return self._count

    def close(self) -> None:
        name = self._file.name
        self._file.close()
        Path(name).unlink(missing_ok=True)


class EntryFile:
    """A sorted, block-read label-entry file with I/O accounting."""

    def __init__(
        self,
        name: str,
        disk: DiskModel,
        backend: str = "memory",
        backend_dir: str | None = None,
    ) -> None:
        self.name = name
        self.disk = disk
        if backend == "memory":
            self._backend: _MemoryBackend | _DiskBackend = _MemoryBackend()
        elif backend == "disk":
            self._backend = _DiskBackend(backend_dir)
        else:
            raise ValueError(f"unknown backend {backend!r}")
        self._keys: list[int] = []  # sorted keys for block-range location

    def __len__(self) -> int:
        return len(self._backend)

    # -- writing -----------------------------------------------------------
    def replace_contents(
        self, entries: Iterable[Entry], already_sorted: bool = False
    ) -> None:
        """Replace the file's contents, keeping it sorted by key.

        Charges an external sort when the data needs sorting and is
        larger than memory, otherwise a plain sequential write.
        """
        data = list(entries)
        if not already_sorted:
            data.sort(key=lambda e: e[0])
            if len(data) > self.disk.memory_entries:
                self.disk.charge_sort(len(data))
            else:
                self.disk.charge_write(len(data))
        else:
            self.disk.charge_write(len(data))
        self._backend.write_all(data)
        self._keys = [e[0] for e in data]

    # -- reading -----------------------------------------------------------
    def scan(self) -> list[Entry]:
        """Sequential read of the entire file (charged)."""
        self.disk.charge_read(len(self._backend))
        return self._backend.read_all()

    def chunks(self, chunk_entries: int) -> Iterator[list[Entry]]:
        """Sequential read in ``chunk_entries``-sized pieces (charged)."""
        if chunk_entries < 1:
            raise ValueError("chunk_entries must be >= 1")
        total = len(self._backend)
        for lo in range(0, total, chunk_entries):
            hi = min(total, lo + chunk_entries)
            self.disk.charge_read(hi - lo)
            yield self._backend.read_slice(lo, hi)

    def range_scan(self, key_lo: int, key_hi: int) -> list[Entry]:
        """Read every entry with ``key_lo <= key <= key_hi`` (charged).

        Only the blocks overlapping the range are charged, mirroring
        Algorithm 2's "load the u-related label entries into memory".
        """
        lo = bisect.bisect_left(self._keys, key_lo)
        hi = bisect.bisect_right(self._keys, key_hi)
        if hi <= lo:
            return []
        b = self.disk.block_entries
        first_block = lo // b
        last_block = (hi - 1) // b
        self.disk.charge_block_reads(last_block - first_block + 1)
        return self._backend.read_slice(lo, hi)

    def key_slice_bounds(self, key_lo: int, key_hi: int) -> tuple[int, int]:
        """Entry-index bounds of a key range (no charge; metadata only)."""
        return (
            bisect.bisect_left(self._keys, key_lo),
            bisect.bisect_right(self._keys, key_hi),
        )

    def close(self) -> None:
        """Release backing storage (deletes the temp file on disk mode)."""
        self._backend.close()
        self._keys = []

    def __repr__(self) -> str:
        return f"EntryFile({self.name!r}, {len(self)} entries)"
