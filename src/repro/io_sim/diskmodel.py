"""The Aggarwal-Vitter I/O cost model used throughout Section 4.

Conventions (Section 4 of the paper, following [6]):

* ``M`` — main-memory capacity, measured in label entries;
* ``B`` — disk block capacity, in label entries, with ``1 << B <= M/2``;
* ``scan(N) = ceil(N / B)`` block transfers;
* sorting ``N`` entries costs ``2 * ceil(N/B) * (1 + passes)`` where
  ``passes = ceil(log_{M/B}(max(1, N/M)))`` (run formation + merge
  passes, each reading and writing the data once).

:class:`DiskModel` carries the parameters and accumulates counters; all
file operations in :mod:`repro.io_sim` charge against one model
instance, so an experiment can read off exactly how many block I/Os an
index build or a query burst incurred.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

DEFAULT_MEMORY_ENTRIES = 4096
DEFAULT_BLOCK_ENTRIES = 64


@dataclass
class IOStats:
    """A snapshot of I/O counters (block transfers)."""

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes

    def __sub__(self, other: "IOStats") -> "IOStats":
        return IOStats(self.reads - other.reads, self.writes - other.writes)

    def __str__(self) -> str:
        return f"reads={self.reads} writes={self.writes} total={self.total}"


class DiskModel:
    """I/O parameters plus running counters.

    ``memory_entries`` is ``M`` and ``block_entries`` is ``B``, both in
    label entries (an entry is ~10 bytes under the paper's convention,
    so the defaults model a deliberately small 40 KB memory against
    640-byte blocks — scaled down with the benchmark graphs exactly
    like the datasets themselves are).
    """

    def __init__(
        self,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
        block_entries: int = DEFAULT_BLOCK_ENTRIES,
    ) -> None:
        if block_entries < 1:
            raise ValueError(f"block_entries must be >= 1, got {block_entries}")
        if memory_entries < 2 * block_entries:
            raise ValueError(
                "memory must hold at least two blocks "
                f"(M={memory_entries}, B={block_entries})"
            )
        self.memory_entries = memory_entries
        self.block_entries = block_entries
        self.stats = IOStats()

    # -- primitive charges ------------------------------------------------
    def blocks(self, num_entries: int) -> int:
        """Blocks needed for ``num_entries`` entries: ``ceil(N/B)``."""
        return -(-num_entries // self.block_entries) if num_entries > 0 else 0

    def charge_read(self, num_entries: int) -> int:
        """Charge a sequential read of ``num_entries``; return blocks."""
        b = self.blocks(num_entries)
        self.stats.reads += b
        return b

    def charge_write(self, num_entries: int) -> int:
        """Charge a sequential write of ``num_entries``; return blocks."""
        b = self.blocks(num_entries)
        self.stats.writes += b
        return b

    def charge_block_reads(self, num_blocks: int) -> None:
        """Charge ``num_blocks`` direct block reads (random access)."""
        self.stats.reads += num_blocks

    # -- composite charges ---------------------------------------------------
    def sort_passes(self, num_entries: int) -> int:
        """Merge passes needed to sort ``num_entries`` externally."""
        if num_entries <= self.memory_entries:
            return 0
        fan_in = max(2, self.memory_entries // self.block_entries)
        runs = math.ceil(num_entries / self.memory_entries)
        return max(1, math.ceil(math.log(runs, fan_in)))

    def charge_sort(self, num_entries: int) -> int:
        """Charge an external merge sort of ``num_entries`` entries.

        Run formation reads + writes everything once; every merge pass
        does the same.  In-memory-sized inputs cost one read + write
        (run formation only).  Returns total blocks charged.
        """
        if num_entries == 0:
            return 0
        passes = 1 + self.sort_passes(num_entries)
        per_pass = self.blocks(num_entries)
        self.stats.reads += per_pass * passes
        self.stats.writes += per_pass * passes
        return 2 * per_pass * passes

    # -- reporting ---------------------------------------------------------------
    def snapshot(self) -> IOStats:
        """Copy of the current counters (use deltas to meter a phase)."""
        return IOStats(self.stats.reads, self.stats.writes)

    def reset(self) -> None:
        """Zero the counters."""
        self.stats = IOStats()

    def __repr__(self) -> str:
        return (
            f"DiskModel(M={self.memory_entries}, B={self.block_entries}, "
            f"{self.stats})"
        )
