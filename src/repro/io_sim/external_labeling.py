"""I/O-efficient index construction (Section 4 + Section 5.3).

:class:`ExternalLabelingBuilder` re-implements the iterative labeling
with the disk-resident layout of Algorithm 2:

* label entries live in sorted :class:`~repro.io_sim.blockfile.EntryFile`
  objects — ``OUT`` keyed by owner (the paper's "old (u2→u) sorted by
  u2") and ``IN`` keyed by owner (the "old (u1→u) sorted by u");
* each iteration's candidate generation runs as a **blocked
  nested-loop join**: prev entries are processed in memory-budget-sized
  batches (the outer loop, ``BL``); Rule-1/4 partners are fetched with
  a *range scan* over the co-sorted file, Rule-2/5 partners with a full
  sequential scan of the opposite file per batch (the inner loop,
  ``BR``) — exactly the paper's access pattern, with every block
  charged to the shared :class:`~repro.io_sim.diskmodel.DiskModel`;
* the pruning pass charges the Section 4.2 nested loop: the
  candidates+old outer stream and one inner scan of the opposite-side
  file per outer batch.

Admission bookkeeping (duplicate suppression) and the pruning *bound*
evaluation use the same shadow
:class:`~repro.core.labels.DirectedLabelState` the in-memory builders
use — standing in for the buffer-resident binary searches of
Algorithm 2 — so the resulting index is **bit-identical** to the
in-memory builder with the same options (the test suite asserts this).
Only the minimized rule set is supported, as in the paper's external
algorithms.

Per-iteration I/O deltas are recorded so the benches can reproduce the
shape of the paper's I/O complexity:
``O(log D_H * ceil(|old|/M) * scan(|old| + |cand|))``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.hop_doubling import IterationStats
from repro.core.labels import (
    DirectedLabelState,
    LabelIndex,
    UndirectedLabelState,
)
from repro.core.pruning import admit_and_prune
from repro.core.ranking import Ranking, make_ranking
from repro.core.rules import CandidateSet, PrevEntry
from repro.graphs.digraph import Graph
from repro.io_sim.blockfile import Entry, EntryFile
from repro.io_sim.diskmodel import DiskModel, IOStats
from repro.utils.timer import Timer


@dataclass
class ExternalIterationStats:
    """In-memory counters of one round plus its block I/O delta."""

    stats: IterationStats
    io: IOStats


@dataclass
class ExternalBuildResult:
    """Index + provenance of an external build."""

    index: LabelIndex
    ranking: Ranking
    iterations: list[ExternalIterationStats] = field(default_factory=list)
    build_seconds: float = 0.0
    total_io: IOStats = field(default_factory=IOStats)

    @property
    def num_iterations(self) -> int:
        return 1 + sum(1 for it in self.iterations if it.stats.survived > 0)


class ExternalLabelingBuilder:
    """Blocked, I/O-charged version of the hybrid/stepping/doubling build."""

    def __init__(
        self,
        graph: Graph,
        disk: DiskModel | None = None,
        ranking: Ranking | str = "auto",
        strategy: str = "hybrid",
        switch_iteration: int = 10,
        prune: bool = True,
        backend: str = "memory",
    ) -> None:
        if strategy not in ("hybrid", "stepping", "doubling"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.graph = graph
        self.disk = disk if disk is not None else DiskModel()
        if isinstance(ranking, str):
            ranking = make_ranking(graph, ranking)
        self.ranking = ranking
        self.strategy = strategy
        self.switch_iteration = switch_iteration
        self.prune = prune
        self.backend = backend

    # -- mode selection (same contract as the in-memory builders) -------
    def _mode_for(self, iteration: int) -> str:
        if self.strategy == "stepping":
            return "step"
        if self.strategy == "doubling":
            return "double"
        return "step" if iteration <= self.switch_iteration else "double"

    # -- build ------------------------------------------------------------
    def build(self) -> ExternalBuildResult:
        timer = Timer().start()
        graph = self.graph
        disk = self.disk
        rank = self.ranking.rank_of
        directed = graph.directed

        if directed:
            state: DirectedLabelState | UndirectedLabelState = (
                DirectedLabelState(rank)
            )
        else:
            state = UndirectedLabelState(rank)

        # ---- files ----------------------------------------------------
        out_file = EntryFile("OUT", disk, self.backend)
        in_file = EntryFile("IN", disk, self.backend)
        edges_in = EntryFile("EDGES_IN", disk, self.backend)
        edges_out = EntryFile("EDGES_OUT", disk, self.backend)

        # Edge files: EDGES_IN keyed by target (Rule 1/2 stepping
        # partners), EDGES_OUT keyed by source (Rule 4/5 partners).
        ein: list[Entry] = []
        eout: list[Entry] = []
        for u, v, w in graph.edges():
            if u == v:
                continue
            ein.append((v, u, w, 1))
            eout.append((u, v, w, 1))
            if not directed:
                ein.append((u, v, w, 1))
                eout.append((v, u, w, 1))
        edges_in.replace_contents(ein)
        edges_out.replace_contents(eout)

        # ---- initialization (iteration 1): edges become entries --------
        prev: list[PrevEntry] = []
        for u, v, w in graph.edges():
            if u == v:
                continue
            if not directed:
                owner, pivot = state.owner_pivot(u, v)
                u, v = owner, pivot
            existing = state.get_pair(u, v)
            if existing is not None and existing[0] <= w:
                continue
            state.set_pair(u, v, w, 1)
            prev.append((u, v, w, 1))
        self._rewrite_label_files(state, out_file, in_file, directed)

        iterations: list[ExternalIterationStats] = []
        iteration = 1
        while prev:
            iteration += 1
            mode = self._mode_for(iteration)
            round_timer = Timer().start()
            before = disk.snapshot()

            candidates = self._generate(
                state, prev, mode, out_file, in_file, edges_in, edges_out
            )
            # Candidate stream is written out once, sorted for pruning.
            disk.charge_write(len(candidates))
            disk.charge_sort(len(candidates))

            self._charge_pruning_io(
                state, candidates, out_file, in_file, directed
            )
            survivors, outcome = admit_and_prune(
                state, candidates, prune=self.prune
            )
            self._rewrite_label_files(state, out_file, in_file, directed)

            elapsed = round_timer.stop()
            iterations.append(
                ExternalIterationStats(
                    stats=IterationStats(
                        iteration=iteration,
                        mode=mode,
                        raw_generated=outcome.raw_generated,
                        distinct_generated=outcome.distinct_generated,
                        admitted=outcome.admitted,
                        pruned=outcome.pruned,
                        survived=outcome.survived,
                        total_entries=state.total_entries(),
                        prev_size=len(prev),
                        elapsed=elapsed,
                    ),
                    io=disk.snapshot() - before,
                )
            )
            prev = survivors

        for f in (out_file, in_file, edges_in, edges_out):
            f.close()
        index = LabelIndex.from_state(state)
        return ExternalBuildResult(
            index=index,
            ranking=self.ranking,
            iterations=iterations,
            build_seconds=timer.stop(),
            total_io=disk.snapshot(),
        )

    # -- candidate generation (blocked nested-loop joins) ----------------
    def _generate(
        self,
        state,
        prev: list[PrevEntry],
        mode: str,
        out_file: EntryFile,
        in_file: EntryFile,
        edges_in: EntryFile,
        edges_out: EntryFile,
    ) -> CandidateSet:
        rank = state.rank
        directed = self.graph.directed
        cands = CandidateSet()
        half_memory = max(self.disk.block_entries, self.disk.memory_entries // 2)

        stepping = mode == "step"
        if directed:
            out_prev = [e for e in prev if rank[e[1]] < rank[e[0]]]
            in_prev = [e for e in prev if rank[e[0]] < rank[e[1]]]
            # Rules 1 & 2: prev out-entries grouped by source u.
            self._join_pass(
                cands,
                sorted(out_prev, key=lambda e: e[0]),
                group_index=0,
                range_file=None if stepping else in_file,
                scan_file=None if stepping else out_file,
                edge_file=edges_in if stepping else None,
                emit=self._emit_out_prev,
                rank=rank,
                batch_budget=half_memory,
            )
            # Rules 4 & 5: prev in-entries grouped by target v.
            self._join_pass(
                cands,
                sorted(in_prev, key=lambda e: e[1]),
                group_index=1,
                range_file=None if stepping else out_file,
                scan_file=None if stepping else in_file,
                edge_file=edges_out if stepping else None,
                emit=self._emit_in_prev,
                rank=rank,
                batch_budget=half_memory,
            )
        else:
            self._join_pass(
                cands,
                sorted(prev, key=lambda e: e[0]),
                group_index=0,
                range_file=None if stepping else out_file,  # the LAB file
                scan_file=None if stepping else out_file,
                edge_file=edges_in if stepping else None,
                emit=self._emit_undirected,
                rank=rank,
                batch_budget=half_memory,
            )
        return cands

    @staticmethod
    def _emit_out_prev(cands, rank, prev_entry, partner, from_scan, offer_swap):
        """Rules 1 (range partner) and 2 (scan partner) for out-prev."""
        u, v, d, h = prev_entry
        x, d1, h1 = partner
        if x == v:
            return
        if from_scan:
            cands.offer(x, v, d1 + d, h1 + h)  # Rule 2
        elif rank[x] > rank[v]:
            cands.offer(x, v, d1 + d, h1 + h)  # Rule 1 (minimized)

    @staticmethod
    def _emit_in_prev(cands, rank, prev_entry, partner, from_scan, offer_swap):
        """Rules 4 (range partner) and 5 (scan partner) for in-prev."""
        u, v, d, h = prev_entry
        y, d2, h2 = partner
        if y == u:
            return
        if from_scan:
            cands.offer(u, y, d + d2, h + h2)  # Rule 5
        elif rank[y] > rank[u]:
            cands.offer(u, y, d + d2, h + h2)  # Rule 4 (minimized)

    @staticmethod
    def _emit_undirected(cands, rank, prev_entry, partner, from_scan, offer_swap):
        """Undirected Rule 1/2 analogues; offers in (owner, pivot) order."""
        owner, pivot, d, h = prev_entry
        x, d1, h1 = partner
        if x == pivot:
            return
        if not from_scan and rank[x] < rank[pivot]:
            return  # minimized restriction on same-store partners
        a, b = (x, pivot) if rank[x] > rank[pivot] else (pivot, x)
        cands.offer(a, b, d1 + d, h1 + h)

    def _join_pass(
        self,
        cands: CandidateSet,
        prev_sorted: list[PrevEntry],
        group_index: int,
        range_file: EntryFile | None,
        scan_file: EntryFile | None,
        edge_file: EntryFile | None,
        emit,
        rank,
        batch_budget: int,
    ) -> None:
        """One blocked nested-loop pass of Algorithm 2.

        ``prev_sorted`` is grouped by its join key; each batch loads the
        co-sorted ``range_file`` slice (Rule 1/4 partners) and, in
        doubling mode, streams the whole ``scan_file`` (Rule 2/5
        partners); in stepping mode both partner roles are played by the
        co-sorted ``edge_file`` slice instead (unit-hop entries only).
        """
        if not prev_sorted:
            return
        disk = self.disk
        i = 0
        n = len(prev_sorted)
        while i < n:
            # Outer block: whole key-groups until the budget is reached.
            j = i
            while j < n and (j - i) < batch_budget:
                key = prev_sorted[j][group_index]
                while j < n and prev_sorted[j][group_index] == key:
                    j += 1
            batch = prev_sorted[i:j]
            i = j
            disk.charge_read(len(batch))  # the prev slice itself

            by_key: dict[int, list[PrevEntry]] = {}
            for e in batch:
                by_key.setdefault(e[group_index], []).append(e)
            key_lo = batch[0][group_index]
            key_hi = batch[-1][group_index]

            # Rule 1/4 partners: co-sorted range scan (doubling only).
            if range_file is not None:
                for key, other, d1, h1 in range_file.range_scan(
                    key_lo, key_hi
                ):
                    group = by_key.get(key)
                    if group is None:
                        continue
                    for prev_entry in group:
                        emit(
                            cands, rank, prev_entry, (other, d1, h1),
                            False, None,
                        )

            # Stepping: unit-hop partners from the co-sorted edge file.
            if edge_file is not None:
                for key, other, w, _one in edge_file.range_scan(key_lo, key_hi):
                    group = by_key.get(key)
                    if group is None:
                        continue
                    for prev_entry in group:
                        # Edge partners cover both Rule 1/4 and 2/5 sides:
                        # classify by the rank test inside the emitter.
                        from_scan = rank[other] > rank[key]
                        emit(
                            cands,
                            rank,
                            prev_entry,
                            (other, w, 1),
                            from_scan,
                            None,
                        )
                continue

            # Doubling: inner full scan of the opposite file (Rule 2/5).
            if scan_file is not None:
                for chunk in scan_file.chunks(self.disk.memory_entries // 2):
                    for owner, other, d1, h1 in chunk:
                        group = by_key.get(other)
                        if group is None:
                            continue
                        for prev_entry in group:
                            emit(
                                cands,
                                rank,
                                prev_entry,
                                (owner, d1, h1),
                                True,
                                None,
                            )

    # -- pruning I/O (Section 4.2 loop shape) -----------------------------
    def _charge_pruning_io(
        self,
        state,
        candidates: CandidateSet,
        out_file: EntryFile,
        in_file: EntryFile,
        directed: bool,
    ) -> None:
        """Charge the nested-loop pruning pass of Section 4.2.

        Outer stream: candidates plus the same-side old entries; inner:
        one full scan of the opposite-side file per outer batch.
        """
        if not self.prune or not len(candidates):
            return
        disk = self.disk
        half_memory = max(disk.block_entries, disk.memory_entries // 2)
        if directed:
            rank = state.rank
            n_out = sum(
                1 for (a, b) in candidates.pairs if rank[b] < rank[a]
            )
            n_in = len(candidates) - n_out
            for n_cand, same, opposite in (
                (n_out, out_file, in_file),
                (n_in, in_file, out_file),
            ):
                if n_cand == 0:
                    continue
                outer = n_cand + len(same)
                disk.charge_read(outer)
                batches = -(-outer // half_memory)
                for _ in range(batches):
                    disk.charge_read(len(opposite) + n_cand)
        else:
            outer = len(candidates) + len(out_file)
            disk.charge_read(outer)
            batches = -(-outer // half_memory)
            for _ in range(batches):
                disk.charge_read(len(out_file) + len(candidates))

    # -- file maintenance ---------------------------------------------------
    def _rewrite_label_files(
        self,
        state,
        out_file: EntryFile,
        in_file: EntryFile,
        directed: bool,
    ) -> None:
        """Rebuild the sorted label files from the surviving entries."""
        if directed:
            out_entries: list[Entry] = []
            in_entries: list[Entry] = []
            for owner, pivot, dist, hops, is_out in state.iter_entries():
                if is_out:
                    out_entries.append((owner, pivot, dist, hops))
                else:
                    in_entries.append((owner, pivot, dist, hops))
            out_file.replace_contents(out_entries)
            in_file.replace_contents(in_entries)
        else:
            lab_entries = [
                (owner, pivot, dist, hops)
                for owner, pivot, dist, hops, _ in state.iter_entries()
            ]
            out_file.replace_contents(lab_entries)
            in_file.replace_contents([])
