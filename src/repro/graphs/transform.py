"""Graph transformations: symmetrization, reversal, relabeling, components.

Dataset preparation for the paper's experiments needs a few standard
rewrites: treating a directed crawl as undirected, restricting to the
largest (weakly) connected component so query workloads do not drown in
unreachable pairs, and permuting vertex ids (used by tests to check that
algorithms do not depend on accidental id order).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Sequence

from repro.graphs.digraph import Graph


def to_undirected(graph: Graph) -> Graph:
    """Forget arc directions (collapsing antiparallel arcs, min weight)."""
    if not graph.directed:
        return graph
    if graph.weighted:
        edges = [(u, v, w) for u, v, w in graph.edges()]
    else:
        edges = [(u, v) for u, v, _ in graph.edges()]
    return Graph.from_edges(
        graph.num_vertices, edges, directed=False, weighted=graph.weighted
    )


def reverse_graph(graph: Graph) -> Graph:
    """Reverse every arc (identity for undirected graphs)."""
    if not graph.directed:
        return graph
    if graph.weighted:
        edges = [(v, u, w) for u, v, w in graph.edges()]
    else:
        edges = [(v, u) for u, v, _ in graph.edges()]
    return Graph.from_edges(
        graph.num_vertices, edges, directed=True, weighted=graph.weighted
    )


def permute_vertices(graph: Graph, permutation: Sequence[int]) -> Graph:
    """Relabel vertex ``v`` as ``permutation[v]``.

    ``permutation`` must be a bijection on ``range(num_vertices)``.
    """
    n = graph.num_vertices
    if len(permutation) != n or sorted(permutation) != list(range(n)):
        raise ValueError("permutation must be a bijection on vertex ids")
    if graph.weighted:
        edges = [(permutation[u], permutation[v], w) for u, v, w in graph.edges()]
    else:
        edges = [(permutation[u], permutation[v]) for u, v, _ in graph.edges()]
    return Graph.from_edges(
        n, edges, directed=graph.directed, weighted=graph.weighted
    )


def random_permutation(n: int, seed: int = 0) -> list[int]:
    """A seeded random bijection on ``range(n)``."""
    perm = list(range(n))
    random.Random(seed).shuffle(perm)
    return perm


def weakly_connected_components(graph: Graph) -> list[list[int]]:
    """Vertex sets of weakly connected components, largest first."""
    n = graph.num_vertices
    seen = [False] * n
    components: list[list[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        comp = []
        queue = deque([start])
        seen[start] = True
        while queue:
            u = queue.popleft()
            comp.append(u)
            for v in graph.out_neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    queue.append(v)
            if graph.directed:
                for v in graph.in_neighbors(u):
                    if not seen[v]:
                        seen[v] = True
                        queue.append(v)
        components.append(comp)
    components.sort(key=len, reverse=True)
    return components


def largest_connected_component(graph: Graph) -> Graph:
    """Induced subgraph on the largest weakly connected component.

    Vertices are renumbered densely, preserving relative order, so the
    result is independent of traversal order.
    """
    components = weakly_connected_components(graph)
    if not components:
        return graph
    keep = sorted(components[0])
    new_id = {v: i for i, v in enumerate(keep)}
    edges = []
    for u, v, w in graph.edges():
        if u in new_id and v in new_id:
            if graph.weighted:
                edges.append((new_id[u], new_id[v], w))
            else:
                edges.append((new_id[u], new_id[v]))
    return Graph.from_edges(
        len(keep), edges, directed=graph.directed, weighted=graph.weighted
    )


def induced_subgraph(graph: Graph, vertices: Sequence[int]) -> Graph:
    """Induced subgraph on ``vertices`` (renumbered densely in given order)."""
    new_id = {v: i for i, v in enumerate(vertices)}
    if len(new_id) != len(vertices):
        raise ValueError("vertices must be distinct")
    edges = []
    for u, v, w in graph.edges():
        iu, iv = new_id.get(u), new_id.get(v)
        if iu is not None and iv is not None:
            if graph.weighted:
                edges.append((iu, iv, w))
            else:
                edges.append((iu, iv))
    return Graph.from_edges(
        len(vertices), edges, directed=graph.directed, weighted=graph.weighted
    )
