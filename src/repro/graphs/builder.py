"""Incremental construction of :class:`~repro.graphs.Graph` instances.

The datasets in the paper arrive as edge lists of various shapes
(SNAP/KONECT dumps, generator output).  ``GraphBuilder`` accumulates
edges with optional on-the-fly vertex renumbering, then produces an
immutable :class:`Graph`.
"""

from __future__ import annotations

from typing import Hashable

from repro.graphs.digraph import Graph


class GraphBuilder:
    """Accumulates edges and builds an immutable :class:`Graph`.

    Two modes of vertex identification are supported:

    * **dense mode** (``num_vertices`` given): vertex ids must already be
      integers in ``[0, num_vertices)``;
    * **mapping mode** (default): vertex ids may be arbitrary hashable
      labels; they are assigned dense integers in first-seen order and
      the mapping is available as :attr:`vertex_ids` after ``build``.

    Example::

        b = GraphBuilder(directed=False)
        b.add_edge("alice", "bob")
        b.add_edge("bob", "carol")
        g = b.build()
        assert g.num_vertices == 3
    """

    def __init__(
        self,
        num_vertices: int | None = None,
        directed: bool = True,
        weighted: bool = False,
    ) -> None:
        self._directed = directed
        self._weighted = weighted
        self._fixed_n = num_vertices
        self._edges: list[tuple[int, int, float]] = []
        self._id_of: dict[Hashable, int] = {}
        self._labels: list[Hashable] = []
        self._built = False

    @property
    def vertex_ids(self) -> dict[Hashable, int]:
        """Mapping from original labels to dense ids (mapping mode only)."""
        return dict(self._id_of)

    @property
    def labels(self) -> list[Hashable]:
        """Dense id -> original label (mapping mode only)."""
        return list(self._labels)

    def _intern(self, label: Hashable) -> int:
        if self._fixed_n is not None:
            if not isinstance(label, int):
                raise TypeError(
                    "dense mode requires integer vertex ids, got "
                    f"{type(label).__name__}"
                )
            if not 0 <= label < self._fixed_n:
                raise ValueError(
                    f"vertex {label} out of range [0, {self._fixed_n})"
                )
            return label
        vid = self._id_of.get(label)
        if vid is None:
            vid = len(self._labels)
            self._id_of[label] = vid
            self._labels.append(label)
        return vid

    def add_vertex(self, label: Hashable) -> int:
        """Ensure ``label`` exists as a vertex; return its dense id."""
        self._check_not_built()
        return self._intern(label)

    def add_edge(self, u: Hashable, v: Hashable, weight: float = 1.0) -> None:
        """Record an edge.  For weighted builders ``weight`` must be > 0."""
        self._check_not_built()
        if self._weighted and not weight > 0:
            raise ValueError(f"edge weight must be > 0, got {weight!r}")
        self._edges.append((self._intern(u), self._intern(v), float(weight)))

    def add_edges(self, edges) -> None:
        """Record many edges; items are ``(u, v)`` or ``(u, v, w)``."""
        for edge in edges:
            if len(edge) == 2:
                self.add_edge(edge[0], edge[1])
            else:
                self.add_edge(edge[0], edge[1], edge[2])

    def __len__(self) -> int:
        """Number of edge records accumulated so far (before dedup)."""
        return len(self._edges)

    def _check_not_built(self) -> None:
        if self._built:
            raise RuntimeError("GraphBuilder.build() was already called")

    def build(self) -> Graph:
        """Produce the immutable :class:`Graph`.

        The builder becomes unusable afterwards — create a new one for a
        new graph.  Duplicate edges are collapsed (min weight wins) and
        self loops dropped, as documented on :meth:`Graph.from_edges`.
        """
        self._check_not_built()
        self._built = True
        n = self._fixed_n if self._fixed_n is not None else len(self._labels)
        if self._weighted:
            edges = self._edges
        else:
            edges = [(u, v) for u, v, _ in self._edges]
        return Graph.from_edges(
            n, edges, directed=self._directed, weighted=self._weighted
        )
