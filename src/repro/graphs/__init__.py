"""Graph substrate: containers, builders, I/O, generators, statistics.

Everything in :mod:`repro.core` operates on the :class:`~repro.graphs.Graph`
container defined here.  The container is deliberately static (immutable
after construction) because the paper targets *static* graphs: the index
is built once and queried many times.
"""

from repro.graphs.digraph import Graph
from repro.graphs.builder import GraphBuilder
from repro.graphs.io import (
    read_edge_list,
    write_edge_list,
    read_binary,
    write_binary,
)
from repro.graphs.generators import (
    ba_graph,
    configuration_model_graph,
    er_graph,
    glp_graph,
    grid_graph,
    path_graph,
    star_graph,
    complete_graph,
    cycle_graph,
)
from repro.graphs.stats import (
    GraphSummary,
    degree_histogram,
    expansion_factor,
    hop_diameter,
    rank_exponent,
    summarize,
)
from repro.graphs.traversal import (
    INF,
    bfs_distances,
    bidirectional_bfs,
    bidirectional_dijkstra,
    dijkstra_distances,
)
from repro.graphs.hitting import (
    DEFAULT_D0,
    HittingReport,
    h_excluded_neighborhood,
    hub_dimension_estimate,
    max_excluded_neighborhood,
    verify_long_path_hitting,
)
from repro.graphs.transform import (
    largest_connected_component,
    permute_vertices,
    to_undirected,
    reverse_graph,
)

__all__ = [
    "Graph",
    "GraphBuilder",
    "read_edge_list",
    "write_edge_list",
    "read_binary",
    "write_binary",
    "ba_graph",
    "configuration_model_graph",
    "er_graph",
    "glp_graph",
    "grid_graph",
    "path_graph",
    "star_graph",
    "complete_graph",
    "cycle_graph",
    "GraphSummary",
    "degree_histogram",
    "expansion_factor",
    "hop_diameter",
    "rank_exponent",
    "summarize",
    "INF",
    "bfs_distances",
    "bidirectional_bfs",
    "bidirectional_dijkstra",
    "dijkstra_distances",
    "DEFAULT_D0",
    "HittingReport",
    "h_excluded_neighborhood",
    "hub_dimension_estimate",
    "max_excluded_neighborhood",
    "verify_long_path_hitting",
    "largest_connected_component",
    "permute_vertices",
    "to_undirected",
    "reverse_graph",
]
