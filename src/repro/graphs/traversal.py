"""Graph traversals: BFS / Dijkstra and their bidirectional variants.

These routines serve three roles in the reproduction:

* ground truth for correctness tests (single-source distances);
* the **BIDIJ** baseline of Table 6 — online bidirectional search with
  no index at all;
* building blocks for the baselines (PLL's pruned BFS, IS-Label's
  residual-graph search, HCL-lite's bounded search).

Distances are floats; unreachable pairs yield :data:`INF`.  Unweighted
searches use plain breadth-first search, weighted ones use binary-heap
Dijkstra.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Sequence

from repro.graphs.digraph import Graph
from repro.utils.validation import check_vertex

INF = float("inf")


def bfs_distances(
    graph: Graph,
    source: int,
    reverse: bool = False,
    max_dist: float = INF,
) -> list[float]:
    """Hop distances from ``source`` (or *to* it when ``reverse``).

    ``reverse=True`` traverses arcs backwards, giving ``dist(v, source)``
    for every ``v`` — the ingredient for in-labels on directed graphs.
    Vertices farther than ``max_dist`` are left at :data:`INF`.
    """
    check_vertex(graph, source)
    neighbors = graph.in_neighbors if reverse else graph.out_neighbors
    dist = [INF] * graph.num_vertices
    dist[source] = 0.0
    if max_dist < 0:
        return dist
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        if du >= max_dist:
            continue
        for v in neighbors(u):
            if dist[v] == INF:
                dist[v] = du + 1.0
                queue.append(v)
    return dist


def dijkstra_distances(
    graph: Graph,
    source: int,
    reverse: bool = False,
    max_dist: float = INF,
) -> list[float]:
    """Weighted distances from ``source`` (to it when ``reverse``).

    Works on unweighted graphs too (all weights 1), but prefer
    :func:`bfs_distances` there — it is considerably faster.
    """
    check_vertex(graph, source)
    edges = graph.in_edges if reverse else graph.out_edges
    dist = [INF] * graph.num_vertices
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        du, u = heapq.heappop(heap)
        if du > dist[u]:
            continue
        if du > max_dist:
            break
        for v, w in edges(u):
            nd = du + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def single_pair_distance(graph: Graph, s: int, t: int) -> float:
    """Exact ``dist(s, t)`` by the cheapest applicable online method."""
    if graph.weighted:
        return bidirectional_dijkstra(graph, s, t)
    return bidirectional_bfs(graph, s, t)


def bidirectional_bfs(graph: Graph, s: int, t: int) -> float:
    """Unweighted ``dist(s, t)`` via alternating two-frontier BFS.

    Expands the smaller frontier first; stops as soon as the sum of
    completed levels proves no shorter meeting point can exist.  This is
    the unweighted instantiation of the paper's BIDIJ baseline.
    """
    check_vertex(graph, s)
    check_vertex(graph, t)
    if s == t:
        return 0.0

    dist_f: dict[int, float] = {s: 0.0}
    dist_b: dict[int, float] = {t: 0.0}
    frontier_f: list[int] = [s]
    frontier_b: list[int] = [t]
    depth_f = 0.0
    depth_b = 0.0
    best = INF

    while frontier_f and frontier_b:
        if best <= depth_f + depth_b:
            break
        # Expand the smaller frontier one full level.
        if len(frontier_f) <= len(frontier_b):
            next_frontier: list[int] = []
            for u in frontier_f:
                for v in graph.out_neighbors(u):
                    if v not in dist_f:
                        dist_f[v] = dist_f[u] + 1.0
                        next_frontier.append(v)
                        if v in dist_b:
                            best = min(best, dist_f[v] + dist_b[v])
            frontier_f = next_frontier
            depth_f += 1.0
        else:
            next_frontier = []
            for u in frontier_b:
                for v in graph.in_neighbors(u):
                    if v not in dist_b:
                        dist_b[v] = dist_b[u] + 1.0
                        next_frontier.append(v)
                        if v in dist_f:
                            best = min(best, dist_f[v] + dist_b[v])
            frontier_b = next_frontier
            depth_b += 1.0
    return best


def bidirectional_dijkstra(graph: Graph, s: int, t: int) -> float:
    """Weighted ``dist(s, t)`` by two simultaneous Dijkstra searches.

    The classic termination rule is used: stop when the sum of the two
    heap minima reaches the best meeting distance seen so far.
    """
    check_vertex(graph, s)
    check_vertex(graph, t)
    if s == t:
        return 0.0

    dist_f: dict[int, float] = {s: 0.0}
    dist_b: dict[int, float] = {t: 0.0}
    settled_f: set[int] = set()
    settled_b: set[int] = set()
    heap_f: list[tuple[float, int]] = [(0.0, s)]
    heap_b: list[tuple[float, int]] = [(0.0, t)]
    best = INF

    def expand(
        heap: list[tuple[float, int]],
        dist_here: dict[int, float],
        dist_there: dict[int, float],
        settled: set[int],
        edges: Callable,
    ) -> None:
        nonlocal best
        du, u = heapq.heappop(heap)
        if u in settled:
            return
        settled.add(u)
        if u in dist_there:
            best = min(best, du + dist_there[u])
        for v, w in edges(u):
            nd = du + w
            if nd < dist_here.get(v, INF):
                dist_here[v] = nd
                heapq.heappush(heap, (nd, v))
            if v in dist_there:
                best = min(best, nd + dist_there[v])

    while heap_f and heap_b:
        top_f = heap_f[0][0]
        top_b = heap_b[0][0]
        if best <= top_f + top_b:
            break
        if top_f <= top_b:
            expand(heap_f, dist_f, dist_b, settled_f, graph.out_edges)
        else:
            expand(heap_b, dist_b, dist_f, settled_b, graph.in_edges)
    return best


def kbfs_hop_counts(graph: Graph, sources: Sequence[int]) -> list[list[float]]:
    """Run forward BFS from each source; convenience for tests/benches."""
    return [bfs_distances(graph, s) for s in sources]


def eccentricity(graph: Graph, source: int) -> float:
    """Largest finite hop distance from ``source`` (its eccentricity)."""
    dist = bfs_distances(graph, source)
    finite = [d for d in dist if d != INF]
    return max(finite) if finite else 0.0
