"""Scale-free graph statistics used by Section 2 of the paper.

The paper's complexity bounds rest on three measurable properties of
unweighted scale-free graphs:

* the **power-law rank exponent** gamma of Faloutsos et al. (Lemma 1:
  ``deg(v) = r(v)^gamma / |V|^gamma`` — typically -0.8 <= gamma <= -0.7);
* the **expansion factor** ``R = z2 / z1`` of Newman et al. (Equation 2
  estimates ``R = log |V|``);
* the **hop diameter** ``D_H`` (Equation 1 estimates
  ``D = log|V| / log log|V|``), which bounds the number of indexing
  iterations (Theorems 4 and 6).

This module measures all three on concrete graphs, so tests and benches
can check the assumptions the algorithm's guarantees rest on.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.graphs.digraph import Graph
from repro.graphs.traversal import INF, bfs_distances


def degree_histogram(graph: Graph) -> dict[int, int]:
    """Map ``degree -> number of vertices with that degree``."""
    hist: dict[int, int] = {}
    for v in graph.vertices():
        d = graph.degree(v)
        hist[d] = hist.get(d, 0) + 1
    return hist


def degree_sequence(graph: Graph) -> list[int]:
    """All vertex degrees, sorted non-increasing (rank order)."""
    return sorted((graph.degree(v) for v in graph.vertices()), reverse=True)


def rank_exponent(graph: Graph) -> float:
    """Least-squares estimate of the Faloutsos rank exponent gamma.

    Fits ``log(deg) = gamma * log(rank) + c`` over vertices with
    non-zero degree.  Scale-free graphs typically give
    ``-1.0 < gamma < -0.6``; flatter (near 0) values indicate a
    non-scale-free graph such as a road network.
    """
    seq = [d for d in degree_sequence(graph) if d > 0]
    if len(seq) < 2:
        return 0.0
    xs = [math.log(rank) for rank in range(1, len(seq) + 1)]
    ys = [math.log(d) for d in seq]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        return 0.0
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    return sxy / sxx


def expansion_factor(
    graph: Graph, num_samples: int = 64, seed: int = 0
) -> float:
    """Estimate Newman's expansion factor ``R = z2 / z1``.

    ``z1`` is the mean number of vertices exactly 1 hop away from a
    random vertex and ``z2`` the mean at exactly 2 hops; the paper
    (Equation 2) predicts ``R ≈ log |V|`` for scale-free graphs.
    Estimated from BFS truncated at depth 2 on sampled vertices.
    """
    if graph.num_vertices == 0:
        return 0.0
    rng = random.Random(seed)
    n = graph.num_vertices
    samples = (
        list(graph.vertices())
        if n <= num_samples
        else rng.sample(range(n), num_samples)
    )
    total_z1 = 0
    total_z2 = 0
    for s in samples:
        dist = bfs_distances(graph, s, max_dist=2)
        total_z1 += sum(1 for d in dist if d == 1.0)
        total_z2 += sum(1 for d in dist if d == 2.0)
    if total_z1 == 0:
        return 0.0
    return total_z2 / total_z1


def hop_diameter(
    graph: Graph, exact_threshold: int = 2048, num_samples: int = 64, seed: int = 0
) -> int:
    """The hop diameter ``D_H``: max hops over all finite shortest paths.

    Exact (all-sources BFS) for graphs up to ``exact_threshold``
    vertices; estimated by sampled double-sweep BFS above that.  For
    unweighted graphs this equals the diameter; it bounds the iteration
    counts of Hop-Stepping (Theorem 6) and Hop-Doubling (Theorem 4).
    """
    n = graph.num_vertices
    if n == 0:
        return 0
    if n <= exact_threshold:
        sources = list(graph.vertices())
    else:
        rng = random.Random(seed)
        sources = rng.sample(range(n), min(num_samples, n))

    best = 0
    frontier = list(sources)
    for s in frontier:
        dist = bfs_distances(graph, s)
        far = 0
        far_v = s
        for v, d in enumerate(dist):
            if d != INF and d > far:
                far = d
                far_v = v
        if far > best:
            best = int(far)
        if n > exact_threshold and far_v != s:
            # Double sweep: BFS again from the farthest vertex found.
            dist2 = bfs_distances(graph, far_v)
            far2 = max((d for d in dist2 if d != INF), default=0.0)
            best = max(best, int(far2))
    return best


def predicted_diameter(num_vertices: int) -> float:
    """Equation 1 of the paper: ``D = log|V| / log log|V|``."""
    if num_vertices < 3:
        return float(max(0, num_vertices - 1))
    ln = math.log(num_vertices)
    return ln / math.log(ln)


def predicted_expansion(num_vertices: int) -> float:
    """Equation 2 of the paper: ``R = log|V|``."""
    if num_vertices <= 1:
        return 0.0
    return math.log(num_vertices)


@dataclass(frozen=True)
class GraphSummary:
    """A one-line profile of a graph, mirroring Table 6's left columns."""

    num_vertices: int
    num_edges: int
    max_degree: int
    density: float
    size_bytes: int
    directed: bool
    weighted: bool
    rank_exponent: float
    expansion: float

    def as_row(self) -> list[str]:
        """Render for the benchmark tables."""
        from repro.utils.prettyprint import format_bytes, format_count

        return [
            format_count(self.num_vertices),
            format_count(self.num_edges),
            format_count(self.max_degree),
            f"{self.density:.2f}",
            format_bytes(self.size_bytes),
        ]


def summarize(graph: Graph, seed: int = 0) -> GraphSummary:
    """Compute the :class:`GraphSummary` of ``graph``."""
    max_degree = max((graph.degree(v) for v in graph.vertices()), default=0)
    return GraphSummary(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        max_degree=max_degree,
        density=graph.density,
        size_bytes=graph.size_in_bytes(),
        directed=graph.directed,
        weighted=graph.weighted,
        rank_exponent=rank_exponent(graph),
        expansion=expansion_factor(graph, seed=seed),
    )
