"""Reading and writing graphs.

Two formats are supported:

* **text edge lists** — the de-facto SNAP/KONECT interchange format the
  paper's datasets ship in: one ``u v [w]`` line per edge, ``#`` or ``%``
  comment lines ignored, arbitrary (integer or string) vertex labels;
* **binary** — a compact little-endian format mirroring the paper's
  storage convention (32-bit vertex ids; float64 weights when present)
  for fast reload of prepared benchmark graphs.

Both round-trip through :class:`~repro.graphs.Graph`.
"""

from __future__ import annotations

import gzip
import io
import struct
from pathlib import Path
from typing import IO

from repro.graphs.builder import GraphBuilder
from repro.graphs.digraph import Graph

_MAGIC = b"RPRG"
_VERSION = 1


def _open_text(path: str | Path, mode: str) -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, mode + "b"), encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def read_edge_list(
    path: str | Path,
    directed: bool = True,
    weighted: bool = False,
    comment_chars: str = "#%",
) -> Graph:
    """Parse a text edge list into a :class:`Graph`.

    Vertex labels may be arbitrary tokens; they are renumbered densely
    in first-seen order.  Lines starting with any character in
    ``comment_chars`` (after stripping) and blank lines are skipped.
    ``.gz`` paths are decompressed transparently.
    """
    builder = GraphBuilder(directed=directed, weighted=weighted)
    with _open_text(path, "r") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line[0] in comment_chars:
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"{path}:{lineno}: expected 'u v [w]', got {line!r}")
            if weighted:
                if len(parts) < 3:
                    raise ValueError(
                        f"{path}:{lineno}: weighted graph needs a weight column"
                    )
                builder.add_edge(parts[0], parts[1], float(parts[2]))
            else:
                builder.add_edge(parts[0], parts[1])
    return builder.build()


def write_edge_list(graph: Graph, path: str | Path) -> None:
    """Write ``graph`` as a text edge list (weights included if weighted)."""
    with _open_text(path, "w") as handle:
        handle.write(f"# |V|={graph.num_vertices} |E|={graph.num_edges}\n")
        handle.write(
            f"# directed={graph.directed} weighted={graph.weighted}\n"
        )
        for u, v, w in graph.edges():
            if graph.weighted:
                handle.write(f"{u} {v} {w:g}\n")
            else:
                handle.write(f"{u} {v}\n")


def write_binary(graph: Graph, path: str | Path) -> None:
    """Serialize ``graph`` to the compact binary format."""
    flags = (1 if graph.directed else 0) | (2 if graph.weighted else 0)
    with open(path, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(
            struct.pack(
                "<BBIQ", _VERSION, flags, graph.num_vertices, graph.num_edges
            )
        )
        if graph.weighted:
            for u, v, w in graph.edges():
                handle.write(struct.pack("<IId", u, v, w))
        else:
            for u, v, _ in graph.edges():
                handle.write(struct.pack("<II", u, v))


def read_binary(path: str | Path) -> Graph:
    """Load a graph previously written by :func:`write_binary`."""
    with open(path, "rb") as handle:
        magic = handle.read(4)
        if magic != _MAGIC:
            raise ValueError(f"{path}: not a repro graph file (bad magic {magic!r})")
        version, flags, n, m = struct.unpack("<BBIQ", handle.read(14))
        if version != _VERSION:
            raise ValueError(f"{path}: unsupported version {version}")
        directed = bool(flags & 1)
        weighted = bool(flags & 2)
        edges = []
        if weighted:
            record = struct.Struct("<IId")
            for _ in range(m):
                edges.append(record.unpack(handle.read(record.size)))
        else:
            record = struct.Struct("<II")
            for _ in range(m):
                u, v = record.unpack(handle.read(record.size))
                edges.append((u, v))
    return Graph.from_edges(n, edges, directed=directed, weighted=weighted)
