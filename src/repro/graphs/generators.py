"""Synthetic graph generators.

The paper's synthetic evaluation (Section 8, Figure 9, syn1-syn6) uses
the **GLP** (Generalized Linear Preference) model of Bu & Towsley
[INFOCOM 2002], a preferential-attachment variant of the BA model with
tunable power-law exponent.  The paper sets ``m = 1.13`` and ``m0 = 10``
"as in [11], which gives a power law exponent of 2.155"; those defaults
are reproduced here (together with the companion parameters ``p`` and
``beta`` from the GLP paper that the exponent calculation assumes).

Every generator takes an integer ``seed`` and is fully deterministic for
a given seed, which is what makes the benchmark datasets reproducible.

Also provided: BA, power-law configuration model, Erdős–Rényi, and the
deterministic families (star — Figure 2 of the paper — path, cycle,
grid, complete) used by tests and by the road-network discussion in
Section 7.
"""

from __future__ import annotations

import random

from repro.graphs.digraph import Graph
from repro.utils.validation import check_nonnegative, check_positive, check_probability

__all__ = [
    "glp_graph",
    "ba_graph",
    "configuration_model_graph",
    "er_graph",
    "star_graph",
    "path_graph",
    "cycle_graph",
    "grid_graph",
    "complete_graph",
]


def _sample_preferential(
    rng: random.Random,
    endpoint_pool: list[int],
    degrees: list[int],
    beta: float,
) -> int:
    """Sample a vertex with probability proportional to ``degree - beta``.

    Uses rejection sampling on top of the classic endpoint-pool trick:
    a uniform draw from the pool is proportional to degree; accepting
    with probability ``1 - beta/d`` corrects it to ``d - beta``.  The
    acceptance rate is at least ``1 - beta`` because degrees are >= 1.
    """
    while True:
        v = endpoint_pool[rng.randrange(len(endpoint_pool))]
        d = degrees[v]
        if d <= 0:  # pragma: no cover - pool only contains touched vertices
            continue
        if rng.random() < 1.0 - beta / d:
            return v


def glp_graph(
    num_vertices: int,
    m: float = 1.13,
    m0: int = 10,
    p: float = 0.4695,
    beta: float = 0.6447,
    seed: int = 0,
    directed: bool = False,
) -> Graph:
    """Generate a GLP (Generalized Linear Preference) scale-free graph.

    The process (Bu & Towsley 2002):

    * start from ``m0`` vertices connected in a ring;
    * repeatedly, with probability ``p`` add ``~m`` new edges between
      existing vertices chosen with linear preference
      ``P(v) ∝ deg(v) - beta``; with probability ``1 - p`` add a new
      vertex with ``~m`` edges to preferentially chosen targets;
    * stop once ``num_vertices`` vertices exist.

    ``m`` may be fractional: each event adds ``floor(m)`` edges plus one
    extra with probability ``frac(m)`` (minimum one edge per new vertex
    so the graph stays connected).

    With ``directed=True`` each generated edge is oriented uniformly at
    random and 30% of edges gain a reciprocal arc — a cheap but
    effective imitation of the in/out power laws of web/social graphs,
    used by the benchmark dataset catalog for directed stand-ins.
    """
    check_positive("num_vertices", num_vertices)
    check_positive("m", m)
    check_probability("p", p)
    check_probability("beta", beta)
    if m0 < 2:
        raise ValueError(f"m0 must be >= 2, got {m0}")
    if num_vertices < m0:
        m0 = max(2, num_vertices)

    rng = random.Random(seed)
    degrees = [0] * num_vertices
    endpoint_pool: list[int] = []
    edges: set[tuple[int, int]] = set()

    def add_edge(u: int, v: int) -> bool:
        if u == v:
            return False
        key = (u, v) if u < v else (v, u)
        if key in edges:
            return False
        edges.add(key)
        degrees[u] += 1
        degrees[v] += 1
        endpoint_pool.append(u)
        endpoint_pool.append(v)
        return True

    # Seed ring over the first m0 vertices.
    for i in range(m0):
        add_edge(i, (i + 1) % m0)

    def edges_this_event() -> int:
        base = int(m)
        extra = 1 if rng.random() < (m - base) else 0
        return max(1, base + extra)

    next_vertex = m0
    while next_vertex < num_vertices:
        if rng.random() < p and len(edges) >= 2:
            # Add edges between existing vertices.
            for _ in range(edges_this_event()):
                for _attempt in range(32):
                    u = _sample_preferential(rng, endpoint_pool, degrees, beta)
                    v = _sample_preferential(rng, endpoint_pool, degrees, beta)
                    if add_edge(u, v):
                        break
        else:
            # Add a new vertex with preferential links.
            v = next_vertex
            next_vertex += 1
            wanted = edges_this_event()
            added = 0
            for _ in range(wanted):
                for _attempt in range(32):
                    u = _sample_preferential(rng, endpoint_pool, degrees, beta)
                    if add_edge(v, u):
                        added += 1
                        break
            if added == 0:
                # Guarantee connectivity: attach to a random pool vertex.
                u = endpoint_pool[rng.randrange(len(endpoint_pool))]
                add_edge(v, u)

    if not directed:
        return Graph.from_edges(num_vertices, sorted(edges), directed=False)

    arcs: list[tuple[int, int]] = []
    for u, v in sorted(edges):
        if rng.random() < 0.5:
            u, v = v, u
        arcs.append((u, v))
        if rng.random() < 0.3:
            arcs.append((v, u))
    return Graph.from_edges(num_vertices, arcs, directed=True)


def ba_graph(
    num_vertices: int,
    m: int = 2,
    seed: int = 0,
    directed: bool = False,
) -> Graph:
    """Generate a Barabási–Albert preferential-attachment graph.

    Each new vertex attaches to ``m`` distinct existing vertices chosen
    proportionally to degree (the model the paper's diameter analysis in
    Section 2.2 is based on, via Bollobás & Riordan).
    """
    check_positive("num_vertices", num_vertices)
    check_positive("m", m)
    rng = random.Random(seed)
    m = min(m, max(1, num_vertices - 1))

    edges: set[tuple[int, int]] = set()
    endpoint_pool: list[int] = []

    def add_edge(u: int, v: int) -> None:
        key = (u, v) if u < v else (v, u)
        edges.add(key)
        endpoint_pool.append(u)
        endpoint_pool.append(v)

    seed_size = min(m + 1, num_vertices)
    for i in range(seed_size):
        for j in range(i + 1, seed_size):
            add_edge(i, j)

    for v in range(seed_size, num_vertices):
        targets: set[int] = set()
        while len(targets) < m:
            u = endpoint_pool[rng.randrange(len(endpoint_pool))]
            targets.add(u)
        for u in targets:
            add_edge(v, u)

    if not directed:
        return Graph.from_edges(num_vertices, sorted(edges), directed=False)
    arcs = []
    for u, v in sorted(edges):
        if rng.random() < 0.5:
            u, v = v, u
        arcs.append((u, v))
        if rng.random() < 0.3:
            arcs.append((v, u))
    return Graph.from_edges(num_vertices, arcs, directed=True)


def configuration_model_graph(
    num_vertices: int,
    exponent: float = 2.3,
    min_degree: int = 1,
    seed: int = 0,
    directed: bool = False,
) -> Graph:
    """Generate a power-law graph via the configuration model.

    Degrees are drawn from a discrete power law
    ``P(k) ∝ k^-exponent`` for ``k >= min_degree``; half-edges are then
    paired uniformly at random, discarding self loops and parallel
    edges (the "erased" configuration model).  This produces graphs
    matching the paper's scale-free assumption with an explicit,
    controllable exponent ``2 <= alpha <= 3``.
    """
    check_positive("num_vertices", num_vertices)
    check_positive("min_degree", min_degree)
    if exponent <= 1.0:
        raise ValueError(f"exponent must be > 1, got {exponent}")
    rng = random.Random(seed)

    max_degree = max(min_degree + 1, int(round(num_vertices ** 0.7)))
    ks = list(range(min_degree, max_degree + 1))
    weights = [k ** (-exponent) for k in ks]
    degrees = rng.choices(ks, weights=weights, k=num_vertices)
    if sum(degrees) % 2 == 1:
        degrees[0] += 1

    stubs: list[int] = []
    for v, d in enumerate(degrees):
        stubs.extend([v] * d)
    rng.shuffle(stubs)

    edges: set[tuple[int, int]] = set()
    for i in range(0, len(stubs) - 1, 2):
        u, v = stubs[i], stubs[i + 1]
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        edges.add(key)

    if not directed:
        return Graph.from_edges(num_vertices, sorted(edges), directed=False)
    arcs = []
    for u, v in sorted(edges):
        if rng.random() < 0.5:
            u, v = v, u
        arcs.append((u, v))
    return Graph.from_edges(num_vertices, arcs, directed=True)


def er_graph(
    num_vertices: int,
    num_edges: int,
    seed: int = 0,
    directed: bool = False,
) -> Graph:
    """Generate an Erdős–Rényi ``G(n, m)`` graph (non-scale-free control)."""
    check_positive("num_vertices", num_vertices)
    check_nonnegative("num_edges", num_edges)
    rng = random.Random(seed)
    edges: set[tuple[int, int]] = set()
    max_possible = (
        num_vertices * (num_vertices - 1)
        if directed
        else num_vertices * (num_vertices - 1) // 2
    )
    target = min(num_edges, max_possible)
    while len(edges) < target:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u == v:
            continue
        if not directed and u > v:
            u, v = v, u
        edges.add((u, v))
    return Graph.from_edges(num_vertices, sorted(edges), directed=directed)


def star_graph(num_leaves: int, directed: bool = False) -> Graph:
    """The star ``GS`` of the paper's Figure 2: hub 0, leaves 1..n."""
    check_nonnegative("num_leaves", num_leaves)
    edges = [(0, leaf) for leaf in range(1, num_leaves + 1)]
    return Graph.from_edges(num_leaves + 1, edges, directed=directed)


def path_graph(num_vertices: int, directed: bool = False) -> Graph:
    """A simple path ``0 - 1 - ... - n-1`` (maximal hop diameter)."""
    check_positive("num_vertices", num_vertices)
    edges = [(i, i + 1) for i in range(num_vertices - 1)]
    return Graph.from_edges(num_vertices, edges, directed=directed)


def cycle_graph(num_vertices: int, directed: bool = False) -> Graph:
    """A cycle over ``num_vertices`` vertices."""
    if num_vertices < 3:
        raise ValueError(f"cycle needs >= 3 vertices, got {num_vertices}")
    edges = [(i, (i + 1) % num_vertices) for i in range(num_vertices)]
    return Graph.from_edges(num_vertices, edges, directed=directed)


def grid_graph(rows: int, cols: int) -> Graph:
    """An undirected ``rows x cols`` grid — the road-network-like family
    discussed in Section 7 (no high-degree hubs, degree ranking weak)."""
    check_positive("rows", rows)
    check_positive("cols", cols)
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return Graph.from_edges(rows * cols, edges, directed=False)


def complete_graph(num_vertices: int, directed: bool = False) -> Graph:
    """The complete graph ``K_n`` (worst case for plain 2-hop covers)."""
    check_positive("num_vertices", num_vertices)
    if directed:
        edges = [
            (u, v)
            for u in range(num_vertices)
            for v in range(num_vertices)
            if u != v
        ]
    else:
        edges = [
            (u, v)
            for u in range(num_vertices)
            for v in range(u + 1, num_vertices)
        ]
    return Graph.from_edges(num_vertices, edges, directed=directed)
