"""Static graph container used throughout the library.

The paper (Section 1) defines the input as a static directed unweighted
graph ``G = (V, E)`` and later extends the algorithms to undirected and
positively weighted graphs (Section 7).  :class:`Graph` supports all four
combinations behind one interface:

* ``directed`` — whether ``(u, v)`` is distinct from ``(v, u)``;
* ``weighted`` — whether edges carry positive lengths (default length 1).

Vertices are dense integers ``0 .. n-1``.  The structure is immutable
after construction; use :class:`repro.graphs.builder.GraphBuilder` or the
``from_edges`` constructor to create instances.

Storage convention (mirrors the paper's experimental setup, Section 8:
"a 32-bit integer for each vertex ... an 8-bit integer for the distance
value"): :meth:`Graph.size_in_bytes` reports 8 bytes per stored arc plus
1 byte per arc for weighted graphs, which is what the "|G| (MB)" column
of Table 6 counts.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

Edge = tuple[int, int]
WeightedEdge = tuple[int, int, float]


class Graph:
    """An immutable directed or undirected graph with dense vertex ids.

    Adjacency is stored as forward and (for directed graphs) reverse
    adjacency lists.  For undirected graphs the forward lists contain
    every neighbour and the reverse lists alias the forward ones, so
    ``in_neighbors`` and ``out_neighbors`` coincide.

    Parameters are not meant to be passed directly: use
    :meth:`from_edges`, :class:`~repro.graphs.builder.GraphBuilder`, a
    generator from :mod:`repro.graphs.generators`, or a reader from
    :mod:`repro.graphs.io`.
    """

    __slots__ = (
        "_n",
        "_m",
        "_directed",
        "_weighted",
        "_out",
        "_in",
        "_out_w",
        "_in_w",
    )

    def __init__(
        self,
        num_vertices: int,
        out_adj: list[list[int]],
        in_adj: list[list[int]],
        out_weights: list[list[float]] | None,
        in_weights: list[list[float]] | None,
        directed: bool,
        weighted: bool,
        num_edges: int,
    ) -> None:
        self._n = num_vertices
        self._m = num_edges
        self._directed = directed
        self._weighted = weighted
        self._out = out_adj
        self._in = in_adj
        self._out_w = out_weights
        self._in_w = in_weights

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: Iterable[Edge] | Iterable[WeightedEdge],
        directed: bool = True,
        weighted: bool = False,
        allow_self_loops: bool = False,
    ) -> "Graph":
        """Build a graph from an iterable of edges.

        Parallel edges are collapsed (keeping the minimum weight for
        weighted graphs) and self loops are dropped unless
        ``allow_self_loops``; self loops never affect shortest-path
        distances but would waste label entries.

        For weighted graphs each edge must be a ``(u, v, w)`` triple with
        ``w > 0``; for unweighted graphs ``(u, v)`` pairs (a third
        element, if present, is ignored).
        """
        if num_vertices < 0:
            raise ValueError(f"num_vertices must be >= 0, got {num_vertices}")

        best: dict[Edge, float] = {}
        for edge in edges:
            u, v = edge[0], edge[1]
            if not (0 <= u < num_vertices and 0 <= v < num_vertices):
                raise ValueError(
                    f"edge ({u}, {v}) out of range for {num_vertices} vertices"
                )
            if u == v and not allow_self_loops:
                continue
            if weighted:
                if len(edge) < 3:
                    raise ValueError(
                        f"weighted graph requires (u, v, w) edges: {edge!r}"
                    )
                w = float(edge[2])
                if not w > 0:
                    raise ValueError(
                        f"edge weight must be > 0, got {w!r} on ({u}, {v})"
                    )
            else:
                w = 1.0
            if not directed and u > v:
                u, v = v, u
            key = (u, v)
            old = best.get(key)
            if old is None or w < old:
                best[key] = w

        out_adj: list[list[int]] = [[] for _ in range(num_vertices)]
        out_w: list[list[float]] | None = (
            [[] for _ in range(num_vertices)] if weighted else None
        )
        if directed:
            in_adj: list[list[int]] = [[] for _ in range(num_vertices)]
            in_w = [[] for _ in range(num_vertices)] if weighted else None
        else:
            in_adj = out_adj
            in_w = out_w

        for (u, v), w in sorted(best.items()):
            out_adj[u].append(v)
            if weighted:
                out_w[u].append(w)
            if directed:
                in_adj[v].append(u)
                if weighted:
                    in_w[v].append(w)
            elif u != v:
                out_adj[v].append(u)
                if weighted:
                    out_w[v].append(w)

        return cls(
            num_vertices,
            out_adj,
            in_adj,
            out_w,
            in_w,
            directed,
            weighted,
            len(best),
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of edges ``|E|`` (undirected edges counted once)."""
        return self._m

    @property
    def directed(self) -> bool:
        """Whether the graph is directed."""
        return self._directed

    @property
    def weighted(self) -> bool:
        """Whether edges carry explicit positive weights."""
        return self._weighted

    @property
    def density(self) -> float:
        """Average degree ``|E| / |V|`` as reported in the paper's tables."""
        return self._m / self._n if self._n else 0.0

    def vertices(self) -> range:
        """Iterate over all vertex ids."""
        return range(self._n)

    def out_neighbors(self, v: int) -> Sequence[int]:
        """Vertices ``u`` with an arc ``v -> u`` (all neighbours if undirected)."""
        return self._out[v]

    def in_neighbors(self, v: int) -> Sequence[int]:
        """Vertices ``u`` with an arc ``u -> v`` (all neighbours if undirected)."""
        return self._in[v]

    def out_degree(self, v: int) -> int:
        """Number of outgoing arcs of ``v``."""
        return len(self._out[v])

    def in_degree(self, v: int) -> int:
        """Number of incoming arcs of ``v``."""
        return len(self._in[v])

    def degree(self, v: int) -> int:
        """Total degree: ``out + in`` for directed graphs, plain degree otherwise."""
        if self._directed:
            return len(self._out[v]) + len(self._in[v])
        return len(self._out[v])

    def out_edges(self, v: int) -> Iterator[tuple[int, float]]:
        """Yield ``(target, weight)`` pairs for arcs leaving ``v``."""
        if self._weighted:
            yield from zip(self._out[v], self._out_w[v])
        else:
            for u in self._out[v]:
                yield u, 1.0

    def in_edges(self, v: int) -> Iterator[tuple[int, float]]:
        """Yield ``(source, weight)`` pairs for arcs entering ``v``."""
        if self._weighted:
            yield from zip(self._in[v], self._in_w[v])
        else:
            for u in self._in[v]:
                yield u, 1.0

    def edges(self) -> Iterator[WeightedEdge]:
        """Yield every edge once as ``(u, v, w)``.

        For undirected graphs each edge is reported once with
        ``u <= v``; for directed graphs in arc direction.
        """
        for u in range(self._n):
            if self._weighted:
                pairs = zip(self._out[u], self._out_w[u])
            else:
                pairs = ((v, 1.0) for v in self._out[u])
            for v, w in pairs:
                if self._directed or u <= v:
                    yield u, v, w

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the arc ``u -> v`` (or undirected edge ``{u, v}``) exists."""
        row = self._out[u]
        if len(self._out[v] if not self._directed else row) < 16:
            return v in row
        return v in row

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of arc ``u -> v``; raises ``KeyError`` if absent."""
        row = self._out[u]
        for i, t in enumerate(row):
            if t == v:
                return self._out_w[u][i] if self._weighted else 1.0
        raise KeyError(f"no edge ({u}, {v})")

    # ------------------------------------------------------------------
    # Size accounting (paper convention)
    # ------------------------------------------------------------------
    def num_arcs(self) -> int:
        """Number of stored arcs: ``|E|`` for directed, ``2|E|`` for undirected."""
        return self._m if self._directed else 2 * self._m

    def size_in_bytes(self) -> int:
        """Approximate on-disk size using the paper's 32-bit-vertex convention.

        Each stored arc costs two 32-bit vertex ids; weighted graphs add
        one 8-bit length per arc (Section 8's storage description).
        """
        per_arc = 8 + (1 if self._weighted else 0)
        return self.num_arcs() * per_arc + 4 * self._n

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._n == other._n
            and self._directed == other._directed
            and self._weighted == other._weighted
            and sorted(self.edges()) == sorted(other.edges())
        )

    def __hash__(self) -> int:  # Graphs are mutable-free but large; id-hash.
        return id(self)

    def __repr__(self) -> str:
        kind = "directed" if self._directed else "undirected"
        w = "weighted" if self._weighted else "unweighted"
        return f"Graph(|V|={self._n}, |E|={self._m}, {kind}, {w})"
