"""Hitting sets and hub dimension (Section 2.2 of the paper).

The paper's complexity guarantees rest on three empirical assumptions
about unweighted scale-free graphs; this module measures each of them
on a concrete graph:

* **Assumption 1** — there are small integers ``d0`` and ``h`` and a
  set ``H`` of the ``h`` highest-degree vertices such that every pair
  connected by a shortest path of hop length >= ``d0`` has *some*
  shortest path hit by ``H``.  :func:`verify_long_path_hitting`
  samples such pairs and reports the smallest top-degree prefix that
  hits them all.
* **Assumption 2** — the ``H``-excluded neighbourhood ``Ne(v)`` (the
  ball of radius ``d0`` around ``v`` minus everything already covered
  through ``H``) is small.  :func:`h_excluded_neighborhood` implements
  the ``N``, ``N_H``, ``N''`` and ``Ne`` sets exactly as defined in
  the paper.
* **Assumption 3** — the *hub dimension*: for each vertex a set of
  ``O(h)`` vertices hits all shortest paths through it.
  :func:`hub_dimension_estimate` upper-bounds it per vertex by greedy
  set cover over sampled shortest paths.

These are measurement tools: the benches print them next to the label
sizes so the reader can see the assumptions holding (or failing, on a
grid) on the same graphs the index is built from.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graphs.digraph import Graph
from repro.graphs.traversal import INF, bfs_distances

#: The paper derives d0 = 4 for typical rank exponents (Section 2.2).
DEFAULT_D0 = 4


def _sample_path_vertices(
    graph: Graph, s: int, t: int, rng: random.Random
) -> list[list[int]] | None:
    """Up to a few distinct shortest s->t paths (vertex lists).

    BFS parents are sampled randomly so repeated calls explore
    different shortest paths.
    """
    dist = bfs_distances(graph, s)
    if dist[t] == INF:
        return None
    paths = []
    for _ in range(4):
        path = [t]
        cur = t
        while cur != s:
            preds = [
                p for p in graph.in_neighbors(cur) if dist[p] == dist[cur] - 1
            ]
            if not preds:  # pragma: no cover - BFS guarantees a parent
                return None
            cur = rng.choice(preds)
            path.append(cur)
        paths.append(list(reversed(path)))
    unique = {tuple(p) for p in paths}
    return [list(p) for p in unique]


@dataclass(frozen=True)
class HittingReport:
    """Outcome of :func:`verify_long_path_hitting`."""

    d0: int
    sampled_pairs: int
    long_pairs: int
    #: Smallest top-degree prefix size hitting one shortest path per
    #: long pair; None when even the largest tested prefix failed.
    h_needed: int | None
    max_h_tested: int

    @property
    def assumption_holds(self) -> bool:
        return self.long_pairs == 0 or self.h_needed is not None


def verify_long_path_hitting(
    graph: Graph,
    d0: int = DEFAULT_D0,
    num_pairs: int = 200,
    max_h: int = 64,
    seed: int = 0,
) -> HittingReport:
    """Assumption 1: long shortest paths are hit by few top vertices.

    Samples connected pairs at hop distance >= ``d0`` and finds the
    smallest ``h`` such that the ``h`` highest-degree vertices hit at
    least one sampled shortest path of every pair.
    """
    rng = random.Random(seed)
    n = graph.num_vertices
    if n < 2:
        return HittingReport(d0, 0, 0, 0, max_h)
    order = sorted(range(n), key=lambda v: (-graph.degree(v), v))
    prefix_rank = {v: i for i, v in enumerate(order)}

    long_pair_best_rank: list[int] = []
    sampled = 0
    attempts = 0
    while sampled < num_pairs and attempts < num_pairs * 8:
        attempts += 1
        s = rng.randrange(n)
        dist = bfs_distances(graph, s)
        candidates = [
            t for t, d in enumerate(dist) if d != INF and d >= d0 and t != s
        ]
        if not candidates:
            continue
        t = rng.choice(candidates)
        sampled += 1
        paths = _sample_path_vertices(graph, s, t, rng)
        if not paths:
            continue
        # The pair is hit by prefix h if SOME sampled path has an
        # interior vertex within the top-h (endpoints excluded, as in
        # the paper: H vertices hit the path, endpoints answer via
        # their own labels anyway).
        best = INF
        for path in paths:
            interior = path[1:-1] if len(path) > 2 else path
            if interior:
                best = min(
                    best, min(prefix_rank[v] for v in interior)
                )
        long_pair_best_rank.append(int(best) if best != INF else max_h + 1)

    if not long_pair_best_rank:
        return HittingReport(d0, sampled, 0, 0, max_h)
    needed = max(long_pair_best_rank) + 1
    return HittingReport(
        d0=d0,
        sampled_pairs=sampled,
        long_pairs=len(long_pair_best_rank),
        h_needed=needed if needed <= max_h else None,
        max_h_tested=max_h,
    )


def h_excluded_neighborhood(
    graph: Graph,
    v: int,
    hub_set: set[int],
    d0: int = DEFAULT_D0,
) -> set[int]:
    """The paper's ``Ne(v)`` for a given hub set ``H``.

    Definitions (Section 2.2): ``N(v)`` is every vertex within hop
    distance < ``d0`` of ``v`` in either direction; ``N_H(v)`` its hub
    members; ``N''(v)`` the members reachable on a short shortest path
    that passes through a hub.  Then ``Ne(v) = (N(v) - N''(v)) ∪
    N_H(v)`` — the neighbourhood v's own label must cover itself.
    """
    dist_out = bfs_distances(graph, v, max_dist=d0 - 1)
    dist_in = (
        bfs_distances(graph, v, reverse=True, max_dist=d0 - 1)
        if graph.directed
        else dist_out
    )

    neighborhood = {
        u
        for u in range(graph.num_vertices)
        if u != v and (dist_out[u] < d0 or dist_in[u] < d0)
    }
    hubs_nearby = neighborhood & hub_set

    # N''(v): vertices whose short shortest path from/to v can route
    # through a nearby hub at equal hop length.
    through_hub: set[int] = set()
    for direction, dist_v in (("out", dist_out), ("in", dist_in)):
        for w in hubs_nearby:
            dw = dist_v[w]
            if dw == INF:
                continue
            reach = bfs_distances(
                graph, w, reverse=(direction == "in"), max_dist=d0 - 1 - dw
            )
            for u in neighborhood:
                if u in hub_set:
                    continue
                du = dist_v[u]
                if du < d0 and dw + reach[u] == du:
                    through_hub.add(u)
        if not graph.directed:
            break
    return (neighborhood - through_hub) | hubs_nearby


def max_excluded_neighborhood(
    graph: Graph,
    num_hubs: int = 16,
    d0: int = DEFAULT_D0,
    num_samples: int = 32,
    seed: int = 0,
) -> tuple[float, int]:
    """Assumption 2 probe: (avg, max) size of ``Ne(v)`` over samples."""
    rng = random.Random(seed)
    n = graph.num_vertices
    if n == 0:
        return 0.0, 0
    order = sorted(range(n), key=lambda v: (-graph.degree(v), v))
    hubs = set(order[:num_hubs])
    samples = (
        list(range(n)) if n <= num_samples else rng.sample(range(n), num_samples)
    )
    sizes = [
        len(h_excluded_neighborhood(graph, v, hubs, d0)) for v in samples
    ]
    return sum(sizes) / len(sizes), max(sizes)


def hub_dimension_estimate(
    graph: Graph,
    num_vertices_sampled: int = 16,
    paths_per_vertex: int = 24,
    seed: int = 0,
) -> int:
    """Assumption 3 probe: an upper bound on the hub dimension ``h``.

    For each sampled vertex ``u``, greedily set-covers a sample of
    shortest paths *through* ``u`` with as few vertices as possible;
    the estimate is the maximum cover size over sampled vertices.
    Greedy cover is a ``ln``-approximation, so this is an upper bound
    on the sampled hub dimension.
    """
    rng = random.Random(seed)
    n = graph.num_vertices
    if n < 3:
        return n
    samples = (
        list(range(n))
        if n <= num_vertices_sampled
        else rng.sample(range(n), num_vertices_sampled)
    )
    worst = 0
    for u in samples:
        # Sample paths through u: combine a path into u with one out.
        dist_to = bfs_distances(graph, u, reverse=True)
        dist_from = bfs_distances(graph, u)
        sources = [x for x, d in enumerate(dist_to) if 0 < d < INF]
        targets = [x for x, d in enumerate(dist_from) if 0 < d < INF]
        if not sources or not targets:
            continue
        paths = []
        for _ in range(paths_per_vertex):
            s = rng.choice(sources)
            t = rng.choice(targets)
            if bfs_distances(graph, s)[t] != dist_to[s] + dist_from[t]:
                continue  # u is not on a shortest s -> t path
            left = _sample_path_vertices(graph, s, u, rng)
            right = _sample_path_vertices(graph, u, t, rng)
            if left and right:
                paths.append(left[0][:-1] + right[0])
        if not paths:
            continue
        # Greedy set cover of the sampled paths.
        uncovered = list(range(len(paths)))
        cover = 0
        while uncovered:
            counts: dict[int, int] = {}
            for i in uncovered:
                for x in paths[i]:
                    counts[x] = counts.get(x, 0) + 1
            best_vertex = max(counts, key=lambda x: (counts[x], graph.degree(x)))
            uncovered = [
                i for i in uncovered if best_vertex not in paths[i]
            ]
            cover += 1
        worst = max(worst, cover)
    return worst
