"""Atomic file replacement for index writers.

Index files are written once and read many times; a crash mid-write
must never leave a truncated file where a valid index used to be (or
where ``load`` will later look).  The contract here is *atomic but
fsync-free*: data is streamed to a temporary sibling in the same
directory and moved into place with ``os.replace``, which is atomic on
POSIX and Windows.  Durability against power loss is explicitly not
promised — a rebuildable index does not warrant an fsync stall — only
that readers see either the old complete file or the new complete one.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from pathlib import Path
from typing import IO, Iterator

# Sampled once at import, before any worker threads exist: toggling
# the process-wide umask per save would race with other threads'
# file creation.
_UMASK = os.umask(0)
os.umask(_UMASK)


@contextlib.contextmanager
def atomic_binary_writer(path: str | os.PathLike) -> Iterator[IO[bytes]]:
    """Yield a binary file handle whose contents replace ``path`` atomically.

    The temporary file lives next to the destination (same filesystem,
    so the rename cannot degrade into a copy) under a unique name, so
    concurrent writers to the same path cannot interleave — last
    rename wins with a complete file either way.  On any exception the
    temporary file is removed and the destination is left untouched.
    """
    target = Path(path)
    fd, tmp = tempfile.mkstemp(
        prefix=f".{target.name}.tmp.", dir=target.parent
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            yield fh
        # mkstemp creates 0600; give the published file the ordinary
        # umask-derived permissions a plain open() would have.
        os.chmod(tmp, 0o666 & ~_UMASK)
        os.replace(tmp, target)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
