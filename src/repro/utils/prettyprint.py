"""Plain-text table rendering for the benchmark drivers.

The paper reports its evaluation as tables (Table 6, 7, 8) and series
(Figures 8-10).  The drivers in :mod:`repro.bench` produce rows of
cells; this module turns them into aligned monospace tables so the
harness output can be compared side by side with the paper.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with binary units.

    >>> format_bytes(512)
    '512B'
    >>> format_bytes(2048)
    '2.0KB'
    >>> format_bytes(3 * 1024 * 1024)
    '3.0MB'
    """
    if num_bytes < 0:
        raise ValueError("byte count must be non-negative")
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024.0 or unit == "TB":
            if unit == "B":
                return f"{int(value)}B"
            return f"{value:.1f}{unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_count(count: float) -> str:
    """Render a count compactly: 950 -> '950', 5_300_000 -> '5.3M'.

    >>> format_count(950)
    '950'
    >>> format_count(62_000)
    '62.0K'
    >>> format_count(5_300_000)
    '5.3M'
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if count < 1000:
        return str(int(count))
    if count < 1_000_000:
        return f"{count / 1000:.1f}K"
    if count < 1_000_000_000:
        return f"{count / 1_000_000:.1f}M"
    return f"{count / 1_000_000_000:.2f}B"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table.

    Cells are stringified with ``str``; ``None`` renders as ``—`` which
    mirrors the paper's convention for methods that failed to finish.
    """
    str_rows = [["—" if cell is None else str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
