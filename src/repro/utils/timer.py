"""Wall-clock timing helpers used by builders and the benchmark harness."""

from __future__ import annotations

import time


class Timer:
    """A restartable stopwatch.

    The timer can be used either imperatively::

        t = Timer()
        t.start()
        ...
        elapsed = t.stop()

    or as a context manager::

        with Timer() as t:
            ...
        print(t.elapsed)

    Repeated ``start``/``stop`` cycles accumulate into :attr:`elapsed`,
    which makes it convenient for timing only selected phases of an
    iterative computation (e.g. generation vs. pruning inside one
    indexing iteration).
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started_at: float | None = None

    def start(self) -> "Timer":
        """Begin (or resume) timing.  Starting twice is an error."""
        if self._started_at is not None:
            raise RuntimeError("Timer is already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop timing and return the total accumulated elapsed seconds."""
        if self._started_at is None:
            raise RuntimeError("Timer is not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    def reset(self) -> None:
        """Zero the accumulated time.  The timer must be stopped."""
        if self._started_at is not None:
            raise RuntimeError("cannot reset a running Timer")
        self.elapsed = 0.0

    @property
    def running(self) -> bool:
        """Whether the stopwatch is currently accumulating time."""
        return self._started_at is not None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self.running else "stopped"
        return f"Timer({format_duration(self.elapsed)}, {state})"


def format_duration(seconds: float) -> str:
    """Render a duration with a unit that keeps 2-4 significant digits.

    >>> format_duration(0.0000021)
    '2.1us'
    >>> format_duration(0.0042)
    '4.2ms'
    >>> format_duration(3.5)
    '3.50s'
    >>> format_duration(75)
    '1m15s'
    """
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 60.0:
        return f"{seconds:.2f}s"
    minutes, rem = divmod(seconds, 60.0)
    return f"{int(minutes)}m{int(rem)}s"
