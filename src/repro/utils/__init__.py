"""Small shared utilities: timing, validation, table rendering.

These helpers are deliberately dependency-free so that every other
subpackage (graphs, core, baselines, bench) can use them without import
cycles.
"""

from repro.utils.timer import Timer, format_duration
from repro.utils.validation import (
    check_index,
    check_nonnegative,
    check_positive,
    check_probability,
    check_vertex,
)
from repro.utils.prettyprint import (
    format_bytes,
    format_count,
    render_table,
)

__all__ = [
    "Timer",
    "format_duration",
    "check_index",
    "check_nonnegative",
    "check_positive",
    "check_probability",
    "check_vertex",
    "format_bytes",
    "format_count",
    "render_table",
]
