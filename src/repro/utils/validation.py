"""Argument validation helpers.

Centralising these checks keeps error messages uniform across the
library and makes the public API fail fast with clear diagnostics
instead of producing silently wrong indexes.
"""

from __future__ import annotations

from typing import Any


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_nonnegative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_probability(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")


def check_index(name: str, value: int, size: int) -> None:
    """Raise ``IndexError`` unless ``0 <= value < size``."""
    if not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if not 0 <= value < size:
        raise IndexError(f"{name}={value} out of range [0, {size})")


def check_vertex(graph: Any, vertex: int) -> None:
    """Raise unless ``vertex`` is a valid vertex id of ``graph``."""
    check_index("vertex", vertex, graph.num_vertices)
