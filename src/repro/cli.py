"""Command-line interface: ``python -m repro`` or the ``repro`` script.

Subcommands::

    repro build GRAPH -o INDEX [--directed] [--weighted] [--strategy S]
                               [--format {v1,v2,v3}]
                               [--engine {auto,array,dict}]
                               [--jobs N] [--force]
    repro query INDEX [S T ...] [--batch FILE] [--backend {flat,list}]
                               [--mmap] [--kernel {auto,on,off}]
    repro query --shards DIR [S T ...] [--batch FILE] [--workers N]
                               [--executor {process,thread}]
    repro convert INDEX -o OUTPUT [--format {v1,v2,v3}] [--stats]
                               [--force]
    repro shard INDEX -o DIR [--shards N] [--format {v2,v3}] [--force]
    repro serve INDEX|DIR [--host H] [--port P] [--workers N]
                               [--max-batch PAIRS] [--max-wait-ms MS]
                               [--max-pending PAIRS]
                               [--kernel {auto,on,off}]
    repro update INDEX --edges FILE [-o OUT] [--shards DIR]
                               [--engine {auto,array,dict}]
    repro stats GRAPH [--directed] [--weighted]
    repro generate MODEL -n N -o GRAPH [--density D] [--seed K]
                               [--directed]
    repro verify GRAPH INDEX [--directed] [--weighted] [--samples N]
    repro bench {table6,table7,table8,figure8,figure9,figure10,
                 assumptions,all}

``GRAPH`` files are text edge lists (``u v [w]`` per line, ``#``
comments); ``INDEX`` files use the library's binary label formats
(v1 per-entry structs, v2 flat-array blobs, v3 compact quantized
arrays — ``repro convert`` translates between them and ``--stats``
reports the size breakdown).  ``repro shard`` splits an index into a
directory of per-vertex-range v2 (or, with ``--format v3``, quantized)
files plus a manifest, which ``repro query --shards`` serves through a
worker pool.  ``repro update`` inserts edges into a built index (or a
shard directory) by incremental Hop-Doubling label repair — no
rebuild; a shard directory has only its changed shards rewritten and
their manifest checksums refreshed.  Queries are served through the
:class:`~repro.oracle.DistanceOracle` facade; ``--batch FILE``
evaluates one ``s t`` pair per line with the vectorized numpy kernel
when available (``--kernel`` pins the choice) and grouped merge joins
otherwise.  ``repro serve`` runs the asyncio distance server of
:mod:`repro.serve` over an index file or shard directory: concurrent
clients' requests coalesce into kernel batches under an admission
window, and multi-worker serving fans batches out over forked workers
sharing the label arrays (see ``docs/ARCHITECTURE.md``).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.index import HopDoublingIndex
from repro.graphs.generators import ba_graph, er_graph, glp_graph
from repro.graphs.io import read_edge_list, write_edge_list
from repro.graphs.stats import summarize
from repro.utils.prettyprint import format_bytes, format_count
from repro.utils.timer import format_duration


def _resolve_engine(engine: str, jobs: int) -> tuple[str, int] | None:
    """Turn the CLI engine choice into builder kwargs (None = error).

    ``auto`` prefers the vectorized array engine and falls back to the
    reference dict engine when numpy is unavailable (forcing ``jobs``
    back to 1, since the dict engine is single-process).  The probe
    runs here, before the graph load, so a misconfigured invocation
    fails fast.  Both engines build bit-identical indexes.
    """
    if engine in ("auto", "array"):
        try:
            import numpy  # noqa: F401
        except ImportError:
            if engine == "array":
                print(
                    "error: --engine array requires numpy; install it or "
                    "use --engine dict",
                    file=sys.stderr,
                )
                return None
            if jobs > 1:
                print(
                    "warning: numpy unavailable; falling back to the dict "
                    "engine (single-process, --jobs ignored)",
                    file=sys.stderr,
                )
            return "dict", 1
        return "array", jobs
    if jobs > 1:
        print(
            "error: --jobs > 1 requires --engine array",
            file=sys.stderr,
        )
        return None
    return engine, jobs


def _cmd_build(args: argparse.Namespace) -> int:
    import os

    if os.path.exists(args.output) and not args.force:
        print(
            f"error: {args.output} already exists; pass --force to "
            "overwrite it",
            file=sys.stderr,
        )
        return 2
    resolved = _resolve_engine(args.engine, args.jobs)
    if resolved is None:
        return 2
    engine, jobs = resolved
    graph = read_edge_list(
        args.graph, directed=args.directed, weighted=args.weighted
    )
    print(f"loaded {graph}")
    try:
        index = HopDoublingIndex.build(
            graph,
            strategy=args.strategy,
            ranking=args.ranking,
            engine=engine,
            jobs=jobs,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    stats = index.stats()
    workers = f", {jobs} jobs" if jobs > 1 else ""
    print(
        f"built in {format_duration(index.build_result.build_seconds)} "
        f"({index.num_iterations} iterations, {engine} engine{workers}): "
        f"{format_count(stats.total_entries)} entries, "
        f"avg |label| {stats.avg_label_size:.1f}, "
        f"{format_bytes(index.size_in_bytes())}"
    )
    index.save(args.output, format=args.format)
    print(f"index written to {args.output} (format {args.format})")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.oracle import DistanceOracle, ParallelOracle, read_pair_file

    # With --shards the INDEX positional must be omitted; argparse may
    # have captured the first vertex id there, so hand it back.
    if args.shards and args.index is not None:
        if _is_int(args.index):
            args.pair.insert(0, int(args.index))
            args.index = None
        else:
            print(
                "error: give either INDEX or --shards DIR, not both",
                file=sys.stderr,
            )
            return 2
    if not args.shards and args.index is None:
        print("error: provide an INDEX file or --shards DIR", file=sys.stderr)
        return 2
    # Validate the invocation before paying for the index load.
    if len(args.pair) % 2 != 0:
        print("error: provide an even number of vertex ids", file=sys.stderr)
        return 2
    if not args.pair and not args.batch:
        print("error: provide vertex pairs or --batch FILE", file=sys.stderr)
        return 2
    if args.shards and (args.mmap or args.backend != "flat"):
        print(
            "warning: --mmap and --backend are ignored with --shards "
            "(shard workers always mmap the flat shard files)",
            file=sys.stderr,
        )
    elif args.mmap and args.backend == "list":
        print(
            "warning: --mmap has no effect with --backend list "
            "(tuple lists are materialized in memory)",
            file=sys.stderr,
        )
    batch_pairs = None
    if args.batch:
        try:
            batch_pairs = read_pair_file(args.batch)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        if args.shards:
            oracle = ParallelOracle(
                args.shards,
                workers=args.workers,
                executor=args.executor,
                kernel=args.kernel,
            )
        else:
            oracle = DistanceOracle.open(
                args.index, backend=args.backend, use_mmap=args.mmap,
                kernel=args.kernel,
            )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if (
        not args.shards
        and args.mmap
        and args.backend == "flat"
        and not getattr(oracle.store, "is_mmapped", False)
    ):
        print(
            f"warning: --mmap not in effect for {args.index} (v1 file, or "
            "platform without zero-copy support); loaded into memory "
            "instead — see `repro convert` for format v2",
            file=sys.stderr,
        )
    try:
        for i in range(0, len(args.pair), 2):
            s, t = args.pair[i], args.pair[i + 1]
            d = oracle.query(s, t)
            shown = "unreachable" if d == float("inf") else f"{d:g}"
            print(f"dist({s}, {t}) = {shown}")
        if batch_pairs is not None:
            import time

            pairs = batch_pairs
            t0 = time.perf_counter()
            distances = oracle.query_batch(pairs)
            elapsed = time.perf_counter() - t0
            for (s, t), d in zip(pairs, distances):
                shown = "inf" if d == float("inf") else f"{d:g}"
                print(f"{s}\t{t}\t{shown}")
            rate = len(pairs) / elapsed if elapsed > 0 else float("inf")
            print(
                f"answered {len(pairs)} pairs in {format_duration(elapsed)} "
                f"({rate:,.0f} pairs/s)",
                file=sys.stderr,
            )
    except (IndexError, ValueError) as exc:
        # IndexError: out-of-range vertex ids; ValueError: --kernel on
        # with a store that has no vectorized path (numpy missing or
        # --backend list).
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        oracle.close()
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    import os

    from repro.core.flatstore import load_store
    from repro.core.quantized import QuantizedLabelStore

    if os.path.exists(args.output) and not args.force:
        print(
            f"error: {args.output} already exists; pass --force to "
            "overwrite it",
            file=sys.stderr,
        )
        return 2
    try:
        store = load_store(args.index, prefer_flat=True)
        flat = (
            store.to_flat()
            if isinstance(store, QuantizedLabelStore)
            else store
        )
        if args.format == "v3":
            out_store = QuantizedLabelStore.from_flat(flat)
            out_store.save(args.output)
        elif args.format == "v2":
            out_store = flat
            flat.save(args.output)
        else:
            out_store = flat
            flat.to_index().save(args.output)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    src = os.path.getsize(args.index)
    dst = os.path.getsize(args.output)
    print(
        f"converted {args.index} ({format_bytes(src)}) -> "
        f"{args.output} ({format_bytes(dst)}, format {args.format})"
    )
    if args.stats:
        stats = out_store.stats()
        entries = out_store.total_entries(include_trivial=True)
        print(f"  vertices        {format_count(stats.num_vertices)}")
        print(f"  entries         {format_count(entries)}")
        print(f"  avg |label|     {stats.avg_label_size:.1f}")
        if isinstance(out_store, QuantizedLabelStore):
            print(f"  pivot width     {out_store.pivot_width} B (delta)")
            dist_kind = (
                "quantized" if out_store.is_quantized else "raw f64"
            )
            print(
                f"  dist width      {out_store.dist_width} B ({dist_kind})"
            )
        print(f"  bytes/entry     {dst / entries:.2f}")
        print(f"  size vs source  {dst / src:.1%}")
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    import os

    from repro.core.flatstore import load_store
    from repro.oracle import ShardedLabelStore
    from repro.oracle.sharding import SHARD_FILE_FORMATS

    try:
        store = load_store(args.index, prefer_flat=True)
        sharded = ShardedLabelStore.split(store, args.shards)
        manifest_path = sharded.save(
            args.output, overwrite=args.force, format=args.format
        )
    except FileExistsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    total = 0
    for i, (lo, hi) in enumerate(sharded.ranges):
        size = os.path.getsize(
            os.path.join(
                args.output, SHARD_FILE_FORMATS[args.format].format(i)
            )
        )
        total += size
        print(
            f"shard {i}: vertices [{lo}, {hi}) "
            f"({format_count(hi - lo)}), {format_bytes(size)}"
        )
    print(
        f"sharded {args.index} -> {args.output} "
        f"({args.shards} shards, format {args.format}, "
        f"{format_bytes(total)}, manifest {manifest_path.name})"
    )
    return 0


def _read_insert_edges(path) -> list[tuple[int, int, float]]:
    """Parse an insertion edge file: one ``u v [w]`` per line.

    Same conventions as the other text inputs: blank lines and
    ``#``/``%`` comments skipped, ``.gz`` decompressed transparently.
    Raises ``ValueError`` on malformed lines.
    """
    from repro.graphs.io import _open_text

    out: list[tuple[int, int, float]] = []
    with _open_text(path, "r") as fh:
        for lineno, line in enumerate(fh, start=1):
            body = line.split("#", 1)[0].split("%", 1)[0].strip()
            if not body:
                continue
            parts = body.split()
            if len(parts) not in (2, 3):
                raise ValueError(
                    f"{path}:{lineno}: expected 'u v [w]', got {line.strip()!r}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
                w = float(parts[2]) if len(parts) == 3 else 1.0
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{lineno}: expected 'u v [w]', got {line.strip()!r}"
                ) from exc
            out.append((u, v, w))
    return out


def _cmd_update(args: argparse.Namespace) -> int:
    import os
    import time

    from repro.core.dynamic import DynamicHopDoublingIndex
    from repro.core.flatstore import load_store
    from repro.oracle import ShardedLabelStore

    try:
        edges = _read_insert_edges(args.edges)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not edges:
        print(f"error: {args.edges}: no edges to insert", file=sys.stderr)
        return 2
    is_dir = os.path.isdir(args.index)
    if is_dir and args.output:
        print(
            "error: a shard directory is reconciled in place; -o is only "
            "for single index files",
            file=sys.stderr,
        )
        return 2
    source_version = None
    try:
        if is_dir:
            store = ShardedLabelStore.load(args.index)
        else:
            with open(args.index, "rb") as fh:
                head = fh.read(5)
            source_version = head[4] if len(head) == 5 else None
            store = load_store(args.index, prefer_flat=True)
        if store.rank is None:
            print(
                f"error: {args.index} carries no ranking; rebuild the "
                "index (repro build records it) before updating",
                file=sys.stderr,
            )
            return 2
        dyn = DynamicHopDoublingIndex.from_store(store, engine=args.engine)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    t0 = time.perf_counter()
    try:
        added = dyn.insert_edges(edges)
    except (IndexError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    repair_seconds = time.perf_counter() - t0
    delta = dyn.pop_label_delta()
    print(
        f"inserted {added} of {len(edges)} edges in "
        f"{format_duration(repair_seconds)} ({dyn.engine} repair engine): "
        f"{format_count(len(delta.vertices()))} vertex labels changed"
    )
    try:
        if is_dir:
            store.apply_updates(delta)
            rewritten = store.reconcile(args.index)
            print(
                f"reconciled {args.index}: rewrote "
                f"{len(rewritten)}/{store.num_shards} shards "
                f"({', '.join(str(i) for i in rewritten) or 'none'})"
            )
        else:
            store.apply_updates(delta)
            target = args.output or args.index
            if source_version == 1:
                # Keep a v1 file in its own format: an update is not a
                # format upgrade (that is `repro convert`'s job).
                store.merged().to_index().save(target)
            else:
                store.save(target)
            print(f"updated index written to {target}")
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.shards:
        try:
            sharded = ShardedLabelStore.load(args.shards)
            sharded.apply_updates(delta)
            rewritten = sharded.reconcile(args.shards)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(
            f"reconciled {args.shards}: rewrote "
            f"{len(rewritten)}/{sharded.num_shards} shards "
            f"({', '.join(str(i) for i in rewritten) or 'none'})"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import os

    from repro.core.flatstore import load_store
    from repro.oracle import DistanceOracle, ShardedLabelStore
    from repro.oracle import kernel as kernel_mod
    from repro.serve import DistanceServer, SharedMemoryFanout, fanout_available

    try:
        if os.path.isdir(args.index):
            store = ShardedLabelStore.load(args.index, use_mmap=True)
        else:
            store = load_store(args.index, prefer_flat=True, use_mmap=True)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    workers = args.workers if args.workers is not None else (os.cpu_count() or 1)
    if workers < 1:
        print(f"error: --workers must be >= 1, got {workers}", file=sys.stderr)
        store.close()
        return 2
    fanout = None
    if workers > 1:
        if (
            args.kernel != "off"
            and fanout_available()
            and kernel_mod.supports(store)
        ):
            fanout = SharedMemoryFanout(
                store,
                workers=workers,
                capacity=max(args.max_batch, 1 << 14),
            )
            # Fork the workers before the event loop (and its thread
            # pool) exists — the quiescent-parent moment.
            fanout.warmup()
        else:
            print(
                "warning: shared-memory fan-out unavailable (needs numpy, "
                "the 'fork' start method, and --kernel != off); serving "
                "on the inline kernel instead",
                file=sys.stderr,
            )
    backend = fanout if fanout is not None else DistanceOracle(
        store, cache_size=0, kernel=args.kernel
    )
    server = DistanceServer(
        backend,
        host=args.host,
        port=args.port,
        max_batch_pairs=args.max_batch,
        max_wait=args.max_wait_ms / 1000.0,
        max_pending_pairs=args.max_pending,
    )

    async def run() -> None:
        host, port = await server.start()
        mode = (
            f"{workers} shm workers" if fanout is not None
            else "inline evaluation"
        )
        print(
            f"serving {args.index} on {host}:{port} ({mode}, "
            f"batch <= {args.max_batch} pairs, "
            f"wait <= {args.max_wait_ms:g} ms)",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            await server.aclose()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        if fanout is not None:
            fanout.close()
        else:
            backend.close()
        store.close()
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = read_edge_list(
        args.graph, directed=args.directed, weighted=args.weighted
    )
    s = summarize(graph)
    print(f"|V|            {format_count(s.num_vertices)}")
    print(f"|E|            {format_count(s.num_edges)}")
    print(f"max degree     {format_count(s.max_degree)}")
    print(f"density        {s.density:.2f}")
    print(f"size           {format_bytes(s.size_bytes)}")
    print(f"rank exponent  {s.rank_exponent:.3f}  (scale-free: -1.0 .. -0.6)")
    print(f"expansion R    {s.expansion:.1f}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.model == "glp":
        m = max(0.3, args.density * (1.0 - 0.4695))
        graph = glp_graph(args.n, m=m, seed=args.seed, directed=args.directed)
    elif args.model == "ba":
        graph = ba_graph(
            args.n, m=max(1, int(args.density)), seed=args.seed,
            directed=args.directed,
        )
    elif args.model == "er":
        graph = er_graph(
            args.n, int(args.n * args.density), seed=args.seed,
            directed=args.directed,
        )
    else:  # pragma: no cover - argparse choices guard this
        raise AssertionError(args.model)
    write_edge_list(graph, args.output)
    print(f"wrote {graph} to {args.output}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    import os

    from repro.core.labels import LabelIndex
    from repro.core.verify import verify_index

    graph = read_edge_list(
        args.graph, directed=args.directed, weighted=args.weighted
    )
    if os.path.isdir(args.index):
        from repro.oracle import ShardedLabelStore

        store = ShardedLabelStore.load(args.index)
    else:
        store = LabelIndex.load(args.index)
    report = verify_index(graph, store, samples=args.samples)
    print(report)
    for violation in report.violations[:20]:
        print(f"  ! {violation}")
    return 0 if report.ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        assumptions,
        figure8,
        figure9,
        figure10,
        table6,
        table7,
        table8,
    )

    runners = {
        "table6": lambda: table6.main(args.profile),
        "table7": lambda: table7.main(args.profile),
        "table8": lambda: table8.main(args.profile),
        "figure8": figure8.main,
        "figure9": figure9.main,
        "figure10": figure10.main,
        "assumptions": lambda: assumptions.main(args.profile),
    }
    targets = list(runners) if args.target == "all" else [args.target]
    for i, target in enumerate(targets):
        if i:
            print()
        runners[target]()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hop Doubling Label Indexing (VLDB 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("build", help="build an index from an edge list")
    p.add_argument("graph", help="edge-list file")
    p.add_argument("-o", "--output", required=True, help="index output path")
    p.add_argument("--directed", action="store_true")
    p.add_argument("--weighted", action="store_true")
    p.add_argument(
        "--strategy",
        choices=["hybrid", "stepping", "doubling"],
        default="hybrid",
        help="hop-growth schedule (default: hybrid — stepping until the "
        "frontier flattens, then doubling)",
    )
    p.add_argument(
        "--ranking",
        choices=["auto", "degree", "inout", "random", "betweenness"],
        default="auto",
        help="vertex importance order used for pruning (default: auto)",
    )
    p.add_argument(
        "--format",
        choices=["v1", "v2", "v3"],
        default="v1",
        help="index file format (default: v1 per-entry structs; v2 = "
        "flat-array blobs, v3 = compact quantized arrays)",
    )
    p.add_argument(
        "--engine",
        choices=["auto", "array", "dict"],
        default="auto",
        help="construction engine: vectorized arrays or the reference "
        "dict implementation (auto = array when numpy is available); "
        "both produce bit-identical indexes",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for candidate generation "
        "(array engine only; default: 1)",
    )
    p.add_argument(
        "--force",
        action="store_true",
        help="overwrite an existing output file",
    )
    p.set_defaults(func=_cmd_build)

    p = sub.add_parser("query", help="query a built index")
    p.add_argument(
        "index",
        nargs="?",
        help="index file from `repro build` (omit with --shards)",
    )
    p.add_argument("pair", nargs="*", type=int, help="s t [s t ...]")
    p.add_argument(
        "--batch",
        metavar="FILE",
        help="evaluate one 's t' pair per line of FILE (batched path)",
    )
    p.add_argument(
        "--backend",
        choices=["flat", "list"],
        default="flat",
        help="in-memory label storage backend (default: flat CSR)",
    )
    p.add_argument(
        "--mmap",
        action="store_true",
        help="memory-map a v2/v3 index instead of reading it",
    )
    p.add_argument(
        "--kernel",
        choices=["auto", "on", "off"],
        default="auto",
        help="vectorized numpy batch evaluation (default: auto — used "
        "when numpy and a flat/quantized backend are available)",
    )
    p.add_argument(
        "--shards",
        metavar="DIR",
        help="serve a shard directory (from `repro shard`) instead of "
        "a single index file",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker pool size for --shards (default: min(shards, cores))",
    )
    p.add_argument(
        "--executor",
        choices=["process", "thread"],
        default="process",
        help="worker pool kind for --shards (default: process)",
    )
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser(
        "convert", help="convert an index file between formats v1/v2/v3"
    )
    p.add_argument("index", help="index file in any format")
    p.add_argument("-o", "--output", required=True, help="converted output")
    p.add_argument(
        "--format",
        choices=["v1", "v2", "v3"],
        default="v2",
        help="target format (default: v2 flat-array; v3 = compact "
        "quantized arrays)",
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="report entry counts, encoding widths, and size ratios",
    )
    p.add_argument(
        "--force",
        action="store_true",
        help="overwrite an existing output file",
    )
    p.set_defaults(func=_cmd_convert)

    p = sub.add_parser(
        "shard",
        help="split an index into a sharded directory (v2 files + manifest)",
    )
    p.add_argument("index", help="index file in either format")
    p.add_argument(
        "-o", "--output", required=True, help="shard directory to create"
    )
    p.add_argument(
        "--shards",
        type=int,
        default=4,
        metavar="N",
        help="number of contiguous vertex-range shards (default: 4)",
    )
    p.add_argument(
        "--format",
        choices=["v2", "v3"],
        default="v2",
        help="per-shard file format (default: v2; v3 = compact "
        "quantized arrays)",
    )
    p.add_argument(
        "--force",
        action="store_true",
        help="replace an existing shard directory",
    )
    p.set_defaults(func=_cmd_shard)

    p = sub.add_parser(
        "serve",
        help="serve distance queries over asyncio TCP (JSON lines)",
    )
    p.add_argument(
        "index",
        help="index file from `repro build`, or a `repro shard` directory",
    )
    p.add_argument(
        "--host",
        default="127.0.0.1",
        help="listen address (default: 127.0.0.1)",
    )
    p.add_argument(
        "--port",
        type=int,
        default=0,
        help="listen port (default: 0 = pick a free port and print it)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="shared-memory fan-out workers (default: all cores; 1 "
        "serves inline with no fork)",
    )
    p.add_argument(
        "--max-batch",
        type=int,
        default=8192,
        metavar="PAIRS",
        help="admission window: dispatch a coalesced batch at this many "
        "pairs (default: 8192)",
    )
    p.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        metavar="MS",
        help="admission window: longest wait for batch companions while "
        "traffic keeps arriving (default: 2.0; a lone request never "
        "waits)",
    )
    p.add_argument(
        "--max-pending",
        type=int,
        default=262144,
        metavar="PAIRS",
        help="backpressure high-water mark: reject requests (code 429) "
        "past this many admitted-but-unanswered pairs (default: 262144)",
    )
    p.add_argument(
        "--kernel",
        choices=["auto", "on", "off"],
        default="auto",
        help="vectorized numpy batch evaluation (default: auto — used "
        "when numpy and a flat/quantized backend are available)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "update",
        help="insert edges into a built index (incremental label repair)",
    )
    p.add_argument(
        "index",
        help="index file from `repro build`, or a `repro shard` directory "
        "(reconciled in place, only changed shards rewritten)",
    )
    p.add_argument(
        "--edges",
        required=True,
        metavar="FILE",
        help="edge list to insert: one 'u v [w]' per line",
    )
    p.add_argument(
        "-o",
        "--output",
        help="write the updated index here (default: in place, atomic)",
    )
    p.add_argument(
        "--shards",
        metavar="DIR",
        help="also reconcile this shard directory with the same updates",
    )
    p.add_argument(
        "--engine",
        choices=["auto", "array", "dict"],
        default="auto",
        help="repair engine: vectorized arrays or the reference dict "
        "path (auto = array when numpy is available); both produce "
        "identical answers",
    )
    p.set_defaults(func=_cmd_update)

    p = sub.add_parser("stats", help="profile a graph (scale-free checks)")
    p.add_argument("graph", help="edge-list file")
    p.add_argument("--directed", action="store_true")
    p.add_argument("--weighted", action="store_true")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("generate", help="generate a synthetic graph")
    p.add_argument("model", choices=["glp", "ba", "er"])
    p.add_argument("-n", type=int, required=True, help="number of vertices")
    p.add_argument("-o", "--output", required=True)
    p.add_argument(
        "--density",
        type=float,
        default=10.0,
        help="target edge density |E|/|V| (default: 10)",
    )
    p.add_argument("--seed", type=int, default=0, help="RNG seed (default: 0)")
    p.add_argument("--directed", action="store_true")
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser(
        "verify", help="verify an index against its graph (exit 1 on failure)"
    )
    p.add_argument("graph", help="edge-list file")
    p.add_argument(
        "index",
        help="index file from `repro build`, or a `repro shard` directory",
    )
    p.add_argument("--directed", action="store_true")
    p.add_argument("--weighted", action="store_true")
    p.add_argument(
        "--samples",
        type=int,
        default=500,
        help="random pairs checked against exact search (default: 500)",
    )
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser("bench", help="regenerate a paper table or figure")
    p.add_argument(
        "target",
        choices=[
            "table6",
            "table7",
            "table8",
            "figure8",
            "figure9",
            "figure10",
            "assumptions",
            "all",
        ],
    )
    p.add_argument("--profile", choices=["quick", "full"], default="quick")
    p.set_defaults(func=_cmd_bench)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    # `query` takes both a variadic int positional and options; argparse
    # cannot backtrack into a zero-width positional once it has seen an
    # option (`query IDX --mmap 0 5` leaves `0 5` unparsed), and
    # parse_intermixed_args does not support subparsers.  Recover the
    # stranded vertex ids by hand so either argument order works.
    args, extra = parser.parse_known_args(argv)
    if extra:
        if getattr(args, "command", None) == "query" and all(
            _is_int(tok) for tok in extra
        ):
            args.pair.extend(int(tok) for tok in extra)
        else:
            parser.error(f"unrecognized arguments: {' '.join(extra)}")
    return args.func(args)


def _is_int(token: str) -> bool:
    try:
        int(token)
    except ValueError:
        return False
    return True


if __name__ == "__main__":
    sys.exit(main())
