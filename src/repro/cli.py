"""Command-line interface: ``python -m repro`` or the ``repro`` script.

Subcommands::

    repro build GRAPH -o INDEX [--directed] [--weighted] [--strategy S]
    repro query INDEX S T [S T ...]
    repro stats GRAPH [--directed] [--weighted]
    repro generate MODEL -n N -o GRAPH [--density D] [--seed K]
    repro verify GRAPH INDEX [--samples N]
    repro bench {table6,table7,table8,figure8,figure9,figure10,
                 assumptions,all}

``GRAPH`` files are text edge lists (``u v [w]`` per line, ``#``
comments); ``INDEX`` files use the library's binary label format.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.index import HopDoublingIndex
from repro.graphs.generators import ba_graph, er_graph, glp_graph
from repro.graphs.io import read_edge_list, write_edge_list
from repro.graphs.stats import summarize
from repro.utils.prettyprint import format_bytes, format_count
from repro.utils.timer import format_duration


def _cmd_build(args: argparse.Namespace) -> int:
    graph = read_edge_list(
        args.graph, directed=args.directed, weighted=args.weighted
    )
    print(f"loaded {graph}")
    index = HopDoublingIndex.build(
        graph, strategy=args.strategy, ranking=args.ranking
    )
    stats = index.stats()
    print(
        f"built in {format_duration(index.build_result.build_seconds)} "
        f"({index.num_iterations} iterations): "
        f"{format_count(stats.total_entries)} entries, "
        f"avg |label| {stats.avg_label_size:.1f}, "
        f"{format_bytes(index.size_in_bytes())}"
    )
    index.save(args.output)
    print(f"index written to {args.output}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    index = HopDoublingIndex.load(args.index)
    if len(args.pair) % 2 != 0:
        print("error: provide an even number of vertex ids", file=sys.stderr)
        return 2
    for i in range(0, len(args.pair), 2):
        s, t = args.pair[i], args.pair[i + 1]
        d = index.query(s, t)
        shown = "unreachable" if d == float("inf") else f"{d:g}"
        print(f"dist({s}, {t}) = {shown}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = read_edge_list(
        args.graph, directed=args.directed, weighted=args.weighted
    )
    s = summarize(graph)
    print(f"|V|            {format_count(s.num_vertices)}")
    print(f"|E|            {format_count(s.num_edges)}")
    print(f"max degree     {format_count(s.max_degree)}")
    print(f"density        {s.density:.2f}")
    print(f"size           {format_bytes(s.size_bytes)}")
    print(f"rank exponent  {s.rank_exponent:.3f}  (scale-free: -1.0 .. -0.6)")
    print(f"expansion R    {s.expansion:.1f}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.model == "glp":
        m = max(0.3, args.density * (1.0 - 0.4695))
        graph = glp_graph(args.n, m=m, seed=args.seed, directed=args.directed)
    elif args.model == "ba":
        graph = ba_graph(
            args.n, m=max(1, int(args.density)), seed=args.seed,
            directed=args.directed,
        )
    elif args.model == "er":
        graph = er_graph(
            args.n, int(args.n * args.density), seed=args.seed,
            directed=args.directed,
        )
    else:  # pragma: no cover - argparse choices guard this
        raise AssertionError(args.model)
    write_edge_list(graph, args.output)
    print(f"wrote {graph} to {args.output}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.core.labels import LabelIndex
    from repro.core.verify import verify_index

    graph = read_edge_list(
        args.graph, directed=args.directed, weighted=args.weighted
    )
    index = LabelIndex.load(args.index)
    report = verify_index(graph, index, samples=args.samples)
    print(report)
    for violation in report.violations[:20]:
        print(f"  ! {violation}")
    return 0 if report.ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        assumptions,
        figure8,
        figure9,
        figure10,
        table6,
        table7,
        table8,
    )

    runners = {
        "table6": lambda: table6.main(args.profile),
        "table7": lambda: table7.main(args.profile),
        "table8": lambda: table8.main(args.profile),
        "figure8": figure8.main,
        "figure9": figure9.main,
        "figure10": figure10.main,
        "assumptions": lambda: assumptions.main(args.profile),
    }
    targets = list(runners) if args.target == "all" else [args.target]
    for i, target in enumerate(targets):
        if i:
            print()
        runners[target]()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hop Doubling Label Indexing (VLDB 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("build", help="build an index from an edge list")
    p.add_argument("graph", help="edge-list file")
    p.add_argument("-o", "--output", required=True, help="index output path")
    p.add_argument("--directed", action="store_true")
    p.add_argument("--weighted", action="store_true")
    p.add_argument(
        "--strategy",
        choices=["hybrid", "stepping", "doubling"],
        default="hybrid",
    )
    p.add_argument(
        "--ranking",
        choices=["auto", "degree", "inout", "random", "betweenness"],
        default="auto",
    )
    p.set_defaults(func=_cmd_build)

    p = sub.add_parser("query", help="query a built index")
    p.add_argument("index", help="index file from `repro build`")
    p.add_argument("pair", nargs="+", type=int, help="s t [s t ...]")
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("stats", help="profile a graph (scale-free checks)")
    p.add_argument("graph", help="edge-list file")
    p.add_argument("--directed", action="store_true")
    p.add_argument("--weighted", action="store_true")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("generate", help="generate a synthetic graph")
    p.add_argument("model", choices=["glp", "ba", "er"])
    p.add_argument("-n", type=int, required=True, help="number of vertices")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--density", type=float, default=10.0, help="|E|/|V|")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--directed", action="store_true")
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser(
        "verify", help="verify an index against its graph (exit 1 on failure)"
    )
    p.add_argument("graph", help="edge-list file")
    p.add_argument("index", help="index file from `repro build`")
    p.add_argument("--directed", action="store_true")
    p.add_argument("--weighted", action="store_true")
    p.add_argument("--samples", type=int, default=500)
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser("bench", help="regenerate a paper table or figure")
    p.add_argument(
        "target",
        choices=[
            "table6",
            "table7",
            "table8",
            "figure8",
            "figure9",
            "figure10",
            "assumptions",
            "all",
        ],
    )
    p.add_argument("--profile", choices=["quick", "full"], default="quick")
    p.set_defaults(func=_cmd_bench)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
