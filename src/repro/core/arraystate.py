"""Array-backed construction state for the fast build engine.

The dict stores of :mod:`repro.core.labels` pay a Python-level dict
probe per rule application and per pruning test; profiling a 10k-vertex
Barabasi-Albert build shows ~90% of the wall clock inside those
per-entry loops.  This module keeps the *same* label state as
struct-of-arrays instead:

* every store side (``Lout`` / ``Lin``, or the single undirected
  ``L``) is a :class:`SideArrays` — contiguous ``owner`` / ``pivot`` /
  ``dist`` / ``hops`` arrays sorted by ``(owner, pivot)`` with CSR
  offsets per owner, so a vertex's label is a slice and an entry
  lookup is one ``searchsorted`` on the combined ``owner * n + pivot``
  key;
* **trivial self entries are not stored**.  They only ever matter to
  the pruning test through an entry's own pivot — exactly the route
  ``two_hop_bound``'s ``exclude_pivot`` suppresses — so leaving them
  out makes the vectorized bound equal the dict engine's excluded
  bound by construction (they are re-added when freezing);
* each iteration publishes a read-only :class:`LabelSnapshot` /
  :class:`EdgeSnapshot` — per-vertex partner arrays re-sorted by
  pivot *rank* so the minimized rules' "ranked between" filters become
  one ``searchsorted`` plus a slice.  The snapshots are plain
  picklable dataclasses: the multiprocess build engine ships them to
  workers once per iteration.

All reductions (candidate dedupe, admission, pruning) use the same
min-``(dist, hops)`` logic as the dict engine, so the two engines — and
any worker partition of the candidate generation — produce
**bit-identical** label sets and iteration counters
(``tests/core/test_parallel_build.py`` enforces this).

``numpy`` is required here (and only here): the module import raises
``ModuleNotFoundError`` if it is missing, which the engine factory
turns into a friendly "use engine='dict'" error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.core.labels import (
    DirectedLabelState,
    LabelIndex,
    UndirectedLabelState,
)
from repro.graphs.digraph import Graph

#: Pruning expands each staged pair's source label; blocks of this many
#: pairs bound the temporary row count (and peak memory) per batch.
PRUNE_BLOCK_PAIRS = 65_536

#: Elements in the pruning test's dense probe table (~6 MB of f64+i32,
#: the same cache-residency reasoning as the query kernel's scatter
#: join).  Rows per vertex block is this divided by ``n``.
PRUNE_TABLE_ELEMS = 1 << 19

#: Below this many expanded-and-filtered rows the dense probe table is
#: not worth scattering; the global ``searchsorted`` probe runs instead.
PRUNE_DENSE_MIN_ROWS = 8_192


def expand_segments(
    starts: np.ndarray, ends: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Ragged gather: flatten the index ranges ``[starts[i], ends[i])``.

    Returns ``(reps, pos)`` where ``pos`` walks every range in order
    and ``reps[j]`` names the range ``pos[j]`` came from.  ``reps`` is
    nondecreasing, which the pruning min-reduction relies on.  Both
    arrays are int32 when the ranges allow it — expansion output feeds
    straight into gathers, where the narrower indexes halve the memory
    traffic.
    """
    counts = ends - starts
    total = int(counts.sum())
    rdt = np.int32 if counts.size <= 0x7FFFFFFF else np.int64
    reps = np.repeat(np.arange(counts.size, dtype=rdt), counts)
    if total == 0:
        return reps, np.zeros(0, dtype=rdt)
    idt = (
        np.int32
        if total <= 0x7FFFFFFF and int(ends.max()) <= 0x7FFFFFFF
        else np.int64
    )
    seg0 = np.cumsum(counts) - counts
    # Per-range base offsets ride along via one repeat (sequential
    # write) instead of two gathers through ``reps``.
    pos = np.arange(total, dtype=idt) + np.repeat(
        (starts - seg0).astype(idt, copy=False), counts
    )
    return reps, pos


@dataclass
class PrevBlock:
    """One iteration's surviving entries as parallel arrays.

    The array twin of the rule engines' ``list[PrevEntry]``: ``(a, b)``
    is the directed pair (or normalized ``(owner, pivot)`` for
    undirected states).
    """

    a: np.ndarray
    b: np.ndarray
    dist: np.ndarray
    hops: np.ndarray

    def __len__(self) -> int:
        return int(self.a.size)

    @classmethod
    def from_lists(cls, entries: Sequence[tuple[int, int, float, int]]):
        """Build from ``(a, b, dist, hops)`` tuples (init / tests)."""
        if not entries:
            return cls(
                np.zeros(0, np.int64),
                np.zeros(0, np.int64),
                np.zeros(0, np.float64),
                np.zeros(0, np.int64),
            )
        a, b, d, h = zip(*entries)
        return cls(
            np.asarray(a, np.int64),
            np.asarray(b, np.int64),
            np.asarray(d, np.float64),
            np.asarray(h, np.int64),
        )


class SideArrays:
    """One store side as sorted parallel arrays with CSR offsets.

    Entries are kept sorted by the combined key ``owner * n + pivot``;
    ``off[v] : off[v + 1]`` is vertex ``v``'s slice.  Mutations
    (``update_values`` / ``insert`` / ``delete``) preserve the order,
    so lookups stay a single ``searchsorted``.
    """

    __slots__ = ("n", "owner", "piv", "dist", "hops", "key", "off")

    def __init__(
        self,
        n: int,
        owner: np.ndarray,
        piv: np.ndarray,
        dist: np.ndarray,
        hops: np.ndarray,
    ) -> None:
        self.n = n
        key = owner * n + piv
        order = np.argsort(key)
        self.owner = owner[order]
        self.piv = piv[order]
        self.dist = dist[order]
        self.hops = hops[order]
        self.key = key[order]
        self._refresh_offsets()

    @classmethod
    def empty(cls, n: int) -> "SideArrays":
        """A side with no entries over an ``n``-vertex id space."""
        return cls(
            n,
            np.zeros(0, np.int64),
            np.zeros(0, np.int64),
            np.zeros(0, np.float64),
            np.zeros(0, np.int64),
        )

    def _refresh_offsets(self) -> None:
        self.off = np.searchsorted(self.owner, np.arange(self.n + 1))

    def __len__(self) -> int:
        return int(self.key.size)

    # -- queries -------------------------------------------------------
    def lookup(self, owner: np.ndarray, piv: np.ndarray):
        """Positions and hit mask for the pairs ``owner -> piv``."""
        qkey = owner * self.n + piv
        pos = np.searchsorted(self.key, qkey)
        found = np.zeros(qkey.size, dtype=bool)
        if self.key.size:
            inb = pos < self.key.size
            found[inb] = self.key[pos[inb]] == qkey[inb]
        return pos, found

    # -- mutations -----------------------------------------------------
    def update_values(
        self, pos: np.ndarray, dist: np.ndarray, hops: np.ndarray
    ) -> None:
        """Overwrite the values at ``pos`` (keys unchanged)."""
        self.dist[pos] = dist
        self.hops[pos] = hops

    def insert(
        self,
        owner: np.ndarray,
        piv: np.ndarray,
        dist: np.ndarray,
        hops: np.ndarray,
    ) -> None:
        """Merge new (absent) entries, keeping the key order."""
        if owner.size == 0:
            return
        key = owner * self.n + piv
        order = np.argsort(key)
        owner, piv, dist, hops, key = (
            owner[order],
            piv[order],
            dist[order],
            hops[order],
            key[order],
        )
        pos = np.searchsorted(self.key, key)
        self.owner = np.insert(self.owner, pos, owner)
        self.piv = np.insert(self.piv, pos, piv)
        self.dist = np.insert(self.dist, pos, dist)
        self.hops = np.insert(self.hops, pos, hops)
        self.key = np.insert(self.key, pos, key)
        self._refresh_offsets()

    def delete(self, owner: np.ndarray, piv: np.ndarray) -> None:
        """Remove the (present) entries ``owner -> piv``."""
        if owner.size == 0:
            return
        pos, found = self.lookup(owner, piv)
        keep = np.ones(self.key.size, dtype=bool)
        keep[pos[found]] = False
        self.owner = self.owner[keep]
        self.piv = self.piv[keep]
        self.dist = self.dist[keep]
        self.hops = self.hops[keep]
        self.key = self.key[keep]
        self._refresh_offsets()


# ---------------------------------------------------------------------------
# Read-only generation snapshots (picklable, shipped to worker processes)
# ---------------------------------------------------------------------------


@dataclass
class EdgeSnapshot:
    """Static edge partners for Hop-Stepping joins.

    Adjacency in CSR form with neighbours sorted by *rank* inside each
    segment; ``in_key`` / ``out_key`` are ``vertex * n + rank[nbr]``
    so a minimized rule's "rank below the prev pivot" filter is one
    global ``searchsorted``.  For undirected graphs the ``out_*``
    arrays hold the full neighbourhood and the ``in_*`` arrays alias
    them.
    """

    n: int
    directed: bool
    rank: np.ndarray
    in_off: np.ndarray
    in_src: np.ndarray
    in_wt: np.ndarray
    in_key: np.ndarray
    out_off: np.ndarray
    out_tgt: np.ndarray
    out_wt: np.ndarray
    out_key: np.ndarray

    @classmethod
    def from_graph(cls, graph: Graph, rank: np.ndarray) -> "EdgeSnapshot":
        """Pack a graph's adjacency into the rank-keyed CSR views.

        Built once per index construction (the edges never change);
        ``rank`` is the vertex importance order the rule filters
        compare against.
        """
        n = graph.num_vertices
        src: list[int] = []
        tgt: list[int] = []
        wt: list[float] = []
        for u in range(n):
            for v, w in graph.out_edges(u):
                src.append(u)
                tgt.append(v)
                wt.append(w)
        src_a = np.asarray(src, np.int64)
        tgt_a = np.asarray(tgt, np.int64)
        wt_a = np.asarray(wt, np.float64)

        def csr(owner, nbr, weight):
            order = np.lexsort((rank[nbr], owner))
            owner, nbr, weight = owner[order], nbr[order], weight[order]
            off = np.searchsorted(owner, np.arange(n + 1))
            key = owner * n + rank[nbr]
            return off, nbr, weight, key

        out_off, out_tgt, out_wt, out_key = csr(src_a, tgt_a, wt_a)
        if graph.directed:
            in_off, in_src, in_wt, in_key = csr(tgt_a, src_a, wt_a)
        else:
            # Undirected adjacency lists already contain both endpoints.
            in_off, in_src, in_wt, in_key = out_off, out_tgt, out_wt, out_key
        return cls(
            n=n,
            directed=graph.directed,
            rank=rank,
            in_off=in_off,
            in_src=in_src,
            in_wt=in_wt,
            in_key=in_key,
            out_off=out_off,
            out_tgt=out_tgt,
            out_wt=out_wt,
            out_key=out_key,
        )


@dataclass
class LabelSnapshot:
    """Per-iteration label partners for Hop-Doubling joins.

    Two views of the current (pre-admission) label state:

    * ``out_r_* `` / ``in_r_*`` — each side grouped by owner with
      entries sorted by pivot rank (the Rule 1/4 partner files; the
      ``*_key`` arrays are ``owner * n + rank[pivot]``);
    * ``rev_out_*`` / ``rev_in_*`` — the same sides grouped by pivot
      (the Rule 2/5 reverse indexes).

    For undirected states the single store occupies the ``out``/
    ``rev_out`` slots and the ``in`` slots alias them.
    """

    n: int
    directed: bool
    rank: np.ndarray
    out_r_off: np.ndarray
    out_r_piv: np.ndarray
    out_r_dist: np.ndarray
    out_r_hops: np.ndarray
    out_r_key: np.ndarray
    in_r_off: np.ndarray
    in_r_piv: np.ndarray
    in_r_dist: np.ndarray
    in_r_hops: np.ndarray
    in_r_key: np.ndarray
    rev_out_off: np.ndarray
    rev_out_owner: np.ndarray
    rev_out_dist: np.ndarray
    rev_out_hops: np.ndarray
    rev_in_off: np.ndarray
    rev_in_owner: np.ndarray
    rev_in_dist: np.ndarray
    rev_in_hops: np.ndarray


def _rank_sorted_view(side: SideArrays, rank: np.ndarray):
    """A side re-sorted by ``(owner, rank[pivot])`` with search keys."""
    n = side.n
    order = np.lexsort((rank[side.piv], side.owner))
    piv = side.piv[order]
    owner = side.owner[order]
    key = owner * n + rank[piv]
    # Same grouping as the pivot-sorted side, so offsets are shared.
    return side.off, piv, side.dist[order], side.hops[order], key


def _pivot_grouped_view(side: SideArrays):
    """A side re-grouped by pivot (the reverse index of the rules)."""
    n = side.n
    order = np.lexsort((side.owner, side.piv))
    piv = side.piv[order]
    off = np.searchsorted(piv, np.arange(n + 1))
    return off, side.owner[order], side.dist[order], side.hops[order]


# ---------------------------------------------------------------------------
# The mutable array state
# ---------------------------------------------------------------------------


class ArrayLabelState:
    """Mutable struct-of-arrays label state (directed or undirected).

    The array twin of :class:`DirectedLabelState` /
    :class:`UndirectedLabelState`: the same entries (minus the implicit
    trivial self pairs), the same admission and pruning semantics, but
    every per-iteration operation vectorized over numpy arrays.
    """

    __slots__ = ("n", "directed", "rank", "out", "inn", "_touched", "_staged")

    def __init__(self, rank: Sequence[int], directed: bool) -> None:
        self.n = len(rank)
        self.directed = directed
        self.rank = np.asarray(rank, dtype=np.int64)
        self.out = SideArrays.empty(self.n)
        self.inn = SideArrays.empty(self.n) if directed else self.out
        self._touched: tuple[set, set] | None = None
        # Per-side staged-candidate overlays between stage() and
        # commit_staged() — None outside an admission round.
        self._staged: tuple[SideArrays, SideArrays] | None = None

    def track_touched(
        self, sets: tuple[set, set] | None = None
    ) -> tuple[set, set]:
        """Start recording which vertices' labels change.

        Same contract as the dict states' ``track_touched``: returns
        ``(out_owners, in_owners)`` sets that every admission and
        removal adds its store-side owner to (undirected states fill
        only the first).  ``sets`` re-attaches existing sets, which
        the dynamic index uses when it swaps the state underneath.
        """
        if sets is not None:
            self._touched = sets
        elif self._touched is None:
            self._touched = (set(), set())
        return self._touched

    # -- construction --------------------------------------------------
    @classmethod
    def from_initial_entries(
        cls,
        rank: Sequence[int],
        directed: bool,
        entries: Sequence[tuple[int, int, float, int]],
    ) -> "ArrayLabelState":
        """Seed from the iteration-1 ``(a, b, dist, hops)`` entries.

        Entries must already be deduplicated (one value per pair) and,
        for undirected states, normalized to ``(owner, pivot)``.
        """
        state = cls(rank, directed)
        block = PrevBlock.from_lists(entries)
        if len(block) == 0:
            return state
        for side, mask, owners, pivs in state._side_groups(block.a, block.b):
            side.insert(owners[mask], pivs[mask], block.dist[mask], block.hops[mask])
        return state

    def _side_groups(self, a: np.ndarray, b: np.ndarray):
        """Route pairs to their store side: (side, mask, owners, pivots)."""
        if self.directed:
            out_mask = self.rank[b] < self.rank[a]
            return (
                (self.out, out_mask, a, b),
                (self.inn, ~out_mask, b, a),
            )
        return ((self.out, np.ones(a.size, dtype=bool), a, b),)

    # -- snapshots -----------------------------------------------------
    def edge_snapshot(self, graph: Graph) -> EdgeSnapshot:
        """The static stepping-partner arrays for ``graph``."""
        return EdgeSnapshot.from_graph(graph, self.rank)

    def label_snapshot(self) -> LabelSnapshot:
        """Read-only doubling partners for the current labels."""
        rank = self.rank
        o_off, o_piv, o_dist, o_hops, o_key = _rank_sorted_view(self.out, rank)
        ro_off, ro_owner, ro_dist, ro_hops = _pivot_grouped_view(self.out)
        if self.directed:
            i_off, i_piv, i_dist, i_hops, i_key = _rank_sorted_view(self.inn, rank)
            ri_off, ri_owner, ri_dist, ri_hops = _pivot_grouped_view(self.inn)
        else:
            i_off, i_piv, i_dist, i_hops, i_key = (
                o_off,
                o_piv,
                o_dist,
                o_hops,
                o_key,
            )
            ri_off, ri_owner, ri_dist, ri_hops = (
                ro_off,
                ro_owner,
                ro_dist,
                ro_hops,
            )
        return LabelSnapshot(
            n=self.n,
            directed=self.directed,
            rank=rank,
            out_r_off=o_off,
            out_r_piv=o_piv,
            out_r_dist=o_dist,
            out_r_hops=o_hops,
            out_r_key=o_key,
            in_r_off=i_off,
            in_r_piv=i_piv,
            in_r_dist=i_dist,
            in_r_hops=i_hops,
            in_r_key=i_key,
            rev_out_off=ro_off,
            rev_out_owner=ro_owner,
            rev_out_dist=ro_dist,
            rev_out_hops=ro_hops,
            rev_in_off=ri_off,
            rev_in_owner=ri_owner,
            rev_in_dist=ri_dist,
            rev_in_hops=ri_hops,
        )

    def label_snapshot_for(
        self,
        anchors: np.ndarray | None,
        rev_out_anchors: np.ndarray | None = None,
        rev_in_anchors: np.ndarray | None = None,
    ) -> LabelSnapshot:
        """Doubling partners restricted to the anchor vertices.

        The owner-grouped views cover only entries *owned by* an
        ``anchors`` vertex (``None`` = all owners, the full views) and
        the reverse views only entries *pivoted at* a ``rev_*_anchors``
        vertex (``None`` falls back to ``anchors``); every other
        vertex's segment is empty.  The doubling joins anchor
        exclusively at the prev entries' endpoints — and the reverse
        joins (Rules 2/5) specifically at the prev entries' *owner*
        ends, which rank below their pivots and therefore pivot few
        entries — so for any ``prev`` covered by the anchor sets the
        joins produce the exact rule applications (same values, same
        order) the full :meth:`label_snapshot` yields, while sorting
        only the touched partner slices instead of the whole store.
        This is what makes a repair round's cost track the fresh-entry
        frontier rather than the index size.
        """
        n, rank = self.n, self.rank
        if anchors is not None:
            flag = np.zeros(n, dtype=bool)
            flag[anchors] = True
        else:
            flag = None

        def owner_view(side: SideArrays):
            if flag is None:
                return _rank_sorted_view(side, rank)
            idx = np.flatnonzero(flag[side.owner])
            owner = side.owner[idx]
            piv = side.piv[idx]
            order = np.lexsort((rank[piv], owner))
            owner = owner[order]
            piv = piv[order]
            off = np.searchsorted(owner, np.arange(n + 1))
            sel = idx[order]
            return off, piv, side.dist[sel], side.hops[sel], owner * n + rank[piv]

        def pivot_view(side: SideArrays, pivots):
            if pivots is None and flag is None:
                return _pivot_grouped_view(side)
            if pivots is None:
                pflag = flag
            else:
                pflag = np.zeros(n, dtype=bool)
                pflag[pivots] = True
            idx = np.flatnonzero(pflag[side.piv])
            piv = side.piv[idx]
            owner = side.owner[idx]
            order = np.lexsort((owner, piv))
            sel = idx[order]
            off = np.searchsorted(piv[order], np.arange(n + 1))
            return off, owner[order], side.dist[sel], side.hops[sel]

        o_off, o_piv, o_dist, o_hops, o_key = owner_view(self.out)
        ro_off, ro_owner, ro_dist, ro_hops = pivot_view(self.out, rev_out_anchors)
        if self.directed:
            i_off, i_piv, i_dist, i_hops, i_key = owner_view(self.inn)
            ri_off, ri_owner, ri_dist, ri_hops = pivot_view(
                self.inn, rev_in_anchors
            )
        else:
            i_off, i_piv, i_dist, i_hops, i_key = (
                o_off,
                o_piv,
                o_dist,
                o_hops,
                o_key,
            )
            ri_off, ri_owner, ri_dist, ri_hops = (
                ro_off,
                ro_owner,
                ro_dist,
                ro_hops,
            )
        return LabelSnapshot(
            n=n,
            directed=self.directed,
            rank=rank,
            out_r_off=o_off,
            out_r_piv=o_piv,
            out_r_dist=o_dist,
            out_r_hops=o_hops,
            out_r_key=o_key,
            in_r_off=i_off,
            in_r_piv=i_piv,
            in_r_dist=i_dist,
            in_r_hops=i_hops,
            in_r_key=i_key,
            rev_out_off=ro_off,
            rev_out_owner=ro_owner,
            rev_out_dist=ro_dist,
            rev_out_hops=ro_hops,
            rev_in_off=ri_off,
            rev_in_owner=ri_owner,
            rev_in_dist=ri_dist,
            rev_in_hops=ri_hops,
        )

    def doubling_snapshot(self, prev: PrevBlock) -> LabelSnapshot:
        """The cheapest snapshot that serves a doubling round over ``prev``.

        A small frontier (the dynamic-update repair rounds, the tail
        iterations of a build) gets the restricted
        :meth:`label_snapshot_for`; a frontier touching a sizable
        share of the vertices falls back to the full
        :meth:`label_snapshot`, whose single global sort is cheaper
        than masking at that scale.  Either choice yields identical
        rule applications, so callers are free to treat this as a pure
        performance knob.
        """
        anchors = np.unique(np.concatenate((prev.a, prev.b)))
        # Rule 2 reverse joins anchor at the prev entries' ``a`` ends
        # and Rule 5 at the ``b`` ends (for undirected states the
        # single rev view anchors at the owners, prev.a) — restricting
        # the reverse views to those keeps the high-degree pivots'
        # huge reverse fan-ins out of the sort, so they stay
        # restricted even when the owner views fall back to the full
        # sort for a large frontier.
        if anchors.size * 4 > self.n:
            anchors = None
        return self.label_snapshot_for(
            anchors,
            rev_out_anchors=np.unique(prev.a),
            rev_in_anchors=np.unique(prev.b),
        )

    # -- scalar queries ------------------------------------------------
    def owner_pivot(self, a: int, b: int) -> tuple[int, int]:
        """Normalize an unordered pair to ``(owner, pivot)`` by rank."""
        if self.rank[a] < self.rank[b]:
            return b, a
        return a, b

    def get_pair_distance(self, a: int, b: int) -> float | None:
        """Current distance of the entry for the pair ``a -> b``, if any."""
        if self.directed:
            if self.rank[b] < self.rank[a]:
                side, owner, piv = self.out, a, b
            else:
                side, owner, piv = self.inn, b, a
        else:
            side = self.out
            owner, piv = self.owner_pivot(a, b)
        key = owner * self.n + piv
        pos = int(np.searchsorted(side.key, key))
        if pos < side.key.size and side.key[pos] == key:
            return float(side.dist[pos])
        return None

    def two_hop_distance(self, s: int, t: int) -> float:
        """Exact ``dist(s, t)`` on the current state.

        The dict states' unexcluded ``two_hop_bound``: the join over
        non-trivial entries plus the two trivial-pivot routes, which
        both collapse to the pair's own entry (the only routes the
        stored trivial self entries ever contribute).
        """
        if s == t:
            return 0.0
        pair = self.get_pair_distance(s, t)
        best = np.inf if pair is None else pair
        out, inn = self.out, self.inn
        ao, ae = out.off[s], out.off[s + 1]
        bo, be = inn.off[t], inn.off[t + 1]
        if ae > ao and be > bo:
            _, ia, ib = np.intersect1d(
                out.piv[ao:ae],
                inn.piv[bo:be],
                assume_unique=True,
                return_indices=True,
            )
            if ia.size:
                best = min(
                    best, float((out.dist[ao + ia] + inn.dist[bo + ib]).min())
                )
        return float(best)

    # -- admission -----------------------------------------------------
    def admit(
        self,
        a: np.ndarray,
        b: np.ndarray,
        dist: np.ndarray,
        hops: np.ndarray,
    ) -> np.ndarray:
        """Stage deduplicated candidates; return the admitted mask.

        Semantics of :func:`repro.core.pruning.admit_and_prune`'s
        admission pass: a candidate is admitted when the pair has no
        entry yet or strictly improves the distance; admitted values
        overwrite in place.
        """
        admitted = np.zeros(a.size, dtype=bool)
        for i, (side, mask, owners, pivs) in enumerate(self._side_groups(a, b)):
            o = owners[mask]
            if o.size == 0:
                continue
            p = pivs[mask]
            d = dist[mask]
            h = hops[mask]
            pos, found = side.lookup(o, p)
            better = np.zeros(o.size, dtype=bool)
            if found.any():
                better[found] = d[found] < side.dist[pos[found]]
                upd = found & better
                side.update_values(pos[upd], d[upd], h[upd])
            new = ~found
            side.insert(o[new], p[new], d[new], h[new])
            admitted[mask] = new | better
            if self._touched is not None:
                self._touched[i].update(o[new | better].tolist())
        return admitted

    def stage(
        self,
        a: np.ndarray,
        b: np.ndarray,
        dist: np.ndarray,
        hops: np.ndarray,
    ) -> np.ndarray:
        """Like :meth:`admit`, but into a deferred per-side overlay.

        The admitted candidates land in small staged side arrays
        instead of the base arrays; :meth:`prunable` joins over base
        *and* staged entries (the Section 3.3 snapshot semantics), and
        :meth:`commit_staged` then merges only the survivors — so a
        round that prunes most of what it admits (the common case)
        never pays the O(index) insert-then-delete of the base arrays
        for the doomed majority.  The admitted mask and the eventual
        state are bit-identical to the immediate :meth:`admit` path.
        """
        staged_out = SideArrays.empty(self.n)
        staged_inn = SideArrays.empty(self.n) if self.directed else staged_out
        staged = (staged_out, staged_inn)
        admitted = np.zeros(a.size, dtype=bool)
        for i, (side, mask, owners, pivs) in enumerate(self._side_groups(a, b)):
            o = owners[mask]
            if o.size == 0:
                continue
            p = pivs[mask]
            d = dist[mask]
            h = hops[mask]
            pos, found = side.lookup(o, p)
            better = np.zeros(o.size, dtype=bool)
            if found.any():
                better[found] = d[found] < side.dist[pos[found]]
            keep = ~found | better
            staged[i].insert(o[keep], p[keep], d[keep], h[keep])
            admitted[mask] = keep
            if self._touched is not None:
                self._touched[i].update(o[keep].tolist())
        self._staged = staged
        return admitted

    def commit_staged(
        self,
        a: np.ndarray,
        b: np.ndarray,
        dist: np.ndarray,
        hops: np.ndarray,
        doomed: np.ndarray,
    ) -> None:
        """Merge the staged round into the base arrays.

        ``(a, b, dist, hops)`` are the staged (admitted) candidates
        and ``doomed`` the pruning verdicts, all in candidate order.
        Surviving new pairs are inserted, surviving improvements
        overwrite in place, and doomed improvements delete the (now
        stale) base entry — the exact end state the
        admit-then-prune-then-remove path reaches, with base mutations
        proportional to the survivors instead of the admitted.
        """
        keep = ~doomed
        for side, mask, owners, pivs in self._side_groups(a, b):
            o = owners[mask]
            if o.size == 0:
                continue
            p = pivs[mask]
            d = dist[mask]
            h = hops[mask]
            k = keep[mask]
            pos, found = side.lookup(o, p)
            upd = found & k
            side.update_values(pos[upd], d[upd], h[upd])
            new = ~found & k
            side.insert(o[new], p[new], d[new], h[new])
            gone = found & ~k
            side.delete(o[gone], p[gone])
        self._staged = None

    # -- pruning -------------------------------------------------------
    def prunable(self, a: np.ndarray, b: np.ndarray, dist: np.ndarray):
        """Vectorized Section 3.3 pruning test for the pairs ``a -> b``.

        True where ``two_hop_bound(a, b, exclude_pivot=<own pivot>)``
        on the equivalent dict state would be ``<= dist``: the join
        runs over non-trivial entries only, which is exactly what the
        exclusion admits (see the module docstring).  Like the dict
        bound, the smaller of the two labels is expanded and the
        larger probed; partner entries at distance ``>= dist`` are
        dropped before the probe (edge weights are positive, so they
        cannot complete a route of length ``<= dist``).  Evaluated in
        blocks to bound peak memory.

        Large blocks probe through a cache-resident epoch-stamped
        scatter table (pairs sorted by probe owner, the probed side's
        entries scattered one vertex block at a time — the query
        kernel's dense join, transplanted): each filtered row costs
        two O(1) gathers instead of a binary search over the whole
        side.  Small blocks keep the global ``searchsorted`` probe.
        Either path forms the identical ``d1 + d2`` sums, so the
        outcome — and the bit-identity with the dict engine — does not
        depend on the join strategy.
        """
        out, inn = self.out, self.inn
        n = self.n
        if self._staged is not None:
            staged_out, staged_inn = self._staged
        else:
            staged_out = staged_inn = None
        best = np.full(a.size, np.inf)
        size_a = out.off[a + 1] - out.off[a]
        size_b = inn.off[b + 1] - inn.off[b]
        if staged_out is not None:
            size_a = size_a + (staged_out.off[a + 1] - staged_out.off[a])
            size_b = size_b + (staged_inn.off[b + 1] - staged_inn.off[b])
        expand_out = size_a <= size_b
        block_rows = PRUNE_TABLE_ELEMS // max(n, 1)
        for sel, exps, exp_owner, probes, probe_owner in (
            (expand_out, (out, staged_out), a, (inn, staged_inn), b),
            (~expand_out, (inn, staged_inn), b, (out, staged_out), a),
        ):
            idx = np.flatnonzero(sel)
            if idx.size == 0:
                continue
            # Sorting the pairs by probe owner makes each vertex
            # block's rows one contiguous run (the dense path's walk);
            # the searchsorted path is order-insensitive.
            idx = idx[np.argsort(probe_owner[idx], kind="stable")]
            for lo in range(0, idx.size, PRUNE_BLOCK_PAIRS):
                blk = idx[lo : lo + PRUNE_BLOCK_PAIRS]
                eo = exp_owner[blk]
                db = dist[blk]
                po = probe_owner[blk]
                for exp in exps:
                    if exp is None or len(exp) == 0:
                        continue
                    reps, pos = expand_segments(exp.off[eo], exp.off[eo + 1])
                    if pos.size == 0:
                        continue
                    d1 = exp.dist[pos]
                    keep = d1 < db[reps]
                    reps, pos, d1 = reps[keep], pos[keep], d1[keep]
                    if pos.size == 0:
                        continue
                    piv = exp.piv[pos]
                    if pos.size >= PRUNE_DENSE_MIN_ROWS and block_rows >= 1:
                        joins = [
                            self._prune_join_dense(
                                probes[0], probes[1], po, reps, piv, d1,
                                block_rows,
                            )
                        ]
                    else:
                        joins = [
                            self._prune_join_sorted(pr, po, reps, piv, d1)
                            for pr in probes
                            if pr is not None and len(pr)
                        ]
                    for bounds, pair in joins:
                        if pair.size:
                            at = blk[pair]
                            best[at] = np.minimum(best[at], bounds)
        return best <= dist

    @staticmethod
    def _prune_join_sorted(probe, po, reps, piv, d1):
        """Probe via one global searchsorted into the side's key array."""
        p2, hit = probe.lookup(po[reps], piv)
        if not hit.any():
            return np.zeros(0), np.zeros(0, np.int64)
        sums = d1[hit] + probe.dist[p2[hit]]
        rh = reps[hit]  # nondecreasing (expand_segments contract)
        seg = np.flatnonzero(
            np.concatenate((np.ones(1, dtype=bool), rh[1:] != rh[:-1]))
        )
        return np.minimum.reduceat(sums, seg), rh[seg]

    def _prune_join_dense(self, probe, probe_staged, po, reps, piv, d1,
                          block_rows):
        """Probe via an epoch-stamped scatter table over vertex blocks.

        ``po`` must be nondecreasing (pairs sorted by probe owner), so
        each block of probe-owner ids owns one contiguous row run.
        The staged overlay (if any) is scattered into the same table
        with a min-merge, so one gather per row probes both.
        """
        n = self.n
        if probe_staged is not None and len(probe_staged) == 0:
            probe_staged = None
        table_d = np.empty(block_rows * n, dtype=np.float64)
        table_e = np.zeros(block_rows * n, dtype=np.int32)
        qkey = po[reps] * n + piv
        vedges = np.arange(0, n + block_rows, block_rows, dtype=np.int64)
        # Rows per block: pair runs via po, then row runs via reps.
        pair_cuts = np.searchsorted(po, vedges)
        row_cuts = np.searchsorted(reps, pair_cuts)
        bounds_parts = []
        pair_parts = []
        for k in range(vedges.size - 1):
            r0, r1 = int(row_cuts[k]), int(row_cuts[k + 1])
            if r0 == r1:
                continue
            b0 = int(vedges[k])
            hi = min(b0 + block_rows, n)
            shift = b0 * n
            epoch = k + 1
            so, se = int(probe.off[b0]), int(probe.off[hi])
            if se > so:
                addr = probe.key[so:se] - shift
                table_d[addr] = probe.dist[so:se]
                table_e[addr] = epoch
            if probe_staged is not None:
                so, se = int(probe_staged.off[b0]), int(probe_staged.off[hi])
                if se > so:
                    addr = probe_staged.key[so:se] - shift
                    current = np.where(
                        table_e[addr] == epoch, table_d[addr], np.inf
                    )
                    table_d[addr] = np.minimum(
                        current, probe_staged.dist[so:se]
                    )
                    table_e[addr] = epoch
            taddr = qkey[r0:r1] - shift
            hit = np.flatnonzero(table_e[taddr] == epoch)
            if hit.size == 0:
                continue
            sums = d1[r0:r1][hit] + table_d[taddr[hit]]
            rh = reps[r0:r1][hit]
            seg = np.flatnonzero(
                np.concatenate((np.ones(1, dtype=bool), rh[1:] != rh[:-1]))
            )
            bounds_parts.append(np.minimum.reduceat(sums, seg))
            pair_parts.append(rh[seg])
        if not bounds_parts:
            return np.zeros(0), np.zeros(0, np.int64)
        return np.concatenate(bounds_parts), np.concatenate(pair_parts)

    def remove(self, a: np.ndarray, b: np.ndarray) -> None:
        """Delete the (present) entries for the pairs ``a -> b``."""
        for i, (side, mask, owners, pivs) in enumerate(self._side_groups(a, b)):
            side.delete(owners[mask], pivs[mask])
            if self._touched is not None:
                self._touched[i].update(owners[mask].tolist())

    # -- statistics / export -------------------------------------------
    def total_entries(self) -> int:
        """Non-trivial entries across the store sides."""
        total = len(self.out)
        if self.directed:
            total += len(self.inn)
        return total

    def iter_entries(self) -> Iterator[tuple[int, int, float, int, bool]]:
        """Yield ``(owner, pivot, dist, hops, is_out)`` like the dict states."""
        for side, is_out in ((self.out, True), (self.inn, False)):
            if not self.directed and not is_out:
                break
            owners = side.owner.tolist()
            pivs = side.piv.tolist()
            dists = side.dist.tolist()
            hops = side.hops.tolist()
            for i in range(len(owners)):
                yield owners[i], pivs[i], dists[i], hops[i], is_out

    def to_dict_state(self) -> DirectedLabelState | UndirectedLabelState:
        """Materialize the equivalent dict-based state (same entries)."""
        rank = self.rank.tolist()
        if self.directed:
            return DirectedLabelState.from_entries(rank, self.iter_entries())
        return UndirectedLabelState.from_entries(rank, self.iter_entries())

    def freeze(self) -> LabelIndex:
        """Freeze into a queryable :class:`LabelIndex`.

        Produces the same index as ``LabelIndex.from_state`` on the
        equivalent dict state: labels sorted by pivot id with the
        trivial ``(v, 0)`` self entries re-added.
        """
        out_labels = self._side_labels(self.out)
        if self.directed:
            in_labels = self._side_labels(self.inn)
            return LabelIndex(self.n, True, out_labels, in_labels, self.rank.tolist())
        return LabelIndex(self.n, False, out_labels, out_labels, self.rank.tolist())

    def _side_labels(self, side: SideArrays) -> list[list[tuple[int, float]]]:
        n = self.n
        trivial = np.arange(n, dtype=np.int64)
        owners = np.concatenate((side.owner, trivial))
        pivs = np.concatenate((side.piv, trivial))
        dists = np.concatenate((side.dist, np.zeros(n)))
        order = np.lexsort((pivs, owners))
        po = pivs[order].tolist()
        do = dists[order].tolist()
        off = np.searchsorted(owners[order], np.arange(n + 1)).tolist()
        return [
            list(zip(po[off[v] : off[v + 1]], do[off[v] : off[v + 1]]))
            for v in range(n)
        ]

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (
            f"ArrayLabelState(|V|={self.n}, {kind}, "
            f"entries={self.total_entries()})"
        )
