"""Multiprocess candidate generation: the ``jobs > 1`` build engine.

The Hop-Stepping / Hop-Doubling generation step is embarrassingly
parallel over ``prevLabel``: each prev entry joins against read-only
partner arrays, so any partition of the block can be evaluated
independently.  :class:`ParallelBuildEngine` partitions ``prev`` into
contiguous chunks and fans them out over a process pool:

* workers are long-lived (one pool per build).  The static context —
  the rank array and the edge-partner CSR used by stepping rounds —
  ships once per worker through the pool initializer, fork-friendly on
  platforms with the ``fork`` start method;
* doubling rounds additionally need the per-iteration
  :class:`~repro.core.arraystate.LabelSnapshot`; it is pickled with
  each chunk task (the snapshot is read-only, so workers never see a
  stale or half-updated state);
* results are concatenated **in chunk order** and deduplicated by the
  same canonical ``lexsort`` pass the serial engine uses, so
  ``jobs=N`` produces bit-identical candidates — and therefore
  bit-identical label sets and ``IterationStats`` counters — to
  ``jobs=1`` (the guarantee ``tests/core/test_parallel_build.py``
  locks in, mirroring what the sharding layer promises for queries).

Admission and pruning stay in the parent: they mutate the single
authoritative state, and their cost is one vectorized pass per
iteration.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

from repro.core.engine import ArrayBuildEngine, check_engine_options
from repro.core.ranking import Ranking
from repro.graphs.digraph import Graph

# Per-process static context for pool workers, bound by _init_worker.
_WORKER_CTX: tuple | None = None


def _init_worker(edge_snapshot, full: bool) -> None:
    """Pool initializer: bind the static generation context."""
    global _WORKER_CTX
    _WORKER_CTX = (edge_snapshot, full)


def _generate_chunk(mode: str, label_snapshot, a, b, dist, hops):
    """Apply the rules to one contiguous ``prev`` chunk in a worker."""
    from repro.core.arraystate import PrevBlock
    from repro.core.rules import array_doubling, array_stepping

    assert _WORKER_CTX is not None, "worker initializer did not run"
    edge_snapshot, full = _WORKER_CTX
    prev = PrevBlock(a, b, dist, hops)
    if mode == "step":
        assert edge_snapshot is not None, "pool built without edge partners"
        batch = array_stepping(edge_snapshot, prev, full)
    else:
        batch = array_doubling(label_snapshot, prev, full)
    return batch.a, batch.b, batch.dist, batch.hops


class ParallelBuildEngine(ArrayBuildEngine):
    """Array engine with candidate generation fanned over a process pool."""

    name = "array-parallel"

    def __init__(
        self,
        graph: Graph,
        ranking: Ranking,
        rule_set: str,
        jobs: int,
    ) -> None:
        super().__init__(graph, ranking, rule_set)
        check_engine_options("array", jobs)
        self.jobs = jobs
        self._pool: ProcessPoolExecutor | None = None
        self._pool_has_edges = False

    # -- pool management ----------------------------------------------
    def _ensure_pool(self, need_edges: bool) -> ProcessPoolExecutor:
        """A pool whose workers carry the required static context.

        The edge-partner CSR is only needed by stepping rounds, so
        pure-doubling builds never pay for building or shipping it; if
        a stepping round arrives after a pool was built without edges
        (an alternating custom schedule), the pool is rebuilt once —
        edges then stay available for the rest of the build.
        """
        if self._pool is not None and need_edges and not self._pool_has_edges:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._pool is None:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
            edges = self.edge_snapshot() if need_edges else None
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=ctx,
                initializer=_init_worker,
                initargs=(edges, self.full),
            )
            self._pool_has_edges = need_edges
        return self._pool

    # -- generation ----------------------------------------------------
    def generate(self, mode: str, prev):
        from repro.core.rules import CandidateBatch

        size = len(prev)
        if self.jobs == 1 or size < self.jobs:
            return super().generate(mode, prev)
        label_snapshot = self.state.label_snapshot() if mode == "double" else None
        pool = self._ensure_pool(need_edges=mode == "step")
        futures = []
        for k in range(self.jobs):
            lo = k * size // self.jobs
            hi = (k + 1) * size // self.jobs
            if lo == hi:
                continue
            futures.append(
                pool.submit(
                    _generate_chunk,
                    mode,
                    label_snapshot,
                    prev.a[lo:hi],
                    prev.b[lo:hi],
                    prev.dist[lo:hi],
                    prev.hops[lo:hi],
                )
            )
        n = self.state.n
        batches = [CandidateBatch(n, *future.result()) for future in futures]
        return CandidateBatch.concatenate(batches)

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
