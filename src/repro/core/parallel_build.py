"""Multiprocess candidate generation: the ``jobs > 1`` build engine.

The Hop-Stepping / Hop-Doubling generation step is embarrassingly
parallel over ``prevLabel``: each prev entry joins against read-only
partner arrays, so any partition of the block can be evaluated
independently.  :class:`ParallelBuildEngine` partitions ``prev`` into
contiguous chunks and fans them out over a process pool:

* stepping rounds use a long-lived pool (one per build).  The static
  context — the rank array and the edge-partner CSR — ships once per
  worker through the pool initializer;
* doubling rounds additionally need the per-iteration
  :class:`~repro.core.arraystate.LabelSnapshot`.  On platforms with
  the ``fork`` start method it is **never pickled**: the parent
  stashes the snapshot in a module-level global and forks a fresh
  per-round pool, so every worker inherits the arrays as shared
  copy-on-write pages and the chunk tasks carry only their ``prev``
  slices.  Where only ``spawn`` is available, the snapshot falls back
  to riding along with each chunk task (it is read-only either way,
  so workers never see a stale or half-updated state);
* results are concatenated **in chunk order** and deduplicated by the
  same canonical ``lexsort`` pass the serial engine uses, so
  ``jobs=N`` produces bit-identical candidates — and therefore
  bit-identical label sets and ``IterationStats`` counters — to
  ``jobs=1`` (the guarantee ``tests/core/test_parallel_build.py``
  locks in, mirroring what the sharding layer promises for queries).

Admission and pruning stay in the parent: they mutate the single
authoritative state, and their cost is one vectorized pass per
iteration.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

from repro.core.engine import ArrayBuildEngine, check_engine_options
from repro.core.ranking import Ranking
from repro.graphs.digraph import Graph

# Per-process static context for pool workers, bound by _init_worker.
_WORKER_CTX: tuple | None = None

# Doubling-round snapshot hand-off: the parent binds the snapshot here
# right before forking a per-round pool; the initializer running in
# each forked child reads the inherited value (shared copy-on-write
# memory, no pickling) into _WORKER_SNAPSHOT.  Always None in the
# parent outside a doubling round and in spawn-started workers.
_PARENT_SNAPSHOT = None
_WORKER_SNAPSHOT = None


def _init_worker(edge_snapshot, full: bool) -> None:
    """Pool initializer: bind the static generation context."""
    global _WORKER_CTX, _WORKER_SNAPSHOT
    _WORKER_CTX = (edge_snapshot, full)
    _WORKER_SNAPSHOT = _PARENT_SNAPSHOT


def _generate_chunk(mode: str, label_snapshot, a, b, dist, hops):
    """Apply the rules to one contiguous ``prev`` chunk in a worker.

    ``label_snapshot`` is ``None`` on fork platforms — the snapshot
    then comes from the fork-inherited module global instead of the
    task payload.
    """
    from repro.core.arraystate import PrevBlock
    from repro.core.rules import array_doubling, array_stepping

    assert _WORKER_CTX is not None, "worker initializer did not run"
    edge_snapshot, full = _WORKER_CTX
    prev = PrevBlock(a, b, dist, hops)
    if mode == "step":
        assert edge_snapshot is not None, "pool built without edge partners"
        batch = array_stepping(edge_snapshot, prev, full)
    else:
        if label_snapshot is None:
            label_snapshot = _WORKER_SNAPSHOT
        assert label_snapshot is not None, "no label snapshot available"
        batch = array_doubling(label_snapshot, prev, full)
    return batch.a, batch.b, batch.dist, batch.hops


class ParallelBuildEngine(ArrayBuildEngine):
    """Array engine with candidate generation fanned over a process pool."""

    name = "array-parallel"

    def __init__(
        self,
        graph: Graph,
        ranking: Ranking,
        rule_set: str,
        jobs: int,
    ) -> None:
        super().__init__(graph, ranking, rule_set)
        check_engine_options("array", jobs)
        self.jobs = jobs
        self._pool: ProcessPoolExecutor | None = None
        self._pool_has_edges = False
        self._fork_ctx = (
            multiprocessing.get_context("fork")
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )

    # -- pool management ----------------------------------------------
    def _ensure_pool(self, need_edges: bool) -> ProcessPoolExecutor:
        """A long-lived pool whose workers carry the required context.

        The edge-partner CSR is only needed by stepping rounds, so
        pure-doubling builds never pay for building or shipping it; if
        a stepping round arrives after a pool was built without edges
        (an alternating custom schedule), the pool is rebuilt once —
        edges then stay available for the rest of the build.
        """
        if self._pool is not None and need_edges and not self._pool_has_edges:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._pool is None:
            ctx = self._fork_ctx or multiprocessing.get_context()
            edges = self.edge_snapshot() if need_edges else None
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=ctx,
                initializer=_init_worker,
                initargs=(edges, self.full),
            )
            self._pool_has_edges = need_edges
        return self._pool

    def _submit_chunks(self, pool, mode: str, label_snapshot, prev):
        size = len(prev)
        futures = []
        for k in range(self.jobs):
            lo = k * size // self.jobs
            hi = (k + 1) * size // self.jobs
            if lo == hi:
                continue
            futures.append(
                pool.submit(
                    _generate_chunk,
                    mode,
                    label_snapshot,
                    prev.a[lo:hi],
                    prev.b[lo:hi],
                    prev.dist[lo:hi],
                    prev.hops[lo:hi],
                )
            )
        return futures

    # -- generation ----------------------------------------------------
    def generate(self, mode: str, prev):
        from repro.core.rules import CandidateBatch

        size = len(prev)
        if self.jobs == 1 or size < self.jobs:
            return super().generate(mode, prev)
        n = self.state.n
        if mode == "step":
            futures = self._submit_chunks(
                self._ensure_pool(need_edges=True), "step", None, prev
            )
            batches = [CandidateBatch(n, *f.result()) for f in futures]
            return CandidateBatch.concatenate(batches)

        snapshot = self.state.doubling_snapshot(prev)
        if self._fork_ctx is None:
            # No fork: ship the snapshot with each chunk task (spawn
            # would re-import the module and lose any global).
            pool = self._ensure_pool(need_edges=False)
            futures = self._submit_chunks(pool, "double", snapshot, prev)
            batches = [CandidateBatch(n, *f.result()) for f in futures]
            return CandidateBatch.concatenate(batches)

        # Fork path: publish the snapshot, fork a per-round pool that
        # inherits it as shared copy-on-write pages, and send only the
        # prev slices through the task queue.  The long-lived stepping
        # pool is torn down first: its executor threads must not be
        # mid-operation in the parent when the round forks (the
        # classic fork-with-threads deadlock hazard), and stepping
        # rounds simply rebuild it on demand.
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        global _PARENT_SNAPSHOT
        _PARENT_SNAPSHOT = snapshot
        try:
            with ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=self._fork_ctx,
                initializer=_init_worker,
                initargs=(None, self.full),
            ) as pool:
                futures = self._submit_chunks(pool, "double", None, prev)
                batches = [CandidateBatch(n, *f.result()) for f in futures]
        finally:
            _PARENT_SNAPSHOT = None
        return CandidateBatch.concatenate(batches)

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
