"""Vertex ranking strategies (Sections 2.1, 3.1 and 7 of the paper).

The labeling algorithms work with *any* total order on the vertices,
but their size guarantees rest on ranking by degree so that high-degree
hubs become pivots (Section 2.2).  The paper uses:

* **non-increasing degree** for undirected graphs (Section 3.1);
* **non-increasing product of in-degree and out-degree** for directed
  graphs ("due to its better performance", Section 8);
* arbitrary/heuristic orders for non-scale-free graphs (Section 7) —
  we provide a sampled shortest-path-hitting heuristic and a random
  order as the degenerate control.

A :class:`Ranking` maps both directions: ``rank_of[v]`` is the rank of
vertex ``v`` (0 = highest priority) and ``vertex_at[r]`` the vertex at
rank ``r``.  Ties are broken by vertex id, making every strategy
deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.graphs.digraph import Graph
from repro.graphs.traversal import INF, bfs_distances, dijkstra_distances


@dataclass(frozen=True)
class Ranking:
    """A total order on vertices; rank 0 is the highest priority."""

    rank_of: list[int]
    vertex_at: list[int]

    @classmethod
    def from_scores(cls, scores: Sequence[float]) -> "Ranking":
        """Rank vertices by non-increasing score, ties by vertex id."""
        order = sorted(range(len(scores)), key=lambda v: (-scores[v], v))
        rank_of = [0] * len(scores)
        for r, v in enumerate(order):
            rank_of[v] = r
        return cls(rank_of=rank_of, vertex_at=order)

    @classmethod
    def from_order(cls, order: Sequence[int]) -> "Ranking":
        """Build from an explicit priority order (first = highest)."""
        n = len(order)
        if sorted(order) != list(range(n)):
            raise ValueError("order must be a permutation of range(n)")
        rank_of = [0] * n
        for r, v in enumerate(order):
            rank_of[v] = r
        return cls(rank_of=rank_of, vertex_at=list(order))

    def __len__(self) -> int:
        return len(self.rank_of)

    def outranks(self, u: int, v: int) -> bool:
        """Whether ``u`` has strictly higher priority than ``v``."""
        return self.rank_of[u] < self.rank_of[v]

    def top(self, k: int) -> list[int]:
        """The ``k`` highest-priority vertices in rank order."""
        return self.vertex_at[:k]


def degree_ranking(graph: Graph) -> Ranking:
    """Rank by non-increasing total degree — the paper's base strategy."""
    scores = [float(graph.degree(v)) for v in graph.vertices()]
    return Ranking.from_scores(scores)


def inout_product_ranking(graph: Graph) -> Ranking:
    """Rank by non-increasing ``in_degree * out_degree``.

    The paper's preferred order for directed graphs (Section 8).  The
    total degree breaks ties so that vertices with a zero in- or
    out-degree are still usefully ordered.
    """
    n = graph.num_vertices
    scores = []
    for v in range(n):
        din = graph.in_degree(v)
        dout = graph.out_degree(v)
        # Fractional tie-break by total degree keeps the order stable
        # and meaningful for product-zero vertices.
        scores.append(din * dout + (din + dout) / (4.0 * (n + 1)))
    return Ranking.from_scores(scores)


def random_ranking(graph: Graph, seed: int = 0) -> Ranking:
    """A uniformly random order — the degenerate control in tests/ablations."""
    order = list(graph.vertices())
    random.Random(seed).shuffle(order)
    return Ranking.from_order(order)


def betweenness_sample_ranking(
    graph: Graph, num_samples: int = 32, seed: int = 0
) -> Ranking:
    """Heuristic order for general graphs (Section 7).

    Approximates "how many shortest paths does v hit" by running BFS
    (or Dijkstra for weighted graphs) from sampled roots and counting,
    for every vertex, the number of sampled shortest-path trees in
    which it appears as an intermediate vertex, weighted by its subtree
    size.  This is a cheap stand-in for betweenness centrality; exact
    betweenness would need all-pairs shortest paths, which the paper
    notes "may not be practical for large graphs".
    """
    n = graph.num_vertices
    if n == 0:
        return Ranking.from_order([])
    rng = random.Random(seed)
    roots = (
        list(range(n)) if n <= num_samples else rng.sample(range(n), num_samples)
    )
    scores = [0.0] * n
    sssp = dijkstra_distances if graph.weighted else bfs_distances
    for root in roots:
        dist = sssp(graph, root)
        # Count, for each vertex, how many vertices sit strictly below it
        # in the shortest-path DAG (descendant mass approximation): a
        # vertex u at distance d contributes to every in-neighbour p with
        # dist[p] + w(p,u) == dist[u].
        order = sorted(
            (v for v in range(n) if dist[v] != INF),
            key=lambda v: -dist[v],
        )
        mass = [1.0] * n
        for u in order:
            if dist[u] == 0:
                continue
            preds = [
                p
                for p, w in graph.in_edges(u)
                if dist[p] != INF and dist[p] + w == dist[u]
            ]
            if not preds:
                continue
            share = mass[u] / len(preds)
            for p in preds:
                mass[p] += share
        for v in range(n):
            if dist[v] != INF and dist[v] > 0:
                scores[v] += mass[v]
    return Ranking.from_scores(scores)


# Registry used by the public facade and the CLI.
RANKING_STRATEGIES: dict[str, Callable[..., Ranking]] = {
    "degree": degree_ranking,
    "inout": inout_product_ranking,
    "random": random_ranking,
    "betweenness": betweenness_sample_ranking,
}


def make_ranking(graph: Graph, strategy: str = "auto", **kwargs) -> Ranking:
    """Resolve a ranking strategy by name.

    ``"auto"`` follows the paper: in/out-degree product for directed
    graphs, plain degree for undirected ones.
    """
    if strategy == "auto":
        strategy = "inout" if graph.directed else "degree"
    try:
        factory = RANKING_STRATEGIES[strategy]
    except KeyError:
        known = ", ".join(sorted(RANKING_STRATEGIES) + ["auto"])
        raise ValueError(f"unknown ranking strategy {strategy!r}; one of: {known}")
    return factory(graph, **kwargs)
