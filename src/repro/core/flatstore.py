"""Contiguous struct-of-arrays label storage (CSR) and binary format v2.

:class:`~repro.core.labels.LabelIndex` keeps one Python list of
``(pivot, dist)`` tuples per vertex — simple, but every entry is a
heap-allocated tuple holding two boxed numbers, and loading an index
re-allocates all of them.  Pruned Landmark Labeling and its scalable
successors store labels the way this module does instead: one flat
offsets array plus contiguous pivot/distance arrays per side, the CSR
layout used for adjacency lists.  :class:`FlatLabelStore` is that
backend, implementing the same :class:`~repro.core.labels.LabelStore`
protocol the rest of the query stack is written against.

Queries exploit the layout: the smaller label is zipped into a dict at
C speed and the larger one is probed through it, which is 2-3x faster
than the tuple-list merge join in pure Python while returning the
bit-identical minimum (see ``benchmarks/test_store_throughput.py``).
Grouped evaluation (:meth:`FlatLabelStore.query_group`) builds the
source-side dict once per source, which is what the oracle's batch
path amortises.

**Binary format v2** serialises the arrays as raw little-endian blobs
after an 27-byte header, so a load is a handful of bulk ``frombytes``
copies — or zero-copy ``memoryview.cast`` slices over an ``mmap`` —
instead of per-entry ``struct`` unpacking::

    RPLI | u8 version=2 | u8 flags | u8 has_rank | u32 n
    u64 out_count | u64 in_count          (in_count 0 when undirected)
    [rank:        n * u32]                 if has_rank
    out_offsets:  (n+1) * i64
    out_pivots:   out_count * i32
    out_dists:    out_count * f64
    [in_offsets / in_pivots / in_dists]    if directed

Version 1 files remain loadable through :func:`load_store`, which
sniffs the version byte and upgrades transparently.
"""

from __future__ import annotations

import mmap as _mmap
import struct
import sys
from array import array
from typing import Sequence

from repro.core.labels import BYTES_PER_ENTRY, INF, LabelIndex, LabelStats
from repro.utils.atomicio import atomic_binary_writer

_MAGIC = b"RPLI"
_VERSION = 2
_HEADER = struct.Struct("<BBBIQQ")  # version, flags, has_rank, n, counts


def probe_slice_min(get, pivots, dists, o, e) -> float:
    """Min ``get(w) + d2`` over one CSR label slice, probing a dict.

    ``get`` is the bound ``dict.get`` of the other side's ``pivot ->
    dist`` mapping.  This is *the* evaluation inner loop — every CSR
    query path (single store or sharded) funnels through it, so the
    bit-identical-answers guarantee has a single implementation.
    """
    best = INF
    for w, d2 in zip(pivots[o:e], dists[o:e]):
        d1 = get(w)
        if d1 is not None:
            d = d1 + d2
            if d < best:
                best = d
    return best


def probe_min_distance(
    a_pivots, a_dists, ao, ae, b_pivots, b_dists, bo, be
) -> float:
    """Min ``d1 + d2`` over common pivots of two CSR label slices.

    The smaller slice is zipped into a dict at C speed and the larger
    one is probed through it; the minimum over common pivots is the
    same sum a sorted merge join would return.
    """
    if ae - ao <= be - bo:
        probe = dict(zip(a_pivots[ao:ae], a_dists[ao:ae]))
        return probe_slice_min(probe.get, b_pivots, b_dists, bo, be)
    probe = dict(zip(b_pivots[bo:be], b_dists[bo:be]))
    return probe_slice_min(probe.get, a_pivots, a_dists, ao, ae)


def merge_min_via(
    a_pivots, a_dists, i, ie, b_pivots, b_dists, j, je
) -> tuple[float, int]:
    """Sorted merge of two CSR label slices: ``(min dist, best pivot)``.

    Returns pivot -1 when the slices share no pivot (unreachable).
    """
    best = INF
    best_pivot = -1
    while i < ie and j < je:
        pa = a_pivots[i]
        pb = b_pivots[j]
        if pa == pb:
            d = a_dists[i] + b_dists[j]
            if d < best:
                best = d
                best_pivot = pa
            i += 1
            j += 1
        elif pa < pb:
            i += 1
        else:
            j += 1
    return best, best_pivot

# The on-disk blobs are little-endian; big-endian hosts byteswap on
# save/load (and fall back to copying instead of zero-copy mmap views).
_BIG_ENDIAN = sys.byteorder == "big"


class FlatLabelStore:
    """CSR-layout 2-hop label store (the flat-array backend).

    ``out_offsets[v] : out_offsets[v + 1]`` delimits vertex ``v``'s
    out-label inside the parallel ``out_pivots`` / ``out_dists``
    arrays, sorted by pivot id; likewise for the in-side.  For
    undirected stores the in-side members *alias* the out-side arrays
    (Section 7's single store), so the aliasing survives conversion
    and serialisation round trips.

    The arrays may be ``array.array`` instances (owned memory) or
    typed ``memoryview`` slices over an ``mmap`` (zero-copy load);
    both support the indexing, slicing, and iteration the query paths
    use.
    """

    __slots__ = (
        "n",
        "directed",
        "rank",
        "out_offsets",
        "out_pivots",
        "out_dists",
        "in_offsets",
        "in_pivots",
        "in_dists",
        "_mmap",
        "_np",
        "_delta_out",
        "_delta_in",
    )

    def __init__(
        self,
        n: int,
        directed: bool,
        out_offsets,
        out_pivots,
        out_dists,
        in_offsets,
        in_pivots,
        in_dists,
        rank: list[int] | None = None,
    ) -> None:
        self.n = n
        self.directed = directed
        self.out_offsets = out_offsets
        self.out_pivots = out_pivots
        self.out_dists = out_dists
        self.in_offsets = in_offsets
        self.in_pivots = in_pivots
        self.in_dists = in_dists
        self.rank = rank
        self._mmap = None
        # Cached numpy views of the arrays, built on demand by the
        # batch kernel (repro.oracle.kernel); dropped on close().
        self._np = None
        # Staged per-vertex label updates (apply_updates): vertex ->
        # (pivots, dists) side arrays overlaying the base CSR arrays.
        # For undirected stores the in-side overlay aliases the
        # out-side one, exactly like the base arrays.
        self._delta_out: dict[int, tuple] = {}
        self._delta_in: dict[int, tuple] = (
            {} if directed else self._delta_out
        )

    @property
    def is_mmapped(self) -> bool:
        """Whether the arrays are zero-copy views over a file mapping."""
        return self._mmap is not None

    def close(self) -> None:
        """Release the file mapping of an mmap-loaded store.

        After closing, the store must not be queried.  Required on
        platforms (Windows) where a mapped file cannot be deleted;
        a no-op for stores that own their arrays.
        """
        if self._mmap is None:
            return
        # Drop the exported buffer views (including the kernel's numpy
        # views, which hold references to them) before closing the
        # mapping (mmap.close() raises BufferError while views are
        # alive).
        self._np = None
        self.out_offsets = self.out_pivots = self.out_dists = None
        self.in_offsets = self.in_pivots = self.in_dists = None
        self._mmap.close()
        self._mmap = None

    # -- conversion ----------------------------------------------------------
    @classmethod
    def from_index(cls, index: LabelIndex) -> "FlatLabelStore":
        """Pack a tuple-list :class:`LabelIndex` into CSR arrays."""

        def pack(labels):
            offsets = array("q", [0])
            pivots = array("i")
            dists = array("d")
            for lab in labels:
                for p, d in lab:
                    pivots.append(p)
                    dists.append(d)
                offsets.append(len(pivots))
            return offsets, pivots, dists

        oo, op, od = pack(index.out_labels)
        if index.directed:
            io, ip, id_ = pack(index.in_labels)
        else:
            io, ip, id_ = oo, op, od
        rank = list(index.rank) if index.rank is not None else None
        return cls(index.n, index.directed, oo, op, od, io, ip, id_, rank)

    def to_index(self) -> LabelIndex:
        """Expand back into a tuple-list :class:`LabelIndex`."""
        out_labels = [self.out_label(v) for v in range(self.n)]
        if self.directed:
            in_labels = [self.in_label(v) for v in range(self.n)]
        else:
            in_labels = out_labels
        rank = list(self.rank) if self.rank is not None else None
        return LabelIndex(self.n, self.directed, out_labels, in_labels, rank)

    # -- incremental updates -------------------------------------------------
    @property
    def has_pending_updates(self) -> bool:
        """Whether staged label updates currently overlay the arrays."""
        return bool(self._delta_out) or bool(self._delta_in)

    def apply_updates(self, delta) -> int:
        """Stage a :class:`~repro.core.labels.LabelDelta` as an overlay.

        Each carried vertex's replacement label is kept in side arrays
        next to the base CSR arrays; every query path consults the
        overlay before the base slice, so updated answers are served
        immediately with **zero rewrite** of the (possibly
        memory-mapped) base arrays.  The batch kernel's packed key
        views are dropped and rebuilt from the merged arrays on the
        next batch.  Call :meth:`save` (or
        ``ShardedLabelStore.reconcile``) to fold the overlay to disk.
        Returns the number of label slices staged.
        """
        if delta.n != self.n or delta.directed != self.directed:
            raise ValueError(
                f"delta shape (|V|={delta.n}, directed={delta.directed}) "
                f"does not match store (|V|={self.n}, "
                f"directed={self.directed})"
            )
        staged = 0
        sides = [(self._delta_out, delta.out)]
        if self.directed:
            sides.append((self._delta_in, delta.inn))
        for target, source in sides:
            for v, label in source.items():
                if not 0 <= v < self.n:
                    raise IndexError(
                        f"delta vertex {v} out of range [0, {self.n})"
                    )
                target[v] = (
                    array("i", (p for p, _ in label)),
                    array("d", (d for _, d in label)),
                )
                staged += 1
        self._np = None
        return staged

    def merged(self) -> "FlatLabelStore":
        """Fold the staged overlay into fresh CSR arrays (v2 layout).

        Returns ``self`` when nothing is staged.  The quantized
        subclass overrides this to re-encode the merged arrays (widths
        are re-chosen, since updates can move the maxima).
        """
        if not self.has_pending_updates:
            return self

        def side(slice_of):
            offsets = array("q", [0])
            pivots = array("i")
            dists = array("d")
            for v in range(self.n):
                p, d, o, e = slice_of(v)
                pivots.extend(p[o:e])
                dists.extend(d[o:e])
                offsets.append(len(pivots))
            return offsets, pivots, dists

        oo, op, od = side(self.out_slice)
        if self.directed:
            io, ip, id_ = side(self.in_slice)
        else:
            io, ip, id_ = oo, op, od
        rank = list(self.rank) if self.rank is not None else None
        return FlatLabelStore(
            self.n, self.directed, oo, op, od, io, ip, id_, rank
        )

    # -- LabelStore accessors ------------------------------------------------
    def out_label(self, v: int) -> list[tuple[int, float]]:
        """``Lout(v)`` as a fresh (pivot, dist) list, sorted by pivot."""
        if self._delta_out:
            staged = self._delta_out.get(v)
            if staged is not None:
                return list(zip(staged[0], staged[1]))
        o, e = self.out_offsets[v], self.out_offsets[v + 1]
        return list(zip(self.out_pivots[o:e], self.out_dists[o:e]))

    def in_label(self, v: int) -> list[tuple[int, float]]:
        """``Lin(v)`` as a fresh (pivot, dist) list, sorted by pivot."""
        if self._delta_in:
            staged = self._delta_in.get(v)
            if staged is not None:
                return list(zip(staged[0], staged[1]))
        o, e = self.in_offsets[v], self.in_offsets[v + 1]
        return list(zip(self.in_pivots[o:e], self.in_dists[o:e]))

    def label_of(self, v: int, out: bool = True) -> list[tuple[int, float]]:
        """The (pivot, dist) list of ``v``'s out- or in-label."""
        return self.out_label(v) if out else self.in_label(v)

    # -- slice views (shared with the sharded store's query paths) -----------
    def out_slice(self, v: int):
        """``(pivots, dists, lo, hi)`` bounds of ``Lout(v)`` in the arrays.

        The uniform slice accessor the cross-store query paths (the
        sharded store joining labels from two different shards) use:
        plain CSR backends return the raw arrays with bounds, the
        quantized v3 backend returns decoded per-slice lists, and
        vertices with a staged update return their overlay arrays —
        any shape feeds the shared scalar helpers directly.
        """
        if self._delta_out:
            staged = self._delta_out.get(v)
            if staged is not None:
                return staged[0], staged[1], 0, len(staged[0])
        return (
            self.out_pivots,
            self.out_dists,
            self.out_offsets[v],
            self.out_offsets[v + 1],
        )

    def in_slice(self, v: int):
        """``(pivots, dists, lo, hi)`` bounds of ``Lin(v)`` in the arrays."""
        if self._delta_in:
            staged = self._delta_in.get(v)
            if staged is not None:
                return staged[0], staged[1], 0, len(staged[0])
        return (
            self.in_pivots,
            self.in_dists,
            self.in_offsets[v],
            self.in_offsets[v + 1],
        )

    # -- querying ------------------------------------------------------------
    def _check(self, s: int, t: int) -> None:
        if not 0 <= s < self.n or not 0 <= t < self.n:
            raise IndexError(f"query ({s}, {t}) out of range [0, {self.n})")

    def query(self, s: int, t: int) -> float:
        """Exact ``dist(s, t)``; ``inf`` when unreachable.

        The smaller of the two labels is turned into a ``pivot ->
        dist`` dict at C speed and the larger side is probed through
        it; the minimum over common pivots is the same sum the merge
        join would return.
        """
        self._check(s, t)
        if s == t:
            return 0.0
        if self._delta_out or self._delta_in:
            ap, ad, ao, ae = self.out_slice(s)
            bp, bd, bo, be = self.in_slice(t)
            return probe_min_distance(ap, ad, ao, ae, bp, bd, bo, be)
        return probe_min_distance(
            self.out_pivots,
            self.out_dists,
            self.out_offsets[s],
            self.out_offsets[s + 1],
            self.in_pivots,
            self.in_dists,
            self.in_offsets[t],
            self.in_offsets[t + 1],
        )

    def query_via(self, s: int, t: int) -> tuple[float, int]:
        """Like :meth:`query` but also return the best pivot (-1 if none)."""
        self._check(s, t)
        if s == t:
            return 0.0, s
        if self._delta_out or self._delta_in:
            ap, ad, ao, ae = self.out_slice(s)
            bp, bd, bo, be = self.in_slice(t)
            return merge_min_via(ap, ad, ao, ae, bp, bd, bo, be)
        return merge_min_via(
            self.out_pivots,
            self.out_dists,
            self.out_offsets[s],
            self.out_offsets[s + 1],
            self.in_pivots,
            self.in_dists,
            self.in_offsets[t],
            self.in_offsets[t + 1],
        )

    def query_group(self, s: int, targets: Sequence[int]) -> list[float]:
        """Distances from ``s`` to each target, amortising the source side.

        The ``Lout(s)`` dict is built once and probed with every
        target's in-label — the building block of
        :meth:`repro.oracle.DistanceOracle.query_batch`.
        """
        if not 0 <= s < self.n:
            raise IndexError(f"source {s} out of range [0, {self.n})")
        if self._delta_out or self._delta_in:
            ap, ad, ao, ae = self.out_slice(s)
            src = dict(zip(ap[ao:ae], ad[ao:ae]))
            get = src.get
            out = []
            append = out.append
            for t in targets:
                if not 0 <= t < self.n:
                    raise IndexError(
                        f"target {t} out of range [0, {self.n})"
                    )
                if t == s:
                    append(0.0)
                    continue
                bp, bd, bo, be = self.in_slice(t)
                append(probe_slice_min(get, bp, bd, bo, be))
            return out
        ao, ae = self.out_offsets[s], self.out_offsets[s + 1]
        src = dict(zip(self.out_pivots[ao:ae], self.out_dists[ao:ae]))
        get = src.get
        pivots, dists, offsets = self.in_pivots, self.in_dists, self.in_offsets
        out: list[float] = []
        append = out.append
        for t in targets:
            if not 0 <= t < self.n:
                raise IndexError(f"target {t} out of range [0, {self.n})")
            if t == s:
                append(0.0)
                continue
            append(
                probe_slice_min(get, pivots, dists, offsets[t], offsets[t + 1])
            )
        return out

    def _label_len(self, v: int, out: bool) -> int:
        """Current label length of ``v`` (overlay-aware)."""
        overlay = self._delta_out if out else self._delta_in
        if overlay:
            staged = overlay.get(v)
            if staged is not None:
                return len(staged[0])
        offsets = self.out_offsets if out else self.in_offsets
        return offsets[v + 1] - offsets[v]

    # -- statistics ----------------------------------------------------------
    def total_entries(self, include_trivial: bool = False) -> int:
        """Total label entries (self entries excluded unless asked)."""
        total = len(self.out_pivots)
        if self.directed:
            total += len(self.in_pivots)
        sides = [(self._delta_out, self.out_offsets)]
        if self.directed:
            sides.append((self._delta_in, self.in_offsets))
        for overlay, offsets in sides:
            for v, (pivots, _) in overlay.items():
                total += len(pivots) - (offsets[v + 1] - offsets[v])
        trivial = self.n * (2 if self.directed else 1)
        return total if include_trivial else total - trivial

    def size_in_bytes(self) -> int:
        """Index size under the paper's 5-bytes-per-entry convention."""
        return self.total_entries(include_trivial=True) * BYTES_PER_ENTRY

    def storage_bytes(self) -> int:
        """Actual bytes held by the arrays (offsets included)."""
        sides = [(self.out_offsets, self.out_pivots, self.out_dists)]
        if self.directed:
            sides.append((self.in_offsets, self.in_pivots, self.in_dists))
        total = 0
        for offsets, pivots, dists in sides:
            for arr in (offsets, pivots, dists):
                total += len(arr) * arr.itemsize
        overlays = [self._delta_out]
        if self.directed:
            overlays.append(self._delta_in)
        for overlay in overlays:
            for pivots, dists in overlay.values():
                total += len(pivots) * pivots.itemsize
                total += len(dists) * dists.itemsize
        return total

    def stats(self) -> LabelStats:
        """Aggregate size statistics (same semantics as LabelIndex)."""
        per_vertex = []
        overlaid = self.has_pending_updates
        for v in range(self.n):
            if overlaid:
                size = self._label_len(v, out=True) - 1
                if self.directed:
                    size += self._label_len(v, out=False) - 1
                per_vertex.append(size)
                continue
            size = self.out_offsets[v + 1] - self.out_offsets[v] - 1
            if self.directed:
                size += self.in_offsets[v + 1] - self.in_offsets[v] - 1
            per_vertex.append(size)
        total = sum(per_vertex)
        return LabelStats(
            num_vertices=self.n,
            total_entries=total,
            max_label_size=max(per_vertex, default=0),
            avg_label_size=total / self.n if self.n else 0.0,
            index_bytes=self.size_in_bytes(),
        )

    # -- serialization -------------------------------------------------------
    def save(self, path) -> None:
        """Write binary format v2 atomically (temp file + rename).

        Staged updates are folded in first, so the file always holds
        the merged labels."""
        if self.has_pending_updates:
            self.merged().save(path)
            return
        flags = 1 if self.directed else 0
        has_rank = 1 if self.rank is not None else 0
        out_count = len(self.out_pivots)
        in_count = len(self.in_pivots) if self.directed else 0
        with atomic_binary_writer(path) as fh:
            fh.write(_MAGIC)
            fh.write(
                _HEADER.pack(_VERSION, flags, has_rank, self.n, out_count,
                             in_count)
            )
            if self.rank is not None:
                fh.write(_as_le_bytes(array("I", self.rank), "I"))
            sides = [("q", self.out_offsets), ("i", self.out_pivots),
                     ("d", self.out_dists)]
            if self.directed:
                sides += [("q", self.in_offsets), ("i", self.in_pivots),
                          ("d", self.in_dists)]
            for typecode, blob in sides:
                fh.write(_as_le_bytes(blob, typecode))

    @classmethod
    def load(cls, path, use_mmap: bool = False) -> "FlatLabelStore":
        """Read a v2 file: one bulk read (or an ``mmap``) plus casts.

        With ``use_mmap=True`` the arrays are zero-copy typed
        memoryviews over a shared read-only mapping, so a multi-GB
        index "loads" in microseconds and pages in on demand.  Raises
        ``ValueError`` on wrong magic, version, or truncation.
        """
        fh = open(path, "rb")
        with fh:
            head = fh.read(4 + _HEADER.size)
            if head[:4] != _MAGIC:
                raise ValueError(f"{path}: not a label index file")
            if len(head) < 4 + _HEADER.size:
                raise ValueError(f"{path}: truncated or corrupt index file")
            version, flags, has_rank, n, out_count, in_count = _HEADER.unpack(
                head[4:]
            )
            if version != _VERSION:
                raise ValueError(
                    f"{path}: not a v2 flat index (version {version}); "
                    "use load_store() to read any version"
                )
            if use_mmap and not _BIG_ENDIAN:
                body = memoryview(
                    _mmap.mmap(fh.fileno(), 0, access=_mmap.ACCESS_READ)
                )[4 + _HEADER.size :]
            else:
                # On big-endian hosts the blobs must be byteswapped, so
                # zero-copy views are impossible; fall back to copying.
                body = memoryview(fh.read())

        directed = bool(flags & 1)
        cursor = _Cursor(path, body)
        try:
            rank = None
            if has_rank:
                rank = list(cursor.take("I", n))
            oo = cursor.take("q", n + 1)
            op = cursor.take("i", out_count)
            od = cursor.take("d", out_count)
            if directed:
                io = cursor.take("q", n + 1)
                ip = cursor.take("i", in_count)
                id_ = cursor.take("d", in_count)
            else:
                io, ip, id_ = oo, op, od
        except ValueError:
            # Don't leak the mapping of a truncated file: release every
            # exported view, then close the mmap before re-raising.
            if cursor.zero_copy:
                mapping = body.obj
                cursor.release_views()
                body.release()
                mapping.close()
            raise
        store = cls(n, directed, oo, op, od, io, ip, id_, rank)
        if cursor.zero_copy:
            store._mmap = body.obj
        return store

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (
            f"FlatLabelStore(|V|={self.n}, {kind}, "
            f"entries={self.total_entries()})"
        )


class _Cursor:
    """Sequential typed reads over a loaded v2 body, with bounds checks."""

    def __init__(self, path, body: memoryview) -> None:
        self.path = path
        self.body = body
        self.pos = 0
        self.zero_copy = isinstance(body.obj, _mmap.mmap)
        self.views: list[memoryview] = []

    def take(self, typecode: str, count: int):
        size = count * array(typecode).itemsize
        end = self.pos + size
        if end > len(self.body):
            raise ValueError(f"{self.path}: truncated or corrupt index file")
        chunk = self.body[self.pos : end]
        self.pos = end
        if self.zero_copy:
            view = chunk.cast(typecode)
            self.views.append(view)
            return view
        arr = array(typecode)
        arr.frombytes(chunk)
        if _BIG_ENDIAN:
            arr.byteswap()
        return arr

    def release_views(self) -> None:
        """Release every exported view so the mapping can be closed."""
        for view in self.views:
            view.release()
        self.views.clear()


def _as_le_bytes(blob, typecode: str) -> bytes:
    """Serialise an array or typed-memoryview blob as little-endian bytes."""
    if not _BIG_ENDIAN:
        return blob.tobytes()
    swapped = array(typecode)
    swapped.frombytes(blob.tobytes())
    swapped.byteswap()
    return swapped.tobytes()


def load_store(path, prefer_flat: bool = True, use_mmap: bool = False):
    """Open an index file of **any** format version as a label store.

    Sniffs the version byte: v2 loads straight into a
    :class:`FlatLabelStore`; v3 into a
    :class:`~repro.core.quantized.QuantizedLabelStore` (the compact
    arrays are served as-is — no decode pass); v1 loads through
    :class:`~repro.core.labels.LabelIndex` and is packed into CSR
    arrays when ``prefer_flat`` (the default), so old files get the
    fast query path for free.  With ``prefer_flat=False`` a v1 file
    yields the original tuple-list :class:`LabelIndex`.
    """
    with open(path, "rb") as fh:
        head = fh.read(5)
    if len(head) < 5 or head[:4] != _MAGIC:
        raise ValueError(f"{path}: not a label index file")
    version = head[4]
    if version == _VERSION:
        return FlatLabelStore.load(path, use_mmap=use_mmap)
    if version == 3:
        from repro.core.quantized import QuantizedLabelStore

        return QuantizedLabelStore.load(path, use_mmap=use_mmap)
    index = LabelIndex.load(path)
    if prefer_flat:
        return FlatLabelStore.from_index(index)
    return index
