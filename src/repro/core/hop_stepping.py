"""Hop-Stepping (Section 5): grow covered hop lengths by one per round.

At iteration ``i`` (initialization being iteration 1) the labels cover
every ``i``-hop trough shortest path (Lemma 5), so the construction
terminates within ``D_H`` iterations (Theorem 6).  Joining prev entries
only with *unit-hop* entries (graph edges) caps the per-iteration
candidate volume at ``O(h |V| log |V|)`` (Section 5.2), trading more
iterations for far fewer candidates — exactly the opposite trade to
:class:`~repro.core.hop_doubling.HopDoubling`.

Implementation note: the paper joins with 1-hop entries from
``allLabel`` ("Only edges in E have unit hop lengths"); we join with
the raw edge set, a superset of the surviving 1-hop entries.  Any extra
candidate this superset produces is immediately removed by the pruning
step, so indexes are identical while the iteration plumbing stays
simple.
"""

from __future__ import annotations

from repro.core.hop_doubling import LabelingBuilder


class HopStepping(LabelingBuilder):
    """Pure Hop-Stepping: label x edge joins every round."""

    name = "hop-stepping"

    def mode_for(self, iteration: int) -> str:
        return "step"
