"""Algorithm 1: iterative label construction, and the Hop-Doubling builder.

:class:`LabelingBuilder` implements the shared iterative skeleton:

1. **initialization** (the paper's iteration 1): every edge becomes a
   label entry, plus the trivial ``(v, 0)`` entries;
2. **iterate**: generate candidates with the rule engine, admit and
   prune them (:mod:`repro.core.pruning`), repeat until an iteration
   yields no surviving entry.

Subclasses choose the joining mode per iteration:
:class:`HopDoubling` always joins against all labels (Section 3),
:class:`~repro.core.hop_stepping.HopStepping` always joins against
edges (Section 5), and :class:`~repro.core.hybrid.HybridBuilder` steps
first and doubles later (Section 5.4, the paper's default).

Per-iteration counters are retained (:class:`IterationStats`) because
Figure 10 of the paper plots exactly these series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import (
    check_engine_options,
    make_build_engine,
    seed_dict_state,
)
from repro.core.labels import (
    DirectedLabelState,
    LabelIndex,
    UndirectedLabelState,
)
from repro.core.ranking import Ranking, make_ranking
from repro.core.rules import PrevEntry
from repro.graphs.digraph import Graph
from repro.utils.timer import Timer


@dataclass(frozen=True)
class IterationStats:
    """Counters of one generation round (Figure 10's raw series)."""

    iteration: int
    mode: str  # "step" or "double"
    raw_generated: int
    distinct_generated: int
    admitted: int
    pruned: int
    survived: int
    total_entries: int
    prev_size: int
    elapsed: float

    @property
    def growing_factor(self) -> float:
        """Candidates generated relative to the previous round's output."""
        return self.distinct_generated / self.prev_size if self.prev_size else 0.0

    @property
    def pruning_factor(self) -> float:
        """Fraction of admitted candidates removed by pruning."""
        return self.pruned / self.admitted if self.admitted else 0.0


@dataclass
class BuildResult:
    """Everything a build produces: the index plus its provenance."""

    index: LabelIndex
    ranking: Ranking
    iterations: list[IterationStats] = field(default_factory=list)
    build_seconds: float = 0.0
    builder_name: str = ""

    @property
    def num_iterations(self) -> int:
        """Iterations in the paper's counting (initialization included)."""
        return 1 + sum(1 for it in self.iterations if it.survived > 0)

    def query(self, s: int, t: int) -> float:
        """Convenience passthrough to :meth:`LabelIndex.query`."""
        return self.index.query(s, t)


class LabelingBuilder:
    """Iterative 2-hop label construction (Algorithm 1 skeleton).

    Parameters
    ----------
    graph:
        The input graph (directed/undirected, weighted/unweighted).
    ranking:
        A :class:`Ranking`, a strategy name from
        :mod:`repro.core.ranking`, or ``"auto"`` (paper defaults:
        degree for undirected, in x out product for directed graphs).
    rule_set:
        ``"minimized"`` (the paper's four simplified rules, default) or
        ``"full"`` (all six rules — the reference engine).
    prune:
        Apply the Section 3.3 pruning step (default).  Disabling it is
        only useful for the ablation benchmarks; indexes stay correct
        but grow far larger.
    final_exhaustive_prune:
        Re-sweep all entries once construction finishes (Section 5.2's
        note that exhaustive pruning equalizes Hop-Doubling's label
        size with Hop-Stepping's).
    max_iterations:
        Optional hard stop (generation rounds), a safety valve for
        adversarial weighted inputs.
    engine:
        Construction backend: ``"dict"`` (the reference per-entry
        implementation, default) or ``"array"`` (the vectorized
        struct-of-arrays engine, requires numpy).  Both produce
        bit-identical indexes and iteration counters; ``"array"`` is
        several times faster on non-trivial graphs.
    jobs:
        Worker processes for candidate generation (array engine only).
        ``jobs=N`` builds are bit-identical to ``jobs=1``.
    """

    #: Human-readable name used by benchmark tables.
    name = "base"

    def __init__(
        self,
        graph: Graph,
        ranking: Ranking | str = "auto",
        rule_set: str = "minimized",
        prune: bool = True,
        final_exhaustive_prune: bool = False,
        max_iterations: int | None = None,
        engine: str = "dict",
        jobs: int = 1,
    ) -> None:
        self.graph = graph
        if isinstance(ranking, str):
            ranking = make_ranking(graph, ranking)
        if len(ranking) != graph.num_vertices:
            raise ValueError(
                f"ranking covers {len(ranking)} vertices, graph has "
                f"{graph.num_vertices}"
            )
        check_engine_options(engine, jobs)
        self.ranking = ranking
        self.rule_set = rule_set
        self.prune = prune
        self.final_exhaustive_prune = final_exhaustive_prune
        self.max_iterations = max_iterations
        self.engine = engine
        self.jobs = jobs

    # -- subclass hook ---------------------------------------------------
    def mode_for(self, iteration: int) -> str:
        """Joining mode for a given iteration number (2 = first round).

        Iteration numbers follow the paper: initialization is
        iteration 1, so the first generation round is iteration 2.
        """
        raise NotImplementedError

    # -- construction ------------------------------------------------------
    def _initial_state(
        self,
    ) -> tuple[DirectedLabelState | UndirectedLabelState, list[PrevEntry]]:
        """Seed dict stores with one entry per edge (paper's iteration 1).

        Retained for callers that drive the dict state directly (the
        dynamic-update index, the external-memory simulator); the
        engines seed themselves through :mod:`repro.core.engine`.
        """
        return seed_dict_state(self.graph, self.ranking.rank_of)

    def build(self) -> BuildResult:
        """Run the iterative construction and freeze the index."""
        total_timer = Timer().start()
        engine = make_build_engine(
            self.graph,
            self.ranking,
            rule_set=self.rule_set,
            engine=self.engine,
            jobs=self.jobs,
        )
        iterations: list[IterationStats] = []
        try:
            prev = engine.initialize()
            iteration = 1  # initialization, per the paper's counting
            while len(prev):
                if (
                    self.max_iterations is not None
                    and iteration - 1 >= self.max_iterations
                ):
                    break
                iteration += 1
                mode = self.mode_for(iteration)
                if mode not in ("step", "double"):  # pragma: no cover
                    raise ValueError(f"unknown mode {mode!r}")
                round_timer = Timer().start()
                candidates = engine.generate(mode, prev)
                survivors, outcome = engine.admit_and_prune(
                    candidates, prune=self.prune
                )
                elapsed = round_timer.stop()
                iterations.append(
                    IterationStats(
                        iteration=iteration,
                        mode=mode,
                        raw_generated=outcome.raw_generated,
                        distinct_generated=outcome.distinct_generated,
                        admitted=outcome.admitted,
                        pruned=outcome.pruned,
                        survived=outcome.survived,
                        total_entries=engine.total_entries(),
                        prev_size=len(prev),
                        elapsed=elapsed,
                    )
                )
                prev = survivors

            if self.final_exhaustive_prune and self.prune:
                engine.exhaustive_prune()

            index = engine.freeze()
        finally:
            engine.close()
        return BuildResult(
            index=index,
            ranking=self.ranking,
            iterations=iterations,
            build_seconds=total_timer.stop(),
            builder_name=self.name,
        )


class HopDoubling(LabelingBuilder):
    """Pure Hop-Doubling (Section 3): label x label joins every round.

    Covered hop lengths double every two iterations (Theorem 2), so at
    most ``2 * ceil(log2(D_H))`` generation rounds occur (Theorem 4).
    The price is the candidate blow-up analysed in Section 5 — each
    round can multiply candidates by ``(log |V|)^{D_H/2}`` — which is
    why the paper prefers stepping early (see
    :class:`~repro.core.hybrid.HybridBuilder`).
    """

    name = "hop-doubling"

    def mode_for(self, iteration: int) -> str:
        return "double"
