"""Binary format v3: quantized distances + delta-encoded hub ids.

Format v2 (:mod:`repro.core.flatstore`) stores every label entry as a
32-bit pivot id plus a 64-bit float distance — 12 bytes per entry
before offsets.  The paper's serving story (Section 6) leans on a ~5
bytes/entry encoding to keep the index cache-resident; format v3 gets
below that by exploiting two facts about 2-hop labels:

* **pivot ids are sorted** inside each label, so storing successive
  differences (the first pivot, then deltas) makes the values small —
  one or two bytes each on scale-free graphs, where most labels point
  at the few globally top-ranked hubs;
* **distances are tiny** on small-diameter networks: unweighted (and
  integer-weighted) indexes fit every distance in one or two bytes.

Widths are chosen **per index** from the observed data and recorded in
the header, so decoding needs no guessing and pathological inputs
degrade gracefully (fractional or huge distances fall back to raw
``f64``; the answers stay bit-identical in every mode)::

    RPLI | u8 version=3 | u8 flags | u8 has_rank | u32 n
    u64 out_count | u64 in_count            (in_count 0 when undirected)
    u8 off_width(4|8) | u8 pivot_width(1|2|4) | u8 dist_width(1|2|8) | u8 0
    [rank:        n * u32]                  if has_rank
    out_offsets:  (n+1) * off_width
    out_pivots:   out_count * pivot_width   (per-label deltas)
    out_dists:    out_count * dist_width    (uint quantized, or raw f64)
    [in_offsets / in_pivots / in_dists]     if directed

:class:`QuantizedLabelStore` serves the compact arrays directly: an
mmap load is a handful of zero-copy casts (no decode pass), the
vectorized batch kernel (:mod:`repro.oracle.kernel`) consumes the
quantized arrays as-is, and the scalar reference paths decode only the
one or two label slices a query touches.  Everything is pure stdlib —
numpy is only involved when the kernel is.
"""

from __future__ import annotations

import mmap as _mmap
import struct
from array import array

from repro.core.flatstore import (
    _BIG_ENDIAN,
    _Cursor,
    _as_le_bytes,
    FlatLabelStore,
    merge_min_via,
    probe_min_distance,
    probe_slice_min,
)
from repro.utils.atomicio import atomic_binary_writer

_MAGIC = b"RPLI"
_VERSION = 3
# version, flags, has_rank, n, out_count, in_count,
# off_width, pivot_width, dist_width, reserved
_HEADER = struct.Struct("<BBBIQQBBBB")

#: Typecode for each legal field width (validated on load).
_OFFSET_CODES = {4: "I", 8: "Q"}
_PIVOT_CODES = {1: "B", 2: "H", 4: "I"}
_DIST_CODES = {1: "B", 2: "H", 8: "d"}


def _decode_slice(pivots, dists, o: int, e: int) -> tuple[list, list]:
    """Decode one label slice: delta pivots -> absolute, dists -> float.

    Returns parallel lists in the exact shape the shared scalar
    helpers (:func:`~repro.core.flatstore.probe_min_distance` and
    friends) expect, so the quantized store reuses the single
    bit-identical evaluation implementation.
    """
    piv: list[int] = []
    dst: list[float] = []
    acc = 0
    for delta, d in zip(pivots[o:e], dists[o:e]):
        acc += delta
        piv.append(acc)
        dst.append(float(d))
    return piv, dst


class QuantizedLabelStore(FlatLabelStore):
    """CSR label store over v3 compact arrays (delta pivots, narrow dists).

    Same :class:`~repro.core.labels.LabelStore` protocol, same answers,
    roughly a quarter of the bytes: ``out_pivots`` holds per-label
    deltas and ``out_dists`` holds width-``dist_width`` values
    (unsigned integers for quantized indexes, raw ``f64`` in the
    fallback mode).  Query paths decode the touched slices on the fly
    through :func:`_decode_slice` and then run the shared scalar
    helpers, so distances are bit-identical to the v2 store's;
    the batch kernel skips the decode entirely and consumes the
    compact arrays in vectorized form.
    """

    __slots__ = ("pivot_width", "dist_width")

    def __init__(
        self,
        n: int,
        directed: bool,
        out_offsets,
        out_pivots,
        out_dists,
        in_offsets,
        in_pivots,
        in_dists,
        rank: list[int] | None = None,
        pivot_width: int = 4,
        dist_width: int = 8,
    ) -> None:
        super().__init__(
            n, directed, out_offsets, out_pivots, out_dists,
            in_offsets, in_pivots, in_dists, rank,
        )
        if pivot_width not in _PIVOT_CODES:
            raise ValueError(f"invalid pivot width {pivot_width}")
        if dist_width not in _DIST_CODES:
            raise ValueError(f"invalid distance width {dist_width}")
        self.pivot_width = pivot_width
        self.dist_width = dist_width

    @property
    def is_quantized(self) -> bool:
        """Whether distances are stored as unsigned integers."""
        return self.dist_width != 8

    # -- conversion ----------------------------------------------------------
    @classmethod
    def from_flat(cls, store: FlatLabelStore) -> "QuantizedLabelStore":
        """Compact a v2-layout store into delta/quantized arrays.

        Widths are chosen from the observed data: the distance width
        from the index "diameter" (the largest finite label distance),
        falling back to raw ``f64`` when any distance is fractional or
        beyond 16 bits; the pivot width from the largest delta.
        Staged updates on the source are folded in first.
        """
        if isinstance(store, QuantizedLabelStore):
            if store.has_pending_updates:
                return store.merged()
            return store
        if store.has_pending_updates:
            store = store.merged()
        sides = [(store.out_offsets, store.out_pivots, store.out_dists)]
        if store.directed:
            sides.append((store.in_offsets, store.in_pivots, store.in_dists))

        max_delta = 0
        max_dist = 0.0
        integral = True
        for offsets, pivots, dists in sides:
            for v in range(store.n):
                prev = 0
                for p in pivots[offsets[v] : offsets[v + 1]]:
                    if p - prev > max_delta:
                        max_delta = p - prev
                    prev = p
            for d in dists:
                if d > max_dist:
                    max_dist = d
                if integral and d != int(d):
                    integral = False

        pivot_width = 1 if max_delta <= 0xFF else 2 if max_delta <= 0xFFFF else 4
        if integral and 0.0 <= max_dist <= 0xFF:
            dist_width = 1
        elif integral and 0.0 <= max_dist <= 0xFFFF:
            dist_width = 2
        else:
            dist_width = 8
        pivot_code = _PIVOT_CODES[pivot_width]
        dist_code = _DIST_CODES[dist_width]
        # One offsets width for both sides — the header records a
        # single off_width, so the larger side decides.
        off_code = (
            "I"
            if max(len(s[1]) for s in sides) <= 0xFFFFFFFF
            else "Q"
        )

        def pack(offsets, pivots, dists):
            q_off = array(off_code, offsets)
            q_piv = array(pivot_code)
            ap = q_piv.append
            for v in range(store.n):
                o, e = offsets[v], offsets[v + 1]
                prev = 0
                for p in pivots[o:e]:
                    ap(p - prev)
                    prev = p
            if dist_width == 8:
                q_dist = array("d", dists)
            else:
                q_dist = array(dist_code, (int(d) for d in dists))
            return q_off, q_piv, q_dist

        oo, op, od = pack(*sides[0])
        if store.directed:
            io, ip, id_ = pack(*sides[1])
        else:
            io, ip, id_ = oo, op, od
        rank = list(store.rank) if store.rank is not None else None
        return cls(
            store.n, store.directed, oo, op, od, io, ip, id_, rank,
            pivot_width=pivot_width, dist_width=dist_width,
        )

    def merged(self) -> "QuantizedLabelStore":
        """Fold the staged overlay in, re-choosing the encoding widths.

        Updates can move the maxima the widths were chosen from (a
        longer distance, a larger pivot delta), so the merged arrays
        are re-encoded through :meth:`from_flat` rather than patched.
        """
        if not self.has_pending_updates:
            return self
        return QuantizedLabelStore.from_flat(super().merged())

    def to_flat(self) -> FlatLabelStore:
        """Expand back into a v2-layout :class:`FlatLabelStore`.

        Staged updates are folded in (the expansion decodes the base
        arrays directly, which an overlay would otherwise bypass)."""
        if self.has_pending_updates:
            return self.merged().to_flat()

        def unpack(offsets, pivots, dists):
            f_off = array("q", offsets)
            f_piv = array("i")
            f_dist = array("d")
            for v in range(self.n):
                piv, dst = _decode_slice(
                    pivots, dists, offsets[v], offsets[v + 1]
                )
                f_piv.extend(piv)
                f_dist.extend(dst)
            return f_off, f_piv, f_dist

        oo, op, od = unpack(self.out_offsets, self.out_pivots, self.out_dists)
        if self.directed:
            io, ip, id_ = unpack(
                self.in_offsets, self.in_pivots, self.in_dists
            )
        else:
            io, ip, id_ = oo, op, od
        rank = list(self.rank) if self.rank is not None else None
        return FlatLabelStore(
            self.n, self.directed, oo, op, od, io, ip, id_, rank
        )

    @classmethod
    def from_index(cls, index) -> "QuantizedLabelStore":
        """Pack a tuple-list :class:`~repro.core.labels.LabelIndex`."""
        return cls.from_flat(FlatLabelStore.from_index(index))

    # -- LabelStore accessors ------------------------------------------------
    def out_label(self, v: int) -> list[tuple[int, float]]:
        """``Lout(v)`` as a fresh (pivot, dist) list, sorted by pivot."""
        if self._delta_out:
            staged = self._delta_out.get(v)
            if staged is not None:
                return list(zip(staged[0], staged[1]))
        piv, dst = _decode_slice(
            self.out_pivots, self.out_dists,
            self.out_offsets[v], self.out_offsets[v + 1],
        )
        return list(zip(piv, dst))

    def in_label(self, v: int) -> list[tuple[int, float]]:
        """``Lin(v)`` as a fresh (pivot, dist) list, sorted by pivot."""
        if self._delta_in:
            staged = self._delta_in.get(v)
            if staged is not None:
                return list(zip(staged[0], staged[1]))
        piv, dst = _decode_slice(
            self.in_pivots, self.in_dists,
            self.in_offsets[v], self.in_offsets[v + 1],
        )
        return list(zip(piv, dst))

    # -- slice views (shared with the sharded store's query paths) -----------
    def out_slice(self, v: int):
        """``(pivots, dists, lo, hi)`` of ``Lout(v)``, decoded.

        Vertices with a staged update serve their overlay arrays
        directly — no decode needed (they are stored absolute)."""
        if self._delta_out:
            staged = self._delta_out.get(v)
            if staged is not None:
                return staged[0], staged[1], 0, len(staged[0])
        piv, dst = _decode_slice(
            self.out_pivots, self.out_dists,
            self.out_offsets[v], self.out_offsets[v + 1],
        )
        return piv, dst, 0, len(piv)

    def in_slice(self, v: int):
        """``(pivots, dists, lo, hi)`` of ``Lin(v)``, decoded."""
        if self._delta_in:
            staged = self._delta_in.get(v)
            if staged is not None:
                return staged[0], staged[1], 0, len(staged[0])
        piv, dst = _decode_slice(
            self.in_pivots, self.in_dists,
            self.in_offsets[v], self.in_offsets[v + 1],
        )
        return piv, dst, 0, len(piv)

    # -- querying ------------------------------------------------------------
    def query(self, s: int, t: int) -> float:
        """Exact ``dist(s, t)``; ``inf`` when unreachable.

        Decodes the two touched slices and runs the same dict-probe
        helper as the flat store — bit-identical answers.
        """
        self._check(s, t)
        if s == t:
            return 0.0
        ap, ad, ao, ae = self.out_slice(s)
        bp, bd, bo, be = self.in_slice(t)
        return probe_min_distance(ap, ad, ao, ae, bp, bd, bo, be)

    def query_via(self, s: int, t: int) -> tuple[float, int]:
        """Like :meth:`query` but also return the best pivot (-1 if none)."""
        self._check(s, t)
        if s == t:
            return 0.0, s
        ap, ad, ao, ae = self.out_slice(s)
        bp, bd, bo, be = self.in_slice(t)
        return merge_min_via(ap, ad, ao, ae, bp, bd, bo, be)

    def query_group(self, s, targets):
        """Distances from ``s`` to each target, amortising the source side."""
        if not 0 <= s < self.n:
            raise IndexError(f"source {s} out of range [0, {self.n})")
        sp, sd, _, _ = self.out_slice(s)
        get = dict(zip(sp, sd)).get
        out: list[float] = []
        append = out.append
        for t in targets:
            if not 0 <= t < self.n:
                raise IndexError(f"target {t} out of range [0, {self.n})")
            if t == s:
                append(0.0)
                continue
            tp, td, to, te = self.in_slice(t)
            append(probe_slice_min(get, tp, td, to, te))
        return out

    # -- serialization -------------------------------------------------------
    def save(self, path) -> None:
        """Write binary format v3 atomically (temp file + rename).

        Staged updates are folded in (and the widths re-chosen) first,
        so the file always holds the merged labels."""
        if self.has_pending_updates:
            self.merged().save(path)
            return
        flags = 1 if self.directed else 0
        has_rank = 1 if self.rank is not None else 0
        out_count = len(self.out_pivots)
        in_count = len(self.in_pivots) if self.directed else 0
        off_width = self.out_offsets.itemsize
        pivot_code = _PIVOT_CODES[self.pivot_width]
        dist_code = _DIST_CODES[self.dist_width]
        off_code = _OFFSET_CODES[off_width]
        with atomic_binary_writer(path) as fh:
            fh.write(_MAGIC)
            fh.write(
                _HEADER.pack(
                    _VERSION, flags, has_rank, self.n, out_count, in_count,
                    off_width, self.pivot_width, self.dist_width, 0,
                )
            )
            if self.rank is not None:
                fh.write(_as_le_bytes(array("I", self.rank), "I"))
            sides = [
                (off_code, self.out_offsets),
                (pivot_code, self.out_pivots),
                (dist_code, self.out_dists),
            ]
            if self.directed:
                sides += [
                    (off_code, self.in_offsets),
                    (pivot_code, self.in_pivots),
                    (dist_code, self.in_dists),
                ]
            for typecode, blob in sides:
                fh.write(_as_le_bytes(blob, typecode))

    @classmethod
    def load(cls, path, use_mmap: bool = False) -> "QuantizedLabelStore":
        """Read a v3 file: one bulk read (or an ``mmap``) plus casts.

        There is **no decode pass**: the compact arrays are served
        as-is (zero-copy typed memoryviews with ``use_mmap=True``) and
        decoded per touched slice at query time.  Raises ``ValueError``
        on wrong magic/version, invalid header widths, or truncation.
        """
        fh = open(path, "rb")
        with fh:
            head = fh.read(4 + _HEADER.size)
            if head[:4] != _MAGIC:
                raise ValueError(f"{path}: not a label index file")
            if len(head) < 4 + _HEADER.size:
                raise ValueError(f"{path}: truncated or corrupt index file")
            (
                version, flags, has_rank, n, out_count, in_count,
                off_width, pivot_width, dist_width, _reserved,
            ) = _HEADER.unpack(head[4:])
            if version != _VERSION:
                raise ValueError(
                    f"{path}: not a v3 quantized index (version {version}); "
                    "use load_store() to read any version"
                )
            if off_width not in _OFFSET_CODES:
                raise ValueError(
                    f"{path}: corrupt header (offset width {off_width})"
                )
            if pivot_width not in _PIVOT_CODES:
                raise ValueError(
                    f"{path}: corrupt header (pivot width {pivot_width})"
                )
            if dist_width not in _DIST_CODES:
                raise ValueError(
                    f"{path}: corrupt header (distance width {dist_width})"
                )
            if use_mmap and not _BIG_ENDIAN:
                body = memoryview(
                    _mmap.mmap(fh.fileno(), 0, access=_mmap.ACCESS_READ)
                )[4 + _HEADER.size :]
            else:
                body = memoryview(fh.read())

        directed = bool(flags & 1)
        off_code = _OFFSET_CODES[off_width]
        pivot_code = _PIVOT_CODES[pivot_width]
        dist_code = _DIST_CODES[dist_width]
        cursor = _Cursor(path, body)
        try:
            rank = None
            if has_rank:
                rank = list(cursor.take("I", n))
            oo = cursor.take(off_code, n + 1)
            op = cursor.take(pivot_code, out_count)
            od = cursor.take(dist_code, out_count)
            if directed:
                io = cursor.take(off_code, n + 1)
                ip = cursor.take(pivot_code, in_count)
                id_ = cursor.take(dist_code, in_count)
            else:
                io, ip, id_ = oo, op, od
        except ValueError:
            if cursor.zero_copy:
                mapping = body.obj
                cursor.release_views()
                body.release()
                mapping.close()
            raise
        store = cls(
            n, directed, oo, op, od, io, ip, id_, rank,
            pivot_width=pivot_width, dist_width=dist_width,
        )
        if cursor.zero_copy:
            store._mmap = body.obj
        return store

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (
            f"QuantizedLabelStore(|V|={self.n}, {kind}, "
            f"entries={self.total_entries()}, "
            f"pivot_width={self.pivot_width}, dist_width={self.dist_width})"
        )
