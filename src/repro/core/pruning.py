"""Candidate admission and label pruning (Sections 3.1 and 3.3).

Each indexing iteration stages the candidates produced by the rule
engine and then prunes them:

* **admission** — a generated entry for pair ``a -> b`` "becomes a new
  label entry ... if there is no existing label entry for ``a -> b``,
  or ``d`` is a smaller distance" (Section 3.1).  Admitted candidates
  are inserted into the store immediately so that candidates of the
  same iteration can prune each other, which the proof of Lemma 6
  relies on;
* **pruning** — an admitted entry ``(a -> b, d)`` is removed when label
  entries ``(a -> w, d1)`` and ``(w -> b, d2)`` with ``d1 + d2 <= d``
  exist (Section 3.3).  The check is exactly a 2-hop distance query
  that ignores the entry's own trivial route through itself.

Theorem 3 guarantees that *canonical* entries — those whose pivot is
the highest-ranked vertex on some shortest path — can never be pruned,
which keeps querying exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.labels import DirectedLabelState, UndirectedLabelState
from repro.core.rules import CandidateSet, PrevEntry


@dataclass(frozen=True)
class PruneOutcome:
    """Counters for one iteration's admission + pruning pass.

    ``raw_generated``     rule applications (duplicates included);
    ``distinct_generated`` distinct pairs offered by the rules;
    ``admitted``          candidates that improved on existing entries;
    ``pruned``            admitted candidates removed by the 2-hop test;
    ``survived``          admitted - pruned (the next iteration's prev).
    """

    raw_generated: int
    distinct_generated: int
    admitted: int
    pruned: int

    @property
    def survived(self) -> int:
        return self.admitted - self.pruned


def admit_and_prune(
    state: DirectedLabelState | UndirectedLabelState,
    candidates: CandidateSet,
    prune: bool = True,
) -> tuple[list[PrevEntry], PruneOutcome]:
    """Stage ``candidates`` into ``state``, prune, return the survivors.

    Returns the surviving entries (the ``prevLabel`` of the next
    iteration) and the iteration counters.  With ``prune=False`` only
    admission (duplicate suppression) is applied — the configuration
    used by the ablation benchmarks to expose how essential pruning is.
    """
    staged: list[PrevEntry] = []
    for (a, b), (dist, hops) in candidates.items():
        existing = state.get_pair(a, b)
        if existing is not None and existing[0] <= dist:
            continue
        state.set_pair(a, b, dist, hops)
        staged.append((a, b, dist, hops))

    admitted = len(staged)
    if not prune:
        return staged, PruneOutcome(
            raw_generated=candidates.raw_generated,
            distinct_generated=len(candidates),
            admitted=admitted,
            pruned=0,
        )

    # Two-pass (snapshot) pruning: bounds are evaluated with *all*
    # staged candidates present, then removals are applied together.
    # Pruning an entry through a route that is itself pruned stays
    # sound — every entry's distance is the length of a real path — and
    # the snapshot makes the outcome independent of evaluation order,
    # which the external-memory implementation relies on for
    # bit-identical results.
    directed = isinstance(state, DirectedLabelState)
    survivors: list[PrevEntry] = []
    doomed: list[tuple[int, int]] = []
    for a, b, dist, hops in staged:
        if directed:
            exclude = b if state.is_out_pair(a, b) else a
        else:
            # Undirected entries are (owner, pivot); the trivial
            # self-route goes through the pivot.
            exclude = state.owner_pivot(a, b)[1]
        bound = state.two_hop_bound(a, b, exclude_pivot=exclude)
        if bound <= dist:
            doomed.append((a, b))
        else:
            survivors.append((a, b, dist, hops))
    for a, b in doomed:
        state.remove_pair(a, b)
    pruned = len(doomed)

    return survivors, PruneOutcome(
        raw_generated=candidates.raw_generated,
        distinct_generated=len(candidates),
        admitted=admitted,
        pruned=pruned,
    )


def admit_entries(
    state: DirectedLabelState | UndirectedLabelState,
    entries: list[PrevEntry],
) -> list[PrevEntry]:
    """Admit pre-staged ``(a, b, dist, hops)`` entries; return the admitted.

    The admission half of :func:`admit_and_prune` for entries that are
    *facts* rather than rule candidates — the unit-hop entries of
    inserted edges.  Each entry is staged when the pair is absent or
    its distance strictly improves, and is never pruned here: a
    dominated edge entry is harmless (its distance is a real path
    length) and the repair rounds it seeds still run.  The returned
    list is the repair frontier.  The array twin is
    :meth:`repro.core.arraystate.ArrayLabelState.admit`, which applies
    the identical rule, so both dynamic repair engines stage the same
    seeds.
    """
    staged: list[PrevEntry] = []
    for a, b, dist, hops in entries:
        existing = state.get_pair(a, b)
        if existing is not None and existing[0] <= dist:
            continue
        state.set_pair(a, b, dist, hops)
        staged.append((a, b, dist, hops))
    return staged


def admit_and_prune_arrays(state, batch, prune: bool = True):
    """Array-engine twin of :func:`admit_and_prune`.

    ``state`` is a :class:`repro.core.arraystate.ArrayLabelState` and
    ``batch`` a :class:`repro.core.rules.CandidateBatch`; returns the
    surviving entries as a :class:`~repro.core.arraystate.PrevBlock`
    plus the same :class:`PruneOutcome` counters the dict path
    produces.  Admission and the snapshot pruning bound are evaluated
    with vectorized lookups; because candidates are deduplicated with
    the same min-``(dist, hops)`` reduction and the bound runs against
    the identical post-admission entry set, the outcome — entries,
    values, and every counter — is bit-identical to the dict engine's.
    """
    from repro.core.arraystate import PrevBlock

    raw = batch.raw
    a, b, dist, hops = batch.dedupe()
    distinct = int(a.size)
    if not prune:
        admitted_mask = state.admit(a, b, dist, hops)
        a, b, dist, hops = (
            a[admitted_mask],
            b[admitted_mask],
            dist[admitted_mask],
            hops[admitted_mask],
        )
        return PrevBlock(a, b, dist, hops), PruneOutcome(
            raw_generated=raw,
            distinct_generated=distinct,
            admitted=int(a.size),
            pruned=0,
        )

    # Same two-pass snapshot semantics as admit_and_prune — bounds see
    # every staged candidate, removals land together — but admission
    # is *deferred*: candidates stage in small per-side overlays that
    # prunable joins alongside the base arrays, and only the survivors
    # are merged in (state.commit_staged), so the doomed majority of a
    # round never touches the O(index) base arrays.
    admitted_mask = state.stage(a, b, dist, hops)
    a, b, dist, hops = (
        a[admitted_mask],
        b[admitted_mask],
        dist[admitted_mask],
        hops[admitted_mask],
    )
    admitted = int(a.size)
    doomed = state.prunable(a, b, dist)
    state.commit_staged(a, b, dist, hops, doomed)
    keep = ~doomed
    survivors = PrevBlock(a[keep], b[keep], dist[keep], hops[keep])
    return survivors, PruneOutcome(
        raw_generated=raw,
        distinct_generated=distinct,
        admitted=admitted,
        pruned=int(doomed.sum()),
    )


def _canonical_entry_order(state, entries):
    """Sort entries lowest-priority pivot first, then owner, then side.

    A fixed visiting order makes the sweep deterministic for any
    source of the same entry set (dict engine, array engine, worker
    partitions) — removals within a sweep can affect later tests, so
    the order is part of the contract.
    """
    rank = state.rank
    return sorted(entries, key=lambda e: (-rank[e[1]], e[0], not e[4]))


def exhaustive_prune(
    state: DirectedLabelState | UndirectedLabelState,
) -> int:
    """Re-run the pruning test over *all* non-trivial entries until fixpoint.

    Section 5.2 notes that Hop-Doubling "by exhaustive pruning" reaches
    the same label size as Hop-Stepping; this post-pass implements that
    sweep.  Entries are visited from lowest-priority pivots upward (a
    deterministic order shared by both build engines).

    Removing an entry can only *shrink* the labels its neighbours join
    through — bounds are monotonically weakened — so the first full
    sweep already removes everything removable, and what remains is
    confirming the fixpoint.  Only entries incident to a touched
    vertex have a changed bound to re-check: the **dirty set** tracks
    owners whose out-label (``Lout``) or in-label (``Lin``) lost an
    entry, and the confirmation sweep's worklist is rebuilt from the
    stores and reverse indexes of those vertices alone, instead of
    re-listing every entry until fixpoint.  Returns the number of
    entries removed.
    """
    directed = isinstance(state, DirectedLabelState)
    removed_total = 0
    entries = _canonical_entry_order(state, state.iter_entries())
    while entries:
        # (a, b, was_out) per removal this sweep, for dirty tracking.
        removed_pairs: list[tuple[int, int, bool]] = []
        for owner, pivot, dist, _hops, is_out in entries:
            if directed:
                a, b = (owner, pivot) if is_out else (pivot, owner)
            else:
                a, b = owner, pivot
            if state.get_pair(a, b) is None:
                continue  # already removed within this sweep
            bound = state.two_hop_bound(a, b, exclude_pivot=pivot)
            if bound <= dist:
                state.remove_pair(a, b)
                removed_pairs.append((a, b, is_out))
        removed_total += len(removed_pairs)
        if not removed_pairs:
            break
        entries = _canonical_entry_order(
            state, _dirty_entries(state, directed, removed_pairs)
        )
    return removed_total


def _dirty_entries(state, directed, removed_pairs):
    """Entries whose pruning bound may have changed after removals.

    The bound of a pair ``(x, y)`` joins ``Lout(x)`` with ``Lin(y)``
    (``L(x)`` with ``L(y)`` when undirected), so removing ``(a, b)``
    dirties exactly the entries with source ``a`` (when an out-entry
    shrank ``Lout(a)``) or target ``b`` (when an in-entry shrank
    ``Lin(b)``); for undirected states the owner's single store shrank.
    Entries are gathered through the stores and reverse indexes.
    """
    seen: dict[tuple[int, int], tuple] = {}
    if not directed:
        dirty = {a for a, _b, _ in removed_pairs}
        for o in dirty:
            for p, (d, h) in state.lab[o].items():
                if p != o:
                    seen[(o, p)] = (o, p, d, h, True)
            for x, (d, h) in state.rev[o].items():
                seen[(x, o)] = (x, o, d, h, True)
        return seen.values()

    dirty_src = {a for a, _b, was_out in removed_pairs if was_out}
    dirty_dst = {b for _a, b, was_out in removed_pairs if not was_out}
    for x in dirty_src:
        # Pairs with source x: out-entries of x plus entries (x -> y)
        # held in Lin(y), reached through rev_in[x].
        for p, (d, h) in state.out[x].items():
            if p != x:
                seen[(x, p)] = (x, p, d, h, True)
        for y, (d, h) in state.rev_in[x].items():
            seen[(x, y)] = (y, x, d, h, False)
    for y in dirty_dst:
        # Pairs with target y: in-entries of y plus entries (x -> y)
        # held in Lout(x), reached through rev_out[y].
        for p, (d, h) in state.inn[y].items():
            if p != y:
                seen[(p, y)] = (y, p, d, h, False)
        for x, (d, h) in state.rev_out[y].items():
            seen[(x, y)] = (x, y, d, h, True)
    return seen.values()
