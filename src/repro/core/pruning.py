"""Candidate admission and label pruning (Sections 3.1 and 3.3).

Each indexing iteration stages the candidates produced by the rule
engine and then prunes them:

* **admission** — a generated entry for pair ``a -> b`` "becomes a new
  label entry ... if there is no existing label entry for ``a -> b``,
  or ``d`` is a smaller distance" (Section 3.1).  Admitted candidates
  are inserted into the store immediately so that candidates of the
  same iteration can prune each other, which the proof of Lemma 6
  relies on;
* **pruning** — an admitted entry ``(a -> b, d)`` is removed when label
  entries ``(a -> w, d1)`` and ``(w -> b, d2)`` with ``d1 + d2 <= d``
  exist (Section 3.3).  The check is exactly a 2-hop distance query
  that ignores the entry's own trivial route through itself.

Theorem 3 guarantees that *canonical* entries — those whose pivot is
the highest-ranked vertex on some shortest path — can never be pruned,
which keeps querying exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.labels import DirectedLabelState, UndirectedLabelState
from repro.core.rules import CandidateSet, PrevEntry


@dataclass(frozen=True)
class PruneOutcome:
    """Counters for one iteration's admission + pruning pass.

    ``raw_generated``     rule applications (duplicates included);
    ``distinct_generated`` distinct pairs offered by the rules;
    ``admitted``          candidates that improved on existing entries;
    ``pruned``            admitted candidates removed by the 2-hop test;
    ``survived``          admitted - pruned (the next iteration's prev).
    """

    raw_generated: int
    distinct_generated: int
    admitted: int
    pruned: int

    @property
    def survived(self) -> int:
        return self.admitted - self.pruned


def admit_and_prune(
    state: DirectedLabelState | UndirectedLabelState,
    candidates: CandidateSet,
    prune: bool = True,
) -> tuple[list[PrevEntry], PruneOutcome]:
    """Stage ``candidates`` into ``state``, prune, return the survivors.

    Returns the surviving entries (the ``prevLabel`` of the next
    iteration) and the iteration counters.  With ``prune=False`` only
    admission (duplicate suppression) is applied — the configuration
    used by the ablation benchmarks to expose how essential pruning is.
    """
    staged: list[PrevEntry] = []
    for (a, b), (dist, hops) in candidates.items():
        existing = state.get_pair(a, b)
        if existing is not None and existing[0] <= dist:
            continue
        state.set_pair(a, b, dist, hops)
        staged.append((a, b, dist, hops))

    admitted = len(staged)
    if not prune:
        return staged, PruneOutcome(
            raw_generated=candidates.raw_generated,
            distinct_generated=len(candidates),
            admitted=admitted,
            pruned=0,
        )

    # Two-pass (snapshot) pruning: bounds are evaluated with *all*
    # staged candidates present, then removals are applied together.
    # Pruning an entry through a route that is itself pruned stays
    # sound — every entry's distance is the length of a real path — and
    # the snapshot makes the outcome independent of evaluation order,
    # which the external-memory implementation relies on for
    # bit-identical results.
    directed = isinstance(state, DirectedLabelState)
    survivors: list[PrevEntry] = []
    doomed: list[tuple[int, int]] = []
    for a, b, dist, hops in staged:
        if directed:
            exclude = b if state.is_out_pair(a, b) else a
        else:
            # Undirected entries are (owner, pivot); the trivial
            # self-route goes through the pivot.
            exclude = state.owner_pivot(a, b)[1]
        bound = state.two_hop_bound(a, b, exclude_pivot=exclude)
        if bound <= dist:
            doomed.append((a, b))
        else:
            survivors.append((a, b, dist, hops))
    for a, b in doomed:
        state.remove_pair(a, b)
    pruned = len(doomed)

    return survivors, PruneOutcome(
        raw_generated=candidates.raw_generated,
        distinct_generated=len(candidates),
        admitted=admitted,
        pruned=pruned,
    )


def exhaustive_prune(
    state: DirectedLabelState | UndirectedLabelState,
) -> int:
    """Re-run the pruning test over *all* non-trivial entries until fixpoint.

    Section 5.2 notes that Hop-Doubling "by exhaustive pruning" reaches
    the same label size as Hop-Stepping; this post-pass implements that
    sweep.  Entries are visited from lowest-priority pivots upward so a
    single sweep usually converges; sweeping repeats until no entry is
    removed.  Returns the number of entries removed.
    """
    directed = isinstance(state, DirectedLabelState)
    removed_total = 0
    while True:
        removed = 0
        entries = list(state.iter_entries())
        for owner, pivot, dist, _hops, is_out in entries:
            if directed:
                a, b = (owner, pivot) if is_out else (pivot, owner)
                exclude = pivot
            else:
                a, b = owner, pivot
                exclude = pivot
            if state.get_pair(a, b) is None:
                continue  # already removed within this sweep
            bound = state.two_hop_bound(a, b, exclude_pivot=exclude)
            if bound <= dist:
                state.remove_pair(a, b)
                removed += 1
        removed_total += removed
        if removed == 0:
            return removed_total
