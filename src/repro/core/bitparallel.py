"""Bit-parallel labels (Section 6) for undirected unweighted graphs.

The idea (borrowed by the paper from PLL and adapted as a
post-processing step on a finished 2-hop index): pick up to
``num_roots`` high-degree **roots** ``R``; for each root ``r`` select
up to 64 of its neighbours ``S_r`` (the sets are disjoint across
roots).  One *bit-parallel BFS* per root computes, for every vertex
``v``:

* ``d(r, v)``, and
* two 64-bit masks over ``S_r``: ``S^-1_r(v) = {u in S_r : d(u,v) =
  d(r,v) - 1}`` and ``S^0_r(v) = {u : d(u,v) = d(r,v)}``

so a single label covers 65 pivots at once.  A query via root ``r``
evaluates to ``d(s,r) + d(r,t)`` minus 2, 1 or 0 depending on mask
intersections, and every shortest path through ``R ∪ S_R`` is answered
exactly (the ``+1`` neighbours can never beat the route via ``r``,
which is why the paper discards them).

Normal labels whose pivot lies in ``R ∪ S_R`` become redundant and are
dropped from the 2-hop index, shrinking it — the behaviour Table 6
relies on when comparing against PLL's bit-parallel querying.

Implementation note (documented substitution): the paper derives the
bit-parallel tuples by transforming existing label entries and patching
missing root distances; we compute them with the standard bit-parallel
BFS, which yields the same tuples for every vertex (a superset of what
the transformation recovers — the transformation may lack ``(r, d_rv)``
for vertices whose labels never mentioned ``r``), so queries remain
exact while the construction stays a strict post-processing step.

The paper's 50-root marker trick is implemented too: each vertex keeps
a ``num_roots``-bit marker of which roots appear in its bit-parallel
label, so common roots are found by a single integer AND.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.labels import INF, LabelIndex, merge_join_distance
from repro.graphs.digraph import Graph

DEFAULT_NUM_ROOTS = 50
MAX_SET_SIZE = 64

# Storage convention for size accounting: root id (4) + distance (1)
# + two 64-bit masks (16).
BYTES_PER_BP_TUPLE = 21


@dataclass(frozen=True)
class BPTuple:
    """One bit-parallel label tuple ``(root_idx, dist, S^-1, S^0)``."""

    root_idx: int
    dist: float
    mask_minus: int
    mask_zero: int


class BitParallelIndex:
    """A 2-hop index enhanced with bit-parallel root labels (Section 6).

    Querying takes the minimum of the bit-parallel estimate over common
    roots and the merge-join over the remaining normal labels; both
    sides are exact for the paths they are responsible for, so the
    minimum is the exact distance.
    """

    def __init__(
        self,
        normal: LabelIndex,
        roots: list[int],
        root_members: list[list[int]],
        bp_labels: list[list[BPTuple]],
        markers: list[int],
    ) -> None:
        self.normal = normal
        self.roots = roots
        self.root_members = root_members
        self.bp_labels = bp_labels
        self.markers = markers
        self.n = normal.n

    # -- querying --------------------------------------------------------
    def query(self, s: int, t: int) -> float:
        """Exact ``dist(s, t)``; :data:`INF` when unreachable."""
        if not 0 <= s < self.n or not 0 <= t < self.n:
            raise IndexError(f"query ({s}, {t}) out of range [0, {self.n})")
        if s == t:
            return 0.0
        best = self._bp_query(s, t)
        normal = merge_join_distance(
            self.normal.out_labels[s], self.normal.in_labels[t]
        )
        return normal if normal < best else best

    def _bp_query(self, s: int, t: int) -> float:
        """Distance via shared bit-parallel roots only.

        Both labels are sorted by root index, so common roots are found
        by a two-pointer merge; the marker AND short-circuits pairs with
        no shared root at all (the paper's 50-bit-marker trick).
        """
        if not self.markers[s] & self.markers[t]:
            return INF
        best = INF
        a = self.bp_labels[s]
        b = self.bp_labels[t]
        i = j = 0
        na, nb = len(a), len(b)
        while i < na and j < nb:
            tup_s = a[i]
            tup_t = b[j]
            if tup_s.root_idx == tup_t.root_idx:
                d = tup_s.dist + tup_t.dist
                if tup_s.mask_minus & tup_t.mask_minus:
                    d -= 2.0
                elif (tup_s.mask_minus & tup_t.mask_zero) or (
                    tup_s.mask_zero & tup_t.mask_minus
                ):
                    d -= 1.0
                if d < best:
                    best = d
                i += 1
                j += 1
            elif tup_s.root_idx < tup_t.root_idx:
                i += 1
            else:
                j += 1
        return best

    # -- statistics --------------------------------------------------------
    def num_bp_tuples(self) -> int:
        """Total bit-parallel tuples across all vertices."""
        return sum(len(lab) for lab in self.bp_labels)

    def size_in_bytes(self) -> int:
        """Combined size: normal index + bit-parallel tuples."""
        return (
            self.normal.size_in_bytes()
            + self.num_bp_tuples() * BYTES_PER_BP_TUPLE
        )

    def __repr__(self) -> str:
        return (
            f"BitParallelIndex(|V|={self.n}, roots={len(self.roots)}, "
            f"bp_tuples={self.num_bp_tuples()}, "
            f"normal_entries={self.normal.total_entries()})"
        )


def _bit_parallel_bfs(
    graph: Graph, root: int, members: list[int]
) -> tuple[list[float], list[int], list[int]]:
    """One bit-parallel BFS from ``root`` with neighbour set ``members``.

    Returns ``(dist, mask_minus, mask_zero)`` arrays over all vertices.
    Propagation follows Akiba et al.: level transitions push both masks
    forward; same-level edges feed ``S^-1`` of one endpoint into
    ``S^0`` of the other.
    """
    n = graph.num_vertices
    dist = [INF] * n
    mask_minus = [0] * n
    mask_zero = [0] * n

    dist[root] = 0.0
    frontier = [root]
    next_frontier: list[int] = []
    for i, u in enumerate(members):
        dist[u] = 1.0
        mask_minus[u] = 1 << i
        next_frontier.append(u)
    # Vertices adjacent to the root that are not members still belong to
    # level 1; enqueue them before the level loop runs.
    member_set = set(members)
    for v in graph.out_neighbors(root):
        if v not in member_set and dist[v] == INF:
            dist[v] = 1.0
            next_frontier.append(v)

    while frontier:
        same_level: list[tuple[int, int]] = []
        transitions: list[tuple[int, int]] = []
        for v in frontier:
            dv = dist[v]
            for w in graph.out_neighbors(v):
                dw = dist[w]
                if dw == INF:
                    dist[w] = dv + 1.0
                    next_frontier.append(w)
                    transitions.append((v, w))
                elif dw == dv + 1.0:
                    transitions.append((v, w))
                elif dw == dv:
                    same_level.append((v, w))
        # Same-level pass first: a member at distance d(v)-1 from v is at
        # distance <= d(w) from the same-level neighbour w, landing in
        # S^0 of w.  (Each undirected edge appears in both directions.)
        for v, w in same_level:
            mask_zero[w] |= mask_minus[v]
        # Level transition pass afterwards, so it observes the final
        # masks of the current level (Akiba et al., Algorithm 2).
        for v, w in transitions:
            mask_minus[w] |= mask_minus[v]
            mask_zero[w] |= mask_zero[v]
        frontier = next_frontier
        next_frontier = []
    return dist, mask_minus, mask_zero


def add_bitparallel(
    graph: Graph,
    index: LabelIndex,
    num_roots: int = DEFAULT_NUM_ROOTS,
    max_set_size: int = MAX_SET_SIZE,
) -> BitParallelIndex:
    """Post-process ``index`` with bit-parallel labels (Section 6).

    Only valid for undirected unweighted graphs (as in the paper and in
    PLL).  Roots are chosen greedily by the index's ranking (falling
    back to degree order), each claiming up to ``max_set_size`` unused
    neighbours; the selected pivots' normal entries are dropped.
    """
    if graph.directed or graph.weighted:
        raise ValueError(
            "bit-parallel labels require an undirected unweighted graph"
        )
    if num_roots < 1:
        raise ValueError(f"num_roots must be >= 1, got {num_roots}")
    if not 1 <= max_set_size <= MAX_SET_SIZE:
        raise ValueError(
            f"max_set_size must be in [1, {MAX_SET_SIZE}], got {max_set_size}"
        )
    n = graph.num_vertices
    if index.n != n:
        raise ValueError("index and graph disagree on the vertex count")

    if index.rank is not None:
        order = sorted(range(n), key=lambda v: index.rank[v])
    else:
        order = sorted(range(n), key=lambda v: (-graph.degree(v), v))

    used = [False] * n
    roots: list[int] = []
    root_members: list[list[int]] = []
    for v in order:
        if len(roots) >= num_roots:
            break
        if used[v]:
            continue
        used[v] = True
        members = []
        for u in graph.out_neighbors(v):
            if len(members) >= max_set_size:
                break
            if not used[u]:
                used[u] = True
                members.append(u)
        roots.append(v)
        root_members.append(members)

    covered = set()
    for r, members in zip(roots, root_members):
        covered.add(r)
        covered.update(members)

    bp_labels: list[list[BPTuple]] = [[] for _ in range(n)]
    markers = [0] * n
    for root_idx, (r, members) in enumerate(zip(roots, root_members)):
        dist, mask_minus, mask_zero = _bit_parallel_bfs(graph, r, members)
        for v in range(n):
            if dist[v] == INF:
                continue
            bp_labels[v].append(
                BPTuple(root_idx, dist[v], mask_minus[v], mask_zero[v])
            )
            markers[v] |= 1 << root_idx

    # Drop normal entries covered by the bit-parallel side.
    new_labels = []
    for v in range(n):
        kept = [
            (p, d)
            for p, d in index.out_labels[v]
            if p == v or p not in covered
        ]
        new_labels.append(kept)
    normal = LabelIndex(n, False, new_labels, new_labels, index.rank)

    return BitParallelIndex(normal, roots, root_members, bp_labels, markers)
