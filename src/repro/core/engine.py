"""Build engines: the pluggable construction backends of the builders.

:class:`~repro.core.hop_doubling.LabelingBuilder` owns the iteration
*schedule* (which rounds step, which double, when to stop); an engine
owns the iteration *mechanics* — seeding the label state from the
edges, applying the generation rules, admitting and pruning candidates,
and freezing the final index.  Two engines implement the same
contract:

* :class:`DictBuildEngine` — the reference implementation over the
  dict-based states of :mod:`repro.core.labels` (exactly the original
  single-threaded construction path);
* :class:`ArrayBuildEngine` — the vectorized engine over
  :mod:`repro.core.arraystate` (requires numpy), with
  :class:`repro.core.parallel_build.ParallelBuildEngine` layering
  multiprocess candidate generation on top for ``jobs > 1``.

Every engine produces **bit-identical** label entries, distances, hops
and per-iteration counters for the same graph and ranking — the
benchmarks and ``tests/core/test_parallel_build.py`` enforce it — so
``engine=`` and ``jobs=`` are pure performance knobs.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.core.labels import (
    DirectedLabelState,
    LabelIndex,
    UndirectedLabelState,
)
from repro.core.pruning import (
    PruneOutcome,
    admit_and_prune,
    exhaustive_prune,
)
from repro.core.ranking import Ranking
from repro.core.rules import RULE_SETS, PrevEntry, make_engine
from repro.graphs.digraph import Graph

BUILD_ENGINES = ("dict", "array")


def check_engine_options(engine: str, jobs: int) -> None:
    """Validate an engine/jobs combination (one shared implementation).

    Called by every entry point that accepts the knobs — the builders'
    constructors (eager, so a bad configuration fails before any
    build work) and :func:`make_build_engine` — so the rules and the
    error wording can never drift apart.
    """
    if engine not in BUILD_ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {BUILD_ENGINES}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if engine == "dict" and jobs != 1:
        raise ValueError(
            "jobs > 1 requires engine='array' (the dict engine is "
            "single-process)"
        )


def seed_dict_state(
    graph: Graph, rank_of: Sequence[int]
) -> tuple[DirectedLabelState | UndirectedLabelState, list[PrevEntry]]:
    """Seed dict stores with one entry per edge (the paper's iteration 1)."""
    if graph.directed:
        state: DirectedLabelState | UndirectedLabelState = DirectedLabelState(rank_of)
    else:
        state = UndirectedLabelState(rank_of)
    prev: list[PrevEntry] = []
    for u, v, w in graph.edges():
        if u == v:
            continue
        if graph.directed:
            entry = (u, v, w, 1)
        else:
            owner, pivot = state.owner_pivot(u, v)
            entry = (owner, pivot, w, 1)
        existing = state.get_pair(entry[0], entry[1])
        if existing is not None and existing[0] <= w:
            continue
        state.set_pair(entry[0], entry[1], w, 1)
        prev.append(entry)
    return state, prev


def seed_entries(
    graph: Graph, rank_of: Sequence[int]
) -> tuple[dict[tuple[int, int], float], list[tuple[int, int, float, int]]]:
    """Iteration-1 entries as plain pairs (the array engines' seed).

    Returns the final ``(a, b) -> weight`` map and the staged entry
    list in the same order (and with the same duplicate handling) as
    :func:`seed_dict_state` builds its ``prev``.
    """
    directed = graph.directed
    pairs: dict[tuple[int, int], float] = {}
    prev: list[tuple[int, int, float, int]] = []
    for u, v, w in graph.edges():
        if u == v:
            continue
        if not directed and rank_of[u] < rank_of[v]:
            u, v = v, u
        old = pairs.get((u, v))
        if old is not None and old <= w:
            continue
        pairs[(u, v)] = w
        prev.append((u, v, w, 1))
    return pairs, prev


class BuildEngine(Protocol):
    """Contract between the iteration skeleton and a construction backend."""

    def initialize(self):
        """Seed the label state; return the first ``prevLabel``."""
        ...

    def generate(self, mode: str, prev):
        """Apply the rules (``mode`` = ``"step"`` or ``"double"``)."""
        ...

    def admit_and_prune(self, candidates, prune: bool = True):
        """Stage candidates; return ``(survivors, PruneOutcome)``."""
        ...

    def total_entries(self) -> int:
        """Non-trivial entries currently in the state."""
        ...

    def exhaustive_prune(self) -> int:
        """Section 5.2's final sweep; returns entries removed."""
        ...

    def freeze(self) -> LabelIndex:
        """Freeze the state into the queryable index."""
        ...

    def close(self) -> None:
        """Release any engine resources (worker pools)."""
        ...


class DictBuildEngine:
    """The reference engine over the dict-based label states."""

    name = "dict"

    def __init__(self, graph: Graph, ranking: Ranking, rule_set: str) -> None:
        self.graph = graph
        self.ranking = ranking
        self.rule_set = rule_set
        self.state: DirectedLabelState | UndirectedLabelState | None = None
        self._rules = None

    def initialize(self) -> list[PrevEntry]:
        self.state, prev = seed_dict_state(self.graph, self.ranking.rank_of)
        self._rules = make_engine(self.state, self.graph, self.rule_set)
        return prev

    def generate(self, mode: str, prev):
        if mode == "step":
            return self._rules.stepping(prev)
        return self._rules.doubling(prev)

    def admit_and_prune(
        self, candidates, prune: bool = True
    ) -> tuple[list[PrevEntry], PruneOutcome]:
        return admit_and_prune(self.state, candidates, prune=prune)

    def total_entries(self) -> int:
        return self.state.total_entries()

    def exhaustive_prune(self) -> int:
        return exhaustive_prune(self.state)

    def freeze(self) -> LabelIndex:
        return LabelIndex.from_state(self.state)

    def close(self) -> None:
        pass


class ArrayBuildEngine:
    """The vectorized engine over struct-of-arrays state (needs numpy)."""

    name = "array"

    def __init__(self, graph: Graph, ranking: Ranking, rule_set: str) -> None:
        if rule_set not in RULE_SETS:
            raise ValueError(
                f"unknown rule_set {rule_set!r}; expected one of {RULE_SETS}"
            )
        self.graph = graph
        self.ranking = ranking
        self.full = rule_set == "full"
        self.state = None
        self._edges = None
        self._final_dict_state = None

    def initialize(self):
        from repro.core.arraystate import ArrayLabelState, PrevBlock

        pairs, prev = seed_entries(self.graph, self.ranking.rank_of)
        self.state = ArrayLabelState.from_initial_entries(
            self.ranking.rank_of,
            self.graph.directed,
            [(a, b, w, 1) for (a, b), w in pairs.items()],
        )
        return PrevBlock.from_lists(prev)

    def edge_snapshot(self):
        """The static stepping partners (built once per engine)."""
        if self._edges is None:
            self._edges = self.state.edge_snapshot(self.graph)
        return self._edges

    def generate(self, mode: str, prev):
        from repro.core.rules import array_doubling, array_stepping

        if mode == "step":
            return array_stepping(self.edge_snapshot(), prev, self.full)
        # doubling_snapshot restricts the partner views to the prev
        # entries' vertices when the frontier is small (the tail
        # iterations, and every dynamic-repair round) — identical rule
        # applications, so the build stays bit-identical to the dict
        # engine's.
        return array_doubling(self.state.doubling_snapshot(prev), prev, self.full)

    def admit_and_prune(self, candidates, prune: bool = True):
        from repro.core.pruning import admit_and_prune_arrays

        return admit_and_prune_arrays(self.state, candidates, prune=prune)

    def total_entries(self) -> int:
        return self.state.total_entries()

    def exhaustive_prune(self) -> int:
        # The final sweep is a one-shot post-pass with data-dependent
        # per-entry control flow; run it on a materialized dict state
        # (same entries, same canonical visiting order, same result).
        dict_state = self.state.to_dict_state()
        removed = exhaustive_prune(dict_state)
        self._final_dict_state = dict_state
        return removed

    def freeze(self) -> LabelIndex:
        if self._final_dict_state is not None:
            return LabelIndex.from_state(self._final_dict_state)
        return self.state.freeze()

    def close(self) -> None:
        pass


def make_build_engine(
    graph: Graph,
    ranking: Ranking,
    rule_set: str = "minimized",
    engine: str = "dict",
    jobs: int = 1,
) -> BuildEngine:
    """Instantiate a construction backend by name.

    ``engine`` is ``"dict"`` (reference) or ``"array"`` (vectorized,
    requires numpy); ``jobs > 1`` selects the multiprocess
    :class:`~repro.core.parallel_build.ParallelBuildEngine` and is
    only available with the array engine.
    """
    check_engine_options(engine, jobs)
    if engine == "dict":
        return DictBuildEngine(graph, ranking, rule_set)
    try:
        import repro.core.arraystate  # noqa: F401  (probes numpy)
    except ModuleNotFoundError as exc:
        raise ValueError(
            "engine='array' requires numpy; install it or use "
            "engine='dict'"
        ) from exc
    if jobs > 1:
        from repro.core.parallel_build import ParallelBuildEngine

        return ParallelBuildEngine(graph, ranking, rule_set, jobs=jobs)
    return ArrayBuildEngine(graph, ranking, rule_set)
