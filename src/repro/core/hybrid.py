"""The hybrid strategy (Section 5.4) — the paper's default configuration.

Hop-Stepping trims the early candidate explosion (growing factors of
3-4 in Figure 10); Hop-Doubling finishes off long-diameter graphs in
logarithmically many rounds.  The hybrid uses stepping for the first
``switch_iteration`` iterations and doubling afterwards; Lemma 8 shows
the combination stays correct under pruning.

The paper's experiments (Section 8): "we apply Hop-Stepping with
pruning in the first 10 iterations and switch to Hop-Doubling with
Pruning from the 11-th iteration", so ``switch_iteration`` defaults
to 10 (in the paper's counting where initialization is iteration 1).
"""

from __future__ import annotations

from repro.core.hop_doubling import LabelingBuilder
from repro.core.ranking import Ranking
from repro.graphs.digraph import Graph

DEFAULT_SWITCH_ITERATION = 10


class HybridBuilder(LabelingBuilder):
    """Hop-Stepping for early iterations, Hop-Doubling afterwards."""

    name = "hybrid"

    def __init__(
        self,
        graph: Graph,
        ranking: Ranking | str = "auto",
        rule_set: str = "minimized",
        prune: bool = True,
        final_exhaustive_prune: bool = False,
        max_iterations: int | None = None,
        switch_iteration: int = DEFAULT_SWITCH_ITERATION,
        engine: str = "dict",
        jobs: int = 1,
    ) -> None:
        super().__init__(
            graph,
            ranking=ranking,
            rule_set=rule_set,
            prune=prune,
            final_exhaustive_prune=final_exhaustive_prune,
            max_iterations=max_iterations,
            engine=engine,
            jobs=jobs,
        )
        if switch_iteration < 1:
            raise ValueError(
                f"switch_iteration must be >= 1, got {switch_iteration}"
            )
        self.switch_iteration = switch_iteration

    def mode_for(self, iteration: int) -> str:
        return "step" if iteration <= self.switch_iteration else "double"


BUILDERS = {
    "doubling": "repro.core.hop_doubling.HopDoubling",
    "stepping": "repro.core.hop_stepping.HopStepping",
    "hybrid": "repro.core.hybrid.HybridBuilder",
}


def make_builder(graph: Graph, strategy: str = "hybrid", **kwargs):
    """Instantiate a builder by strategy name.

    ``strategy`` is one of ``"doubling"``, ``"stepping"`` or
    ``"hybrid"`` (the default, as in the paper's experiments).
    """
    from repro.core.hop_doubling import HopDoubling
    from repro.core.hop_stepping import HopStepping

    classes = {
        "doubling": HopDoubling,
        "stepping": HopStepping,
        "hybrid": HybridBuilder,
    }
    try:
        cls = classes[strategy]
    except KeyError:
        raise ValueError(
            f"unknown strategy {strategy!r}; one of {sorted(classes)}"
        )
    return cls(graph, **kwargs)
