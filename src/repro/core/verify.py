"""Index verification: structural invariants + sampled exactness.

A production deployment of a distance oracle wants a cheap way to
certify that a (possibly deserialized, possibly hand-edited) index is
still trustworthy against a graph.  ``verify_index`` checks:

1. **structure** — label arrays sorted by pivot, self entries present
   with distance 0, pivots outrank owners under the attached ranking;
2. **soundness** — every label entry's distance is realizable (it is
   an upper bound certified by an actual path; checked as
   ``entry >= true distance`` on sampled entries);
3. **completeness** — sampled pair queries equal BFS/Dijkstra ground
   truth.

The result object lists every violation found, so callers can log or
assert as appropriate.  Checks 2-3 sample (controlled by ``samples``)
because exact verification is quadratic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.labels import INF, LabelStore
from repro.graphs.digraph import Graph
from repro.graphs.traversal import bfs_distances, dijkstra_distances


@dataclass
class VerificationReport:
    """Outcome of :func:`verify_index`."""

    checked_entries: int = 0
    checked_queries: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, message: str) -> None:
        self.violations.append(message)

    def __str__(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} violations"
        return (
            f"VerificationReport({status}; entries={self.checked_entries}, "
            f"queries={self.checked_queries})"
        )


def _check_structure(index: LabelStore, report: VerificationReport) -> None:
    rank = getattr(index, "rank", None)
    sides = [("out", index.out_label)]
    if index.directed:
        sides.append(("in", index.in_label))
    for side, label_of in sides:
        for v in range(index.n):
            lab = label_of(v)
            pivots = [p for p, _ in lab]
            if pivots != sorted(pivots):
                report.add(f"L{side}({v}) is not sorted by pivot")
            if len(set(pivots)) != len(pivots):
                report.add(f"L{side}({v}) has duplicate pivots")
            entries = dict(lab)
            if entries.get(v) != 0.0:
                report.add(f"L{side}({v}) lacks the trivial (v, 0) entry")
            if rank is not None:
                for p, d in lab:
                    if p != v and rank[p] >= rank[v]:
                        report.add(
                            f"L{side}({v}) pivot {p} does not outrank owner"
                        )
                    if p != v and d <= 0:
                        report.add(
                            f"L{side}({v}) entry ({p}, {d}) non-positive"
                        )


def verify_index(
    graph: Graph,
    index: LabelStore,
    samples: int = 200,
    seed: int = 0,
) -> VerificationReport:
    """Verify ``index`` against ``graph``; see module docstring."""
    report = VerificationReport()
    if index.n != graph.num_vertices:
        report.add(
            f"vertex count mismatch: index {index.n}, "
            f"graph {graph.num_vertices}"
        )
        return report

    _check_structure(index, report)

    rng = random.Random(seed)
    n = graph.num_vertices
    if n == 0:
        return report
    sssp = dijkstra_distances if graph.weighted else bfs_distances

    # Soundness + completeness from sampled sources: one traversal
    # serves both checks for every target.
    num_sources = max(1, min(n, samples // max(1, min(n, 32))))
    sources = (
        list(range(n)) if n <= num_sources else rng.sample(range(n), num_sources)
    )
    for s in sources:
        truth = sssp(graph, s)
        # Completeness: sampled targets.
        targets = (
            list(range(n))
            if n <= 32
            else rng.sample(range(n), 32)
        )
        for t in targets:
            got = index.query(s, t)
            report.checked_queries += 1
            if got != truth[t]:
                report.add(
                    f"query({s}, {t}) = {got}, ground truth {truth[t]}"
                )
        # Soundness: every out-label entry of s is an upper bound.
        for p, d in index.out_label(s):
            report.checked_entries += 1
            true_d = truth[p]
            if true_d == INF or d < true_d:
                report.add(
                    f"Lout({s}) entry ({p}, {d}) below true distance {true_d}"
                )
    return report
