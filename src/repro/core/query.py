"""Query-side helpers on top of a frozen :class:`LabelStore` backend.

A 2-hop index answers ``dist(s, t)`` by merging two sorted labels
(Section 2).  This module adds the conveniences a downstream user
expects from a distance oracle: batched evaluation, reachability,
shortest-path *reconstruction* (the index itself stores distances
only), and simple analytics such as closeness centrality that the
introduction of the paper motivates ("network analysis such as
betweenness centrality computation").
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.labels import INF, LabelStore
from repro.graphs.digraph import Graph


def query_many(
    index: LabelStore, pairs: Iterable[tuple[int, int]]
) -> list[float]:
    """Evaluate ``dist(s, t)`` for every pair in order.

    .. deprecated::
        Prefer :meth:`repro.oracle.DistanceOracle.query_batch`, which
        this now delegates to: it dedupes repeated pairs and groups
        the rest by source vertex so CSR backends amortise the
        source-side work.  This thin wrapper (cache-less, one-shot)
        is kept for callers that hold a bare store.
    """
    from repro.oracle.batch import evaluate_batch

    return evaluate_batch(index, pairs)


def is_reachable(index: LabelStore, s: int, t: int) -> bool:
    """Whether any path ``s -> t`` exists (distance is finite)."""
    return index.query(s, t) != INF


def reconstruct_path(
    index: LabelStore, graph: Graph, s: int, t: int
) -> list[int] | None:
    """Recover one shortest path ``s -> t`` using the index as an oracle.

    The index stores distances, not paths; a path is rebuilt by greedy
    descent: repeatedly move to any out-neighbour ``x`` of the current
    vertex with ``w(cur, x) + dist(x, t) == dist(cur, t)``.  Each step
    costs ``deg(cur)`` index queries.  Returns ``None`` when ``t`` is
    unreachable from ``s``.
    """
    total = index.query(s, t)
    if total == INF:
        return None
    path = [s]
    cur = s
    remaining = total
    # Bounded by total hops; each step strictly decreases `remaining`.
    while cur != t:
        advanced = False
        for x, w in graph.out_edges(cur):
            rest = index.query(x, t)
            if rest != INF and abs(w + rest - remaining) < 1e-9:
                path.append(x)
                cur = x
                remaining = rest
                advanced = True
                break
        if not advanced:  # pragma: no cover - would indicate a broken index
            raise RuntimeError(
                f"path reconstruction stuck at {cur} towards {t}; "
                "index is inconsistent with the graph"
            )
    return path


def closeness_centrality(
    index: LabelStore, v: int, targets: Sequence[int]
) -> float:
    """Closeness of ``v`` over ``targets``: ``(reached) / sum(dist)``.

    Uses the harmonic-free classic definition restricted to reachable
    targets, a common exact-oracle workload (the index makes it cheap
    where BFS per vertex would not be).
    """
    total = 0.0
    reached = 0
    for t in targets:
        if t == v:
            continue
        d = index.query(v, t)
        if d != INF:
            total += d
            reached += 1
    if total == 0.0:
        return 0.0
    return reached / total


def average_distance(
    index: LabelStore, pairs: Iterable[tuple[int, int]]
) -> tuple[float, float]:
    """Mean distance over the connected pairs; returns (mean, connectivity).

    ``connectivity`` is the fraction of pairs with a finite distance —
    handy when sampling pairs on graphs that are not strongly
    connected.
    """
    total = 0.0
    finite = 0
    count = 0
    for s, t in pairs:
        count += 1
        d = index.query(s, t)
        if d != INF:
            total += d
            finite += 1
    if count == 0 or finite == 0:
        return 0.0, 0.0
    return total / finite, finite / count


def distance_histogram(
    index: LabelStore, pairs: Iterable[tuple[int, int]]
) -> dict[float, int]:
    """Histogram of distances over ``pairs`` (INF bucket included).

    The "degrees of separation" analysis of the social-network example
    is built on this.
    """
    hist: dict[float, int] = {}
    for s, t in pairs:
        d = index.query(s, t)
        hist[d] = hist.get(d, 0) + 1
    return hist
