"""Incremental edge insertion — an extension beyond the paper.

The paper targets *static* graphs ("given a static directed unweighted
scale-free graph, construct a disk-based index").  A natural follow-up
question is how far the same machinery carries toward dynamic graphs.
This module answers the insert-only half:

* keep the mutable label state alive after the initial build;
* when edges arrive (one at a time or in batches), admit each as a
  unit-hop entry and run **Hop-Doubling repair rounds** seeded with
  just those entries.

Why doubling and not stepping: the repair must stitch a new edge to
*existing* labels on both sides in one round (``(a -> u) + (u -> v)``
and ``(a -> v) + (v -> b)``); doubling's label-partner joins do exactly
that, so any new trough shortest path through the edge is covered
within two rounds plus the usual fixpoint iteration, and admission
replaces any entry whose distance improved.  Batches are sound for the
same reason: all seeds are admitted before the first round, each round
joins the surviving frontier against *all* current labels, and any
derivation combining two fresh entries occurs in the round where the
later-derived one is the frontier and the earlier sits in the store.

Two repair engines implement the rounds, selected by ``engine=``:

* ``"dict"`` — the reference per-entry path over the dict states of
  :mod:`repro.core.labels` (exactly the original implementation);
* ``"array"`` — the vectorized path over
  :class:`~repro.core.arraystate.ArrayLabelState`: seeds admitted as a
  block, candidates generated through
  :func:`~repro.core.rules.array_doubling` over **frontier-restricted**
  label snapshots (only the affected vertices' partner slices are
  gathered and sorted), admission and pruning through
  :func:`~repro.core.pruning.admit_and_prune_arrays`.  Both engines
  produce bit-identical label states for the same insertion sequence
  (``benchmarks/test_update_throughput.py`` gates the array path at
  >= 3x the dict path on a 10k-vertex insertion stream).

Updates reach the serving layer as :class:`~repro.core.labels.LabelDelta`
objects: every admission/removal records the owner whose label changed
and :meth:`DynamicHopDoublingIndex.pop_label_delta` drains those
vertices as complete replacement label slices, which
``FlatLabelStore.apply_updates`` / ``ShardedLabelStore.apply_updates``
stage as a query-time overlay (and reconcile to disk per shard).

Scope and guarantees:

* queries stay **exact** after any number of insertions (asserted
  against full rebuilds in the test suite);
* the label set may retain entries that a from-scratch rebuild would
  have pruned (insertion can make old entries dominated; we do not
  re-sweep by default — call :meth:`DynamicHopDoublingIndex.compact`
  for an exhaustive re-prune);
* deletions are out of scope (they can invalidate entries that nothing
  local can certify; the paper's future work, and ours).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.engine import seed_dict_state
from repro.core.labels import (
    DirectedLabelState,
    LabelDelta,
    LabelIndex,
    LabelStore,
    UndirectedLabelState,
)
from repro.core.pruning import admit_and_prune, admit_entries, exhaustive_prune
from repro.core.ranking import Ranking, make_ranking
from repro.core.rules import PrevEntry, make_engine
from repro.graphs.builder import GraphBuilder
from repro.graphs.digraph import Graph

#: Accepted values of the repair ``engine`` knob.
REPAIR_ENGINES = ("auto", "array", "dict")


def resolve_repair_engine(engine: str) -> str:
    """Resolve the ``engine`` knob to ``"array"`` or ``"dict"``.

    ``"auto"`` prefers the vectorized array engine and falls back to
    the reference dict engine when numpy is unavailable; asking for
    ``"array"`` without numpy raises a pointed ``ValueError``.
    """
    if engine not in REPAIR_ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {REPAIR_ENGINES}"
        )
    if engine == "dict":
        return engine
    try:
        import repro.core.arraystate  # noqa: F401  (probes numpy)
    except ModuleNotFoundError as exc:
        if engine == "array":
            raise ValueError(
                "engine='array' requires numpy; install it or use "
                "engine='dict'"
            ) from exc
        return "dict"
    return "array"


class _DictRepairEngine:
    """The reference repair path over the dict-based label states.

    Repair must use the FULL rule set: the minimized rules'
    equivalence (Lemma 4) relies on alternative derivations that exist
    when building from scratch but not when extending a single fresh
    entry — e.g. stitching the new edge to partners reachable only
    through its own pivot.
    """

    name = "dict"

    def __init__(self, state: DirectedLabelState | UndirectedLabelState) -> None:
        self.state = state
        # The rule engines consult the graph only for *stepping* joins;
        # repair rounds are pure doubling, so no graph is attached.
        self.rules = make_engine(state, None, "full")

    @classmethod
    def from_graph(cls, graph: Graph, ranking: Ranking) -> "_DictRepairEngine":
        state, prev = seed_dict_state(graph, ranking.rank_of)
        engine = cls(state)
        engine.repair(prev)
        return engine

    @classmethod
    def from_label_entries(
        cls,
        rank_of: Sequence[int],
        directed: bool,
        entries: Iterable[tuple[int, int, float, int]],
    ) -> "_DictRepairEngine":
        if directed:
            state: DirectedLabelState | UndirectedLabelState = (
                DirectedLabelState(rank_of)
            )
        else:
            state = UndirectedLabelState(rank_of)
        for a, b, dist, hops in entries:
            state.set_pair(a, b, dist, hops)
        return cls(state)

    # -- repair --------------------------------------------------------
    def admit_and_repair(self, entries: list[PrevEntry]) -> int:
        staged = admit_entries(self.state, entries)
        self.repair(staged)
        return len(staged)

    def repair(self, prev: list[PrevEntry]) -> None:
        """Doubling rounds until no surviving candidate remains."""
        while prev:
            candidates = self.rules.doubling(prev)
            prev, _ = admit_and_prune(self.state, candidates)

    # -- queries / maintenance -----------------------------------------
    def query(self, s: int, t: int) -> float:
        return self.state.two_hop_bound(s, t)

    def snapshot(self) -> LabelIndex:
        return LabelIndex.from_state(self.state)

    def compact(self) -> int:
        return exhaustive_prune(self.state)

    def total_entries(self) -> int:
        return self.state.total_entries()

    def track_touched(self):
        return self.state.track_touched()

    def owner_pivot(self, a: int, b: int) -> tuple[int, int]:
        return self.state.owner_pivot(a, b)

    # -- serving labels ------------------------------------------------
    # The dict stores keep the trivial (v, 0) self entries inline, so a
    # serving label is one sorted() away.
    def serving_out_label(self, v: int) -> list[tuple[int, float]]:
        state = self.state
        if isinstance(state, DirectedLabelState):
            return sorted((p, d) for p, (d, _) in state.out[v].items())
        return sorted((p, d) for p, (d, _) in state.lab[v].items())

    def serving_in_label(self, v: int) -> list[tuple[int, float]]:
        return sorted((p, d) for p, (d, _) in self.state.inn[v].items())


class _ArrayRepairEngine:
    """The vectorized repair path over the struct-of-arrays state."""

    name = "array"

    def __init__(self, state) -> None:
        self.state = state

    @classmethod
    def from_graph(cls, graph: Graph, ranking: Ranking) -> "_ArrayRepairEngine":
        from repro.core.arraystate import ArrayLabelState, PrevBlock
        from repro.core.engine import seed_entries

        pairs, prev = seed_entries(graph, ranking.rank_of)
        state = ArrayLabelState.from_initial_entries(
            ranking.rank_of,
            graph.directed,
            [(a, b, w, 1) for (a, b), w in pairs.items()],
        )
        engine = cls(state)
        engine.repair(PrevBlock.from_lists(prev))
        return engine

    @classmethod
    def from_label_entries(
        cls,
        rank_of: Sequence[int],
        directed: bool,
        entries: Iterable[tuple[int, int, float, int]],
    ) -> "_ArrayRepairEngine":
        from repro.core.arraystate import ArrayLabelState

        state = ArrayLabelState.from_initial_entries(
            rank_of, directed, list(entries)
        )
        return cls(state)

    # -- repair --------------------------------------------------------
    def admit_and_repair(self, entries: list[PrevEntry]) -> int:
        from repro.core.arraystate import PrevBlock

        block = PrevBlock.from_lists(entries)
        admitted = self.state.admit(block.a, block.b, block.dist, block.hops)
        self.repair(
            PrevBlock(
                block.a[admitted],
                block.b[admitted],
                block.dist[admitted],
                block.hops[admitted],
            )
        )
        return int(admitted.sum())

    def repair(self, prev) -> None:
        """Doubling rounds until no surviving candidate remains.

        Each round's partner views are restricted to the frontier's
        vertices (:meth:`ArrayLabelState.doubling_snapshot`), so the
        round's cost tracks the number of affected vertices, not the
        index size — the full rule set is preserved (see
        :class:`_DictRepairEngine`'s Lemma 4 caveat).
        """
        from repro.core.pruning import admit_and_prune_arrays
        from repro.core.rules import array_doubling

        while len(prev):
            candidates = array_doubling(
                self.state.doubling_snapshot(prev), prev, full=True
            )
            prev, _ = admit_and_prune_arrays(self.state, candidates)

    # -- queries / maintenance -----------------------------------------
    def query(self, s: int, t: int) -> float:
        return self.state.two_hop_distance(s, t)

    def snapshot(self) -> LabelIndex:
        return self.state.freeze()

    def compact(self) -> int:
        """Exhaustive re-prune via the dict twin, then re-adopt.

        The sweep has data-dependent per-entry control flow (same
        reasoning as ``ArrayBuildEngine.exhaustive_prune``), so it
        runs on a materialized dict state; the pruned entries are then
        packed back into a fresh array state.  Touched-vertex tracking
        survives the swap: the dict twin records the removals into the
        same sets the callers already hold.
        """
        from repro.core.arraystate import ArrayLabelState

        touched = self.state._touched
        dict_state = self.state.to_dict_state()
        if touched is not None:
            dict_state.track_touched(touched)
        removed = exhaustive_prune(dict_state)
        directed = self.state.directed
        entries = []
        for owner, pivot, dist, hops, is_out in dict_state.iter_entries():
            if directed and not is_out:
                entries.append((pivot, owner, dist, hops))
            else:
                entries.append((owner, pivot, dist, hops))
        state = ArrayLabelState.from_initial_entries(
            self.state.rank.tolist(), directed, entries
        )
        if touched is not None:
            state.track_touched(touched)
        self.state = state
        return removed

    def total_entries(self) -> int:
        return self.state.total_entries()

    def track_touched(self):
        return self.state.track_touched()

    def owner_pivot(self, a: int, b: int) -> tuple[int, int]:
        return self.state.owner_pivot(a, b)

    # -- serving labels ------------------------------------------------
    # The array state excludes trivial self entries; re-insert (v, 0.0)
    # at its sorted position to match the frozen stores' label shape.
    def _serving_label(self, side, v: int) -> list[tuple[int, float]]:
        import numpy as np

        o, e = side.off[v], side.off[v + 1]
        label = list(
            zip(side.piv[o:e].tolist(), side.dist[o:e].tolist())
        )
        label.insert(int(np.searchsorted(side.piv[o:e], v)), (v, 0.0))
        return label

    def serving_out_label(self, v: int) -> list[tuple[int, float]]:
        return self._serving_label(self.state.out, v)

    def serving_in_label(self, v: int) -> list[tuple[int, float]]:
        return self._serving_label(self.state.inn, v)


class DynamicHopDoublingIndex:
    """A hop-doubling index that accepts edge insertions.

    Build once from a base graph (or adopt a built store with
    :meth:`from_store`), then insert edges as the graph grows::

        dyn = DynamicHopDoublingIndex(base_graph, engine="array")
        dyn.query(s, t)
        dyn.insert_edge(u, v)            # index repaired in-place
        dyn.insert_edges([(a, b), ...])  # batched: one repair fixpoint
        dyn.query(s, t)                  # still exact

        delta = dyn.pop_label_delta()    # changed per-vertex labels
        store.apply_updates(delta)       # serving store follows along

    The ranking is fixed at construction time (new high-degree vertices
    do not get re-ranked; quality degrades gracefully, exactness does
    not — the paper's Section 7 point that any total order stays
    correct).
    """

    def __init__(
        self,
        graph: Graph,
        ranking: Ranking | str = "auto",
        engine: str = "auto",
    ) -> None:
        if isinstance(ranking, str):
            ranking = make_ranking(graph, ranking)
        self.ranking = ranking
        self.rule_set = "full"  # see the engines' Lemma 4 caveat
        self.engine = resolve_repair_engine(engine)
        self.n = graph.num_vertices
        self.directed = graph.directed
        self.weighted = graph.weighted
        if self.engine == "array":
            self._impl = _ArrayRepairEngine.from_graph(graph, ranking)
        else:
            self._impl = _DictRepairEngine.from_graph(graph, ranking)
        # Tracking starts *after* the initial build: the first delta
        # covers insertions only, not the base index.
        self._touched = self._impl.track_touched()
        self._new_edges: list[tuple[int, int, float]] = []
        self._edge_keys: set[tuple[int, int]] = {
            self._edge_key(u, v) for u, v, _ in graph.edges()
        }
        self._graph: Graph | None = graph
        self.insertions = 0

    @classmethod
    def from_store(
        cls,
        store: LabelStore,
        graph: Graph | None = None,
        ranking: Ranking | Sequence[int] | None = None,
        engine: str = "auto",
    ) -> "DynamicHopDoublingIndex":
        """Adopt a frozen label store as the live repair state.

        This is how an index loaded from disk (flat v2, quantized v3,
        or a shard directory) becomes updatable without a rebuild: the
        store's entries seed the mutable state directly.  ``ranking``
        defaults to the ranking recorded in the store; pass ``graph``
        to enable duplicate-edge detection and the :attr:`graph`
        accessor (label repair itself never consults the graph — the
        rounds are pure doubling).  Hop counters are not persisted in
        the index formats, so adopted entries carry ``hops=1``; repair
        distances do not depend on hop counts, only the (unpersisted)
        per-iteration statistics ever did.
        """
        if ranking is None:
            rank = getattr(store, "rank", None)
            if rank is None:
                raise ValueError(
                    "store carries no ranking; pass ranking= (the rank_of "
                    "list or a Ranking) to adopt it"
                )
            ranking = Ranking.from_order(
                sorted(range(store.n), key=lambda v: rank[v])
            )
        elif not isinstance(ranking, Ranking):
            ranking = Ranking.from_order(
                sorted(range(len(ranking)), key=lambda v: ranking[v])
            )
        if graph is not None and graph.num_vertices != store.n:
            raise ValueError(
                f"graph covers {graph.num_vertices} vertices, store has "
                f"{store.n}"
            )

        self = cls.__new__(cls)
        self.ranking = ranking
        self.rule_set = "full"
        self.engine = resolve_repair_engine(engine)
        self.n = store.n
        self.directed = store.directed
        self.weighted = graph.weighted if graph is not None else True

        def entries():
            for v in range(store.n):
                for p, d in store.out_label(v):
                    if p != v:
                        yield (v, p, d, 1)
                if store.directed:
                    for p, d in store.in_label(v):
                        if p != v:
                            yield (p, v, d, 1)

        if self.engine == "array":
            self._impl = _ArrayRepairEngine.from_label_entries(
                ranking.rank_of, store.directed, entries()
            )
        else:
            self._impl = _DictRepairEngine.from_label_entries(
                ranking.rank_of, store.directed, entries()
            )
        self._touched = self._impl.track_touched()
        if graph is not None:
            self._edge_keys = {
                self._edge_key(u, v) for u, v, _ in graph.edges()
            }
        else:
            # No graph: pre-existing edges cannot be detected (their
            # re-insertion is a harmless no-better seed), but edges
            # inserted through this index still dedupe.
            self._edge_keys = set()
        self._new_edges = []
        self._graph = graph
        self.insertions = 0
        return self

    # -- queries -----------------------------------------------------------
    def query(self, s: int, t: int) -> float:
        """Exact ``dist(s, t)`` on the current (grown) graph."""
        if s == t:
            return 0.0
        return self._impl.query(s, t)

    def snapshot(self) -> LabelIndex:
        """Freeze the current labels into an immutable index."""
        return self._impl.snapshot()

    @property
    def graph(self) -> Graph:
        """The current (grown) graph, rebuilt lazily after insertions.

        Graph instances are immutable by design, and label repair
        never reads the adjacency (the rounds are pure doubling), so
        edges inserted since the last access are folded into a fresh
        graph only when someone asks for it — verification, path
        reconstruction, statistics.  No separate edge-list copy is
        retained: the previous graph re-enumerates its own edges.
        """
        if self._graph is None:
            raise ValueError(
                "no graph attached (index adopted from a store); pass "
                "graph= to from_store() to track the growing graph"
            )
        if self._new_edges:
            builder = GraphBuilder(
                num_vertices=self.n,
                directed=self.directed,
                weighted=self.weighted,
            )
            for u, v, w in self._graph.edges():
                if self.weighted:
                    builder.add_edge(u, v, w)
                else:
                    builder.add_edge(u, v)
            for u, v, w in self._new_edges:
                if self.weighted:
                    builder.add_edge(u, v, w)
                else:
                    builder.add_edge(u, v)
            self._graph = builder.build()
            self._new_edges.clear()
        return self._graph

    # -- mutation --------------------------------------------------------------
    def insert_edge(self, u: int, v: int, weight: float = 1.0) -> bool:
        """Add the edge ``u -> v`` (``{u, v}`` if undirected) and repair.

        Returns ``False`` when the edge already exists or is a self
        loop (no work done).  ``weight`` must be positive for weighted
        graphs and is ignored (treated as 1) otherwise.
        """
        return self.insert_edges([(u, v, weight)]) == 1

    def insert_edges(
        self,
        edges: Iterable[tuple[int, int] | tuple[int, int, float]],
    ) -> int:
        """Add a batch of edges and repair the index once.

        Each edge is ``(u, v)`` or ``(u, v, weight)``.  Self loops and
        edges already present (in the graph or earlier in the batch)
        are skipped; out-of-range endpoints raise ``IndexError`` and
        non-positive weights on weighted graphs raise ``ValueError``.
        All surviving edges are admitted as unit-hop entries together
        and a single doubling fixpoint repairs the index — far cheaper
        than per-edge repair for insertion streams, and queries are
        exact either way.  Returns the number of edges added.  A
        validation error rejects the **whole batch**: no edge of it is
        recorded or repaired.
        """
        validated: list[tuple[int, int, float]] = []
        for edge in edges:
            u, v = int(edge[0]), int(edge[1])
            weight = float(edge[2]) if len(edge) > 2 else 1.0
            if not (0 <= u < self.n and 0 <= v < self.n):
                raise IndexError(
                    f"edge ({u}, {v}) out of range for {self.n} vertices"
                )
            if u == v:
                continue
            if not self.weighted:
                weight = 1.0
            elif not weight > 0:
                raise ValueError(
                    f"edge weight must be > 0, got {edge[2]!r}"
                )
            validated.append((u, v, weight))

        seeds: list[PrevEntry] = []
        added = 0
        for u, v, weight in validated:
            key = self._edge_key(u, v)
            if key in self._edge_keys:
                continue
            self._edge_keys.add(key)
            if self._graph is not None:
                self._new_edges.append((u, v, weight))
            added += 1
            if self.directed:
                a, b = u, v
            else:
                a, b = self._impl.owner_pivot(u, v)
            seeds.append((a, b, weight, 1))
        if not added:
            return 0
        self.insertions += added
        self._impl.admit_and_repair(seeds)
        return added

    def compact(self) -> int:
        """Exhaustively re-prune; returns the number of entries removed.

        Insertions can make pre-existing entries dominated; a periodic
        compaction restores the canonical-size index (Section 5.2's
        exhaustive sweep).  Removals are recorded like any other label
        change, so the next :meth:`pop_label_delta` carries them.
        """
        return self._impl.compact()

    # -- serving-layer hand-off -------------------------------------------
    def pop_label_delta(self) -> LabelDelta:
        """Drain the label changes staged since the last call.

        Returns a :class:`~repro.core.labels.LabelDelta` holding the
        complete replacement label of every vertex whose ``Lout`` /
        ``Lin`` changed (trivial self entries included, sorted by
        pivot) — ready for ``apply_updates`` on any serving store.
        Idempotent between mutations: a second call returns an empty
        delta.
        """
        out_touched, in_touched = self._touched
        delta = LabelDelta.empty(self.n, self.directed)
        for v in sorted(out_touched):
            delta.out[v] = self._impl.serving_out_label(v)
        if self.directed:
            for v in sorted(in_touched):
                delta.inn[v] = self._impl.serving_in_label(v)
        out_touched.clear()
        in_touched.clear()
        return delta

    # -- internals ---------------------------------------------------------------
    def _edge_key(self, u: int, v: int) -> tuple[int, int]:
        if not self.directed and u > v:
            return v, u
        return u, v

    def __repr__(self) -> str:
        if self._graph is not None:
            edges = self._graph.num_edges + len(self._new_edges)
            shape = f"|V|={self.n}, |E|={edges}"
        else:
            shape = f"|V|={self.n}"
        return (
            f"DynamicHopDoublingIndex({shape}, "
            f"insertions={self.insertions}, engine={self.engine!r})"
        )
