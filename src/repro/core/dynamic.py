"""Incremental edge insertion — an extension beyond the paper.

The paper targets *static* graphs ("given a static directed unweighted
scale-free graph, construct a disk-based index").  A natural follow-up
question is how far the same machinery carries toward dynamic graphs.
This module answers the insert-only half:

* keep the mutable label state alive after the initial build;
* when an edge ``(u, v)`` arrives, admit it as a unit-hop entry and
  run **Hop-Doubling repair rounds** seeded with just that entry.

Why doubling and not stepping: the repair must stitch the new edge to
*existing* labels on both sides in one round (``(a -> u) + (u -> v)``
and ``(a -> v) + (v -> b)``); doubling's label-partner joins do exactly
that, so any new trough shortest path through the edge is covered
within two rounds plus the usual fixpoint iteration, and admission
replaces any entry whose distance improved.

Scope and guarantees:

* queries stay **exact** after any number of insertions (asserted
  against full rebuilds in the test suite);
* the label set may retain entries that a from-scratch rebuild would
  have pruned (insertion can make old entries dominated; we do not
  re-sweep by default — call :meth:`DynamicHopDoublingIndex.compact`
  for an exhaustive re-prune);
* deletions are out of scope (they can invalidate entries that nothing
  local can certify; the paper's future work, and ours).
"""

from __future__ import annotations

from repro.core.hop_doubling import HopDoubling
from repro.core.labels import LabelIndex
from repro.core.pruning import admit_and_prune, exhaustive_prune
from repro.core.ranking import Ranking, make_ranking
from repro.core.rules import make_engine
from repro.graphs.digraph import Graph
from repro.graphs.builder import GraphBuilder


class DynamicHopDoublingIndex:
    """A hop-doubling index that accepts edge insertions.

    Build once from a base graph, then ``insert_edge`` as the graph
    grows::

        dyn = DynamicHopDoublingIndex(base_graph)
        dyn.query(s, t)
        dyn.insert_edge(u, v)          # index repaired in-place
        dyn.query(s, t)                # still exact

    The ranking is fixed at construction time (new high-degree vertices
    do not get re-ranked; quality degrades gracefully, exactness does
    not — the paper's Section 7 point that any total order stays
    correct).
    """

    def __init__(
        self,
        graph: Graph,
        ranking: Ranking | str = "auto",
    ) -> None:
        self.graph = graph
        if isinstance(ranking, str):
            ranking = make_ranking(graph, ranking)
        self.ranking = ranking
        # Repair must use the FULL rule set: the minimized rules'
        # equivalence (Lemma 4) relies on alternative derivations that
        # exist when building from scratch but not when extending a
        # single fresh entry — e.g. stitching the new edge to partners
        # reachable only through its own pivot.
        self.rule_set = "full"

        builder = HopDoubling(graph, ranking=ranking, rule_set=self.rule_set)
        self._state, prev = builder._initial_state()
        self._engine = make_engine(self._state, graph, self.rule_set)
        self._run_rounds(prev)
        self._edges: set[tuple[int, int]] = {
            (u, v) for u, v, _ in graph.edges()
        }
        self.insertions = 0

    # -- queries -----------------------------------------------------------
    def query(self, s: int, t: int) -> float:
        """Exact ``dist(s, t)`` on the current (grown) graph."""
        if s == t:
            return 0.0
        return self._state.two_hop_bound(s, t)

    def snapshot(self) -> LabelIndex:
        """Freeze the current labels into an immutable index."""
        return LabelIndex.from_state(self._state)

    # -- mutation --------------------------------------------------------------
    def insert_edge(self, u: int, v: int, weight: float = 1.0) -> bool:
        """Add the edge ``u -> v`` (``{u, v}`` if undirected) and repair.

        Returns ``False`` when the edge already exists or is a self
        loop (no work done).  ``weight`` must be positive for weighted
        graphs and is ignored (treated as 1) otherwise.
        """
        n = self.graph.num_vertices
        if not (0 <= u < n and 0 <= v < n):
            raise IndexError(f"edge ({u}, {v}) out of range for {n} vertices")
        if u == v:
            return False
        if not self.graph.weighted:
            weight = 1.0
        elif not weight > 0:
            raise ValueError(f"edge weight must be > 0, got {weight!r}")

        key = (u, v)
        if not self.graph.directed and u > v:
            key = (v, u)
        if key in self._edges:
            return False
        self._edges.add(key)
        self.insertions += 1
        self._rebuild_graph_with(key, weight)

        # Admit the edge itself as a unit-hop entry (if it improves).
        if self.graph.directed:
            a, b = u, v
        else:
            a, b = self._state.owner_pivot(u, v)
        existing = self._state.get_pair(a, b)
        if existing is not None and existing[0] <= weight:
            return True  # a parallel-but-no-better edge: nothing to repair
        self._state.set_pair(a, b, weight, 1)
        self._run_rounds([(a, b, weight, 1)])
        return True

    def compact(self) -> int:
        """Exhaustively re-prune; returns the number of entries removed.

        Insertions can make pre-existing entries dominated; a periodic
        compaction restores the canonical-size index (Section 5.2's
        exhaustive sweep).
        """
        return exhaustive_prune(self._state)

    # -- internals ---------------------------------------------------------------
    def _rebuild_graph_with(self, key: tuple[int, int], weight: float) -> None:
        """Extend the immutable graph by one edge.

        Graph instances are immutable by design; a dynamic wrapper
        rebuilds the adjacency.  O(|E|) per insertion — acceptable for
        the repair-experiment scale; a production variant would keep a
        mutable overlay.
        """
        builder = GraphBuilder(
            num_vertices=self.graph.num_vertices,
            directed=self.graph.directed,
            weighted=self.graph.weighted,
        )
        for a, b, w in self.graph.edges():
            if self.graph.weighted:
                builder.add_edge(a, b, w)
            else:
                builder.add_edge(a, b)
        if self.graph.weighted:
            builder.add_edge(key[0], key[1], weight)
        else:
            builder.add_edge(key[0], key[1])
        self.graph = builder.build()
        self._engine = make_engine(self._state, self.graph, self.rule_set)

    def _run_rounds(self, prev) -> None:
        """Doubling rounds until no surviving candidate remains."""
        while prev:
            candidates = self._engine.doubling(prev)
            prev, _ = admit_and_prune(self._state, candidates)

    def __repr__(self) -> str:
        return (
            f"DynamicHopDoublingIndex(|V|={self.graph.num_vertices}, "
            f"|E|={self.graph.num_edges}, insertions={self.insertions})"
        )
