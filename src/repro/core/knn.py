"""Inverted label index: one-to-all and k-nearest-neighbour queries.

A 2-hop index answers point-to-point queries in one merge join.  Many
of the workloads the paper motivates (closeness/betweenness centrality,
influence analysis) instead ask *one-to-many* questions.  Those are
served efficiently by inverting the labels once:

* ``inverted_in[w]``  = all ``(v, d)`` with ``(w, d)`` in ``Lin(v)``  —
  every vertex that pivot ``w`` can reach, with distances;
* ``inverted_out[w]`` = all ``(v, d)`` with ``(w, d)`` in ``Lout(v)`` —
  every vertex that can reach pivot ``w``.

Then the distances from a source ``s`` to *all* vertices are the
min-plus product of ``Lout(s)`` with the inverted in-lists — touching
only ``sum(|inverted_in[w]| for w in Lout(s))`` entries instead of
running a full BFS, and reusing the index instead of the graph.

k-NN keeps a per-pivot sort by distance and expands pivots best-first,
stopping once the k-th best found so far beats every unexplored
candidate.
"""

from __future__ import annotations

import heapq

from repro.core.labels import INF, LabelStore


class InvertedLabelIndex:
    """One-to-many queries over any frozen :class:`LabelStore` backend."""

    def __init__(self, index: LabelStore) -> None:
        self.index = index
        n = index.n
        self.inverted_in: dict[int, list[tuple[float, int]]] = {}
        self.inverted_out: dict[int, list[tuple[float, int]]] = {}
        for v in range(n):
            for w, d in index.in_label(v):
                self.inverted_in.setdefault(w, []).append((d, v))
            if index.directed:
                for w, d in index.out_label(v):
                    self.inverted_out.setdefault(w, []).append((d, v))
        if not index.directed:
            self.inverted_out = self.inverted_in
        for lists in (self.inverted_in, self.inverted_out):
            for entries in lists.values():
                entries.sort()

    # -- one-to-all ------------------------------------------------------
    def distances_from(self, s: int) -> list[float]:
        """Distances from ``s`` to every vertex, via the labels only."""
        dist = [INF] * self.index.n
        dist[s] = 0.0
        for w, d1 in self.index.out_label(s):
            for d2, v in self.inverted_in.get(w, ()):
                d = d1 + d2
                if d < dist[v]:
                    dist[v] = d
        return dist

    def distances_to(self, t: int) -> list[float]:
        """Distances from every vertex to ``t`` (reverse one-to-all)."""
        dist = [INF] * self.index.n
        dist[t] = 0.0
        for w, d2 in self.index.in_label(t):
            for d1, v in self.inverted_out.get(w, ()):
                d = d1 + d2
                if d < dist[v]:
                    dist[v] = d
        return dist

    # -- k nearest neighbours ------------------------------------------------
    def nearest(
        self, s: int, k: int, include_self: bool = False
    ) -> list[tuple[float, int]]:
        """The ``k`` closest vertices to ``s`` as ``(dist, vertex)`` pairs.

        Best-first expansion over the pivots of ``Lout(s)``: each pivot
        ``w`` contributes candidates ``d(s, w) + d(w, v)`` in
        non-decreasing order (its inverted list is sorted), so a heap
        of per-pivot cursors yields globally non-decreasing candidates
        and the scan stops after ``k`` distinct vertices.
        """
        if k <= 0:
            return []
        # Heap items: (candidate_dist, pivot_order, pivot, cursor).
        source_label = self.index.out_label(s)
        heap: list[tuple[float, int, int, int]] = []
        for order, (w, d1) in enumerate(source_label):
            entries = self.inverted_in.get(w)
            if entries:
                heap.append((d1 + entries[0][0], order, w, 0))
        heapq.heapify(heap)

        result: list[tuple[float, int]] = []
        seen: set[int] = set()
        pivot_d1 = dict(source_label)
        while heap and len(result) < k + (0 if include_self else 1):
            d, order, w, cursor = heapq.heappop(heap)
            entries = self.inverted_in[w]
            _, v = entries[cursor]
            if cursor + 1 < len(entries):
                nxt = pivot_d1[w] + entries[cursor + 1][0]
                heapq.heappush(heap, (nxt, order, w, cursor + 1))
            if v in seen:
                continue
            # `d` is only an upper bound via pivot w; other pivots may
            # be shorter, but any shorter route would already have been
            # popped (all cursors advance in non-decreasing order), so
            # the first pop of `v` is its exact distance.
            seen.add(v)
            result.append((d, v))
        if not include_self:
            result = [(d, v) for d, v in result if v != s][:k]
        return result[:k]

    def size_in_entries(self) -> int:
        """Total inverted entries (equals label entries, trivial incl.)."""
        total = sum(len(v) for v in self.inverted_in.values())
        if self.index.directed:
            total += sum(len(v) for v in self.inverted_out.values())
        return total
