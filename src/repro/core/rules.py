"""Label-entry generation rules (Section 3.1-3.2 and Section 5.1).

A candidate entry is produced by concatenating two known entries that
share a middle vertex ``m``: ``(x -> m) + (m -> y) => (x -> y)``.  The
concatenation is *trough-valid* exactly when ``m`` ranks below the
higher-ranked of ``x`` and ``y`` (Definition 1).  The paper's six rules
of Table 5 are the six (prev-entry type x partner store) templates of
this join, and Lemmas 3-4 show four of them suffice.

Both engines are implemented:

* ``rule_set="full"`` — all six templates (the reference engine);
* ``rule_set="minimized"`` — the four simplified rules (the default, as
  in the paper).

Each engine offers two joining modes:

* :meth:`doubling` — partners come from **all** current labels
  (Hop-Doubling, Section 3): covered hop lengths roughly double per
  iteration (Theorem 2);
* :meth:`stepping` — partners are unit-hop entries, i.e. graph edges
  (Hop-Stepping, Section 5.1): covered hop lengths grow by one per
  iteration (Lemma 5), keeping the candidate volume per iteration down
  to ``O(h |V| log |V|)`` (Section 5.3).

Notation reminder: rank 0 is the *highest* priority, so the paper's
``r(a) > r(b)`` reads ``rank[a] < rank[b]`` in this code.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.labels import (
    DirectedLabelState,
    EntryValue,
    UndirectedLabelState,
)
from repro.graphs.digraph import Graph

# A prev entry: (source, target, distance, hops).  For undirected
# engines the convention is (owner, pivot, distance, hops).
PrevEntry = tuple[int, int, float, int]

RULE_SETS = ("minimized", "full")


class CandidateSet:
    """Accumulates generated candidates, keeping the best per pair.

    ``raw_generated`` counts every rule application (before
    deduplication) — the quantity behind the *growing factor* of
    Figure 10; ``pairs`` maps ``(a, b)`` to the best ``(dist, hops)``
    seen (smaller distance wins; ties prefer fewer hops).
    """

    __slots__ = ("pairs", "raw_generated")

    def __init__(self) -> None:
        self.pairs: dict[tuple[int, int], EntryValue] = {}
        self.raw_generated = 0

    def offer(self, a: int, b: int, dist: float, hops: int) -> None:
        """Record a generated candidate for the pair ``a -> b``."""
        self.raw_generated += 1
        key = (a, b)
        current = self.pairs.get(key)
        if (
            current is None
            or dist < current[0]
            or (dist == current[0] and hops < current[1])
        ):
            self.pairs[key] = (dist, hops)

    def __len__(self) -> int:
        return len(self.pairs)

    def items(self) -> Iterable[tuple[tuple[int, int], EntryValue]]:
        return self.pairs.items()


def _check_rule_set(rule_set: str) -> None:
    if rule_set not in RULE_SETS:
        raise ValueError(
            f"unknown rule_set {rule_set!r}; expected one of {RULE_SETS}"
        )


class DirectedRuleEngine:
    """Generation rules over a :class:`DirectedLabelState`."""

    def __init__(
        self,
        state: DirectedLabelState,
        graph: Graph,
        rule_set: str = "minimized",
    ) -> None:
        _check_rule_set(rule_set)
        self.state = state
        self.graph = graph
        self.full = rule_set == "full"

    # ------------------------------------------------------------------
    # Hop-Doubling: partners from all current labels
    # ------------------------------------------------------------------
    def doubling(self, prev: Sequence[PrevEntry]) -> CandidateSet:
        """Apply the rules with label partners (Hop-Doubling joins)."""
        state = self.state
        rank = state.rank
        out = state.out
        inn = state.inn
        rev_out = state.rev_out
        rev_in = state.rev_in
        cands = CandidateSet()
        full = self.full

        for u, v, d, h in prev:
            if rank[v] < rank[u]:
                # prev is an out-entry of u: (u -> v), pivot v outranks u.
                rank_v = rank[v]
                # Rule 1: partners (x -> u) in Lin(u); minimized keeps
                # only x ranked between u and v.
                for x, (d1, h1) in inn[u].items():
                    if x == u or x == v:
                        continue
                    if full or rank[x] > rank_v:
                        cands.offer(x, v, d1 + d, h1 + h)
                # Rule 2: partners (x -> u) held as out-entries of x
                # (x ranked below u) — reached through the reverse index.
                for x, (d1, h1) in rev_out[u].items():
                    if x == v:
                        continue
                    cands.offer(x, v, d1 + d, h1 + h)
                if full:
                    # Rule 3: partners (v -> y) in Lout(v); redundant by
                    # Lemma 3 but kept in the reference engine.
                    for y, (d2, h2) in out[v].items():
                        if y == v or y == u:
                            continue
                        cands.offer(u, y, d + d2, h + h2)
            else:
                # prev is an in-entry of v: (u -> v), pivot u outranks v.
                rank_u = rank[u]
                # Rule 4: partners (v -> y) in Lout(v); minimized keeps
                # only y ranked between v and u.
                for y, (d2, h2) in out[v].items():
                    if y == v or y == u:
                        continue
                    if full or rank[y] > rank_u:
                        cands.offer(u, y, d + d2, h + h2)
                # Rule 5: partners (v -> y) held as in-entries of y
                # (y ranked below v) — reached through the reverse index.
                for y, (d2, h2) in rev_in[v].items():
                    if y == u:
                        continue
                    cands.offer(u, y, d + d2, h + h2)
                if full:
                    # Rule 6: partners (x -> u) in Lin(u); redundant by
                    # Lemma 3 but kept in the reference engine.
                    for x, (d1, h1) in inn[u].items():
                        if x == u or x == v:
                            continue
                        cands.offer(x, v, d1 + d, h1 + h)
        return cands

    # ------------------------------------------------------------------
    # Hop-Stepping: partners are unit-hop entries (graph edges)
    # ------------------------------------------------------------------
    def stepping(self, prev: Sequence[PrevEntry]) -> CandidateSet:
        """Apply the rules with edge partners (Hop-Stepping joins)."""
        state = self.state
        rank = state.rank
        graph = self.graph
        cands = CandidateSet()
        full = self.full

        for u, v, d, h in prev:
            if rank[v] < rank[u]:
                # prev out-entry (u -> v): extend backwards over in-edges
                # of u.  Minimized: partner x must rank below v (union of
                # Rules 1 and 2); full: any x (adds Rule 1's dropped
                # branch), plus Rule 3 partners over out-edges of v.
                rank_v = rank[v]
                for x, w in graph.in_edges(u):
                    if x == v:
                        continue
                    if full or rank[x] > rank_v:
                        cands.offer(x, v, w + d, h + 1)
                if full:
                    rank_v = rank[v]
                    for y, w in graph.out_edges(v):
                        if y == u:
                            continue
                        if rank[y] < rank_v:
                            cands.offer(u, y, d + w, h + 1)
            else:
                # prev in-entry (u -> v): extend forwards over out-edges
                # of v.  Minimized: partner y must rank below u (union of
                # Rules 4 and 5); full: any y, plus Rule 6 partners over
                # in-edges of u.
                rank_u = rank[u]
                for y, w in graph.out_edges(v):
                    if y == u:
                        continue
                    if full or rank[y] > rank_u:
                        cands.offer(u, y, d + w, h + 1)
                if full:
                    for x, w in graph.in_edges(u):
                        if x == v:
                            continue
                        if rank[x] < rank_u:
                            cands.offer(x, v, w + d, h + 1)
        return cands


class UndirectedRuleEngine:
    """Generation rules over an :class:`UndirectedLabelState` (Section 7).

    Entries are unordered pairs ``{owner, pivot}`` with the pivot
    outranking the owner.  The directed rules collapse pairwise
    (Rule 1 with Rule 4, Rule 2 with Rule 5), leaving:

    * minimized — partners of the owner ranked below the pivot;
    * full — additionally, any owner partner and pivot-side partners
      (the analogue of Rules 3/6).
    """

    def __init__(
        self,
        state: UndirectedLabelState,
        graph: Graph,
        rule_set: str = "minimized",
    ) -> None:
        _check_rule_set(rule_set)
        self.state = state
        self.graph = graph
        self.full = rule_set == "full"

    def _offer(
        self, cands: CandidateSet, a: int, b: int, dist: float, hops: int
    ) -> None:
        """Offer the unordered pair ``{a, b}`` in (owner, pivot) order.

        Normalizing here keeps each unordered pair under a single
        candidate key regardless of which join produced it.
        """
        if self.state.rank[a] < self.state.rank[b]:
            a, b = b, a
        cands.offer(a, b, dist, hops)

    def doubling(self, prev: Sequence[PrevEntry]) -> CandidateSet:
        """Apply the rules with label partners (Hop-Doubling joins)."""
        state = self.state
        rank = state.rank
        lab = state.lab
        rev = state.rev
        cands = CandidateSet()
        full = self.full

        for owner, pivot, d, h in prev:
            rank_p = rank[pivot]
            # Rule 1 analogue: partners in L(owner).
            for x, (d1, h1) in lab[owner].items():
                if x == owner or x == pivot:
                    continue
                if full or rank[x] > rank_p:
                    self._offer(cands, x, pivot, d1 + d, h1 + h)
            # Rule 2 analogue: partners holding `owner` as their pivot.
            for x, (d1, h1) in rev[owner].items():
                if x == pivot:
                    continue
                self._offer(cands, x, pivot, d1 + d, h1 + h)
            if full:
                # Rule 3/6 analogue: extend through the pivot side.
                for y, (d2, h2) in lab[pivot].items():
                    if y == pivot or y == owner:
                        continue
                    self._offer(cands, owner, y, d + d2, h + h2)
        return cands

    def stepping(self, prev: Sequence[PrevEntry]) -> CandidateSet:
        """Apply the rules with edge partners (Hop-Stepping joins)."""
        state = self.state
        rank = state.rank
        graph = self.graph
        cands = CandidateSet()
        full = self.full

        for owner, pivot, d, h in prev:
            rank_p = rank[pivot]
            for x, w in graph.out_edges(owner):
                if x == pivot:
                    continue
                if full or rank[x] > rank_p:
                    self._offer(cands, x, pivot, w + d, h + 1)
            if full:
                for y, w in graph.out_edges(pivot):
                    if y == owner:
                        continue
                    if rank[y] < rank_p:
                        self._offer(cands, owner, y, d + w, h + 1)
        return cands


def make_engine(
    state: DirectedLabelState | UndirectedLabelState,
    graph: Graph,
    rule_set: str = "minimized",
) -> DirectedRuleEngine | UndirectedRuleEngine:
    """Instantiate the rule engine matching the state's directedness."""
    if isinstance(state, DirectedLabelState):
        return DirectedRuleEngine(state, graph, rule_set)
    return UndirectedRuleEngine(state, graph, rule_set)


# ---------------------------------------------------------------------------
# Array-backed rule application (the fast build engine's joins)
# ---------------------------------------------------------------------------
#
# The same six templates, but applied to a whole ``prevLabel`` block at
# once over the read-only snapshots of :mod:`repro.core.arraystate`:
# each rule becomes one ragged gather (``expand_segments``) over
# partner segments, with the minimized rules' rank filters turned into
# a single ``searchsorted`` on rank-sorted partner arrays.  Candidates
# are accumulated as parallel arrays and deduplicated in one
# ``lexsort`` pass at the end (:meth:`CandidateBatch.dedupe`) instead
# of a per-candidate :meth:`CandidateSet.offer` — the multiset of rule
# applications, and therefore every iteration counter, is identical to
# the dict engines'.
#
# Exclusion checks that the dict engines perform per partner are
# compiled away where vertex ranks make them impossible (e.g. Rule 2's
# ``x == v``: every ``x`` holding ``u`` in its out-label ranks below
# ``u``, while ``v`` outranks it) and applied as vector masks where
# they are real (the ``full`` rule set's unfiltered branches).


class CandidateBatch:
    """Generated candidates as parallel arrays (pre-deduplication).

    The array twin of :class:`CandidateSet`: ``raw`` counts every rule
    application; :meth:`dedupe` reduces to the best ``(dist, hops)``
    per pair with the same smaller-distance-then-fewer-hops rule, in
    canonical pair-key order (so any concatenation order of the raw
    arrays — e.g. from parallel workers — yields identical output).
    """

    __slots__ = ("n", "a", "b", "dist", "hops")

    def __init__(self, n, a, b, dist, hops) -> None:
        self.n = n
        self.a = a
        self.b = b
        self.dist = dist
        self.hops = hops

    @property
    def raw(self) -> int:
        """Rule applications before deduplication (Figure 10's series)."""
        return int(self.a.size)

    @classmethod
    def concatenate(cls, batches: "Sequence[CandidateBatch]"):
        """Merge worker batches (chunk order preserved)."""
        import numpy as np

        n = batches[0].n
        return cls(
            n,
            np.concatenate([c.a for c in batches]),
            np.concatenate([c.b for c in batches]),
            np.concatenate([c.dist for c in batches]),
            np.concatenate([c.hops for c in batches]),
        )

    def dedupe(self):
        """Best ``(dist, hops)`` per pair, sorted by pair key.

        Returns ``(a, b, dist, hops)`` arrays with unique pairs.
        Ordering candidates by ``(key, dist, hops)`` and keeping the
        first of each key group is exactly the ``offer`` reduction.
        """
        import numpy as np

        key = self.a * self.n + self.b
        order = np.lexsort((self.hops, self.dist, key))
        ks = key[order]
        keep = np.ones(ks.size, dtype=bool)
        keep[1:] = ks[1:] != ks[:-1]
        sel = order[keep]
        return self.a[sel], self.b[sel], self.dist[sel], self.hops[sel]


def _normalize_undirected(rank, a, b, dist, hops):
    """Swap pairs so the pivot (``b``) outranks the owner (``a``)."""
    import numpy as np

    swap = rank[a] < rank[b]
    return (
        np.where(swap, b, a),
        np.where(swap, a, b),
        dist,
        hops,
    )


def array_stepping(snap, prev, full: bool = False) -> CandidateBatch:
    """Edge-partner joins (Hop-Stepping) over an :class:`EdgeSnapshot`.

    ``prev`` is a :class:`repro.core.arraystate.PrevBlock`; the result
    contains the same rule applications as the dict engines'
    ``stepping`` over the same entries.
    """
    import numpy as np

    from repro.core.arraystate import expand_segments

    n, rank = snap.n, snap.rank
    groups: list[tuple] = []

    def emit(ca, cb, cd, ch, drop_equal=False):
        if drop_equal:
            keep = ca != cb
            ca, cb, cd, ch = ca[keep], cb[keep], cd[keep], ch[keep]
        groups.append((ca, cb, cd, ch))

    if snap.directed:
        is_out = rank[prev.b] < rank[prev.a]
        for sel, forward in ((is_out, False), (~is_out, True)):
            u = prev.a[sel]
            v = prev.b[sel]
            d = prev.dist[sel]
            h = prev.hops[sel]
            if forward:
                # prev in-entry (u -> v): extend over out-edges of v.
                off, nbr, wt, key = (
                    snap.out_off,
                    snap.out_tgt,
                    snap.out_wt,
                    snap.out_key,
                )
                anchor, bound = v, u
            else:
                # prev out-entry (u -> v): extend over in-edges of u.
                off, nbr, wt, key = (
                    snap.in_off,
                    snap.in_src,
                    snap.in_wt,
                    snap.in_key,
                )
                anchor, bound = u, v
            if full:
                starts = off[anchor]
            else:
                # Minimized: partners ranked below the prev entry's
                # higher end — a suffix of the rank-sorted segment.
                starts = np.searchsorted(key, anchor * n + rank[bound], "right")
            ends = off[anchor + 1]
            reps, pos = expand_segments(starts, ends)
            if forward:
                ca, cb = u[reps], nbr[pos]
                cd = d[reps] + wt[pos]
            else:
                ca, cb = nbr[pos], v[reps]
                cd = wt[pos] + d[reps]
            ch = h[reps] + 1
            # full keeps the dict engines' explicit x != v / y != u skip.
            emit(ca, cb, cd, ch, drop_equal=full)
            if full:
                # The Rule 3/6 analogues: extend through the prev
                # entry's other endpoint, partners ranked above it
                # (a prefix of the rank-sorted segment).
                if forward:
                    p_off, p_nbr, p_wt, p_key = (
                        snap.in_off,
                        snap.in_src,
                        snap.in_wt,
                        snap.in_key,
                    )
                    other = u
                else:
                    p_off, p_nbr, p_wt, p_key = (
                        snap.out_off,
                        snap.out_tgt,
                        snap.out_wt,
                        snap.out_key,
                    )
                    other = v
                starts = p_off[other]
                ends = np.searchsorted(p_key, other * n + rank[other], "left")
                reps, pos = expand_segments(starts, ends)
                if forward:
                    emit(p_nbr[pos], v[reps], p_wt[pos] + d[reps], h[reps] + 1)
                else:
                    emit(u[reps], p_nbr[pos], d[reps] + p_wt[pos], h[reps] + 1)
    else:
        owner, pivot = prev.a, prev.b
        d, h = prev.dist, prev.hops
        off, nbr, wt, key = (
            snap.out_off,
            snap.out_tgt,
            snap.out_wt,
            snap.out_key,
        )
        if full:
            starts = off[owner]
        else:
            starts = np.searchsorted(key, owner * n + rank[pivot], "right")
        ends = off[owner + 1]
        reps, pos = expand_segments(starts, ends)
        ca, cb = nbr[pos], pivot[reps]
        cd = wt[pos] + d[reps]
        ch = h[reps] + 1
        if full:
            keep = ca != cb  # the dict engine's x != pivot skip
            ca, cb, cd, ch = ca[keep], cb[keep], cd[keep], ch[keep]
            groups.append(_normalize_undirected(rank, ca, cb, cd, ch))
            # Pivot-side partners ranked above the pivot (Rule 3/6).
            starts = off[pivot]
            ends = np.searchsorted(key, pivot * n + rank[pivot], "left")
            reps, pos = expand_segments(starts, ends)
            groups.append((owner[reps], nbr[pos], d[reps] + wt[pos], h[reps] + 1))
        else:
            # Minimized partners rank below the pivot: already in
            # (owner, pivot) order, no normalization needed.
            groups.append((ca, cb, cd, ch))

    return _batch_from_groups(n, groups)


def array_doubling(snap, prev, full: bool = False) -> CandidateBatch:
    """Label-partner joins (Hop-Doubling) over a :class:`LabelSnapshot`."""
    import numpy as np

    from repro.core.arraystate import expand_segments

    n, rank = snap.n, snap.rank
    groups: list[tuple] = []

    def suffix_gather(off, key, anchors, bounds):
        starts = np.searchsorted(key, anchors * n + rank[bounds], "right")
        return expand_segments(starts, off[anchors + 1])

    def full_gather(off, anchors):
        return expand_segments(off[anchors], off[anchors + 1])

    if snap.directed:
        is_out = rank[prev.b] < rank[prev.a]
        # -- prev out-entries (u -> v), pivot v outranks u ---------------
        u = prev.a[is_out]
        v = prev.b[is_out]
        d = prev.dist[is_out]
        h = prev.hops[is_out]
        # Rule 1: partners (x -> u) in Lin(u), minimized: x between u, v.
        if full:
            reps, pos = full_gather(snap.in_r_off, u)
        else:
            reps, pos = suffix_gather(snap.in_r_off, snap.in_r_key, u, v)
        ca, cb = snap.in_r_piv[pos], v[reps]
        cd = snap.in_r_dist[pos] + d[reps]
        ch = snap.in_r_hops[pos] + h[reps]
        if full:
            keep = ca != cb  # the dict engine's x != v skip
            ca, cb, cd, ch = ca[keep], cb[keep], cd[keep], ch[keep]
        groups.append((ca, cb, cd, ch))
        # Rule 2: partners (x -> u) held as out-entries of x.
        reps, pos = full_gather(snap.rev_out_off, u)
        groups.append(
            (
                snap.rev_out_owner[pos],
                v[reps],
                snap.rev_out_dist[pos] + d[reps],
                snap.rev_out_hops[pos] + h[reps],
            )
        )
        if full:
            # Rule 3: partners (v -> y) in Lout(v).
            reps, pos = full_gather(snap.out_r_off, v)
            groups.append(
                (
                    u[reps],
                    snap.out_r_piv[pos],
                    d[reps] + snap.out_r_dist[pos],
                    h[reps] + snap.out_r_hops[pos],
                )
            )
        # -- prev in-entries (u -> v), pivot u outranks v ----------------
        u = prev.a[~is_out]
        v = prev.b[~is_out]
        d = prev.dist[~is_out]
        h = prev.hops[~is_out]
        # Rule 4: partners (v -> y) in Lout(v), minimized: y between v, u.
        if full:
            reps, pos = full_gather(snap.out_r_off, v)
        else:
            reps, pos = suffix_gather(snap.out_r_off, snap.out_r_key, v, u)
        ca, cb = u[reps], snap.out_r_piv[pos]
        cd = d[reps] + snap.out_r_dist[pos]
        ch = h[reps] + snap.out_r_hops[pos]
        if full:
            keep = cb != ca  # the dict engine's y != u skip
            ca, cb, cd, ch = ca[keep], cb[keep], cd[keep], ch[keep]
        groups.append((ca, cb, cd, ch))
        # Rule 5: partners (v -> y) held as in-entries of y.
        reps, pos = full_gather(snap.rev_in_off, v)
        groups.append(
            (
                u[reps],
                snap.rev_in_owner[pos],
                d[reps] + snap.rev_in_dist[pos],
                h[reps] + snap.rev_in_hops[pos],
            )
        )
        if full:
            # Rule 6: partners (x -> u) in Lin(u).
            reps, pos = full_gather(snap.in_r_off, u)
            groups.append(
                (
                    snap.in_r_piv[pos],
                    v[reps],
                    snap.in_r_dist[pos] + d[reps],
                    snap.in_r_hops[pos] + h[reps],
                )
            )
    else:
        owner, pivot = prev.a, prev.b
        d, h = prev.dist, prev.hops
        # Rule 1 analogue: partners in L(owner).
        if full:
            reps, pos = full_gather(snap.out_r_off, owner)
        else:
            reps, pos = suffix_gather(snap.out_r_off, snap.out_r_key, owner, pivot)
        ca, cb = snap.out_r_piv[pos], pivot[reps]
        cd = snap.out_r_dist[pos] + d[reps]
        ch = snap.out_r_hops[pos] + h[reps]
        if full:
            keep = ca != cb  # the dict engine's x != pivot skip
            ca, cb, cd, ch = ca[keep], cb[keep], cd[keep], ch[keep]
        groups.append(_normalize_undirected(rank, ca, cb, cd, ch))
        # Rule 2 analogue: partners holding `owner` as their pivot —
        # they rank below the owner, so pairs are already normalized.
        reps, pos = full_gather(snap.rev_out_off, owner)
        groups.append(
            (
                snap.rev_out_owner[pos],
                pivot[reps],
                snap.rev_out_dist[pos] + d[reps],
                snap.rev_out_hops[pos] + h[reps],
            )
        )
        if full:
            # Rule 3/6 analogue: extend through the pivot side.
            reps, pos = full_gather(snap.out_r_off, pivot)
            groups.append(
                (
                    owner[reps],
                    snap.out_r_piv[pos],
                    d[reps] + snap.out_r_dist[pos],
                    h[reps] + snap.out_r_hops[pos],
                )
            )

    return _batch_from_groups(n, groups)


def _batch_from_groups(n: int, groups: list[tuple]) -> CandidateBatch:
    import numpy as np

    if not groups:
        return CandidateBatch(
            n,
            np.zeros(0, np.int64),
            np.zeros(0, np.int64),
            np.zeros(0, np.float64),
            np.zeros(0, np.int64),
        )
    return CandidateBatch(
        n,
        np.concatenate([g[0] for g in groups]),
        np.concatenate([g[1] for g in groups]),
        np.concatenate([g[2] for g in groups]),
        np.concatenate([g[3] for g in groups]),
    )
