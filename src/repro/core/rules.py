"""Label-entry generation rules (Section 3.1-3.2 and Section 5.1).

A candidate entry is produced by concatenating two known entries that
share a middle vertex ``m``: ``(x -> m) + (m -> y) => (x -> y)``.  The
concatenation is *trough-valid* exactly when ``m`` ranks below the
higher-ranked of ``x`` and ``y`` (Definition 1).  The paper's six rules
of Table 5 are the six (prev-entry type x partner store) templates of
this join, and Lemmas 3-4 show four of them suffice.

Both engines are implemented:

* ``rule_set="full"`` — all six templates (the reference engine);
* ``rule_set="minimized"`` — the four simplified rules (the default, as
  in the paper).

Each engine offers two joining modes:

* :meth:`doubling` — partners come from **all** current labels
  (Hop-Doubling, Section 3): covered hop lengths roughly double per
  iteration (Theorem 2);
* :meth:`stepping` — partners are unit-hop entries, i.e. graph edges
  (Hop-Stepping, Section 5.1): covered hop lengths grow by one per
  iteration (Lemma 5), keeping the candidate volume per iteration down
  to ``O(h |V| log |V|)`` (Section 5.3).

Notation reminder: rank 0 is the *highest* priority, so the paper's
``r(a) > r(b)`` reads ``rank[a] < rank[b]`` in this code.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.labels import (
    DirectedLabelState,
    EntryValue,
    UndirectedLabelState,
)
from repro.graphs.digraph import Graph

# A prev entry: (source, target, distance, hops).  For undirected
# engines the convention is (owner, pivot, distance, hops).
PrevEntry = tuple[int, int, float, int]

RULE_SETS = ("minimized", "full")


class CandidateSet:
    """Accumulates generated candidates, keeping the best per pair.

    ``raw_generated`` counts every rule application (before
    deduplication) — the quantity behind the *growing factor* of
    Figure 10; ``pairs`` maps ``(a, b)`` to the best ``(dist, hops)``
    seen (smaller distance wins; ties prefer fewer hops).
    """

    __slots__ = ("pairs", "raw_generated")

    def __init__(self) -> None:
        self.pairs: dict[tuple[int, int], EntryValue] = {}
        self.raw_generated = 0

    def offer(self, a: int, b: int, dist: float, hops: int) -> None:
        """Record a generated candidate for the pair ``a -> b``."""
        self.raw_generated += 1
        key = (a, b)
        current = self.pairs.get(key)
        if (
            current is None
            or dist < current[0]
            or (dist == current[0] and hops < current[1])
        ):
            self.pairs[key] = (dist, hops)

    def __len__(self) -> int:
        return len(self.pairs)

    def items(self) -> Iterable[tuple[tuple[int, int], EntryValue]]:
        return self.pairs.items()


def _check_rule_set(rule_set: str) -> None:
    if rule_set not in RULE_SETS:
        raise ValueError(
            f"unknown rule_set {rule_set!r}; expected one of {RULE_SETS}"
        )


class DirectedRuleEngine:
    """Generation rules over a :class:`DirectedLabelState`."""

    def __init__(
        self,
        state: DirectedLabelState,
        graph: Graph,
        rule_set: str = "minimized",
    ) -> None:
        _check_rule_set(rule_set)
        self.state = state
        self.graph = graph
        self.full = rule_set == "full"

    # ------------------------------------------------------------------
    # Hop-Doubling: partners from all current labels
    # ------------------------------------------------------------------
    def doubling(self, prev: Sequence[PrevEntry]) -> CandidateSet:
        """Apply the rules with label partners (Hop-Doubling joins)."""
        state = self.state
        rank = state.rank
        out = state.out
        inn = state.inn
        rev_out = state.rev_out
        rev_in = state.rev_in
        cands = CandidateSet()
        full = self.full

        for u, v, d, h in prev:
            if rank[v] < rank[u]:
                # prev is an out-entry of u: (u -> v), pivot v outranks u.
                rank_v = rank[v]
                # Rule 1: partners (x -> u) in Lin(u); minimized keeps
                # only x ranked between u and v.
                for x, (d1, h1) in inn[u].items():
                    if x == u or x == v:
                        continue
                    if full or rank[x] > rank_v:
                        cands.offer(x, v, d1 + d, h1 + h)
                # Rule 2: partners (x -> u) held as out-entries of x
                # (x ranked below u) — reached through the reverse index.
                for x, (d1, h1) in rev_out[u].items():
                    if x == v:
                        continue
                    cands.offer(x, v, d1 + d, h1 + h)
                if full:
                    # Rule 3: partners (v -> y) in Lout(v); redundant by
                    # Lemma 3 but kept in the reference engine.
                    for y, (d2, h2) in out[v].items():
                        if y == v or y == u:
                            continue
                        cands.offer(u, y, d + d2, h + h2)
            else:
                # prev is an in-entry of v: (u -> v), pivot u outranks v.
                rank_u = rank[u]
                # Rule 4: partners (v -> y) in Lout(v); minimized keeps
                # only y ranked between v and u.
                for y, (d2, h2) in out[v].items():
                    if y == v or y == u:
                        continue
                    if full or rank[y] > rank_u:
                        cands.offer(u, y, d + d2, h + h2)
                # Rule 5: partners (v -> y) held as in-entries of y
                # (y ranked below v) — reached through the reverse index.
                for y, (d2, h2) in rev_in[v].items():
                    if y == u:
                        continue
                    cands.offer(u, y, d + d2, h + h2)
                if full:
                    # Rule 6: partners (x -> u) in Lin(u); redundant by
                    # Lemma 3 but kept in the reference engine.
                    for x, (d1, h1) in inn[u].items():
                        if x == u or x == v:
                            continue
                        cands.offer(x, v, d1 + d, h1 + h)
        return cands

    # ------------------------------------------------------------------
    # Hop-Stepping: partners are unit-hop entries (graph edges)
    # ------------------------------------------------------------------
    def stepping(self, prev: Sequence[PrevEntry]) -> CandidateSet:
        """Apply the rules with edge partners (Hop-Stepping joins)."""
        state = self.state
        rank = state.rank
        graph = self.graph
        cands = CandidateSet()
        full = self.full

        for u, v, d, h in prev:
            if rank[v] < rank[u]:
                # prev out-entry (u -> v): extend backwards over in-edges
                # of u.  Minimized: partner x must rank below v (union of
                # Rules 1 and 2); full: any x (adds Rule 1's dropped
                # branch), plus Rule 3 partners over out-edges of v.
                rank_v = rank[v]
                for x, w in graph.in_edges(u):
                    if x == v:
                        continue
                    if full or rank[x] > rank_v:
                        cands.offer(x, v, w + d, h + 1)
                if full:
                    rank_v = rank[v]
                    for y, w in graph.out_edges(v):
                        if y == u:
                            continue
                        if rank[y] < rank_v:
                            cands.offer(u, y, d + w, h + 1)
            else:
                # prev in-entry (u -> v): extend forwards over out-edges
                # of v.  Minimized: partner y must rank below u (union of
                # Rules 4 and 5); full: any y, plus Rule 6 partners over
                # in-edges of u.
                rank_u = rank[u]
                for y, w in graph.out_edges(v):
                    if y == u:
                        continue
                    if full or rank[y] > rank_u:
                        cands.offer(u, y, d + w, h + 1)
                if full:
                    for x, w in graph.in_edges(u):
                        if x == v:
                            continue
                        if rank[x] < rank_u:
                            cands.offer(x, v, w + d, h + 1)
        return cands


class UndirectedRuleEngine:
    """Generation rules over an :class:`UndirectedLabelState` (Section 7).

    Entries are unordered pairs ``{owner, pivot}`` with the pivot
    outranking the owner.  The directed rules collapse pairwise
    (Rule 1 with Rule 4, Rule 2 with Rule 5), leaving:

    * minimized — partners of the owner ranked below the pivot;
    * full — additionally, any owner partner and pivot-side partners
      (the analogue of Rules 3/6).
    """

    def __init__(
        self,
        state: UndirectedLabelState,
        graph: Graph,
        rule_set: str = "minimized",
    ) -> None:
        _check_rule_set(rule_set)
        self.state = state
        self.graph = graph
        self.full = rule_set == "full"

    def _offer(
        self, cands: CandidateSet, a: int, b: int, dist: float, hops: int
    ) -> None:
        """Offer the unordered pair ``{a, b}`` in (owner, pivot) order.

        Normalizing here keeps each unordered pair under a single
        candidate key regardless of which join produced it.
        """
        if self.state.rank[a] < self.state.rank[b]:
            a, b = b, a
        cands.offer(a, b, dist, hops)

    def doubling(self, prev: Sequence[PrevEntry]) -> CandidateSet:
        """Apply the rules with label partners (Hop-Doubling joins)."""
        state = self.state
        rank = state.rank
        lab = state.lab
        rev = state.rev
        cands = CandidateSet()
        full = self.full

        for owner, pivot, d, h in prev:
            rank_p = rank[pivot]
            # Rule 1 analogue: partners in L(owner).
            for x, (d1, h1) in lab[owner].items():
                if x == owner or x == pivot:
                    continue
                if full or rank[x] > rank_p:
                    self._offer(cands, x, pivot, d1 + d, h1 + h)
            # Rule 2 analogue: partners holding `owner` as their pivot.
            for x, (d1, h1) in rev[owner].items():
                if x == pivot:
                    continue
                self._offer(cands, x, pivot, d1 + d, h1 + h)
            if full:
                # Rule 3/6 analogue: extend through the pivot side.
                for y, (d2, h2) in lab[pivot].items():
                    if y == pivot or y == owner:
                        continue
                    self._offer(cands, owner, y, d + d2, h + h2)
        return cands

    def stepping(self, prev: Sequence[PrevEntry]) -> CandidateSet:
        """Apply the rules with edge partners (Hop-Stepping joins)."""
        state = self.state
        rank = state.rank
        graph = self.graph
        cands = CandidateSet()
        full = self.full

        for owner, pivot, d, h in prev:
            rank_p = rank[pivot]
            for x, w in graph.out_edges(owner):
                if x == pivot:
                    continue
                if full or rank[x] > rank_p:
                    self._offer(cands, x, pivot, w + d, h + 1)
            if full:
                for y, w in graph.out_edges(pivot):
                    if y == owner:
                        continue
                    if rank[y] < rank_p:
                        self._offer(cands, owner, y, d + w, h + 1)
        return cands


def make_engine(
    state: DirectedLabelState | UndirectedLabelState,
    graph: Graph,
    rule_set: str = "minimized",
) -> DirectedRuleEngine | UndirectedRuleEngine:
    """Instantiate the rule engine matching the state's directedness."""
    if isinstance(state, DirectedLabelState):
        return DirectedRuleEngine(state, graph, rule_set)
    return UndirectedRuleEngine(state, graph, rule_set)
