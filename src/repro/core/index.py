"""Public facade: :class:`HopDoublingIndex`.

This is the interface a downstream user of the library sees::

    from repro import HopDoublingIndex
    from repro.graphs import glp_graph

    g = glp_graph(10_000, seed=7)
    idx = HopDoublingIndex.build(g)          # hybrid strategy, paper defaults
    idx.query(3, 4021)                        # exact distance
    idx.stats()                               # label-size statistics
    idx.save("g.index")                       # compact binary format

Construction dispatches to the three builders of Sections 3 and 5
(``strategy`` = ``"hybrid"`` (default) / ``"stepping"`` /
``"doubling"``) and can post-process with bit-parallel labels
(Section 6) on undirected unweighted graphs.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.bitparallel import BitParallelIndex, add_bitparallel
from repro.core.hop_doubling import BuildResult, IterationStats
from repro.core.hybrid import make_builder
from repro.core.labels import INF, LabelIndex, LabelStats
from repro.core.query import reconstruct_path
from repro.core.ranking import Ranking
from repro.graphs.digraph import Graph


class HopDoublingIndex:
    """A built 2-hop distance index with the paper's construction recipe."""

    def __init__(
        self,
        labels: LabelIndex,
        build_result: BuildResult | None = None,
        bitparallel: BitParallelIndex | None = None,
        graph: Graph | None = None,
    ) -> None:
        self.labels = labels
        self.build_result = build_result
        self.bitparallel = bitparallel
        self._graph = graph

    # -- construction ------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: Graph,
        strategy: str = "hybrid",
        ranking: Ranking | str = "auto",
        rule_set: str = "minimized",
        prune: bool = True,
        use_bitparallel: bool = False,
        num_roots: int = 50,
        **builder_kwargs,
    ) -> "HopDoublingIndex":
        """Build an index for ``graph``.

        Parameters mirror the paper's knobs: ``strategy`` selects
        Hop-Stepping / Hop-Doubling / hybrid (default, switch at
        iteration 10); ``ranking`` the vertex order (degree-based by
        default); ``rule_set`` the four minimized or six full rules;
        ``use_bitparallel`` adds Section 6's root labels (undirected
        unweighted graphs only).

        Performance knobs pass through ``builder_kwargs``:
        ``engine="array"`` selects the vectorized construction engine
        (requires numpy; several times faster, bit-identical output)
        and ``jobs=N`` fans candidate generation over N worker
        processes — see :mod:`repro.core.engine`.
        """
        builder = make_builder(
            graph,
            strategy,
            ranking=ranking,
            rule_set=rule_set,
            prune=prune,
            **builder_kwargs,
        )
        result = builder.build()
        bp = None
        if use_bitparallel:
            bp = add_bitparallel(graph, result.index, num_roots=num_roots)
        return cls(result.index, result, bp, graph)

    # -- querying -----------------------------------------------------------
    def query(self, s: int, t: int) -> float:
        """Exact ``dist(s, t)``; ``float('inf')`` when unreachable."""
        if self.bitparallel is not None:
            return self.bitparallel.query(s, t)
        return self.labels.query(s, t)

    def query_path(self, s: int, t: int) -> list[int] | None:
        """One shortest path ``s -> t`` (needs the graph kept at build time)."""
        if self._graph is None:
            raise ValueError(
                "path reconstruction needs the graph; build the index in "
                "this process or attach one via the `graph` attribute"
            )
        return reconstruct_path(self.labels, self._graph, s, t)

    def is_reachable(self, s: int, t: int) -> bool:
        """Whether ``t`` is reachable from ``s``."""
        return self.query(s, t) != INF

    # -- inspection ------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.labels.n

    @property
    def num_iterations(self) -> int:
        """Indexing iterations (paper counting), if built in this process."""
        if self.build_result is None:
            raise ValueError("index was loaded from disk; no build history")
        return self.build_result.num_iterations

    @property
    def iteration_stats(self) -> list[IterationStats]:
        """Per-iteration counters (Figure 10 series)."""
        if self.build_result is None:
            raise ValueError("index was loaded from disk; no build history")
        return list(self.build_result.iterations)

    def stats(self) -> LabelStats:
        """Label-size statistics (Table 7 ingredients)."""
        return self.labels.stats()

    def size_in_bytes(self) -> int:
        """Index size under the paper's storage convention."""
        if self.bitparallel is not None:
            return self.bitparallel.size_in_bytes()
        return self.labels.size_in_bytes()

    # -- persistence --------------------------------------------------------------
    def save(self, path: str | Path, format: str = "v1") -> None:
        """Persist the plain 2-hop labels (bit-parallel side not saved).

        ``format="v1"`` writes the per-entry struct format;
        ``format="v2"`` writes the flat-array blobs of
        :mod:`repro.core.flatstore` (same contents, bulk-loadable);
        ``format="v3"`` writes the compact quantized arrays of
        :mod:`repro.core.quantized` (same contents, ~25-50% of the v2
        bytes).  All writes are atomic.  ``repro convert`` translates
        between the formats on disk.
        """
        if format == "v1":
            self.labels.save(path)
        elif format == "v2":
            from repro.core.flatstore import FlatLabelStore

            FlatLabelStore.from_index(self.labels).save(path)
        elif format == "v3":
            from repro.core.quantized import QuantizedLabelStore

            QuantizedLabelStore.from_index(self.labels).save(path)
        else:
            raise ValueError(f"unknown index format {format!r}")

    @classmethod
    def load(cls, path: str | Path) -> "HopDoublingIndex":
        """Load an index saved with :meth:`save` (either format)."""
        return cls(LabelIndex.load(path))

    # -- serving ------------------------------------------------------------------
    def oracle(self, backend: str = "flat", graph: Graph | None = None,
               **kwargs):
        """A :class:`~repro.oracle.DistanceOracle` serving this index.

        ``backend="flat"`` (default) packs the labels into the CSR
        store for the fast query path; ``"list"`` serves the tuple
        lists as-is.  Keyword arguments (``cache_size`` …) pass
        through to the oracle.  For path reconstruction the build
        graph, when retained, is attached automatically; pass
        ``graph=`` to attach one to a disk-loaded index.
        """
        from repro.oracle import DistanceOracle

        if backend == "flat":
            from repro.core.flatstore import FlatLabelStore

            store = FlatLabelStore.from_index(self.labels)
        elif backend == "list":
            store = self.labels
        else:
            raise ValueError(f"unknown backend {backend!r}")
        if graph is None:
            graph = self._graph
        return DistanceOracle(store, graph=graph, **kwargs)

    def __repr__(self) -> str:
        bp = ", bit-parallel" if self.bitparallel is not None else ""
        return f"HopDoublingIndex({self.labels!r}{bp})"
