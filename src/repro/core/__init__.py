"""The paper's primary contribution: hop-doubling label indexing.

Public surface:

* :class:`HopDoublingIndex` — build / query / save / load facade;
* the three builders (:class:`HopDoubling`, :class:`HopStepping`,
  :class:`HybridBuilder`) for callers that want iteration-level control;
* :class:`LabelIndex` — the frozen 2-hop index;
* ranking strategies and the bit-parallel post-processing step.
"""

from repro.core.labels import (
    INF,
    BYTES_PER_ENTRY,
    DirectedLabelState,
    LabelDelta,
    LabelIndex,
    LabelStats,
    UndirectedLabelState,
    merge_join_distance,
)
from repro.core.ranking import (
    Ranking,
    RANKING_STRATEGIES,
    betweenness_sample_ranking,
    degree_ranking,
    inout_product_ranking,
    make_ranking,
    random_ranking,
)
from repro.core.rules import (
    CandidateBatch,
    CandidateSet,
    DirectedRuleEngine,
    RULE_SETS,
    UndirectedRuleEngine,
    array_doubling,
    array_stepping,
    make_engine,
)
from repro.core.pruning import (
    PruneOutcome,
    admit_and_prune,
    admit_and_prune_arrays,
    exhaustive_prune,
)
from repro.core.engine import (
    BUILD_ENGINES,
    ArrayBuildEngine,
    DictBuildEngine,
    make_build_engine,
)
from repro.core.hop_doubling import (
    BuildResult,
    HopDoubling,
    IterationStats,
    LabelingBuilder,
)
from repro.core.hop_stepping import HopStepping
from repro.core.hybrid import DEFAULT_SWITCH_ITERATION, HybridBuilder, make_builder
from repro.core.bitparallel import (
    BitParallelIndex,
    add_bitparallel,
)
from repro.core.query import (
    average_distance,
    closeness_centrality,
    distance_histogram,
    is_reachable,
    query_many,
    reconstruct_path,
)
from repro.core.index import HopDoublingIndex
from repro.core.dynamic import DynamicHopDoublingIndex
from repro.core.knn import InvertedLabelIndex
from repro.core.verify import VerificationReport, verify_index

__all__ = [
    "INF",
    "BYTES_PER_ENTRY",
    "DirectedLabelState",
    "UndirectedLabelState",
    "LabelDelta",
    "LabelIndex",
    "LabelStats",
    "merge_join_distance",
    "Ranking",
    "RANKING_STRATEGIES",
    "degree_ranking",
    "inout_product_ranking",
    "random_ranking",
    "betweenness_sample_ranking",
    "make_ranking",
    "CandidateBatch",
    "CandidateSet",
    "DirectedRuleEngine",
    "UndirectedRuleEngine",
    "RULE_SETS",
    "array_doubling",
    "array_stepping",
    "make_engine",
    "PruneOutcome",
    "admit_and_prune",
    "admit_and_prune_arrays",
    "exhaustive_prune",
    "BUILD_ENGINES",
    "ArrayBuildEngine",
    "DictBuildEngine",
    "make_build_engine",
    "BuildResult",
    "IterationStats",
    "LabelingBuilder",
    "HopDoubling",
    "HopStepping",
    "HybridBuilder",
    "DEFAULT_SWITCH_ITERATION",
    "make_builder",
    "BitParallelIndex",
    "add_bitparallel",
    "query_many",
    "is_reachable",
    "reconstruct_path",
    "closeness_centrality",
    "average_distance",
    "distance_histogram",
    "HopDoublingIndex",
    "DynamicHopDoublingIndex",
    "InvertedLabelIndex",
    "VerificationReport",
    "verify_index",
]
