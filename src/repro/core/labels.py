"""2-hop label stores: mutable construction state and the frozen index.

Terminology (Sections 2-3 of the paper, adapted to zero-based ranks):

* every vertex has a unique **rank**; rank 0 is the *highest* priority
  (the paper's ``r(u) > r(v)`` — "u ranked higher" — is ``rank[u] <
  rank[v]`` here);
* a directed **label entry** ``(a -> b, d)`` asserts a trough path from
  ``a`` to ``b`` of length ``d``.  It is stored in ``Lout(a)`` when
  ``rank[b] < rank[a]`` (the pivot ``b`` outranks the owner ``a``) and
  in ``Lin(b)`` when ``rank[a] < rank[b]``;
* the trivial self entries ``(v, 0)`` live in both stores (the paper
  keeps them "for query answering");
* for undirected graphs a single store ``L(v)`` holds higher-ranked
  pivots (Section 7).

Two families of classes live here:

* :class:`DirectedLabelState` / :class:`UndirectedLabelState` — mutable
  dict-based stores used *during* index construction, with the reverse
  indexes the rule engine needs and the 2-hop bound used for pruning
  (the vectorized struct-of-arrays twin used by the fast build engine
  lives in :mod:`repro.core.arraystate`);
* :class:`LabelIndex` — the immutable, sorted-array index produced at
  the end, optimized for merge-join queries, measurable in bytes using
  the paper's 32-bit-pivot + 8-bit-distance convention, and
  serializable to disk.

:class:`LabelIndex` is also the reference implementation of the
:class:`LabelStore` protocol — the storage-backend interface every
query-side consumer (the :class:`~repro.oracle.DistanceOracle` facade,
the inverted k-NN index, the disk-resident simulator) is written
against.  The contiguous struct-of-arrays backend lives in
:mod:`repro.core.flatstore`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, Iterator, Protocol, Sequence, runtime_checkable

from repro.utils.atomicio import atomic_binary_writer

INF = float("inf")

# A label entry value as stored during construction: (distance, hops).
EntryValue = tuple[float, int]


class DirectedLabelState:
    """Mutable Lin/Lout stores for a directed graph under construction.

    The stores are dictionaries ``pivot -> (dist, hops)``.  Reverse
    indexes (``rev_out[u]``: who has ``u`` in their out-label;
    ``rev_in[v]``: who has ``v`` in their in-label) are maintained
    incrementally because the Hop-Doubling rule engine joins through
    them (they play the role of the second sort order of the paper's
    Algorithm 2 files).
    """

    __slots__ = ("n", "rank", "out", "inn", "rev_out", "rev_in", "_touched")

    def __init__(self, rank: Sequence[int]) -> None:
        self.n = len(rank)
        self.rank = list(rank)
        self.out: list[dict[int, EntryValue]] = [
            {v: (0.0, 0)} for v in range(self.n)
        ]
        self.inn: list[dict[int, EntryValue]] = [
            {v: (0.0, 0)} for v in range(self.n)
        ]
        # rev_out[u][x] mirrors out[x][u]; rev_in[v][y] mirrors inn[y][v].
        self.rev_out: list[dict[int, EntryValue]] = [{} for _ in range(self.n)]
        self.rev_in: list[dict[int, EntryValue]] = [{} for _ in range(self.n)]
        self._touched: tuple[set[int], set[int]] | None = None

    def track_touched(
        self, sets: tuple[set[int], set[int]] | None = None
    ) -> tuple[set[int], set[int]]:
        """Start recording which vertices' labels change.

        Returns ``(out_owners, in_owners)`` — from now on every
        mutation adds the vertex whose ``Lout`` / ``Lin`` it changed.
        The dynamic-update index drains these sets into the
        :class:`LabelDelta` it hands to the serving stores.  ``sets``
        lets a caller re-attach existing sets (e.g. after swapping the
        state underneath an index).
        """
        if sets is not None:
            self._touched = sets
        elif self._touched is None:
            self._touched = (set(), set())
        return self._touched

    # -- entry bookkeeping --------------------------------------------
    def is_out_pair(self, a: int, b: int) -> bool:
        """Whether the pair ``a -> b`` would live in ``Lout(a)``."""
        return self.rank[b] < self.rank[a]

    def get_pair(self, a: int, b: int) -> EntryValue | None:
        """Current entry for the directed pair ``a -> b``, if any."""
        if self.rank[b] < self.rank[a]:
            return self.out[a].get(b)
        return self.inn[b].get(a)

    def set_pair(self, a: int, b: int, dist: float, hops: int) -> None:
        """Insert or overwrite the entry for ``a -> b``."""
        value = (dist, hops)
        if self.rank[b] < self.rank[a]:
            self.out[a][b] = value
            self.rev_out[b][a] = value
            if self._touched is not None:
                self._touched[0].add(a)
        else:
            self.inn[b][a] = value
            self.rev_in[a][b] = value
            if self._touched is not None:
                self._touched[1].add(b)

    def remove_pair(self, a: int, b: int) -> None:
        """Delete the entry for ``a -> b`` (must exist)."""
        if self.rank[b] < self.rank[a]:
            del self.out[a][b]
            del self.rev_out[b][a]
            if self._touched is not None:
                self._touched[0].add(a)
        else:
            del self.inn[b][a]
            del self.rev_in[a][b]
            if self._touched is not None:
                self._touched[1].add(b)

    # -- pruning probe -------------------------------------------------
    def two_hop_bound(self, a: int, b: int, exclude_pivot: int = -1) -> float:
        """Best ``d1 + d2`` over common pivots of ``Lout(a)`` and ``Lin(b)``.

        This is simultaneously the query evaluation (Section 2) and the
        pruning test (Section 3.3).  ``exclude_pivot`` lets the caller
        ignore the candidate entry's own trivial route through itself.
        Iterates over the smaller label and probes the larger one.
        """
        la = self.out[a]
        lb = self.inn[b]
        best = INF
        if len(la) <= len(lb):
            for w, (d1, _) in la.items():
                if w == exclude_pivot:
                    continue
                hit = lb.get(w)
                if hit is not None:
                    d = d1 + hit[0]
                    if d < best:
                        best = d
        else:
            for w, (d2, _) in lb.items():
                if w == exclude_pivot:
                    continue
                hit = la.get(w)
                if hit is not None:
                    d = hit[0] + d2
                    if d < best:
                        best = d
        return best

    # -- statistics -----------------------------------------------------
    def total_entries(self) -> int:
        """Non-trivial entries across both stores."""
        return sum(len(d) - 1 for d in self.out) + sum(
            len(d) - 1 for d in self.inn
        )

    def iter_entries(self) -> Iterator[tuple[int, int, float, int, bool]]:
        """Yield ``(owner, pivot, dist, hops, is_out)`` for non-trivial entries."""
        for v in range(self.n):
            for pivot, (dist, hops) in self.out[v].items():
                if pivot != v:
                    yield v, pivot, dist, hops, True
            for pivot, (dist, hops) in self.inn[v].items():
                if pivot != v:
                    yield v, pivot, dist, hops, False

    @classmethod
    def from_entries(
        cls,
        rank: Sequence[int],
        entries: Iterable[tuple[int, int, float, int, bool]],
    ) -> "DirectedLabelState":
        """Rebuild a state from :meth:`iter_entries`-style tuples.

        The inverse of :meth:`iter_entries` (trivial self entries are
        implicit).  Used to materialize a dict state from the
        array-backed engine, e.g. for the exhaustive pruning sweep.
        """
        state = cls(rank)
        for owner, pivot, dist, hops, is_out in entries:
            a, b = (owner, pivot) if is_out else (pivot, owner)
            state.set_pair(a, b, dist, hops)
        return state


class UndirectedLabelState:
    """Mutable single-store labels for an undirected graph (Section 7).

    An entry ``{owner, pivot}`` with ``rank[pivot] < rank[owner]`` is
    stored as ``lab[owner][pivot]``; ``rev[owner]`` mirrors who owns
    ``owner`` as a pivot.
    """

    __slots__ = ("n", "rank", "lab", "rev", "_touched")

    def __init__(self, rank: Sequence[int]) -> None:
        self.n = len(rank)
        self.rank = list(rank)
        self.lab: list[dict[int, EntryValue]] = [
            {v: (0.0, 0)} for v in range(self.n)
        ]
        self.rev: list[dict[int, EntryValue]] = [{} for _ in range(self.n)]
        self._touched: tuple[set[int], set[int]] | None = None

    def track_touched(
        self, sets: tuple[set[int], set[int]] | None = None
    ) -> tuple[set[int], set[int]]:
        """Start recording which vertices' labels change.

        Same contract as :meth:`DirectedLabelState.track_touched`;
        the single undirected store only ever fills the first set.
        """
        if sets is not None:
            self._touched = sets
        elif self._touched is None:
            self._touched = (set(), set())
        return self._touched

    def owner_pivot(self, a: int, b: int) -> tuple[int, int]:
        """Normalize an unordered pair to ``(owner, pivot)`` by rank."""
        if self.rank[a] < self.rank[b]:
            return b, a
        return a, b

    def get_pair(self, a: int, b: int) -> EntryValue | None:
        """Current entry for the unordered pair ``{a, b}``, if any."""
        owner, pivot = self.owner_pivot(a, b)
        return self.lab[owner].get(pivot)

    def set_pair(self, a: int, b: int, dist: float, hops: int) -> None:
        """Insert or overwrite the entry for ``{a, b}``."""
        owner, pivot = self.owner_pivot(a, b)
        value = (dist, hops)
        self.lab[owner][pivot] = value
        self.rev[pivot][owner] = value
        if self._touched is not None:
            self._touched[0].add(owner)

    def remove_pair(self, a: int, b: int) -> None:
        """Delete the entry for ``{a, b}`` (must exist)."""
        owner, pivot = self.owner_pivot(a, b)
        del self.lab[owner][pivot]
        del self.rev[pivot][owner]
        if self._touched is not None:
            self._touched[0].add(owner)

    def two_hop_bound(self, a: int, b: int, exclude_pivot: int = -1) -> float:
        """Best ``d1 + d2`` over common pivots of ``L(a)`` and ``L(b)``."""
        la = self.lab[a]
        lb = self.lab[b]
        best = INF
        if len(la) > len(lb):
            la, lb = lb, la
        for w, (d1, _) in la.items():
            if w == exclude_pivot:
                continue
            hit = lb.get(w)
            if hit is not None:
                d = d1 + hit[0]
                if d < best:
                    best = d
        return best

    def total_entries(self) -> int:
        """Non-trivial entries across the store."""
        return sum(len(d) - 1 for d in self.lab)

    def iter_entries(self) -> Iterator[tuple[int, int, float, int, bool]]:
        """Yield ``(owner, pivot, dist, hops, True)`` for non-trivial entries."""
        for v in range(self.n):
            for pivot, (dist, hops) in self.lab[v].items():
                if pivot != v:
                    yield v, pivot, dist, hops, True

    @classmethod
    def from_entries(
        cls,
        rank: Sequence[int],
        entries: Iterable[tuple[int, int, float, int, bool]],
    ) -> "UndirectedLabelState":
        """Rebuild a state from :meth:`iter_entries`-style tuples."""
        state = cls(rank)
        for owner, pivot, dist, hops, _is_out in entries:
            state.set_pair(owner, pivot, dist, hops)
        return state


# ---------------------------------------------------------------------------
# Frozen index
# ---------------------------------------------------------------------------

# Bytes per label entry under the paper's storage convention (Section 8):
# a 32-bit pivot id plus an 8-bit distance.
BYTES_PER_ENTRY = 5

_MAGIC = b"RPLI"
_VERSION = 1


@runtime_checkable
class LabelStore(Protocol):
    """Read-side contract of a frozen 2-hop label store.

    A store presents each vertex's out-/in-label as a sequence of
    ``(pivot, dist)`` pairs **sorted by pivot id** and answers distance
    queries over them.  Consumers (the oracle facade, the inverted
    k-NN index, the disk simulator, the verifier) accept any
    implementation; :class:`LabelIndex` (lists of tuples) and
    :class:`repro.core.flatstore.FlatLabelStore` (contiguous CSR
    arrays) are the two shipped backends.

    For undirected stores ``in_label(v)`` must return the same label
    as ``out_label(v)`` (the Section 7 single-store aliasing).
    """

    n: int
    directed: bool

    def out_label(self, v: int) -> Sequence[tuple[int, float]]:
        """``Lout(v)`` as (pivot, dist) pairs sorted by pivot."""
        ...

    def in_label(self, v: int) -> Sequence[tuple[int, float]]:
        """``Lin(v)`` as (pivot, dist) pairs sorted by pivot."""
        ...

    def query(self, s: int, t: int) -> float:
        """Exact ``dist(s, t)``; ``inf`` when unreachable."""
        ...

    def query_via(self, s: int, t: int) -> tuple[float, int]:
        """``(dist, best_pivot)``; pivot is -1 when unreachable."""
        ...

    def total_entries(self, include_trivial: bool = False) -> int:
        """Total label entries."""
        ...

    def size_in_bytes(self) -> int:
        """Index size under the paper's 5-bytes-per-entry convention."""
        ...

    def save(self, path) -> None:
        """Persist the store to disk (atomically)."""
        ...


@dataclass
class LabelDelta:
    """Per-vertex label replacements produced by an incremental update.

    The unit of change flowing from a mutated label set to the serving
    stores: ``out[v]`` (and ``inn[v]`` on directed indexes) is the
    *complete* replacement label of vertex ``v`` — ``(pivot, dist)``
    pairs sorted by pivot id with the trivial ``(v, 0.0)`` self entry
    included, exactly the shape :meth:`LabelStore.out_label` serves.
    For undirected deltas ``inn`` **aliases** ``out`` (the Section 7
    single-store aliasing), mirroring the stores themselves.

    Produced by
    :meth:`repro.core.dynamic.DynamicHopDoublingIndex.pop_label_delta`
    and consumed by ``apply_updates`` on the flat, quantized, and
    sharded stores (which stage the slices as a query-time overlay)
    and on the oracle facades (which also invalidate derived caches).
    """

    n: int
    directed: bool
    out: dict[int, list[tuple[int, float]]]
    inn: dict[int, list[tuple[int, float]]]

    @classmethod
    def empty(cls, n: int, directed: bool) -> "LabelDelta":
        out: dict[int, list[tuple[int, float]]] = {}
        return cls(n, directed, out, {} if directed else out)

    def __bool__(self) -> bool:
        return bool(self.out) or bool(self.inn)

    def __len__(self) -> int:
        """Number of per-vertex label slices carried."""
        count = len(self.out)
        if self.directed:
            count += len(self.inn)
        return count

    def vertices(self) -> set[int]:
        """Every vertex whose label this delta replaces."""
        return set(self.out) | set(self.inn)


@dataclass(frozen=True)
class LabelStats:
    """Size statistics of a frozen index (feeds Tables 6-7, Figure 8)."""

    num_vertices: int
    total_entries: int
    max_label_size: int
    avg_label_size: float
    index_bytes: int

    def __str__(self) -> str:
        return (
            f"entries={self.total_entries} avg|label|={self.avg_label_size:.1f} "
            f"max={self.max_label_size} bytes={self.index_bytes}"
        )


class LabelIndex:
    """Immutable 2-hop label index with merge-join querying.

    For directed graphs each vertex has an out-label and an in-label;
    for undirected graphs the two alias the same array.  Labels are
    sorted by pivot id so a distance query is a linear merge of two
    sorted arrays (the disk-friendly evaluation of Section 2: "looking
    up Lout(s) and Lin(t)").

    Self entries ``(v, 0)`` are stored explicitly, as in the paper.
    """

    __slots__ = ("n", "directed", "out_labels", "in_labels", "rank")

    def __init__(
        self,
        num_vertices: int,
        directed: bool,
        out_labels: list[list[tuple[int, float]]],
        in_labels: list[list[tuple[int, float]]],
        rank: list[int] | None = None,
    ) -> None:
        self.n = num_vertices
        self.directed = directed
        self.out_labels = out_labels
        self.in_labels = in_labels
        self.rank = rank

    # -- construction ---------------------------------------------------
    @classmethod
    def from_state(
        cls, state: DirectedLabelState | UndirectedLabelState
    ) -> "LabelIndex":
        """Freeze a construction-time store into a queryable index."""
        if isinstance(state, DirectedLabelState):
            out_labels = [
                sorted((p, d) for p, (d, _) in state.out[v].items())
                for v in range(state.n)
            ]
            in_labels = [
                sorted((p, d) for p, (d, _) in state.inn[v].items())
                for v in range(state.n)
            ]
            return cls(state.n, True, out_labels, in_labels, list(state.rank))
        labels = [
            sorted((p, d) for p, (d, _) in state.lab[v].items())
            for v in range(state.n)
        ]
        return cls(state.n, False, labels, labels, list(state.rank))

    # -- querying ---------------------------------------------------------
    def query(self, s: int, t: int) -> float:
        """Exact ``dist(s, t)``; :data:`INF` when unreachable."""
        if not 0 <= s < self.n or not 0 <= t < self.n:
            raise IndexError(f"query ({s}, {t}) out of range [0, {self.n})")
        if s == t:
            return 0.0
        return merge_join_distance(self.out_labels[s], self.in_labels[t])

    def query_via(self, s: int, t: int) -> tuple[float, int]:
        """Like :meth:`query` but also return the best pivot (-1 if none).

        Useful for path reconstruction: the pivot is the highest-ranked
        vertex on a shortest ``s -> t`` path.
        """
        if not 0 <= s < self.n or not 0 <= t < self.n:
            raise IndexError(f"query ({s}, {t}) out of range [0, {self.n})")
        if s == t:
            return 0.0, s
        best = INF
        best_pivot = -1
        a = self.out_labels[s]
        b = self.in_labels[t]
        i = j = 0
        while i < len(a) and j < len(b):
            pa, da = a[i]
            pb, db = b[j]
            if pa == pb:
                d = da + db
                if d < best:
                    best = d
                    best_pivot = pa
                i += 1
                j += 1
            elif pa < pb:
                i += 1
            else:
                j += 1
        return best, best_pivot

    def label_of(self, v: int, out: bool = True) -> list[tuple[int, float]]:
        """The (pivot, dist) list of ``v``'s out- or in-label."""
        return list(self.out_labels[v] if out else self.in_labels[v])

    # -- LabelStore accessors ------------------------------------------------
    def out_label(self, v: int) -> list[tuple[int, float]]:
        """``Lout(v)`` without copying (do not mutate)."""
        return self.out_labels[v]

    def in_label(self, v: int) -> list[tuple[int, float]]:
        """``Lin(v)`` without copying (do not mutate)."""
        return self.in_labels[v]

    # -- statistics ---------------------------------------------------------
    def total_entries(self, include_trivial: bool = False) -> int:
        """Total label entries (self entries excluded unless asked)."""
        total = sum(len(lab) for lab in self.out_labels)
        if self.directed:
            total += sum(len(lab) for lab in self.in_labels)
        trivial = self.n * (2 if self.directed else 1)
        return total if include_trivial else total - trivial

    def stats(self) -> LabelStats:
        """Aggregate size statistics (paper's |label| counts non-trivial)."""
        per_vertex = []
        for v in range(self.n):
            size = len(self.out_labels[v]) - 1
            if self.directed:
                size += len(self.in_labels[v]) - 1
            per_vertex.append(size)
        total = sum(per_vertex)
        return LabelStats(
            num_vertices=self.n,
            total_entries=total,
            max_label_size=max(per_vertex, default=0),
            avg_label_size=total / self.n if self.n else 0.0,
            index_bytes=self.size_in_bytes(),
        )

    def size_in_bytes(self) -> int:
        """Index size under the paper's 5-bytes-per-entry convention."""
        return self.total_entries(include_trivial=True) * BYTES_PER_ENTRY

    def entries_per_pivot(self) -> dict[int, int]:
        """Non-trivial entry counts keyed by pivot vertex (for Figure 8)."""
        counts: dict[int, int] = {}
        for v in range(self.n):
            for p, _ in self.out_labels[v]:
                if p != v:
                    counts[p] = counts.get(p, 0) + 1
            if self.directed:
                for p, _ in self.in_labels[v]:
                    if p != v:
                        counts[p] = counts.get(p, 0) + 1
        return counts

    def coverage_curve(
        self, fractions: Sequence[float]
    ) -> list[tuple[float, float]]:
        """Label coverage by top-ranked vertices (paper's Figure 8).

        For each requested fraction ``f`` of top-ranked vertices, report
        the fraction of non-trivial label entries whose pivot lies in
        that top set.  Requires the index to carry its ranking.
        """
        if self.rank is None:
            raise ValueError("index has no ranking attached")
        counts = self.entries_per_pivot()
        total = sum(counts.values())
        order = sorted(range(self.n), key=lambda v: self.rank[v])
        curve = []
        for f in fractions:
            k = max(1, int(round(f * self.n)))
            covered = sum(counts.get(v, 0) for v in order[:k])
            curve.append((f, covered / total if total else 1.0))
        return curve

    def top_fraction_for_coverage(self, target: float) -> float:
        """Smallest fraction of top vertices covering ``target`` of entries.

        This regenerates the "top vertices coverage 70%/80%/90%" columns
        of Table 7.
        """
        if self.rank is None:
            raise ValueError("index has no ranking attached")
        counts = self.entries_per_pivot()
        total = sum(counts.values())
        if total == 0:
            return 0.0
        order = sorted(range(self.n), key=lambda v: self.rank[v])
        covered = 0
        for k, v in enumerate(order, start=1):
            covered += counts.get(v, 0)
            if covered >= target * total:
                return k / self.n
        return 1.0

    # -- serialization -------------------------------------------------------
    def save(self, path) -> None:
        """Write the index to ``path`` in binary format v1.

        The write is atomic (temp file + rename): a crash mid-save
        never leaves a truncated index behind.  For the flat-array
        format v2 see :meth:`repro.core.flatstore.FlatLabelStore.save`.
        """
        with atomic_binary_writer(path) as fh:
            fh.write(_MAGIC)
            flags = 1 if self.directed else 0
            has_rank = 1 if self.rank is not None else 0
            fh.write(struct.pack("<BBBI", _VERSION, flags, has_rank, self.n))
            if self.rank is not None:
                fh.write(struct.pack(f"<{self.n}I", *self.rank))

            def write_side(labels: list[list[tuple[int, float]]]) -> None:
                for lab in labels:
                    fh.write(struct.pack("<I", len(lab)))
                    for p, d in lab:
                        fh.write(struct.pack("<Id", p, d))

            write_side(self.out_labels)
            if self.directed:
                write_side(self.in_labels)

    @classmethod
    def load(cls, path) -> "LabelIndex":
        """Read an index from ``path``, whatever its format version.

        Version 1 files (this class's :meth:`save`) are read directly;
        version 2 flat-array files are read through
        :mod:`repro.core.flatstore` and version 3 quantized files
        through :mod:`repro.core.quantized`, both expanded to lists.
        Raises
        ``ValueError`` on anything that is not a complete index file
        (wrong magic, unsupported version, truncation).
        """
        try:
            with open(path, "rb") as fh:
                if fh.read(4) != _MAGIC:
                    raise ValueError(f"{path}: not a label index file")
                version, flags, has_rank, n = struct.unpack(
                    "<BBBI", fh.read(7)
                )
                if version == 2:
                    from repro.core.flatstore import FlatLabelStore

                    return FlatLabelStore.load(path).to_index()
                if version == 3:
                    from repro.core.quantized import QuantizedLabelStore

                    return QuantizedLabelStore.load(path).to_index()
                if version != _VERSION:
                    raise ValueError(f"{path}: unsupported version {version}")
                directed = bool(flags & 1)
                rank = None
                if has_rank:
                    rank = list(struct.unpack(f"<{n}I", fh.read(4 * n)))

                entry = struct.Struct("<Id")

                def read_side() -> list[list[tuple[int, float]]]:
                    side = []
                    for _ in range(n):
                        (count,) = struct.unpack("<I", fh.read(4))
                        lab = [
                            entry.unpack(fh.read(entry.size))
                            for _ in range(count)
                        ]
                        side.append([(int(p), float(d)) for p, d in lab])
                    return side

                out_labels = read_side()
                in_labels = read_side() if directed else out_labels
        except struct.error as exc:
            raise ValueError(f"{path}: truncated or corrupt index file") from exc
        return cls(n, directed, out_labels, in_labels, rank)

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (
            f"LabelIndex(|V|={self.n}, {kind}, "
            f"entries={self.total_entries()})"
        )


def merge_join_distance(
    a: list[tuple[int, float]], b: list[tuple[int, float]]
) -> float:
    """Minimum ``da + db`` over common pivots of two sorted labels."""
    best = INF
    i = j = 0
    na, nb = len(a), len(b)
    while i < na and j < nb:
        pa, da = a[i]
        pb, db = b[j]
        if pa == pb:
            d = da + db
            if d < best:
                best = d
            i += 1
            j += 1
        elif pa < pb:
            i += 1
        else:
            j += 1
    return best
