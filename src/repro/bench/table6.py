"""Table 6: performance comparison of BIDIJ / IS-Label / PLL / HopDb.

Regenerates, per dataset: the graph profile (|V|, |E|, max degree,
graph size), index sizes, indexing times, in-memory query times and
simulated disk query times — the same cell layout as the paper's
Table 6, on the scaled stand-in datasets.

Shape expectations (asserted by ``benchmarks/test_table6_performance``):
HopDb's index is no larger than IS-Label's and within noise of PLL's;
HopDb answers in-memory queries orders of magnitude faster than BIDIJ;
IS-Label (and HCL in the paper) drop out first as budgets shrink.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.datasets import profile_names
from repro.bench.harness import DatasetResult, run_dataset
from repro.utils.prettyprint import format_bytes, format_count, render_table

HEADERS = [
    "G",
    "|V|",
    "|E|",
    "maxdeg",
    "|G|",
    "idx ISL",
    "idx PLL",
    "idx HopDb",
    "t ISL(s)",
    "t PLL(s)",
    "t HopDb(s)",
    "q BIDIJ(us)",
    "q ISL(us)",
    "q PLL(us)",
    "q HopDb(us)",
    "dq ISL(ms)",
    "dq HopDb(ms)",
]


@dataclass
class Table6:
    """Structured result: one :class:`DatasetResult` per dataset."""

    results: list[DatasetResult]

    def rows(self) -> list[list[object]]:
        rows = []
        for r in self.results:
            s = r.summary
            isl = r.get("islabel")
            pll = r.get("pll")
            hop = r.get("hopdb")
            bid = r.get("bidij")

            def fmt_us(m):
                return f"{m.query_micros:.1f}" if m and m.query else None

            rows.append(
                [
                    r.spec.name,
                    format_count(s.num_vertices),
                    format_count(s.num_edges),
                    format_count(s.max_degree),
                    format_bytes(s.size_bytes),
                    format_bytes(isl.index_bytes) if isl else None,
                    format_bytes(pll.index_bytes) if pll else None,
                    format_bytes(hop.index_bytes) if hop else None,
                    f"{isl.build_seconds:.2f}" if isl else None,
                    f"{pll.build_seconds:.2f}" if pll else None,
                    f"{hop.build_seconds:.2f}" if hop else None,
                    fmt_us(bid),
                    fmt_us(isl),
                    fmt_us(pll),
                    fmt_us(hop),
                    f"{isl.disk_query_ms:.1f}" if isl and isl.disk_query_ms else None,
                    f"{hop.disk_query_ms:.1f}" if hop and hop.disk_query_ms else None,
                ]
            )
        return rows

    def render(self) -> str:
        return render_table(
            HEADERS,
            self.rows(),
            title="Table 6 — performance comparison on complete 2-hop indexing",
        )

    def to_csv(self, path) -> int:
        """Write the table as CSV; returns the row count."""
        from repro.bench.export import write_csv

        return write_csv(path, HEADERS, self.rows())


def run(
    profile: str = "quick",
    num_queries: int = 300,
    budget: float | None = None,
) -> Table6:
    """Run the Table 6 experiment over a dataset profile."""
    results = [
        run_dataset(name, num_queries=num_queries, budget=budget)
        for name in profile_names(profile)
    ]
    return Table6(results)


def main(profile: str = "quick") -> None:
    """CLI entry point: print the rendered table."""
    print(run(profile).render())


if __name__ == "__main__":
    main()
