"""Figure 9: scalability on synthetic GLP graphs.

Two sweeps over GLP-generated scale-free graphs:

* **(a)** fixed ``|V|``, density ``|E|/|V|`` growing — the paper grows
  2 -> 70 at |V| = 10M; the scaled run grows 2 -> 20 at a laptop |V|;
* **(b)** fixed density, ``|V|`` growing — the paper grows 2M -> 30M at
  density 20; the scaled run grows over an order of magnitude.

The reported series are graph size and the **average label entries per
vertex**; the paper's headline is that the average label size stays
small and flat ("approaches a flat value below 200") while the graph
grows linearly — the empirical form of the O(h|V|) index-size bound.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core.hybrid import HybridBuilder
from repro.graphs.generators import glp_graph
from repro.utils.prettyprint import format_bytes, render_table

_GLP_P = 0.4695


def _scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "1"))


@dataclass
class SweepPoint:
    x: float  # density for (a), |V| for (b)
    num_vertices: int
    num_edges: int
    graph_bytes: int
    avg_label: float
    iterations: int


@dataclass
class Figure9:
    label: str
    x_name: str
    points: list[SweepPoint]

    def render(self) -> str:
        headers = [self.x_name, "|V|", "|E|", "|G|", "avg |label|", "iters"]
        rows = [
            [
                f"{p.x:g}",
                p.num_vertices,
                p.num_edges,
                format_bytes(p.graph_bytes),
                f"{p.avg_label:.1f}",
                p.iterations,
            ]
            for p in self.points
        ]
        return render_table(headers, rows, title=self.label)


def _measure(num_vertices: int, density: float, seed: int, x: float) -> SweepPoint:
    m = max(0.3, density * (1.0 - _GLP_P))
    graph = glp_graph(num_vertices, m=m, seed=seed)
    result = HybridBuilder(graph).build()
    stats = result.index.stats()
    return SweepPoint(
        x=x,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        graph_bytes=graph.size_in_bytes(),
        avg_label=stats.avg_label_size,
        iterations=result.num_iterations,
    )


def run_density_sweep(
    num_vertices: int | None = None,
    densities: list[float] | None = None,
) -> Figure9:
    """Figure 9(a): fixed |V|, growing density."""
    if num_vertices is None:
        num_vertices = int(1000 * _scale())
    if densities is None:
        densities = [2, 5, 10, 15, 20]
    points = [
        _measure(num_vertices, d, seed=900 + i, x=d)
        for i, d in enumerate(densities)
    ]
    return Figure9(
        label=f"Figure 9(a) — density sweep at |V|={num_vertices}",
        x_name="|E|/|V|",
        points=points,
    )


def run_size_sweep(
    density: float = 10.0,
    sizes: list[int] | None = None,
) -> Figure9:
    """Figure 9(b): fixed density, growing |V|."""
    if sizes is None:
        base = int(250 * _scale())
        sizes = [base, base * 2, base * 4, base * 8]
    points = [
        _measure(n, density, seed=950 + i, x=n) for i, n in enumerate(sizes)
    ]
    return Figure9(
        label=f"Figure 9(b) — size sweep at |E|/|V|={density:g}",
        x_name="|V|",
        points=points,
    )


def main() -> None:
    print(run_density_sweep().render())
    print()
    print(run_size_sweep().render())


if __name__ == "__main__":
    main()
