"""Measurement helpers for the benchmark drivers.

Two pieces: per-query timing (the "Memory query time (us)" columns) and
a wall-clock budget guard.  The paper reports "—" for methods that
could not finish a dataset within 24 hours; our scaled-down analogue is
a per-method budget (default a few seconds) enforced with SIGALRM, so
the tables reproduce the *pattern* of which methods drop out, not just
the numbers of the survivors.
"""

from __future__ import annotations

import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterable, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class QueryTiming:
    """Aggregate query timing over a workload."""

    queries: int
    total_seconds: float

    @property
    def avg_seconds(self) -> float:
        return self.total_seconds / self.queries if self.queries else 0.0

    @property
    def avg_micros(self) -> float:
        """Mean per-query microseconds — Table 6's unit."""
        return self.avg_seconds * 1e6


def time_queries(
    query: Callable[[int, int], float],
    pairs: Iterable[tuple[int, int]],
) -> QueryTiming:
    """Time ``query`` over all pairs (one warm pass, then a timed pass)."""
    pairs = list(pairs)
    for s, t in pairs[: min(16, len(pairs))]:
        query(s, t)
    start = time.perf_counter()
    for s, t in pairs:
        query(s, t)
    elapsed = time.perf_counter() - start
    return QueryTiming(queries=len(pairs), total_seconds=elapsed)


def interleaved_rates(
    runs: Iterable[Callable[[object], object]],
    workload,
    repeats: int = 5,
) -> list[float]:
    """Best-of-N items/sec for each callable, rounds interleaved.

    Each callable is invoked as ``run(workload)``; the returned rates
    are ``len(workload)`` divided by the per-callable minimum
    wall-clock.  Alternating the callables within each round spreads
    machine noise (CPU frequency shifts, co-tenant load on CI runners)
    over all measurements symmetrically instead of biasing whichever
    ran last; taking the per-callable minimum discards the noisy
    rounds, and GC is paused so collection pauses don't land on one
    side.  This is the shared protocol of the perf-gate benchmarks
    (store/build/shard/query throughput floors).
    """
    import gc

    runs = list(runs)
    best = [float("inf")] * len(runs)
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            for k, run in enumerate(runs):
                start = time.perf_counter()
                run(workload)
                best[k] = min(best[k], time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()
    return [len(workload) / b for b in best]


class BudgetExceeded(Exception):
    """Raised inside :func:`with_budget` when the alarm fires."""


@contextmanager
def _alarm(seconds: float):
    def handler(signum, frame):
        raise BudgetExceeded()

    previous = signal.signal(signal.SIGALRM, handler)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def run_with_budget(fn: Callable[[], T], seconds: float | None) -> T | None:
    """Run ``fn`` under a wall-clock budget; ``None`` when it times out.

    ``seconds=None`` disables the guard.  Mirrors the paper's 24-hour
    cutoff that produces the "—" cells of Table 6.
    """
    if seconds is None:
        return fn()
    try:
        with _alarm(seconds):
            return fn()
    except BudgetExceeded:
        return None
