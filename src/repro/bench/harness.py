"""Shared method runners for the table drivers.

One :class:`MethodResult` per (dataset, method) cell group of Table 6:
index size, indexing time, in-memory query time, simulated disk query
time, plus I/O counts for the external build.  Methods that exceed the
per-method budget come back as ``None`` — rendered "—", matching how
the paper reports methods that could not finish within 24 hours.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.baselines.bidij import BidirectionalSearchOracle
from repro.baselines.islabel import build_islabel
from repro.baselines.pll import build_pll
from repro.bench.datasets import DatasetSpec, dataset_by_name, load_dataset
from repro.bench.metrics import QueryTiming, run_with_budget, time_queries
from repro.bench.workloads import random_pairs
from repro.core.flatstore import FlatLabelStore
from repro.graphs.digraph import Graph
from repro.graphs.stats import GraphSummary, summarize
from repro.io_sim.disk_index import DiskResidentIndex
from repro.io_sim.diskmodel import DiskModel
from repro.io_sim.external_labeling import ExternalLabelingBuilder
from repro.oracle import DistanceOracle

#: Default per-method wall-clock budget (seconds); override with
#: REPRO_BUDGET.  The paper's analogue was a 24-hour cutoff.
DEFAULT_BUDGET = 45.0

#: Query workload size (the paper times 1000 random queries).
DEFAULT_NUM_QUERIES = 500

#: BIDIJ gets a smaller workload — it is orders of magnitude slower.
BIDIJ_QUERY_CAP = 60


def method_budget() -> float | None:
    """The per-method build budget (None disables)."""
    raw = os.environ.get("REPRO_BUDGET", str(DEFAULT_BUDGET))
    value = float(raw)
    return None if value <= 0 else value


@dataclass
class MethodResult:
    """Measured costs of one method on one dataset."""

    name: str
    index_bytes: int
    build_seconds: float
    query: QueryTiming | None = None
    disk_query_ms: float | None = None
    io_blocks: int | None = None
    iterations: int | None = None

    @property
    def query_micros(self) -> float | None:
        return self.query.avg_micros if self.query else None


@dataclass
class DatasetResult:
    """All methods' results on one dataset, plus the graph profile."""

    spec: DatasetSpec
    summary: GraphSummary
    methods: dict[str, MethodResult | None] = field(default_factory=dict)

    def get(self, name: str) -> MethodResult | None:
        return self.methods.get(name)


def _serving_query(index):
    """The measured query callable for a 2-hop label index.

    Memory query time is timed the way queries are actually served:
    through the oracle over the CSR store, cache disabled so every
    pair pays the real merge-join cost.  Both 2-hop methods (HopDb
    and PLL) go through this same path so their comparison stays
    apples-to-apples; IS-Label keeps its bespoke two-level evaluator
    and BIDIJ is the online-search contrast.
    """
    oracle = DistanceOracle(FlatLabelStore.from_index(index), cache_size=0)
    return oracle.query


def _run_hopdb(
    graph: Graph, pairs, budget: float | None
) -> MethodResult | None:
    disk = DiskModel()

    def build():
        return ExternalLabelingBuilder(graph, disk, strategy="hybrid").build()

    result = run_with_budget(build, budget)
    if result is None:
        return None
    timing = time_queries(_serving_query(result.index), pairs)
    disk_idx = DiskResidentIndex(result.index, DiskModel())
    for s, t in pairs[:100]:
        disk_idx.query(s, t)
    return MethodResult(
        name="hopdb",
        index_bytes=result.index.size_in_bytes(),
        build_seconds=result.build_seconds,
        query=timing,
        disk_query_ms=disk_idx.avg_query_seconds() * 1e3,
        io_blocks=result.total_io.total,
        iterations=result.num_iterations,
    )


def _run_pll(graph: Graph, pairs, budget: float | None) -> MethodResult | None:
    result = run_with_budget(lambda: build_pll(graph), budget)
    if result is None:
        return None
    index, build_seconds = result
    timing = time_queries(_serving_query(index), pairs)
    return MethodResult(
        name="pll",
        index_bytes=index.size_in_bytes(),
        build_seconds=build_seconds,
        query=timing,
    )


def _run_islabel(
    graph: Graph, pairs, budget: float | None
) -> MethodResult | None:
    isl = run_with_budget(lambda: build_islabel(graph), budget)
    if isl is None:
        return None
    timing = time_queries(isl.query, pairs)
    disk_idx = DiskResidentIndex(isl.labels, DiskModel())
    for s, t in pairs[:100]:
        disk_idx.query(s, t)
    return MethodResult(
        name="islabel",
        index_bytes=isl.size_in_bytes(),
        build_seconds=isl.build_seconds,
        query=timing,
        disk_query_ms=disk_idx.avg_query_seconds() * 1e3,
    )


def _run_bidij(graph: Graph, pairs, budget: float | None) -> MethodResult | None:
    oracle = BidirectionalSearchOracle(graph)
    subset = pairs[:BIDIJ_QUERY_CAP]

    def run():
        return time_queries(oracle.query, subset)

    timing = run_with_budget(run, budget)
    if timing is None:
        return None
    return MethodResult(
        name="bidij",
        index_bytes=0,
        build_seconds=0.0,
        query=timing,
    )


_RUNNERS = {
    "bidij": _run_bidij,
    "islabel": _run_islabel,
    "pll": _run_pll,
    "hopdb": _run_hopdb,
}


def run_dataset(
    name: str,
    methods: tuple[str, ...] = ("bidij", "islabel", "pll", "hopdb"),
    num_queries: int = DEFAULT_NUM_QUERIES,
    budget: float | None = None,
) -> DatasetResult:
    """Run the requested methods on one catalog dataset."""
    spec = dataset_by_name(name)
    graph = load_dataset(name)
    if budget is None:
        budget = method_budget()
    pairs = random_pairs(graph.num_vertices, num_queries, seed=spec.seed + 13)
    result = DatasetResult(spec=spec, summary=summarize(graph))
    for method in methods:
        runner = _RUNNERS.get(method)
        if runner is None:
            raise ValueError(f"unknown method {method!r}; one of {sorted(_RUNNERS)}")
        result.methods[method] = runner(graph, pairs, budget)
    return result
