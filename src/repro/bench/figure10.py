"""Figure 10: growth and pruning dynamics across iterations.

The paper instruments a hybrid build of wiki-English and plots, per
iteration:

* left panel — the **growing factor** (candidates generated this
  iteration / label entries that survived the previous iteration) and
  the **pruning factor** (fraction of candidates pruned);
* right panel — ``|candidates|``, ``|old label|`` and ``|prev label|``
  as fractions of the final index size, plus each iteration's share of
  the total build time.

Expected shape (asserted by the benchmarks): the growing factor sits
around the expansion factor (3-4ish) during the stepping phase and
jumps after the switch to doubling; the pruning factor stays high
throughout; candidates never dwarf the final index.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.datasets import load_dataset
from repro.core.hop_doubling import BuildResult
from repro.core.hybrid import HybridBuilder
from repro.graphs.digraph import Graph
from repro.utils.prettyprint import render_table

#: The paper instruments wiki-English; its scaled stand-in converges in
#: 3-4 stepping iterations, which would hide the doubling phase, so the
#: default is the long-diameter control graph (GLP core + cycle tail,
#: diameter comparable to the paper's high-diameter datasets).
DEFAULT_GRAPH = "long-diam"


@dataclass
class IterationPoint:
    iteration: int
    mode: str
    growing_factor: float
    pruning_factor: float
    cand_ratio: float  # |candidates| / |final index|
    old_ratio: float   # |old label|  / |final index|
    prev_ratio: float  # |prev label| / |final index|
    time_ratio: float  # iteration time / total build time


@dataclass
class Figure10:
    name: str
    points: list[IterationPoint]

    def render(self) -> str:
        headers = [
            "iter",
            "mode",
            "grow",
            "prune%",
            "|cand|/|idx|",
            "|old|/|idx|",
            "|prev|/|idx|",
            "time%",
        ]
        rows = [
            [
                p.iteration,
                p.mode,
                f"{p.growing_factor:.1f}",
                f"{p.pruning_factor * 100:.0f}%",
                f"{p.cand_ratio * 100:.0f}%",
                f"{p.old_ratio * 100:.0f}%",
                f"{p.prev_ratio * 100:.0f}%",
                f"{p.time_ratio * 100:.0f}%",
            ]
            for p in self.points
        ]
        return render_table(
            headers,
            rows,
            title=f"Figure 10 — growth and pruning per iteration ({self.name})",
        )


def from_build(name: str, result: BuildResult) -> Figure10:
    """Convert a build's iteration stats into the Figure 10 series."""
    final_size = max(1, result.index.total_entries())
    total_time = max(1e-9, sum(it.elapsed for it in result.iterations))
    points = []
    for it in result.iterations:
        points.append(
            IterationPoint(
                iteration=it.iteration,
                mode=it.mode,
                growing_factor=it.growing_factor,
                pruning_factor=it.pruning_factor,
                cand_ratio=it.distinct_generated / final_size,
                old_ratio=it.total_entries / final_size,
                prev_ratio=it.survived / final_size,
                time_ratio=it.elapsed / total_time,
            )
        )
    return Figure10(name=name, points=points)


def run(
    name: str = DEFAULT_GRAPH,
    graph: Graph | None = None,
    switch_iteration: int = 5,
) -> Figure10:
    """Instrument one hybrid build.

    ``switch_iteration`` defaults to 5 (not the paper's 10) because the
    scaled stand-ins converge in fewer iterations than wiki-English;
    switching mid-build is what exposes the doubling jump the paper's
    figure shows.
    """
    if graph is None:
        if name == "long-diam":
            from repro.bench.table8 import long_diameter_graph

            graph = long_diameter_graph()
        else:
            graph = load_dataset(name)
    result = HybridBuilder(graph, switch_iteration=switch_iteration).build()
    return from_build(name, result)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
