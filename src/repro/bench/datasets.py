"""Scaled stand-ins for the paper's datasets (Table 6, left columns).

The paper evaluates on 21 real graphs (SNAP / KONECT crawls up to 168M
vertices and 602M edges) plus 6 GLP-generated synthetic graphs.  The
real crawls are neither redistributable here nor tractable in pure
Python, so each dataset is replaced by a **deterministic synthetic
stand-in** that preserves the properties the paper's analysis actually
depends on (Section 2.2): power-law degree structure, directedness,
weightedness and edge density ``|E|/|V|``.  Undirected stand-ins use
the GLP model with the paper's own parameters; directed ones use GLP
with random orientation + 30% reciprocation; weighted ones add uniform
integer weights (rating-like, 1..10).

Scaling: each spec carries a base vertex count in the hundreds-to-
thousands (tiered by the original graph's size) and densities capped at
``DENSITY_CAP`` — both recorded per-row so EXPERIMENTS.md can state
exactly what was run.  The environment variable ``REPRO_SCALE``
multiplies all vertex counts (e.g. ``REPRO_SCALE=4`` for a longer,
larger-graph run).

Profiles: ``quick`` (default; one representative per category, used by
the pytest benchmarks), ``full`` (all 27 rows).
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from functools import lru_cache

from repro.graphs.digraph import Graph
from repro.graphs.generators import glp_graph

#: Edge densities above this are clamped (documented per run).
DENSITY_CAP = 20.0

#: Base |V| per size tier of the original dataset.
_TIER_SIZES = {"small": 600, "medium": 1000, "large": 1500}


@dataclass(frozen=True)
class DatasetSpec:
    """One row of the catalog.

    ``paper_vertices``/``paper_edges`` record the original graph so the
    tables can show the scale substitution explicitly;
    ``paper_category`` matches Table 6's section headers.
    """

    name: str
    paper_category: str  # "undirected unweighted" | "directed unweighted" |
    #                      "synthetic" | "undirected weighted"
    paper_vertices: float
    paper_edges: float
    tier: str
    directed: bool
    weighted: bool
    seed: int
    in_quick_profile: bool = False

    @property
    def paper_density(self) -> float:
        return self.paper_edges / self.paper_vertices

    @property
    def density(self) -> float:
        """The density actually generated (paper value, capped)."""
        return min(self.paper_density, DENSITY_CAP)

    def num_vertices(self) -> int:
        """Scaled vertex count (honours ``REPRO_SCALE``)."""
        scale = float(os.environ.get("REPRO_SCALE", "1"))
        return max(50, int(_TIER_SIZES[self.tier] * scale))


_M = 1_000_000
_K = 1_000

# One spec per line reads as the paper's Table 5; the E501 overruns
# are ignored for this file in pyproject.toml.
# fmt: off
DATASETS: list[DatasetSpec] = [
    # --- undirected unweighted (Table 6, first block) -------------------
    DatasetSpec("delicious", "undirected unweighted", 5.3 * _M, 602 * _M, "large", False, False, 101),
    DatasetSpec("btc", "undirected unweighted", 168 * _M, 361 * _M, "large", False, False, 102),
    DatasetSpec("flickrlink", "undirected unweighted", 1.7 * _M, 31 * _M, "medium", False, False, 103),
    DatasetSpec("skitter", "undirected unweighted", 1.7 * _M, 22 * _M, "medium", False, False, 104, in_quick_profile=True),
    DatasetSpec("catdog", "undirected unweighted", 624 * _K, 16 * _M, "medium", False, False, 105),
    DatasetSpec("cat", "undirected unweighted", 150 * _K, 5 * _M, "small", False, False, 106, in_quick_profile=True),
    DatasetSpec("flickr", "undirected unweighted", 106 * _K, 2 * _M, "small", False, False, 107),
    DatasetSpec("enron", "undirected unweighted", 37 * _K, 368 * _K, "small", False, False, 108, in_quick_profile=True),
    # --- directed unweighted ---------------------------------------------
    DatasetSpec("wikieng", "directed unweighted", 17 * _M, 240 * _M, "large", True, False, 201, in_quick_profile=True),
    DatasetSpec("wikifr", "directed unweighted", 5.1 * _M, 113 * _M, "large", True, False, 202),
    DatasetSpec("wikiitaly", "directed unweighted", 2.9 * _M, 105 * _M, "medium", True, False, 203),
    DatasetSpec("baidu", "directed unweighted", 2.1 * _M, 18 * _M, "medium", True, False, 204),
    DatasetSpec("gplus", "directed unweighted", 102 * _K, 14 * _M, "small", True, False, 205),
    DatasetSpec("wikitalk", "directed unweighted", 2.4 * _M, 5 * _M, "medium", True, False, 206),
    DatasetSpec("slashdot", "directed unweighted", 77 * _K, 517 * _K, "small", True, False, 207, in_quick_profile=True),
    DatasetSpec("epinions", "directed unweighted", 76 * _K, 509 * _K, "small", True, False, 208),
    DatasetSpec("euall", "directed unweighted", 265 * _K, 420 * _K, "small", True, False, 209),
    # --- synthetic (GLP, like the paper's syn1-syn6) ----------------------
    DatasetSpec("syn1", "synthetic", 10 * _M, 700 * _M, "large", False, False, 301),
    DatasetSpec("syn2", "synthetic", 20 * _M, 600 * _M, "large", False, False, 302),
    DatasetSpec("syn3", "synthetic", 15 * _M, 450 * _M, "large", False, False, 303),
    DatasetSpec("syn4", "synthetic", 10 * _M, 200 * _M, "large", False, False, 304),
    DatasetSpec("syn5", "synthetic", 1 * _M, 5 * _M, "medium", False, False, 305, in_quick_profile=True),
    DatasetSpec("syn6", "synthetic", 100 * _K, 1 * _M, "small", False, False, 306),
    # --- undirected weighted ------------------------------------------------
    DatasetSpec("amarating", "undirected weighted", 3.3 * _M, 11 * _M, "medium", False, True, 401),
    DatasetSpec("epinrating", "undirected weighted", 876 * _K, 27 * _M, "medium", False, True, 402),
    DatasetSpec("movrating", "undirected weighted", 9746, 2 * _M, "small", False, True, 403, in_quick_profile=True),
    DatasetSpec("bookrating", "undirected weighted", 264 * _K, 867 * _K, "small", False, True, 404),
]
# fmt: on

_BY_NAME = {spec.name: spec for spec in DATASETS}


def profile_names(profile: str = "quick") -> list[str]:
    """Dataset names in a profile (``quick`` or ``full``)."""
    if profile == "full":
        return [spec.name for spec in DATASETS]
    if profile == "quick":
        return [spec.name for spec in DATASETS if spec.in_quick_profile]
    raise ValueError(f"unknown profile {profile!r}; use 'quick' or 'full'")


def dataset_by_name(name: str) -> DatasetSpec:
    """Look up a catalog entry."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; known: {sorted(_BY_NAME)}"
        )


@lru_cache(maxsize=8)
def load_dataset(name: str) -> Graph:
    """Generate (deterministically) the scaled stand-in graph.

    Results are LRU-cached because the table drivers revisit datasets.
    """
    spec = dataset_by_name(name)
    n = spec.num_vertices()
    # GLP adds ~m/(1-p) edges per vertex; aim m at the target density.
    p = 0.4695
    m = max(0.3, spec.density * (1.0 - p))
    graph = glp_graph(n, m=m, seed=spec.seed, directed=spec.directed)
    if not spec.weighted:
        return graph
    rng = random.Random(spec.seed + 7)
    edges = [
        (u, v, float(rng.randint(1, 10))) for u, v, _ in graph.edges()
    ]
    return Graph.from_edges(
        n, edges, directed=spec.directed, weighted=True
    )
