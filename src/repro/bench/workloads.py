"""Query workloads for the benchmark harness.

The paper times "1000 random queries" per dataset.  Three generators
are provided: uniformly random pairs, pairs guaranteed to be connected
(useful on directed graphs where random pairs are mostly unreachable),
and distance-stratified pairs (for query-time-vs-distance analyses).
"""

from __future__ import annotations

import random

from repro.graphs.digraph import Graph
from repro.graphs.traversal import INF, bfs_distances, dijkstra_distances


def random_pairs(
    num_vertices: int, count: int, seed: int = 0
) -> list[tuple[int, int]]:
    """``count`` uniformly random (s, t) pairs with ``s != t``."""
    if num_vertices < 2:
        return []
    rng = random.Random(seed)
    pairs = []
    while len(pairs) < count:
        s = rng.randrange(num_vertices)
        t = rng.randrange(num_vertices)
        if s != t:
            pairs.append((s, t))
    return pairs


def reachable_pairs(
    graph: Graph, count: int, seed: int = 0, max_sources: int = 200
) -> list[tuple[int, int]]:
    """``count`` pairs with a finite distance, sampled via BFS trees."""
    rng = random.Random(seed)
    n = graph.num_vertices
    if n < 2:
        return []
    sssp = dijkstra_distances if graph.weighted else bfs_distances
    pairs: list[tuple[int, int]] = []
    attempts = 0
    while len(pairs) < count and attempts < max_sources:
        attempts += 1
        s = rng.randrange(n)
        dist = sssp(graph, s)
        targets = [t for t, d in enumerate(dist) if d != INF and t != s]
        if not targets:
            continue
        rng.shuffle(targets)
        needed = count - len(pairs)
        take = min(needed, max(1, len(targets) // 4))
        pairs.extend((s, t) for t in targets[:take])
    return pairs[:count]


def stratified_pairs(
    graph: Graph,
    per_bucket: int,
    buckets: list[tuple[float, float]] | None = None,
    seed: int = 0,
) -> dict[tuple[float, float], list[tuple[int, int]]]:
    """Pairs grouped by distance range: ``{(lo, hi): [(s, t), ...]}``.

    ``buckets`` default to short/medium/long: [1,2], [3,4], [5, inf).
    """
    if buckets is None:
        buckets = [(1.0, 2.0), (3.0, 4.0), (5.0, INF)]
    rng = random.Random(seed)
    n = graph.num_vertices
    sssp = dijkstra_distances if graph.weighted else bfs_distances
    result: dict[tuple[float, float], list[tuple[int, int]]] = {
        b: [] for b in buckets
    }
    attempts = 0
    while attempts < 200 and any(
        len(v) < per_bucket for v in result.values()
    ):
        attempts += 1
        s = rng.randrange(n)
        dist = sssp(graph, s)
        order = list(range(n))
        rng.shuffle(order)
        for t in order:
            d = dist[t]
            if t == s or d == INF:
                continue
            for lo, hi in buckets:
                if lo <= d <= hi and len(result[(lo, hi)]) < per_bucket:
                    result[(lo, hi)].append((s, t))
    return result
