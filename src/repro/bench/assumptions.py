"""Assumption verification table (Section 2.2, Assumptions 1-3).

Not a numbered artifact in the paper, but the paper repeatedly appeals
to three measurable assumptions and claims its experiments "strongly
support" them.  This driver prints, per dataset:

* the measured hop diameter vs. Equation 1's prediction;
* the expansion factor vs. Equation 2's ``log |V|``;
* Assumption 1: the smallest top-degree prefix ``h`` hitting all
  sampled long (>= d0 hops) shortest paths;
* Assumption 2: average/max ``|Ne(v)|`` (H-excluded neighbourhood);
* Assumption 3: the greedy hub-dimension estimate;
* the average label size the index actually achieved — the quantity
  the assumptions are supposed to bound.

A grid "road network" row is appended as the negative control: the
assumptions visibly fail there (large h, large ``Ne``), matching
Section 7's warning.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.datasets import load_dataset, profile_names
from repro.core.hybrid import HybridBuilder
from repro.graphs.digraph import Graph
from repro.graphs.generators import grid_graph
from repro.graphs.hitting import (
    DEFAULT_D0,
    hub_dimension_estimate,
    max_excluded_neighborhood,
    verify_long_path_hitting,
)
from repro.graphs.stats import (
    expansion_factor,
    hop_diameter,
    predicted_diameter,
    predicted_expansion,
)
from repro.utils.prettyprint import render_table

HEADERS = [
    "Graph",
    "D_H",
    "D_pred",
    "R",
    "R_pred",
    "h (A1)",
    "avg|Ne| (A2)",
    "max|Ne|",
    "hubdim (A3)",
    "avg |label|",
]


@dataclass
class AssumptionRow:
    name: str
    diameter: int
    diameter_pred: float
    expansion: float
    expansion_pred: float
    h_needed: int | None
    ne_avg: float
    ne_max: int
    hub_dim: int
    avg_label: float

    def cells(self) -> list[object]:
        return [
            self.name,
            self.diameter,
            f"{self.diameter_pred:.1f}",
            f"{self.expansion:.1f}",
            f"{self.expansion_pred:.1f}",
            self.h_needed,
            f"{self.ne_avg:.1f}",
            self.ne_max,
            self.hub_dim,
            f"{self.avg_label:.1f}",
        ]


@dataclass
class AssumptionsTable:
    rows: list[AssumptionRow]

    def render(self) -> str:
        return render_table(
            HEADERS,
            [r.cells() for r in self.rows],
            title="Assumptions 1-3 verification (Section 2.2)",
        )


def run_one(name: str, graph: Graph, d0: int = DEFAULT_D0) -> AssumptionRow:
    n = graph.num_vertices
    hitting = verify_long_path_hitting(graph, d0=d0, num_pairs=80)
    ne_avg, ne_max = max_excluded_neighborhood(
        graph, num_hubs=16, d0=d0, num_samples=16
    )
    hub_dim = hub_dimension_estimate(
        graph, num_vertices_sampled=8, paths_per_vertex=16
    )
    stats = HybridBuilder(graph).build().index.stats()
    return AssumptionRow(
        name=name,
        diameter=hop_diameter(graph),
        diameter_pred=predicted_diameter(n),
        expansion=expansion_factor(graph),
        expansion_pred=predicted_expansion(n),
        h_needed=hitting.h_needed,
        ne_avg=ne_avg,
        ne_max=ne_max,
        hub_dim=hub_dim,
        avg_label=stats.avg_label_size,
    )


def run(profile: str = "quick", include_control: bool = True) -> AssumptionsTable:
    """Verify the assumptions across a dataset profile (+ grid control)."""
    rows = [run_one(name, load_dataset(name)) for name in profile_names(profile)]
    if include_control:
        side = 25
        rows.append(run_one("grid-control", grid_graph(side, side)))
    return AssumptionsTable(rows)


def main(profile: str = "quick") -> None:
    print(run(profile).render())


if __name__ == "__main__":
    main()
