"""Table 7: small hitting sets — label sizes and top-vertex coverage.

For each dataset the paper reports the number of indexing iterations,
the average number of label entries per vertex, and how small a
fraction of top-ranked vertices covers 70% / 80% / 90% of all label
entries.  Small averages and sub-percent coverage fractions are the
empirical support for Assumptions 1-3 (small hitting sets / small hub
dimension).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.datasets import load_dataset, profile_names
from repro.core.hybrid import HybridBuilder
from repro.utils.prettyprint import render_table

HEADERS = [
    "Graph",
    "iterations",
    "avg |label|",
    "top 70%",
    "top 80%",
    "top 90%",
]


@dataclass
class Table7Row:
    name: str
    iterations: int
    avg_label: float
    top70: float
    top80: float
    top90: float

    def cells(self) -> list[object]:
        return [
            self.name,
            self.iterations,
            f"{self.avg_label:.1f}",
            f"{self.top70 * 100:.2f}%",
            f"{self.top80 * 100:.2f}%",
            f"{self.top90 * 100:.2f}%",
        ]


@dataclass
class Table7:
    rows: list[Table7Row]

    def render(self) -> str:
        return render_table(
            HEADERS,
            [r.cells() for r in self.rows],
            title="Table 7 — small hub dimension and hitting-set coverage",
        )

    def to_csv(self, path) -> int:
        """Write the table as CSV; returns the row count."""
        from repro.bench.export import write_csv

        return write_csv(path, HEADERS, (r.cells() for r in self.rows))


def run_one(name: str) -> Table7Row:
    """Build with the paper's default hybrid and measure Table 7 cells."""
    graph = load_dataset(name)
    result = HybridBuilder(graph).build()
    index = result.index
    stats = index.stats()
    return Table7Row(
        name=name,
        iterations=result.num_iterations,
        avg_label=stats.avg_label_size,
        top70=index.top_fraction_for_coverage(0.70),
        top80=index.top_fraction_for_coverage(0.80),
        top90=index.top_fraction_for_coverage(0.90),
    )


def run(profile: str = "quick") -> Table7:
    """Run the Table 7 experiment over a dataset profile."""
    return Table7([run_one(name) for name in profile_names(profile)])


def main(profile: str = "quick") -> None:
    print(run(profile).render())


if __name__ == "__main__":
    main()
