"""Table 8: Hop-Doubling vs Hop-Stepping vs Hybrid.

Per dataset: indexing time and iteration count for the three
strategies.  The paper's findings, which the scaled reproduction
retains:

* pure Doubling explodes early on large/denser graphs (too many
  candidates; in the paper it never finished BTC/Skitter/wikiItaly);
* pure Stepping needs more iterations on high-diameter graphs;
* Hybrid matches Stepping early and Doubling late, achieving the best
  (or tied-best) time everywhere.

A long-diameter control (``path`` plus a sparse ring-of-rings) is added
to the dataset list because the scaled scale-free stand-ins all have
tiny diameters, which would hide the stepping-vs-doubling iteration
trade-off the paper's Table 8 shows on BTC/wikiItaly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.datasets import load_dataset, profile_names
from repro.bench.metrics import run_with_budget
from repro.core.hybrid import make_builder
from repro.graphs.digraph import Graph
from repro.graphs.generators import cycle_graph, glp_graph
from repro.utils.prettyprint import render_table

HEADERS = [
    "Graph",
    "t Double(s)",
    "t Step(s)",
    "t Hybrid(s)",
    "it Double",
    "it Step",
    "it Hybrid",
]

STRATEGIES = ("doubling", "stepping", "hybrid")


def long_diameter_graph(num_vertices: int = 600, seed: int = 5) -> Graph:
    """A scale-free graph grafted onto a long cycle.

    Mimics datasets like BTC whose diameter far exceeds the scale-free
    prediction: the GLP core keeps the degree skew while the cycle tail
    stretches the hop diameter to dozens of hops.
    """
    core = glp_graph(num_vertices // 2, seed=seed)
    tail = cycle_graph(num_vertices - num_vertices // 2)
    offset = core.num_vertices
    edges = [(u, v) for u, v, _ in core.edges()]
    edges += [(u + offset, v + offset) for u, v, _ in tail.edges()]
    edges.append((0, offset))  # graft the tail onto the hub side
    return Graph.from_edges(num_vertices, edges, directed=False)


@dataclass
class Table8Row:
    name: str
    seconds: dict[str, float | None]
    iterations: dict[str, int | None]

    def cells(self) -> list[object]:
        return [
            self.name,
            *(
                f"{self.seconds[s]:.2f}" if self.seconds[s] is not None else None
                for s in STRATEGIES
            ),
            *(self.iterations[s] for s in STRATEGIES),
        ]


@dataclass
class Table8:
    rows: list[Table8Row]

    def render(self) -> str:
        return render_table(
            HEADERS,
            [r.cells() for r in self.rows],
            title="Table 8 — Hop-Doubling vs Hop-Stepping vs Hybrid",
        )

    def to_csv(self, path) -> int:
        """Write the table as CSV; returns the row count."""
        from repro.bench.export import write_csv

        return write_csv(path, HEADERS, (r.cells() for r in self.rows))


def run_one(name: str, graph: Graph, budget: float | None = None) -> Table8Row:
    seconds: dict[str, float | None] = {}
    iterations: dict[str, int | None] = {}
    for strategy in STRATEGIES:
        result = run_with_budget(
            lambda: make_builder(graph, strategy).build(), budget
        )
        seconds[strategy] = result.build_seconds if result else None
        iterations[strategy] = result.num_iterations if result else None
    return Table8Row(name=name, seconds=seconds, iterations=iterations)


def run(profile: str = "quick", budget: float | None = 120.0) -> Table8:
    """Run the strategy comparison over a profile + the diameter control."""
    names = profile_names(profile)
    rows = [run_one(n, load_dataset(n), budget) for n in names]
    rows.append(run_one("long-diam", long_diameter_graph(), budget))
    return Table8(rows)


def main(profile: str = "quick") -> None:
    print(run(profile).render())


if __name__ == "__main__":
    main()
