"""Benchmark harness regenerating the paper's evaluation (Section 8).

Layout:

* :mod:`repro.bench.datasets` — deterministic scaled stand-ins for the
  paper's 27 graphs (see DESIGN.md, substitutions);
* :mod:`repro.bench.workloads` — query-pair generators;
* :mod:`repro.bench.metrics` — timing helpers and method budgets;
* :mod:`repro.bench.harness` — shared method runners;
* ``table6`` / ``table7`` / ``table8`` / ``figure8`` / ``figure9`` /
  ``figure10`` — one driver per paper artifact, each printing rows or
  series shaped like the original and returning structured results for
  the pytest-benchmark front-ends under ``benchmarks/``.
"""

from repro.bench.datasets import (
    DATASETS,
    DatasetSpec,
    dataset_by_name,
    load_dataset,
    profile_names,
)
from repro.bench.workloads import random_pairs, reachable_pairs, stratified_pairs
from repro.bench.metrics import QueryTiming, time_queries

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "dataset_by_name",
    "load_dataset",
    "profile_names",
    "random_pairs",
    "reachable_pairs",
    "stratified_pairs",
    "QueryTiming",
    "time_queries",
]
