"""Figure 8: label coverage by top-ranked vertices.

The paper plots, for three graph families (BTC/Skitter;
wikiEng/wikiTalk/EuAll; syn1/syn2/syn5), the percentage of label
entries covered by the top x% of ranked vertices for x in (0, 1].  The
curves shoot up to ~100% within the top 1% — the visual form of the
small-hitting-set assumption.

This driver reproduces the series on the scaled stand-ins and renders
them as aligned columns (one row per x) — a textual version of the
plot, plus the raw points for the pytest-benchmark assertions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.datasets import load_dataset
from repro.core.hybrid import HybridBuilder
from repro.utils.prettyprint import render_table

#: Fractions of top vertices probed (the paper's x axis, 0..1%).
FRACTIONS = [0.001, 0.002, 0.004, 0.006, 0.008, 0.01, 0.02, 0.05, 0.1]

#: The graphs whose curves the paper overlays.
DEFAULT_GRAPHS = ["skitter", "wikieng", "syn5"]


@dataclass
class CoverageCurve:
    name: str
    points: list[tuple[float, float]]  # (top fraction, coverage fraction)


@dataclass
class Figure8:
    curves: list[CoverageCurve]

    def render(self) -> str:
        headers = ["top vertices"] + [c.name for c in self.curves]
        rows = []
        for i, frac in enumerate(FRACTIONS):
            row: list[object] = [f"{frac * 100:.1f}%"]
            for curve in self.curves:
                row.append(f"{curve.points[i][1] * 100:.1f}%")
            rows.append(row)
        return render_table(
            headers, rows, title="Figure 8 — label coverage by top ranked vertices"
        )


def run(graph_names: list[str] | None = None) -> Figure8:
    """Compute the coverage curves for the requested datasets."""
    names = graph_names if graph_names is not None else DEFAULT_GRAPHS
    curves = []
    for name in names:
        graph = load_dataset(name)
        index = HybridBuilder(graph).build().index
        curves.append(
            CoverageCurve(name=name, points=index.coverage_curve(FRACTIONS))
        )
    return Figure8(curves)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
