"""CSV/JSON export for the table/figure drivers and perf gates.

The text tables are for eyeballing against the paper; downstream
analysis (plotting Figure 8/9/10, regression-tracking Table 6) wants
machine-readable output.  Every driver result object can be passed to
:func:`write_csv` with its headers and rows, and perf-gate benchmarks
record their measurements with :func:`write_bench_json` — CI uploads
the resulting ``BENCH_*.json`` files as workflow artifacts, so the
perf trajectory is recorded per commit.
"""

from __future__ import annotations

import csv
import json
import platform
from pathlib import Path
from typing import Iterable, Sequence


def write_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> int:
    """Write ``rows`` under ``headers``; returns the number of rows.

    ``None`` cells are written as empty strings (the paper's "—").
    """
    path = Path(path)
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(["" if c is None else c for c in row])
            count += 1
    return count


def write_bench_json(name: str, payload: dict, directory=None) -> Path:
    """Record a benchmark measurement as ``BENCH_<name>.json``.

    ``payload`` is any JSON-serialisable mapping of measurements; an
    ``environment`` block (python version, platform, machine) is added
    so numbers from different runners aren't compared blindly.  Files
    land in ``directory`` (default: the working directory, which in CI
    is the checkout root the artifact-upload step globs).
    """
    path = Path(directory or ".") / f"BENCH_{name}.json"
    document = {
        "benchmark": name,
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
        **payload,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
