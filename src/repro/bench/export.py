"""CSV export for the table/figure drivers.

The text tables are for eyeballing against the paper; downstream
analysis (plotting Figure 8/9/10, regression-tracking Table 6) wants
machine-readable output.  Every driver result object can be passed to
:func:`write_csv` with its headers and rows.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence


def write_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> int:
    """Write ``rows`` under ``headers``; returns the number of rows.

    ``None`` cells are written as empty strings (the paper's "—").
    """
    path = Path(path)
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(["" if c is None else c for c in row])
            count += 1
    return count
