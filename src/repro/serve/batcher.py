"""Admission batching: coalesce concurrent requests into kernel batches.

The vectorized kernel answers hundreds of thousands of pairs per
second — but only when pairs arrive together.  A server that
evaluates each request's pairs on arrival pays the fixed per-call
cost (Python dispatch, kernel setup, a possible thread hop) once per
*request*; under many concurrent clients that fixed cost dominates.
The :class:`AdmissionBatcher` sits between the asyncio frontend and
the evaluator and turns concurrency into batch size:

* each request enqueues its pairs and awaits a future;
* a collector drains the queue into one batch until either
  ``max_batch_pairs`` is reached or ``max_wait`` seconds have
  elapsed — with one crucial exception: after a single cooperative
  yield (``asyncio.sleep(0)``), an empty queue proves no other
  submitter was runnable, so a lone request dispatches immediately
  instead of waiting out the admission window;
* one evaluator call answers the whole batch, and every request's
  future resolves with its slice of the results;
* **backpressure**: once ``max_pending_pairs`` admitted-but-unanswered
  pairs are in flight, :meth:`~AdmissionBatcher.submit` fails fast
  with :class:`ServeOverloadedError` — the server maps it to a
   429-style response so clients shed load instead of queueing
  unboundedly.

Requests are never split across batches, so a batch may overshoot
``max_batch_pairs`` by at most one request's size.  Large batches are
evaluated on a worker thread (``run_in_executor``) to keep the event
loop accepting; batches at or below ``inline_below`` pairs run
directly on the loop, where the evaluator finishes faster than the
thread hop itself would take.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Callable, Sequence

#: Dispatch threshold: a batch is sent to the evaluator once it holds
#: at least this many pairs.
DEFAULT_MAX_BATCH_PAIRS = 8192

#: Admission window in seconds: the longest a request waits for
#: companions while the queue keeps receiving traffic.
DEFAULT_MAX_WAIT = 0.002

#: Backpressure high-water mark: admitted-but-unanswered pairs beyond
#: which submissions are rejected.
DEFAULT_MAX_PENDING_PAIRS = 1 << 18

#: Batches at or below this many pairs are evaluated directly on the
#: event loop — a thread hop costs more than the kernel spends on a
#: small batch.
DEFAULT_INLINE_BELOW = 2048


class ServeOverloadedError(RuntimeError):
    """Backpressure: pending pairs exceed the admission high-water mark."""


class ServeClosedError(RuntimeError):
    """The batcher was closed while (or before) the request was pending."""


class _Request:
    """One admitted request: its pairs and the future awaiting them."""

    __slots__ = ("pairs", "future")

    def __init__(self, pairs, future) -> None:
        self.pairs = pairs
        self.future = future


class AdmissionBatcher:
    """Coalesce concurrent ``submit()`` calls into evaluator batches.

    ``evaluate`` maps a list of ``(source, target)`` pairs to a
    sequence of distances, in order — e.g. ``oracle.query_batch`` or
    :meth:`repro.serve.shm.SharedMemoryFanout.query_batch`.  A plain
    callable runs on a worker thread past ``inline_below`` pairs; an
    ``async def`` evaluator is awaited as-is.

    The collector task starts lazily on first submit and is torn down
    by :meth:`aclose`, which also fails every unanswered request with
    :class:`ServeClosedError`.
    """

    def __init__(
        self,
        evaluate: Callable[[list[tuple[int, int]]], Sequence[float]],
        *,
        max_batch_pairs: int = DEFAULT_MAX_BATCH_PAIRS,
        max_wait: float = DEFAULT_MAX_WAIT,
        max_pending_pairs: int = DEFAULT_MAX_PENDING_PAIRS,
        inline_below: int = DEFAULT_INLINE_BELOW,
    ) -> None:
        if max_batch_pairs < 1:
            raise ValueError(
                f"max_batch_pairs must be >= 1, got {max_batch_pairs}"
            )
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        if max_pending_pairs < max_batch_pairs:
            raise ValueError(
                "max_pending_pairs must be >= max_batch_pairs "
                f"({max_pending_pairs} < {max_batch_pairs})"
            )
        self._evaluate = evaluate
        self._is_async = asyncio.iscoroutinefunction(evaluate)
        self.max_batch_pairs = max_batch_pairs
        self.max_wait = max_wait
        self.max_pending_pairs = max_pending_pairs
        self.inline_below = inline_below
        self._queue: deque[_Request] = deque()
        self._wake = asyncio.Event()
        self._pending_pairs = 0
        self._closed = False
        self._collector: asyncio.Task | None = None
        self.pairs_served = 0
        self.batches_dispatched = 0
        self.requests_rejected = 0
        self.max_batch_seen = 0

    # -- request side --------------------------------------------------------
    async def submit(
        self, pairs: Sequence[tuple[int, int]]
    ) -> list[float]:
        """Admit one request's pairs and await their distances.

        Raises :class:`ServeOverloadedError` past the backpressure
        mark, :class:`ServeClosedError` if the batcher closes before
        the request is answered, and re-raises whatever the evaluator
        raised for the batch the request rode in.
        """
        if self._closed:
            raise ServeClosedError("batcher is closed")
        npairs = len(pairs)
        if npairs == 0:
            return []
        if self._pending_pairs + npairs > self.max_pending_pairs:
            self.requests_rejected += 1
            raise ServeOverloadedError(
                f"{self._pending_pairs} pairs already pending against a "
                f"high-water mark of {self.max_pending_pairs}; retry later"
            )
        loop = asyncio.get_running_loop()
        if self._collector is None:
            self._collector = loop.create_task(self._run())
        future = loop.create_future()
        self._pending_pairs += npairs
        self._queue.append(_Request(pairs, future))
        self._wake.set()
        return await future

    # -- collector side ------------------------------------------------------
    async def _run(self) -> None:
        while True:
            if not self._queue:
                self._wake.clear()
                await self._wake.wait()
            batch = await self._collect()
            await self._dispatch(batch)

    async def _collect(self) -> list[_Request]:
        """Drain the queue into one batch under the admission window."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.max_wait
        batch: list[_Request] = []
        npairs = 0
        while True:
            while self._queue and npairs < self.max_batch_pairs:
                request = self._queue.popleft()
                batch.append(request)
                npairs += len(request.pairs)
            if npairs >= self.max_batch_pairs:
                break
            # One cooperative yield lets every already-runnable
            # submitter enqueue; an empty queue after it means nothing
            # else is in flight, so a lone request never waits out the
            # admission window.
            await asyncio.sleep(0)
            if not self._queue or loop.time() >= deadline:
                break
        if npairs > self.max_batch_seen:
            self.max_batch_seen = npairs
        return batch

    async def _dispatch(self, batch: list[_Request]) -> None:
        """Evaluate one batch and resolve its requests' futures."""
        pairs: list[tuple[int, int]] = []
        for request in batch:
            pairs.extend(request.pairs)
        try:
            if self._is_async:
                distances = await self._evaluate(pairs)
            elif len(pairs) <= self.inline_below:
                distances = self._evaluate(pairs)
            else:
                distances = await asyncio.get_running_loop().run_in_executor(
                    None, self._evaluate, pairs
                )
        except asyncio.CancelledError:
            self._fail(batch, ServeClosedError("batcher closed mid-batch"))
            raise
        except Exception as exc:
            # The whole batch shares the evaluator's failure; the
            # server validates per request before admission precisely
            # so one bad request cannot poison its batch mates.
            self._fail(batch, exc)
        else:
            self.batches_dispatched += 1
            self.pairs_served += len(pairs)
            offset = 0
            for request in batch:
                end = offset + len(request.pairs)
                if not request.future.done():
                    request.future.set_result(list(distances[offset:end]))
                offset = end
        finally:
            for request in batch:
                self._pending_pairs -= len(request.pairs)

    @staticmethod
    def _fail(batch: list[_Request], exc: BaseException) -> None:
        for request in batch:
            if not request.future.done():
                request.future.set_exception(exc)

    # -- lifecycle and introspection -----------------------------------------
    async def aclose(self) -> None:
        """Stop the collector and fail every unanswered request.

        Requests already handed to the evaluator fail with
        :class:`ServeClosedError` as the collector unwinds; queued
        requests that never reached a batch fail the same way.
        Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        if self._collector is not None:
            self._collector.cancel()
            try:
                await self._collector
            except asyncio.CancelledError:
                pass
            self._collector = None
        exc = ServeClosedError("batcher closed with requests pending")
        while self._queue:
            request = self._queue.popleft()
            if not request.future.done():
                request.future.set_exception(exc)
            self._pending_pairs -= len(request.pairs)

    def stats(self) -> dict:
        """Serving counters plus the current backpressure level."""
        return {
            "pairs_served": self.pairs_served,
            "batches_dispatched": self.batches_dispatched,
            "requests_rejected": self.requests_rejected,
            "max_batch_seen": self.max_batch_seen,
            "pending_pairs": self._pending_pairs,
            "max_batch_pairs": self.max_batch_pairs,
            "max_wait": self.max_wait,
            "max_pending_pairs": self.max_pending_pairs,
        }

    def __repr__(self) -> str:
        return (
            f"AdmissionBatcher(max_batch_pairs={self.max_batch_pairs}, "
            f"max_wait={self.max_wait}, "
            f"max_pending_pairs={self.max_pending_pairs})"
        )


__all__ = (
    "DEFAULT_INLINE_BELOW",
    "DEFAULT_MAX_BATCH_PAIRS",
    "DEFAULT_MAX_PENDING_PAIRS",
    "DEFAULT_MAX_WAIT",
    "AdmissionBatcher",
    "ServeClosedError",
    "ServeOverloadedError",
)
