"""The asyncio distance server: newline-delimited JSON over TCP.

One :class:`DistanceServer` wraps any batch-capable backend — a
:class:`~repro.oracle.DistanceOracle`, a
:class:`~repro.oracle.parallel.ParallelOracle`, or a
:class:`~repro.serve.shm.SharedMemoryFanout` — behind an
:class:`~repro.serve.batcher.AdmissionBatcher`, so concurrent clients
are answered from coalesced kernel batches instead of one evaluator
call per request.

**Protocol** — one JSON object per line, in both directions:

* query: ``{"pairs": [[0, 5], [3, 9]], "id": 7}`` →
  ``{"ok": true, "id": 7, "distances": [2.0, null]}`` (``null``
  encodes an unreachable pair — JSON has no ``Infinity``; ``id`` is
  an optional client token echoed back verbatim);
* ``{"op": "ping"}`` → ``{"ok": true}``;
* ``{"op": "stats"}`` → ``{"ok": true, "stats": {...}}`` with batcher
  and backend counters;
* errors: ``{"ok": false, "code": 400 | 429 | 500 | 503,
  "error": "..."}`` — 400 for malformed requests (bad JSON, bad
  pairs, out-of-range vertices), 429 when admission backpressure
  rejects the request, 500 for evaluator failures, 503 during
  shutdown.

Requests are validated *before* admission, so a malformed request can
never poison the batch it would have ridden in.  Connections are
handled sequentially per line (responses come back in request order);
concurrency comes from many connections, which is exactly what the
admission window coalesces.
"""

from __future__ import annotations

import asyncio
import json
import math

from repro.serve.batcher import (
    DEFAULT_MAX_BATCH_PAIRS,
    DEFAULT_MAX_PENDING_PAIRS,
    DEFAULT_MAX_WAIT,
    AdmissionBatcher,
    ServeClosedError,
    ServeOverloadedError,
)

DEFAULT_HOST = "127.0.0.1"


class ServerError(RuntimeError):
    """A server-side error response, surfaced client-side.

    ``code`` carries the response's HTTP-style status (429 for
    backpressure rejections, 400 for malformed requests, ...).
    """

    def __init__(self, code: int, message: str) -> None:
        super().__init__(message)
        self.code = code


def _error(code: int, message: str, rid) -> dict:
    response = {"ok": False, "code": code, "error": message}
    if rid is not None:
        response["id"] = rid
    return response


def _validate_pairs(pairs, n: int) -> str | None:
    """Reject anything that is not a list of in-range [s, t] pairs."""
    if not isinstance(pairs, list):
        return "request needs a 'pairs' list of [source, target] pairs"
    for pair in pairs:
        if (
            not isinstance(pair, (list, tuple))
            or len(pair) != 2
            or not all(
                isinstance(v, int) and not isinstance(v, bool) for v in pair
            )
        ):
            return f"pair {pair!r} is not a [source, target] integer pair"
        s, t = pair
        if not (0 <= s < n and 0 <= t < n):
            return f"pair ({s}, {t}) out of range [0, {n})"
    return None


class DistanceServer:
    """Serve distance queries for one backend over asyncio TCP.

    ``backend`` needs two things: an ``n`` attribute (vertex count,
    for request validation) and a ``query_batch(pairs) -> list[float]``
    method; the admission knobs are forwarded to the underlying
    :class:`AdmissionBatcher`.  ``port=0`` binds an ephemeral port —
    read the real one back from :attr:`address` after :meth:`start`.
    """

    def __init__(
        self,
        backend,
        *,
        host: str = DEFAULT_HOST,
        port: int = 0,
        max_batch_pairs: int = DEFAULT_MAX_BATCH_PAIRS,
        max_wait: float = DEFAULT_MAX_WAIT,
        max_pending_pairs: int = DEFAULT_MAX_PENDING_PAIRS,
    ) -> None:
        self.backend = backend
        self.n = backend.n
        self.host = host
        self.port = port
        self.batcher = AdmissionBatcher(
            backend.query_batch,
            max_batch_pairs=max_batch_pairs,
            max_wait=max_wait,
            max_pending_pairs=max_pending_pairs,
        )
        self._server: asyncio.base_events.Server | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (real port once started)."""
        return self.host, self.port

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind the listening socket and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.address

    async def serve_forever(self) -> None:
        """Block serving until cancelled (``start`` must have run)."""
        if self._server is None:
            raise RuntimeError("server not started")
        await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting, then fail any still-pending requests."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.batcher.aclose()

    # -- request handling ----------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = await self._respond(line)
                writer.write(
                    json.dumps(response, separators=(",", ":")).encode()
                    + b"\n"
                )
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(self, line: bytes) -> dict:
        try:
            request = json.loads(line)
        except json.JSONDecodeError:
            return _error(400, "request is not valid JSON", None)
        if not isinstance(request, dict):
            return _error(400, "request must be a JSON object", None)
        rid = request.get("id")
        op = request.get("op", "query")
        if op == "ping":
            return {"ok": True} if rid is None else {"ok": True, "id": rid}
        if op == "stats":
            return self._stats_response(rid)
        if op != "query":
            return _error(400, f"unknown op {op!r}", rid)
        pairs = request.get("pairs")
        problem = _validate_pairs(pairs, self.n)
        if problem is not None:
            return _error(400, problem, rid)
        try:
            distances = await self.batcher.submit(
                [(pair[0], pair[1]) for pair in pairs]
            )
        except ServeOverloadedError as exc:
            return _error(429, str(exc), rid)
        except ServeClosedError:
            return _error(503, "server shutting down", rid)
        except Exception as exc:  # evaluator failure
            return _error(500, f"{type(exc).__name__}: {exc}", rid)
        response = {
            "ok": True,
            "distances": [
                None if math.isinf(d) else d for d in distances
            ],
        }
        if rid is not None:
            response["id"] = rid
        return response

    def _stats_response(self, rid) -> dict:
        stats = {"n": self.n, "batcher": self.batcher.stats()}
        backend_stats = getattr(self.backend, "stats", None)
        if callable(backend_stats):
            try:
                backend = backend_stats()
            except TypeError:
                backend = None
            if isinstance(backend, dict):
                stats["backend"] = backend
        response = {"ok": True, "stats": stats}
        if rid is not None:
            response["id"] = rid
        return response


class DistanceClient:
    """Minimal asyncio client for the JSON-lines protocol."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "DistanceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(self, payload: dict) -> dict:
        """One raw round trip: send a request object, read the reply."""
        self._writer.write(
            json.dumps(payload, separators=(",", ":")).encode() + b"\n"
        )
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    async def query(self, pairs) -> list[float]:
        """Distances for ``pairs``; raises :class:`ServerError` on errors.

        ``null`` distances decode back to ``float('inf')``, restoring
        the library convention for unreachable pairs.
        """
        response = await self.request(
            {"pairs": [[int(s), int(t)] for s, t in pairs]}
        )
        if not response.get("ok"):
            raise ServerError(
                int(response.get("code", 500)),
                str(response.get("error", "unknown server error")),
            )
        return [
            math.inf if d is None else float(d)
            for d in response["distances"]
        ]

    async def stats(self) -> dict:
        """The server's counters (batcher and backend)."""
        response = await self.request({"op": "stats"})
        if not response.get("ok"):
            raise ServerError(
                int(response.get("code", 500)),
                str(response.get("error", "unknown server error")),
            )
        return response["stats"]

    async def aclose(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


__all__ = (
    "DEFAULT_HOST",
    "DistanceClient",
    "DistanceServer",
    "ServerError",
)
