"""The serving tier: async request coalescing + shared-memory fan-out.

The paper's end product is an *interactive* distance service over
scale-free networks; this package is the layer that turns the batch
kernel into one:

* :mod:`repro.serve.batcher` — the :class:`AdmissionBatcher`
  coalesces concurrent per-request query sets into kernel-sized
  batches under an admission window (max batch size + max wait) and
  applies backpressure past a pending-pairs high-water mark;
* :mod:`repro.serve.server` — :class:`DistanceServer` and
  :class:`DistanceClient` speak a newline-delimited JSON protocol
  over asyncio TCP (``repro serve`` on the CLI);
* :mod:`repro.serve.shm` — :class:`SharedMemoryFanout` evaluates
  batches on forked workers that share the label arrays and the
  kernel's packed key views copy-on-write, with queries and results
  in shared mmap buffers: nothing is pickled per batch, so fan-out
  scales with cores instead of losing to the inline kernel.

Every path through this package returns answers bit-identical to
``store.query`` per pair — the serving tier adds scheduling, never
arithmetic.
"""

from repro.serve.batcher import (
    AdmissionBatcher,
    ServeClosedError,
    ServeOverloadedError,
)
from repro.serve.server import (
    DistanceClient,
    DistanceServer,
    ServerError,
)
from repro.serve.shm import (
    FanoutUnavailableError,
    SharedMemoryFanout,
)
from repro.serve.shm import available as fanout_available

__all__ = (
    "AdmissionBatcher",
    "DistanceClient",
    "DistanceServer",
    "FanoutUnavailableError",
    "ServeClosedError",
    "ServeOverloadedError",
    "ServerError",
    "SharedMemoryFanout",
    "fanout_available",
)
