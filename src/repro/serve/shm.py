"""Shared-memory fan-out: multi-core batch evaluation, zero marshalling.

The original :class:`~repro.oracle.parallel.ParallelOracle` transport
pickles every chunk's pair arrays into the worker processes and the
distances back out — cheap per element, but it rides the pool's pipe
for every batch and each worker rebuilds its own copy of the kernel's
packed key views, so fan-out *lost* to the inline kernel on
cache-resident indexes (``BENCH_shard_throughput.json``).  Label
lookup is a memory-bandwidth problem (Akiba et al.; Farhan et al. —
see PAPERS.md); the fix is sharing the label arrays, not copying them
per process.  This module removes both copies:

* **labels**: the parent builds the kernel's packed key views once
  (:func:`repro.oracle.kernel.ensure_sides`) and only then forks the
  pool, so every worker inherits the store — its mmapped label files
  *and* the derived key views — copy-on-write.  Workers never touch a
  byte of label state through a pipe; they share one physical copy.
* **queries and results**: the pair columns and the distance results
  live in anonymous shared mappings (``mmap.mmap(-1, ...)`` maps
  ``MAP_SHARED``) created before the fork.  A task message is just a
  ``(lo, hi)`` span — two integers through the pool — and each worker
  writes its distances straight into the shared result buffer.

Batches against a sharded store are grouped by the shard owning each
pair's source vertex, so a worker's probes stay inside one shard's
pages; the per-shard routing counts accumulate as **hit counts**, and
:meth:`SharedMemoryFanout.rebalance` turns them into a load-weighted
re-split of the vertex ranges
(:func:`repro.oracle.sharding.load_balanced_ranges`).  Replication is
implicit in this design: every forked worker shares the whole label
set, so any worker can serve any shard's span and a hot range is
served by as many workers as its query mass demands.

Requires numpy and the ``fork`` start method (POSIX);
:func:`available` reports both, and the
:class:`~repro.oracle.parallel.ParallelOracle` falls back to the
pickle transport where this module cannot run.
"""

from __future__ import annotations

import mmap
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable

try:  # numpy is an optional dependency of the serving stack
    import numpy as np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    np = None

from repro.oracle import kernel as _kernel

#: Initial capacity (in pairs) of the shared query/result buffers.
#: Buffers grow geometrically when a larger batch arrives; growth
#: restarts the worker pool, so serving frontends size this to their
#: admission batch limit up front.
DEFAULT_CAPACITY = 1 << 16

# Per pair: one int64 source + one int64 target + one float64 result.
_BYTES_PER_PAIR = 24


class FanoutUnavailableError(RuntimeError):
    """Shared-memory fan-out cannot run on this platform or store."""


def available() -> bool:
    """Whether fan-out can run here: numpy plus the ``fork`` method."""
    return (
        np is not None
        and "fork" in multiprocessing.get_all_start_methods()
    )


# Worker-side serving state, inherited at fork time: (store, S, T, R)
# with S/T/R numpy views over the shared mmap buffers.  Deliberately a
# module global rather than pool initargs — fork-inheritance of the
# parent's objects is the whole point, nothing may be pickled.  The
# owning SharedMemoryFanout rebinds it before every submit round, so
# pools forked by different instances never mix state.
_FANOUT_STATE = None


def _eval_span(lo: int, hi: int) -> None:
    """Worker entry: evaluate one span of the shared query buffers.

    Reads pairs from the shared S/T views, writes distances into the
    shared R view — the return value is ``None`` on purpose, nothing
    crosses the pool's result pipe but the completion itself.
    """
    store, S, T, R = _FANOUT_STATE
    R[lo:hi] = _kernel.batch_eval_arrays(store, S[lo:hi], T[lo:hi])


class SharedMemoryFanout:
    """Fan batches out over forked workers sharing the label arrays.

    ``store`` is a kernel-supported label store — a
    :class:`~repro.core.flatstore.FlatLabelStore`, its quantized v3
    subclass, or a :class:`~repro.oracle.sharding.ShardedLabelStore`
    over them.  Answers are bit-identical to ``store.query`` per pair:
    every span runs the same :func:`repro.oracle.kernel`
    machinery the inline path uses, just on another core.

    The instance owns a forked worker pool and the shared query
    buffers; :meth:`close` (or use as a context manager) releases
    both.  Not thread-safe: one batch at a time per instance.
    """

    def __init__(
        self,
        store,
        workers: int | None = None,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if not available():
            raise FanoutUnavailableError(
                "shared-memory fan-out needs numpy and the 'fork' "
                "start method"
            )
        if not _kernel.supports(store):
            raise FanoutUnavailableError(
                f"the batch kernel does not support "
                f"{type(store).__name__} stores"
            )
        if getattr(store, "has_pending_updates", False):
            raise FanoutUnavailableError(
                "store has staged updates; reconcile before fanning out"
            )
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        from repro.oracle.sharding import ShardedLabelStore

        self.store = store
        self.n = store.n
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self._sharded = isinstance(store, ShardedLabelStore)
        self._los = (
            np.asarray(store._los, dtype=np.int64) if self._sharded else None
        )
        self.shard_hits = np.zeros(
            store.num_shards if self._sharded else 1, dtype=np.int64
        )
        self.pairs_served = 0
        self.batches_served = 0
        # Build the packed key views BEFORE any fork, so children
        # inherit them copy-on-write instead of rebuilding per worker.
        _kernel.ensure_sides(store)
        self._pool: ProcessPoolExecutor | None = None
        self._capacity = 0
        self._mm: mmap.mmap | None = None
        self._S = self._T = self._R = None
        self._grow(capacity)

    # -- shared buffers and pool ---------------------------------------------
    def _grow(self, capacity: int) -> None:
        """(Re)allocate the shared buffers; the pool restarts lazily."""
        self._shutdown_pool()
        self._release_buffers()
        mm = mmap.mmap(-1, capacity * _BYTES_PER_PAIR)
        self._mm = mm
        self._S = np.frombuffer(mm, dtype=np.int64, count=capacity)
        self._T = np.frombuffer(
            mm, dtype=np.int64, count=capacity, offset=capacity * 8
        )
        self._R = np.frombuffer(
            mm, dtype=np.float64, count=capacity, offset=capacity * 16
        )
        self._capacity = capacity

    def _release_buffers(self) -> None:
        global _FANOUT_STATE
        if _FANOUT_STATE is not None and _FANOUT_STATE[1] is self._S:
            _FANOUT_STATE = None
        self._S = self._T = self._R = None
        if self._mm is not None:
            try:
                self._mm.close()
            except BufferError:  # pragma: no cover - stray external view
                pass
            self._mm = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        global _FANOUT_STATE
        # Rebound before every submit round: workers snapshot the
        # global at fork time, and the pool forks lazily on submit.
        _FANOUT_STATE = (self.store, self._S, self._T, self._R)
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("fork"),
            )
        return self._pool

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def warmup(self) -> None:
        """Fork every worker now instead of inside the first batch.

        Forking from a quiescent parent (before an event loop or
        thread pool starts) is also the safest moment on POSIX, so
        serving frontends call this during startup.
        """
        pool = self._ensure_pool()
        futures = [
            pool.submit(_eval_span, 0, 0) for _ in range(self.workers)
        ]
        for future in futures:
            future.result()

    # -- batched serving -----------------------------------------------------
    def query_batch(self, pairs: Iterable[tuple[int, int]]) -> list[float]:
        """Distances for every pair, in input order (list convenience)."""
        pairs = list(pairs)
        if not pairs:
            return []
        sq = np.asarray(pairs, dtype=np.int64)
        return self.query_batch_arrays(sq[:, 0], sq[:, 1]).tolist()

    def query_batch_arrays(self, S, T):
        """Distances for pair columns ``(S[k], T[k])`` as one f64 array.

        The array-in/array-out twin of :meth:`query_batch`; raises
        ``IndexError`` on out-of-range vertices before anything is
        dispatched, like every other batch path.
        """
        S = np.ascontiguousarray(S, dtype=np.int64)
        T = np.ascontiguousarray(T, dtype=np.int64)
        if S.shape != T.shape or S.ndim != 1:
            raise ValueError("S and T must be 1-D arrays of equal length")
        npairs = len(S)
        if npairs == 0:
            return np.empty(0, dtype=np.float64)
        bad = (S < 0) | (S >= self.n) | (T < 0) | (T >= self.n)
        if bad.any():
            k = int(np.flatnonzero(bad)[0])
            raise IndexError(
                f"query ({int(S[k])}, {int(T[k])}) out of range "
                f"[0, {self.n})"
            )
        if npairs > self._capacity:
            capacity = self._capacity
            while capacity < npairs:
                capacity *= 2
            self._grow(capacity)
        order, spans = self._plan(S)
        if order is None:
            self._S[:npairs] = S
            self._T[:npairs] = T
        else:
            self._S[:npairs] = S[order]
            self._T[:npairs] = T[order]
        pool = self._ensure_pool()
        futures = [pool.submit(_eval_span, lo, hi) for lo, hi in spans]
        for future in futures:
            future.result()
        self.pairs_served += npairs
        self.batches_served += 1
        if order is None:
            return self._R[:npairs].copy()
        out = np.empty(npairs, dtype=np.float64)
        out[order] = self._R[:npairs]
        return out

    def _plan(self, S):
        """Evaluation order and worker spans for one batch.

        Sharded stores: pairs are stably grouped by the shard owning
        each source vertex (a worker's probes stay inside one shard's
        pages) and each group is cut so no span exceeds
        ``ceil(npairs / workers)``; the per-shard counts accumulate
        into :attr:`shard_hits`.  Flat stores keep the input order and
        get equal cuts.  Returns ``(order, spans)`` with ``order is
        None`` for the identity.
        """
        npairs = len(S)
        limit = -(-npairs // self.workers)
        if not self._sharded:
            self.shard_hits[0] += npairs
            spans = [
                (lo, min(lo + limit, npairs))
                for lo in range(0, npairs, limit)
            ]
            return None, spans
        sid = np.searchsorted(self._los, S, side="right") - 1
        counts = np.bincount(sid, minlength=self.shard_hits.size)
        self.shard_hits += counts
        order = np.argsort(sid, kind="stable")
        spans = []
        lo = 0
        for end in np.cumsum(counts):
            end = int(end)
            while lo < end:
                hi = min(lo + limit, end)
                spans.append((lo, hi))
                lo = hi
        return order, spans

    # -- load accounting and rebalancing -------------------------------------
    def stats(self) -> dict:
        """Serving counters: batches, pairs, and per-shard hit counts."""
        return {
            "workers": self.workers,
            "capacity": self._capacity,
            "pairs_served": self.pairs_served,
            "batches_served": self.batches_served,
            "shard_hits": self.shard_hits.tolist(),
        }

    def rebalance_ranges(
        self, num_shards: int | None = None
    ) -> list[tuple[int, int]]:
        """Load-weighted shard ranges from the observed hit counts.

        The planning half of :meth:`rebalance` — inspect these to see
        how hot ranges would shrink before committing to a re-split.
        """
        if not self._sharded:
            raise FanoutUnavailableError(
                "rebalancing needs a ShardedLabelStore"
            )
        from repro.oracle.sharding import load_balanced_ranges

        return load_balanced_ranges(
            self.store.ranges,
            self.shard_hits.tolist(),
            num_shards if num_shards is not None else self.store.num_shards,
        )

    def rebalance(self, num_shards: int | None = None):
        """Re-split hot vertex ranges so shards carry equal query mass.

        Builds a new :class:`ShardedLabelStore` over
        :meth:`rebalance_ranges`, swaps it in as the serving store
        (the worker pool restarts over the new shards on the next
        batch), and resets the hit counters.  Returns the new store;
        the previous store object is left untouched — the caller that
        opened it still owns (and closes) it.
        """
        from repro.oracle.sharding import ShardedLabelStore

        ranges = self.rebalance_ranges(num_shards)
        new_store = ShardedLabelStore.split(self.store, ranges=ranges)
        self._shutdown_pool()
        _kernel.ensure_sides(new_store)
        self.store = new_store
        self._los = np.asarray(new_store._los, dtype=np.int64)
        self.shard_hits = np.zeros(new_store.num_shards, dtype=np.int64)
        return new_store

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down and release the shared buffers."""
        self._shutdown_pool()
        self._release_buffers()

    def __enter__(self) -> "SharedMemoryFanout":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"SharedMemoryFanout({self.store!r}, workers={self.workers}, "
            f"capacity={self._capacity})"
        )


__all__ = (
    "DEFAULT_CAPACITY",
    "FanoutUnavailableError",
    "SharedMemoryFanout",
    "available",
)
