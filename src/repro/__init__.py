"""repro — Hop Doubling Label Indexing (VLDB 2014) reproduction.

A production-quality reimplementation of

    Jiang, Fu, Wong, Xu:
    "Hop Doubling Label Indexing for Point-to-Point Distance Querying
    on Scale-Free Networks", PVLDB 7(12), 2014 (arXiv:1403.0779).

Quick start::

    from repro import HopDoublingIndex
    from repro.graphs import glp_graph

    graph = glp_graph(5_000, seed=42)         # scale-free synthetic graph
    index = HopDoublingIndex.build(graph)     # paper-default hybrid build
    index.query(17, 3021)                     # exact shortest-path distance

Subpackages
-----------
``repro.graphs``     graph containers, generators, I/O, statistics
``repro.core``       the labeling algorithms (hop-doubling / stepping /
                     hybrid), pruning, bit-parallel labels, query engine
``repro.io_sim``     external-memory (I/O-cost) simulation of Section 4
``repro.baselines``  PLL, IS-Label, HCL-lite, bidirectional search, APSP
``repro.oracle``     the batched DistanceOracle serving layer
``repro.bench``      harness regenerating every table and figure of
                     Section 8
"""

from repro.core.flatstore import FlatLabelStore
from repro.core.index import HopDoublingIndex
from repro.core.labels import INF, LabelIndex, LabelStore
from repro.graphs.digraph import Graph
from repro.oracle import DistanceOracle, ParallelOracle, ShardedLabelStore

__version__ = "1.2.0"

__all__ = [
    "HopDoublingIndex",
    "LabelIndex",
    "LabelStore",
    "FlatLabelStore",
    "DistanceOracle",
    "ParallelOracle",
    "ShardedLabelStore",
    "Graph",
    "INF",
    "__version__",
]
