"""The :class:`ParallelOracle` frontend: fan ``query_batch`` out over shards.

One :class:`~repro.oracle.DistanceOracle` is one process serving one
store; this frontend serves a **shard directory** (see
:mod:`repro.oracle.sharding`) with a pool of workers instead:

* the parent opens the :class:`ShardedLabelStore` itself (mmap by
  default), so every single-pair facility — ``query``, k-NN, path
  reconstruction, the verifier — works exactly as on a plain oracle;
* ``query_batch`` splits the batch into chunks grouped by the shard
  owning each pair's *source* vertex (so a worker's probes stay inside
  one shard's pages), evaluates the chunks on the pool, and merges the
  results back into input order;
* the pool is configurable: ``executor="process"`` (the default)
  gives real multi-core evaluation — each worker process re-opens the
  shard directory mmap-backed in its initializer, so the page cache is
  shared and per-worker memory stays flat; ``executor="thread"``
  shares the parent's store with zero startup cost (useful for tests,
  small batches, and future free-threaded CPythons).

Each chunk is evaluated with the same
:func:`repro.oracle.batch.evaluate_batch` grouped merge joins the
single-store path uses, so answers are bit-identical to
``DistanceOracle.query_batch`` — ``benchmarks/test_shard_throughput.py``
enforces both the equality and the >= 1.5x batch-throughput floor.

Small batches are not worth a round trip through the pool; below
``min_parallel_batch`` pairs the parent evaluates inline (through the
LRU cache, like any oracle).  The parallel path bypasses the parent's
result cache: shipping cache state between processes would cost more
than the merge joins it saves.

Fanned-out batches ride one of two **transports**.  The default
(``transport="auto"``) is the shared-memory fan-out of
:mod:`repro.serve.shm`: workers are *forked* after the parent builds
the kernel's packed key views, so they share the label arrays
copy-on-write, and pair/result buffers live in shared mmaps — nothing
is pickled per batch.  Where that cannot run (no numpy, no ``fork``
start method) or with ``transport="pickle"``, the original
chunk-pickling pool takes over; answers are bit-identical either way.
The shm transport also records per-shard hit counts
(:attr:`ParallelOracle.shard_hits`) feeding the load-adaptive
rebalance hook.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from pathlib import Path
from typing import Iterable

from repro.graphs.digraph import Graph
from repro.oracle.batch import KERNEL_MODES, evaluate_batch
from repro.oracle.oracle import DEFAULT_CACHE_SIZE, DistanceOracle
from repro.oracle.sharding import ShardedLabelStore

#: Batches smaller than this are evaluated inline by the parent —
#: pool dispatch overhead (pickling, wakeups) dominates below it.
DEFAULT_MIN_PARALLEL_BATCH = 1024

#: Accepted values of the ``route`` knob.
ROUTE_MODES = ("auto", "inline", "fanout")

#: Accepted values of the ``transport`` knob: ``auto`` prefers the
#: shared-memory fan-out and falls back to chunk pickling; ``shm`` and
#: ``pickle`` pin one transport (``shm`` raises where unavailable).
TRANSPORT_MODES = ("auto", "shm", "pickle")

#: ``route="auto"`` serves batches inline (single kernel process, no
#: pool) while the store's total label entries stay at or below this.
#: A cache-resident index is joined faster by one vectorized kernel
#: pass than by shipping chunks to workers — ~2M entries is ~24 MB of
#: key/dist views, comfortably inside a shared L3.
DEFAULT_INLINE_ENTRIES = 2_000_000

# Per-process serving state for process-pool workers, bound once by
# _init_worker so repeated chunks pay zero reopen cost.
_WORKER_STORE: ShardedLabelStore | None = None
_WORKER_KERNEL: str = "auto"


def _init_worker(shard_dir: str, use_mmap: bool, kernel: str) -> None:
    """Process-pool initializer: map the shard directory read-only.

    Checksums were already verified by the parent when it opened the
    same directory, so workers skip them and start serving in
    milliseconds even for multi-GB shard sets.
    """
    global _WORKER_STORE, _WORKER_KERNEL
    _WORKER_STORE = ShardedLabelStore.load(
        shard_dir, use_mmap=use_mmap, verify_checksums=False
    )
    _WORKER_KERNEL = kernel


def _eval_chunk(pairs: list[tuple[int, int]]) -> list[float]:
    """Evaluate one chunk in a worker process (kernel or merge joins)."""
    assert _WORKER_STORE is not None, "worker initializer did not run"
    return evaluate_batch(_WORKER_STORE, pairs, kernel=_WORKER_KERNEL)


def _eval_chunk_arrays(S, T):
    """Evaluate one array-form chunk in a worker (kernel path).

    The pair columns arrive as int64 numpy arrays and the distances
    return as one float64 array: numpy buffers cross the process
    boundary in a single memcpy-style pickle, so dispatch cost stays
    flat as batches grow instead of paying per-tuple.
    """
    from repro.oracle import kernel as _kernel

    assert _WORKER_STORE is not None, "worker initializer did not run"
    return _kernel.batch_eval_arrays(_WORKER_STORE, S, T)


class ParallelOracle(DistanceOracle):
    """Batched distance serving over a shard directory with a worker pool."""

    def __init__(
        self,
        shard_dir: str | Path,
        workers: int | None = None,
        executor: str = "process",
        use_mmap: bool = True,
        graph: Graph | None = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        min_parallel_batch: int = DEFAULT_MIN_PARALLEL_BATCH,
        kernel: str = "auto",
        route: str = "auto",
        inline_entries: int = DEFAULT_INLINE_ENTRIES,
        transport: str = "auto",
    ) -> None:
        # Validate configuration before the store load so a bad call
        # never leaks N open shard mappings.
        if executor not in ("process", "thread"):
            raise ValueError(
                f"executor must be 'process' or 'thread', got {executor!r}"
            )
        if kernel not in KERNEL_MODES:
            raise ValueError(
                f"kernel must be one of {KERNEL_MODES}, got {kernel!r}"
            )
        if route not in ROUTE_MODES:
            raise ValueError(
                f"route must be one of {ROUTE_MODES}, got {route!r}"
            )
        if transport not in TRANSPORT_MODES:
            raise ValueError(
                f"transport must be one of {TRANSPORT_MODES}, "
                f"got {transport!r}"
            )
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        store = ShardedLabelStore.load(shard_dir, use_mmap=use_mmap)
        super().__init__(store, graph=graph, cache_size=cache_size,
                         kernel=kernel)
        self.shard_dir = Path(shard_dir)
        self.executor_kind = executor
        self.use_mmap = use_mmap
        self.min_parallel_batch = min_parallel_batch
        self.route = route
        self.inline_entries = inline_entries
        self.transport = transport
        self._shm = None
        self._total_entries: int | None = None
        if workers is None:
            # More workers than shards just contend for the same pages;
            # more workers than cores contend for the same cycles.
            workers = min(store.num_shards, os.cpu_count() or 1)
        self.workers = workers
        self._pool: Executor | None = None

    # -- pool management -----------------------------------------------------
    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            if self.executor_kind == "process":
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_init_worker,
                    initargs=(str(self.shard_dir), self.use_mmap,
                              self.kernel),
                )
            else:
                self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool

    def warmup(self) -> None:
        """Start the pool and pay most of the worker startup cost now.

        Process workers fork and map their stores on first use;
        submitting one probe per worker makes the pool spawn all of
        them and runs their initializers concurrently.  Best-effort:
        the probes share one task queue, so a fast worker may answer
        several and warmup() can return while a slower sibling is
        still initializing — the first real batch then absorbs the
        remainder (benchmarks discard it by taking best-of-N rounds).
        A single-worker oracle always evaluates inline, so there is
        nothing to warm.
        """
        if self.workers <= 1:
            return
        if self._use_shm():
            self._ensure_shm().warmup()
            return
        pool = self._ensure_pool()
        if self.executor_kind == "process":
            mid = self.n // 2
            futures = [
                pool.submit(_eval_chunk, [(mid, mid)])
                for _ in range(self.workers)
            ]
            for future in futures:
                future.result()

    # -- batched serving -----------------------------------------------------
    def _serve_inline(self, num_pairs: int) -> bool:
        """Whether this batch should bypass the pool.

        Inline always wins for small batches and single-worker
        oracles; it is *forced* while updates are staged but not yet
        reconciled (the workers' memory-mapped shard files are stale —
        only the parent's overlay answers correctly).  Otherwise the
        ``route`` knob decides: ``"inline"`` / ``"fanout"`` pin the
        path, and ``"auto"`` keeps cache-resident indexes (total
        entries <= ``inline_entries``) on the parent's kernel, where
        one vectorized pass beats pool dispatch (the measured
        crossover behind the knob; see
        ``benchmarks/test_shard_throughput.py``).
        """
        if num_pairs < self.min_parallel_batch or self.workers <= 1:
            return True
        if self.store.has_pending_updates:
            return True
        if self.route == "inline":
            return True
        if self.route == "fanout":
            return False
        if not self._kernel_active():
            return False
        if self._total_entries is None:
            self._total_entries = self.store.total_entries(
                include_trivial=True
            )
        return self._total_entries <= self.inline_entries

    def query_batch(self, pairs: Iterable[tuple[int, int]]) -> list[float]:
        """Distances for every pair, in input order, evaluated on the pool.

        Bit-identical to :meth:`DistanceOracle.query_batch`; batches
        below ``min_parallel_batch``, single-worker oracles, and (with
        ``route="auto"``) cache-resident indexes are evaluated inline.
        """
        pairs = list(pairs)
        if self._serve_inline(len(pairs)):
            return super().query_batch(pairs)

        if self._use_shm():
            return self._ensure_shm().query_batch(pairs)
        chunks = self._chunk_by_shard(pairs)
        pool = self._ensure_pool()
        if self._kernel_active():
            return self._fan_out_arrays(pairs, chunks, pool)
        if self.executor_kind == "process":
            futures = [
                (positions, pool.submit(
                    _eval_chunk, [pairs[pos] for pos in positions]
                ))
                for positions in chunks
            ]
        else:
            store = self.store
            kernel = self.kernel
            futures = [
                (positions, pool.submit(
                    evaluate_batch, store,
                    [pairs[pos] for pos in positions],
                    None, kernel,
                ))
                for positions in chunks
            ]
        results: list[float] = [0.0] * len(pairs)
        for positions, future in futures:
            for pos, d in zip(positions, future.result()):
                results[pos] = d
        return results

    def _kernel_active(self) -> bool:
        """Whether batches fan out in array form through the kernel."""
        if self.kernel == "off":
            return False
        from repro.oracle import kernel as _kernel

        return _kernel.supports(self.store)

    # -- shared-memory transport ---------------------------------------------
    def _use_shm(self) -> bool:
        """Whether fanned-out batches ride the shared-memory transport.

        Process pools only (a thread pool already shares everything),
        kernel-form batches only, and never with ``transport="pickle"``.
        ``transport="shm"`` raises where fork/numpy are missing instead
        of silently serving slower.
        """
        if self.transport == "pickle" or self.executor_kind != "process":
            return False
        if not self._kernel_active():
            if self.transport == "shm":
                raise ValueError(
                    "transport='shm' needs the batch kernel "
                    "(numpy installed and kernel != 'off')"
                )
            return False
        from repro.serve.shm import available

        if not available():
            if self.transport == "shm":
                from repro.serve.shm import FanoutUnavailableError

                raise FanoutUnavailableError(
                    "transport='shm' needs numpy and the 'fork' "
                    "start method"
                )
            return False
        return True

    def _ensure_shm(self):
        if self._shm is None:
            from repro.serve.shm import SharedMemoryFanout

            self._shm = SharedMemoryFanout(self.store, workers=self.workers)
        return self._shm

    def _close_shm(self) -> None:
        if self._shm is not None:
            self._shm.close()
            self._shm = None

    @property
    def shard_hits(self) -> list[int] | None:
        """Per-shard hit counts the shm transport recorded (else None).

        The raw signal behind
        :meth:`repro.serve.shm.SharedMemoryFanout.rebalance`.
        """
        return (
            self._shm.shard_hits.tolist() if self._shm is not None else None
        )

    def _fan_out_arrays(self, pairs, chunks, pool) -> list[float]:
        """Fan the batch out as numpy array chunks (the kernel path).

        Each worker's chunk becomes exactly one kernel call, and both
        the pairs and the resulting distances cross the process
        boundary as numpy buffers — the per-tuple pickling that
        dominated the scalar fan-out is gone.
        """
        import numpy as np

        from repro.oracle import kernel as _kernel

        sq = np.asarray(pairs, dtype=np.int64)
        futures = []
        if self.executor_kind == "process":
            for positions in chunks:
                pos = np.asarray(positions, dtype=np.int64)
                futures.append(
                    (pos, pool.submit(
                        _eval_chunk_arrays, sq[pos, 0], sq[pos, 1]
                    ))
                )
        else:
            store = self.store
            for positions in chunks:
                pos = np.asarray(positions, dtype=np.int64)
                futures.append(
                    (pos, pool.submit(
                        _kernel.batch_eval_arrays, store,
                        sq[pos, 0], sq[pos, 1],
                    ))
                )
        results = np.empty(len(pairs), dtype=np.float64)
        for pos, future in futures:
            results[pos] = future.result()
        return results.tolist()

    def _chunk_by_shard(
        self, pairs: list[tuple[int, int]]
    ) -> list[list[int]]:
        """Split a batch into per-worker chunks, grouped by source shard.

        Returns position lists whose concatenation is a permutation of
        the input; grouping by the source vertex's shard keeps each
        worker's probes inside one shard, and large groups are split
        so no chunk exceeds ``ceil(len / workers)``.
        """
        shard_of = self.store.shard_of
        by_shard: dict[int, list[int]] = {}
        for pos, (s, _) in enumerate(pairs):
            by_shard.setdefault(shard_of(s), []).append(pos)
        limit = -(-len(pairs) // self.workers)
        chunks = []
        for positions in by_shard.values():
            for i in range(0, len(positions), limit):
                chunks.append(positions[i : i + limit])
        return chunks

    # -- incremental updates -------------------------------------------------
    def apply_updates(self, delta) -> list[int]:
        """Stage updates on the parent's sharded store.

        The staged overlay answers immediately and correctly through
        the parent; batches are served **inline** (never fanned out)
        until :meth:`reconcile` rewrites the changed shard files,
        because the worker processes map the on-disk files and would
        serve pre-update labels.
        """
        result = super().apply_updates(delta)
        self._total_entries = None
        return result

    def reconcile(self) -> list[int]:
        """Flush staged updates to the shard directory, refresh workers.

        Rewrites only the dirty shard files (and their manifest
        checksums) via :meth:`ShardedLabelStore.reconcile`, then shuts
        the worker pool down so the next fanned-out batch starts fresh
        workers over the rewritten files.  Returns the rewritten shard
        ids.
        """
        rewritten = self.store.reconcile(self.shard_dir)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        # The shm workers inherited the pre-update shards at fork time;
        # drop them so the next batch forks over the merged arrays.
        self._close_shm()
        return rewritten

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down and release the shard mappings."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._close_shm()
        super().close()

    def __enter__(self) -> "ParallelOracle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ParallelOracle({self.store!r}, workers={self.workers}, "
            f"executor={self.executor_kind!r})"
        )
